#include "consistency/priority_scheduler.h"

#include <algorithm>
#include <limits>

namespace deluge::consistency {

TransmissionScheduler::TransmissionScheduler(net::Simulator* sim,
                                             double bandwidth_bytes_per_sec,
                                             TxPolicy policy)
    : sim_(sim),
      bandwidth_(bandwidth_bytes_per_sec > 0 ? bandwidth_bytes_per_sec
                                             : 1.0),
      policy_(policy) {
  for (QosClass c : kAllQosClasses) {
    obs::Labels labels{{"qos", QosClassName(c)}};
    m_[uint8_t(c)].latency = obs_.histogram("latency_us", labels);
    m_[uint8_t(c)].delivered = obs_.counter("delivered", labels);
    m_[uint8_t(c)].deadline_misses = obs_.counter("deadline_misses", labels);
  }
}

void TransmissionScheduler::Submit(PendingUpdate update) {
  queue_.push_back(Item{std::move(update), sim_->Now(), next_seq_++});
  MaybeStartTransmission();
}

void TransmissionScheduler::MaybeStartTransmission() {
  if (busy_ || queue_.empty()) return;

  // Pick the next item per policy.
  size_t pick = 0;
  switch (policy_) {
    case TxPolicy::kFifo:
      pick = 0;  // queue is already arrival-ordered
      break;
    case TxPolicy::kStrictPriority: {
      uint8_t best_class = 255;
      uint64_t best_seq = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < queue_.size(); ++i) {
        uint8_t cls = uint8_t(queue_[i].update.qos);
        if (cls < best_class ||
            (cls == best_class && queue_[i].seq < best_seq)) {
          best_class = cls;
          best_seq = queue_[i].seq;
          pick = i;
        }
      }
      break;
    }
    case TxPolicy::kEdfWithinClass: {
      uint8_t best_class = 255;
      Micros best_deadline = std::numeric_limits<Micros>::max();
      uint64_t best_seq = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < queue_.size(); ++i) {
        const Item& it = queue_[i];
        uint8_t cls = uint8_t(it.update.qos);
        Micros dl = it.update.deadline > 0
                        ? it.update.deadline
                        : std::numeric_limits<Micros>::max();
        bool better = cls < best_class ||
                      (cls == best_class &&
                       (dl < best_deadline ||
                        (dl == best_deadline && it.seq < best_seq)));
        if (better) {
          best_class = cls;
          best_deadline = dl;
          best_seq = it.seq;
          pick = i;
        }
      }
      break;
    }
  }

  Item item = std::move(queue_[pick]);
  queue_.erase(queue_.begin() + long(pick));
  busy_ = true;

  Micros tx_time = Micros(double(item.update.bytes) / bandwidth_ *
                          double(kMicrosPerSecond));
  sim_->After(tx_time, [this, item = std::move(item)]() {
    Micros now = sim_->Now();
    const ClassMetrics& cm = m_[uint8_t(item.update.qos)];
    cm.latency->Record(now - item.enqueued_at);
    cm.delivered->Add(1);
    if (item.update.deadline > 0 && now > item.update.deadline) {
      cm.deadline_misses->Add(1);
    }
    if (item.update.on_delivered) item.update.on_delivered(now);
    busy_ = false;
    MaybeStartTransmission();
  });
}

const ClassStats& TransmissionScheduler::stats_for(QosClass c) const {
  const ClassMetrics& cm = m_[uint8_t(c)];
  ClassStats& snap = snaps_[uint8_t(c)];
  snap.latency = cm.latency->Snapshot();
  snap.delivered = cm.delivered->Value();
  snap.deadline_misses = cm.deadline_misses->Value();
  return snap;
}

uint64_t TransmissionScheduler::queued() const { return queue_.size(); }

uint64_t TransmissionScheduler::total_delivered() const {
  uint64_t n = 0;
  for (const auto& cm : m_) n += cm.delivered->Value();
  return n;
}

}  // namespace deluge::consistency
