#ifndef DELUGE_CONSISTENCY_COHERENCY_H_
#define DELUGE_CONSISTENCY_COHERENCY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/qos.h"
#include "geo/geometry.h"
#include "obs/metrics.h"

namespace deluge::consistency {

/// A per-entity coherency contract (Section IV-C: "tolerate some degree
/// of discrepancies — for numerical data, they may be within certain
/// coherency requirements").
///
/// The mirrored copy of an entity is allowed to deviate from the source
/// by at most `value_bound` (metres for positions, native units for
/// scalars) and to be at most `max_staleness` old.  An update is
/// transmitted only when either bound would otherwise be violated.
struct CoherencyContract {
  double value_bound = 0.0;           ///< 0 => every change transmits
  Micros max_staleness = kMicrosPerSecond;
};

/// Dissemination accounting.
struct CoherencyStats {
  uint64_t updates_offered = 0;   ///< source-side changes observed
  uint64_t updates_sent = 0;      ///< actually transmitted
  uint64_t updates_suppressed = 0;
  uint64_t bytes_sent = 0;
  /// Sum and max of the deviation present at suppression decisions — the
  /// error the mirror actually carries.
  double deviation_sum = 0.0;
  double deviation_max = 0.0;

  double SuppressionRatio() const {
    return updates_offered == 0
               ? 0.0
               : double(updates_suppressed) / double(updates_offered);
  }
  double MeanDeviation() const {
    return updates_suppressed == 0 ? 0.0
                                   : deviation_sum / double(updates_suppressed);
  }
};

/// The portable per-entity filter state: what the mirror last received
/// and when.  Extracted/restored verbatim when an entity's ownership
/// migrates between sharded engine slices, so suppression decisions
/// after a handoff are identical to a run that never migrated.
struct MirrorState {
  geo::Vec3 last_sent_vec;
  double last_sent_scalar = 0.0;
  Micros last_sent_at = INT64_MIN;
  bool ever_sent = false;
};

/// Decides, per entity, whether a new source value must be pushed to the
/// mirror under that entity's coherency contract.  Generic over the value
/// kind via a distance function; concrete aliases below cover positions
/// and scalars.
class CoherencyFilter {
 public:
  /// `default_contract` applies to entities without an explicit one.
  explicit CoherencyFilter(CoherencyContract default_contract = {});

  /// Installs a per-entity contract.
  void SetContract(uint64_t entity, const CoherencyContract& contract);

  /// Offers a new position for `entity` at `now`; returns true when the
  /// update must be transmitted (and records it as sent, charging
  /// `bytes`).  False means the mirror stays within bounds.  `qos`
  /// labels the refresh-gap sample this transmission closes — the
  /// freshness leg of the per-class SLO accounting.
  bool Offer(uint64_t entity, const geo::Vec3& value, Micros now,
             uint64_t bytes = 64, QosClass qos = QosClass::kRealtime);

  /// Scalar variant (sensor readings, stock counts, …).
  bool OfferScalar(uint64_t entity, double value, Micros now,
                   uint64_t bytes = 16, QosClass qos = QosClass::kTelemetry);

  /// The value the mirror currently holds (last transmitted), if any.
  bool MirrorValue(uint64_t entity, geo::Vec3* out) const;

  /// Removes `entity`'s filter state and returns it in `*out`; false
  /// when the filter holds no state for it (never offered).  Counters
  /// are unaffected — migration moves state, not history.
  bool ExtractEntity(uint64_t entity, MirrorState* out);

  /// Installs filter state for `entity` (the other half of a handoff).
  /// Overwrites any existing state.
  void RestoreEntity(uint64_t entity, const MirrorState& state);

  /// Registry-backed snapshot, refreshed on every call.
  const CoherencyStats& stats() const;
  void ResetStats();

 private:
  bool Decide(MirrorState& st, double deviation, Micros now,
              const CoherencyContract& contract, uint64_t bytes,
              QosClass qos);
  const CoherencyContract& ContractFor(uint64_t entity) const;

  CoherencyContract default_contract_;
  std::unordered_map<uint64_t, CoherencyContract> contracts_;
  std::unordered_map<uint64_t, MirrorState> states_;
  obs::StatsScope obs_{"coherency"};
  obs::Counter* updates_offered_ = obs_.counter("updates_offered");
  obs::Counter* updates_sent_ = obs_.counter("updates_sent");
  obs::Counter* updates_suppressed_ = obs_.counter("updates_suppressed");
  obs::Counter* bytes_sent_ = obs_.counter("bytes_sent");
  obs::Gauge* deviation_sum_ = obs_.gauge("deviation_sum");
  obs::Gauge* deviation_max_ =
      obs_.gauge("deviation_max", obs::Gauge::Agg::kMax);
  // Virtual-time gap between consecutive mirror refreshes of an entity
  // — the staleness the mirror actually carried, per QoS class.
  obs::ConcurrentHistogram* refresh_gap_us_[kQosClassCount] = {};
  mutable CoherencyStats snapshot_;
};

}  // namespace deluge::consistency

#endif  // DELUGE_CONSISTENCY_COHERENCY_H_
