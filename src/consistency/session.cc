#include "consistency/session.h"

namespace deluge::consistency {

std::string_view ReadModeName(ReadMode mode) {
  switch (mode) {
    case ReadMode::kEventual: return "eventual";
    case ReadMode::kReadYourWrites: return "read_your_writes";
  }
  return "unknown";
}

void Session::ObserveWrite(std::string_view key, const WriteStamp& v) {
  WriteStamp& cur = floor_[std::string(key)];
  if (cur < v) cur = v;
}

void Session::ObserveRead(std::string_view key, const WriteStamp& v) {
  ObserveWrite(key, v);  // same floor: max of everything observed
}

WriteStamp Session::FloorFor(std::string_view key) const {
  auto it = floor_.find(std::string(key));
  return it == floor_.end() ? WriteStamp{} : it->second;
}

bool Session::Satisfies(std::string_view key, const WriteStamp& v) const {
  return FloorFor(key) <= v;
}

}  // namespace deluge::consistency
