#ifndef DELUGE_CONSISTENCY_SESSION_H_
#define DELUGE_CONSISTENCY_SESSION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

namespace deluge::consistency {

/// A per-key logical write stamp: a monotonically increasing counter
/// plus the writer's id as a total-order tiebreak.  Replicas merge
/// divergent copies by last-writer-wins over this stamp
/// (DESIGN.md §11); sessions use it to express "at least as new as the
/// write I saw".
struct WriteStamp {
  uint64_t counter = 0;  ///< per-key logical clock value
  uint64_t writer = 0;   ///< id of the coordinator that issued it

  bool IsZero() const { return counter == 0 && writer == 0; }
};

inline bool operator==(const WriteStamp& a, const WriteStamp& b) {
  return a.counter == b.counter && a.writer == b.writer;
}
inline bool operator!=(const WriteStamp& a, const WriteStamp& b) {
  return !(a == b);
}
inline bool operator<(const WriteStamp& a, const WriteStamp& b) {
  if (a.counter != b.counter) return a.counter < b.counter;
  return a.writer < b.writer;
}
inline bool operator<=(const WriteStamp& a, const WriteStamp& b) {
  return a < b || a == b;
}

/// How a replicated read may trade freshness for availability.
///
/// `kEventual` answers from the first read-quorum — possibly a stale
/// version if the freshest replica is slow, partitioned, or down;
/// staleness is measured and exported, not hidden.  `kReadYourWrites`
/// additionally requires the answer to be at least as new as every
/// write (and prior read) this session has observed: the coordinator
/// widens the read beyond the quorum until the session floor is met,
/// or fails Unavailable when no reachable replica can meet it.
enum class ReadMode : uint8_t {
  kEventual,
  kReadYourWrites,
};

std::string_view ReadModeName(ReadMode mode);

/// Client-side session state backing the session guarantees of the
/// replicated store (ROADMAP open item 2: read-your-writes vs eventual
/// mode selection).
///
/// The session records the newest stamp it has written (`ObserveWrite`)
/// or read (`ObserveRead`) per key; `FloorFor` is the minimum version a
/// read-your-writes read of that key may return.  Observing reads as
/// well makes the guarantee cover monotonic reads: once a session saw
/// version v, it never goes back before v.
///
/// Not thread-safe: a session belongs to one logical client, like the
/// simulator callbacks that drive it.
class Session {
 public:
  /// Records that this session wrote (or learned of) version `v` of
  /// `key`.  Keeps the maximum.
  void ObserveWrite(std::string_view key, const WriteStamp& v);

  /// Records that this session read version `v` of `key` (monotonic
  /// reads).  Keeps the maximum.
  void ObserveRead(std::string_view key, const WriteStamp& v);

  /// The minimum acceptable version of `key` for this session (zero
  /// stamp when the key was never observed).
  WriteStamp FloorFor(std::string_view key) const;

  /// True when version `v` of `key` satisfies the session guarantee.
  bool Satisfies(std::string_view key, const WriteStamp& v) const;

  size_t tracked_keys() const { return floor_.size(); }
  void Reset() { floor_.clear(); }

 private:
  std::unordered_map<std::string, WriteStamp> floor_;
};

}  // namespace deluge::consistency

#endif  // DELUGE_CONSISTENCY_SESSION_H_
