#ifndef DELUGE_CONSISTENCY_PRIORITY_SCHEDULER_H_
#define DELUGE_CONSISTENCY_PRIORITY_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/qos.h"
#include "net/simulator.h"
#include "obs/metrics.h"

namespace deluge::net {
class Network;
}  // namespace deluge::net

namespace deluge::consistency {

/// One pending transmission.  The ordering class is the process-wide
/// `QosClass` taxonomy (Section IV-C: "more critical data can be
/// transmitted first before less critical data"): kRealtime = casualty
/// reports / live poses, kInteractive = user-facing responses,
/// kTelemetry = attribute refreshes, kBulk = media, map tiles, logs.
struct PendingUpdate {
  uint64_t id = 0;
  QosClass qos = QosClass::kTelemetry;
  uint64_t bytes = 0;
  Micros deadline = 0;  ///< absolute; 0 => none
  std::function<void(Micros delivered_at)> on_delivered;
};

/// Link-scheduling disciplines compared by E4.
enum class TxPolicy {
  kFifo,             ///< arrival order, class-blind
  kStrictPriority,   ///< realtime > interactive > telemetry > bulk,
                     ///< FIFO within a class
  kEdfWithinClass,   ///< strict priority; EDF ordering inside a class
};

/// Per-QoS-class delivery statistics.
struct ClassStats {
  Histogram latency;
  uint64_t delivered = 0;
  uint64_t deadline_misses = 0;
};

/// Serializes updates over one constrained link of `bandwidth` bytes/sec,
/// in virtual time.  Submissions enqueue; the scheduler transmits one
/// update at a time, choosing the next by policy.  This models the
/// military-exercise field link or a congested mobile edge, where the
/// ordering discipline decides whether critical data arrives in time.
class TransmissionScheduler {
 public:
  TransmissionScheduler(net::Simulator* sim, double bandwidth_bytes_per_sec,
                        TxPolicy policy);

  /// Enqueues `update` at the current virtual time.
  void Submit(PendingUpdate update);

  /// Registry-backed snapshot, refreshed on every call.
  const ClassStats& stats_for(QosClass c) const;
  uint64_t queued() const;
  uint64_t total_delivered() const;

 private:
  void MaybeStartTransmission();

  net::Simulator* sim_;
  double bandwidth_;
  TxPolicy policy_;
  bool busy_ = false;
  struct Item {
    PendingUpdate update;
    Micros enqueued_at;
    uint64_t seq;
  };
  std::deque<Item> queue_;
  uint64_t next_seq_ = 0;
  obs::StatsScope obs_{"txsched"};
  /// Per-class handles, labelled {qos=realtime|interactive|telemetry|bulk}.
  struct ClassMetrics {
    obs::ConcurrentHistogram* latency;
    obs::Counter* delivered;
    obs::Counter* deadline_misses;
  };
  ClassMetrics m_[kQosClassCount];
  mutable ClassStats snaps_[kQosClassCount];
};

}  // namespace deluge::consistency

#endif  // DELUGE_CONSISTENCY_PRIORITY_SCHEDULER_H_
