#include "consistency/lod.h"

#include <algorithm>

namespace deluge::consistency {

LodSelector::LodSelector(double low_utility_factor)
    : low_factor_(std::clamp(low_utility_factor, 0.0, 1.0)) {}

std::vector<LodChoice> LodSelector::Select(
    const std::vector<LodCandidate>& candidates,
    uint64_t budget_bytes) const {
  std::vector<LodChoice> out(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    out[i].id = candidates[i].id;
  }

  // Two-step greedy: first admit low-res versions by utility density,
  // then upgrade to full-res by marginal density, both under the budget.
  struct Step {
    size_t idx;
    uint64_t extra_bytes;
    double extra_utility;
    Resolution target;
  };
  std::vector<Step> steps;
  steps.reserve(candidates.size() * 2);
  for (size_t i = 0; i < candidates.size(); ++i) {
    const LodCandidate& c = candidates[i];
    double low_u = c.importance * low_factor_;
    steps.push_back({i, c.low_bytes, low_u, Resolution::kLow});
    if (c.full_bytes >= c.low_bytes) {
      steps.push_back({i, c.full_bytes - c.low_bytes,
                       c.importance - low_u, Resolution::kFull});
    }
  }
  std::sort(steps.begin(), steps.end(), [](const Step& a, const Step& b) {
    double da = a.extra_bytes == 0 ? 1e18
                                   : a.extra_utility / double(a.extra_bytes);
    double db = b.extra_bytes == 0 ? 1e18
                                   : b.extra_utility / double(b.extra_bytes);
    return da > db;
  });

  uint64_t used = 0;
  // Two passes: an upgrade step sorted ahead of its own low step is
  // skipped in pass 1 and reconsidered in pass 2 once the low step took.
  for (int pass = 0; pass < 2; ++pass) {
    for (const Step& s : steps) {
      if (s.target == Resolution::kFull &&
          out[s.idx].resolution != Resolution::kLow) {
        continue;  // upgrade only applies on top of the low version
      }
      if (s.target == Resolution::kLow &&
          out[s.idx].resolution != Resolution::kSkip) {
        continue;  // already admitted
      }
      if (used + s.extra_bytes > budget_bytes) continue;
      used += s.extra_bytes;
      out[s.idx].resolution = s.target;
      out[s.idx].bytes += s.extra_bytes;
      out[s.idx].utility += s.extra_utility;
    }
  }
  return out;
}

double LodSelector::TotalUtility(const std::vector<LodChoice>& choices) {
  double u = 0.0;
  for (const auto& c : choices) u += c.utility;
  return u;
}

uint64_t LodSelector::TotalBytes(const std::vector<LodChoice>& choices) {
  uint64_t b = 0;
  for (const auto& c : choices) b += c.bytes;
  return b;
}

}  // namespace deluge::consistency
