#ifndef DELUGE_CONSISTENCY_LOD_H_
#define DELUGE_CONSISTENCY_LOD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deluge::consistency {

/// Resolution levels for multimedia payloads (Section IV-C: "for
/// multimedia data, a low resolution image/video may be used instead").
enum class Resolution : uint8_t {
  kSkip = 0,  ///< do not transmit at all
  kLow = 1,
  kFull = 2,
};

/// One transmittable asset with per-resolution cost and an importance
/// score (e.g. the HDoV degree of visibility of the object it renders).
struct LodCandidate {
  uint64_t id = 0;
  uint64_t full_bytes = 0;
  uint64_t low_bytes = 0;
  double importance = 1.0;
};

/// One asset's selected resolution.
struct LodChoice {
  uint64_t id = 0;
  Resolution resolution = Resolution::kSkip;
  uint64_t bytes = 0;
  double utility = 0.0;
};

/// Budget-constrained resolution selection.
///
/// Given a byte budget (what the link can carry this tick) and a set of
/// candidates, picks a resolution per asset maximizing total utility,
/// where full resolution yields `importance` utility and low resolution
/// a fraction `low_utility_factor` of it.  Greedy by marginal
/// utility-per-byte — the classic fractional-knapsack heuristic, within
/// a factor of optimal for this structure and O(n log n).
class LodSelector {
 public:
  explicit LodSelector(double low_utility_factor = 0.4);

  /// Returns one choice per candidate (same order as input).  Total bytes
  /// of non-skip choices never exceed `budget_bytes`.
  std::vector<LodChoice> Select(const std::vector<LodCandidate>& candidates,
                                uint64_t budget_bytes) const;

  /// Total utility of a choice set.
  static double TotalUtility(const std::vector<LodChoice>& choices);
  static uint64_t TotalBytes(const std::vector<LodChoice>& choices);

 private:
  double low_factor_;
};

}  // namespace deluge::consistency

#endif  // DELUGE_CONSISTENCY_LOD_H_
