#include "consistency/coherency.h"

#include <algorithm>
#include <cmath>

namespace deluge::consistency {

CoherencyFilter::CoherencyFilter(CoherencyContract default_contract)
    : default_contract_(default_contract) {
  for (QosClass c : kAllQosClasses) {
    refresh_gap_us_[uint8_t(c)] =
        obs_.histogram("refresh_gap_us", {{"qos", QosClassName(c)}});
  }
}

const CoherencyStats& CoherencyFilter::stats() const {
  snapshot_.updates_offered = updates_offered_->Value();
  snapshot_.updates_sent = updates_sent_->Value();
  snapshot_.updates_suppressed = updates_suppressed_->Value();
  snapshot_.bytes_sent = bytes_sent_->Value();
  snapshot_.deviation_sum = deviation_sum_->Value();
  snapshot_.deviation_max = deviation_max_->Value();
  return snapshot_;
}

void CoherencyFilter::ResetStats() {
  updates_offered_->Reset();
  updates_sent_->Reset();
  updates_suppressed_->Reset();
  bytes_sent_->Reset();
  deviation_sum_->Reset();
  deviation_max_->Reset();
}

void CoherencyFilter::SetContract(uint64_t entity,
                                  const CoherencyContract& contract) {
  contracts_[entity] = contract;
}

const CoherencyContract& CoherencyFilter::ContractFor(uint64_t entity) const {
  auto it = contracts_.find(entity);
  return it == contracts_.end() ? default_contract_ : it->second;
}

bool CoherencyFilter::Decide(MirrorState& st, double deviation, Micros now,
                             const CoherencyContract& contract,
                             uint64_t bytes, QosClass qos) {
  updates_offered_->Add(1);
  bool must_send = !st.ever_sent || deviation > contract.value_bound ||
                   (now - st.last_sent_at) >= contract.max_staleness;
  if (must_send) {
    updates_sent_->Add(1);
    bytes_sent_->Add(bytes);
    if (st.ever_sent && now > st.last_sent_at) {
      // The staleness window this refresh closes: how old the mirror
      // was allowed to get, in virtual time (freshness SLO source).
      refresh_gap_us_[uint8_t(qos)]->Record(now - st.last_sent_at);
    }
    st.last_sent_at = now;
    st.ever_sent = true;
    return true;
  }
  updates_suppressed_->Add(1);
  deviation_sum_->Add(deviation);
  deviation_max_->UpdateMax(deviation);
  return false;
}

bool CoherencyFilter::Offer(uint64_t entity, const geo::Vec3& value,
                            Micros now, uint64_t bytes, QosClass qos) {
  MirrorState& st = states_[entity];
  double deviation =
      st.ever_sent ? geo::Distance(st.last_sent_vec, value) : 0.0;
  bool send = Decide(st, deviation, now, ContractFor(entity), bytes, qos);
  if (send) st.last_sent_vec = value;
  return send;
}

bool CoherencyFilter::OfferScalar(uint64_t entity, double value, Micros now,
                                  uint64_t bytes, QosClass qos) {
  MirrorState& st = states_[entity];
  double deviation =
      st.ever_sent ? std::fabs(st.last_sent_scalar - value) : 0.0;
  bool send = Decide(st, deviation, now, ContractFor(entity), bytes, qos);
  if (send) st.last_sent_scalar = value;
  return send;
}

bool CoherencyFilter::MirrorValue(uint64_t entity, geo::Vec3* out) const {
  auto it = states_.find(entity);
  if (it == states_.end() || !it->second.ever_sent) return false;
  *out = it->second.last_sent_vec;
  return true;
}

bool CoherencyFilter::ExtractEntity(uint64_t entity, MirrorState* out) {
  auto it = states_.find(entity);
  if (it == states_.end()) return false;
  *out = it->second;
  states_.erase(it);
  return true;
}

void CoherencyFilter::RestoreEntity(uint64_t entity,
                                    const MirrorState& state) {
  states_[entity] = state;
}

}  // namespace deluge::consistency
