#ifndef DELUGE_STREAM_TUPLE_H_
#define DELUGE_STREAM_TUPLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>

#include "common/clock.h"

namespace deluge::stream {

/// Which side of the metaverse a datum originates from.  Space-aware
/// operators and schedulers (Sections IV-F/IV-G) treat the two classes
/// differently — e.g. physical-space data outranks virtual-space data.
enum class Space : uint8_t {
  kPhysical = 0,
  kVirtual = 1,
};

/// A dynamically-typed field value.
using Value = std::variant<int64_t, double, std::string, bool>;

/// A schema-light stream record.
///
/// Metaverse streams are heterogeneous (sensor fixes, RFID reads, chat
/// events, inventory deltas), so tuples carry a field map rather than a
/// fixed schema; continuous queries bind the fields they need.  `key`
/// names the entity the tuple describes (device id, shopper id, …).
struct Tuple {
  Micros event_time = 0;
  Space space = Space::kPhysical;
  std::string key;
  std::unordered_map<std::string, Value> fields;

  /// Typed field access; std::nullopt when absent or wrong type.
  template <typename T>
  std::optional<T> Get(const std::string& name) const {
    auto it = fields.find(name);
    if (it == fields.end()) return std::nullopt;
    if (const T* v = std::get_if<T>(&it->second)) return *v;
    return std::nullopt;
  }

  /// Numeric access with int64->double promotion.
  std::optional<double> GetNumeric(const std::string& name) const {
    auto it = fields.find(name);
    if (it == fields.end()) return std::nullopt;
    if (const double* d = std::get_if<double>(&it->second)) return *d;
    if (const int64_t* i = std::get_if<int64_t>(&it->second)) {
      return double(*i);
    }
    return std::nullopt;
  }

  Tuple& Set(const std::string& name, Value v) {
    fields[name] = std::move(v);
    return *this;
  }
};

}  // namespace deluge::stream

#endif  // DELUGE_STREAM_TUPLE_H_
