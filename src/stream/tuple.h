#ifndef DELUGE_STREAM_TUPLE_H_
#define DELUGE_STREAM_TUPLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

#include "common/buffer.h"
#include "common/clock.h"
#include "common/qos.h"
#include "common/small_vec.h"

namespace deluge::stream {

/// Which side of the metaverse a datum originates from.  Space-aware
/// operators and schedulers (Sections IV-F/IV-G) treat the two classes
/// differently — e.g. physical-space data outranks virtual-space data.
enum class Space : uint8_t {
  kPhysical = 0,
  kVirtual = 1,
};

/// A dynamically-typed field value.
using Value = std::variant<int64_t, double, std::string, bool>;

/// Process-wide interned field-name table (DESIGN.md §10).
///
/// Field names repeat across millions of tuples ("x", "entity",
/// "temperature"…), so tuples store a 4-byte id instead of a string.
/// `Intern` assigns ids (insert-if-absent, for writers); `Find` is the
/// non-inserting lookup used by read paths, so probing for an absent
/// field never grows the table.  Ids are process-local — the wire
/// encoding carries names, not ids.  Thread-safe; interned names are
/// never freed (the table is append-only and bounded by schema size).
class FieldTable {
 public:
  using Id = uint32_t;

  static Id Intern(std::string_view name);
  /// Id for `name` if already interned, std::nullopt otherwise.
  static std::optional<Id> Find(std::string_view name);
  /// Name for an id; empty string for an id never handed out.
  static const std::string& Name(Id id);
  /// Number of interned names.
  static size_t size();
};

using FieldId = FieldTable::Id;

/// A schema-light stream record.
///
/// Metaverse streams are heterogeneous (sensor fixes, RFID reads, chat
/// events, inventory deltas), so tuples carry dynamic fields; continuous
/// queries bind the fields they need.  `key` names the entity the tuple
/// describes (device id, shopper id, …).
///
/// Layout: a flat inline vector of (FieldId, Value) slots — one
/// contiguous block for ≤8 fields, scanned linearly (interned-id
/// compare, no hashing) and copied without rehashing.  The previous
/// representation was an `unordered_map<std::string, Value>`, which
/// cost ~7 allocations per copy on the fan-out path (see E21).
class Tuple {
 public:
  struct Field {
    FieldId id = 0;
    Value value;
  };
  using Fields = common::SmallVec<Field, 8>;

  Micros event_time = 0;
  Space space = Space::kPhysical;
  /// Service class (DESIGN.md §13).  Shares the space wire byte
  /// (bit 0 = space, bits 1.. = QoS tag) so legacy encodings — which
  /// only ever wrote 0 or 1 — decode unchanged as kBulk.
  QosClass qos = QosClass::kBulk;
  std::string key;

  /// Typed field access; std::nullopt when absent or wrong type.
  template <typename T>
  std::optional<T> Get(std::string_view name) const {
    const Value* v = FindByName(name);
    if (v == nullptr) return std::nullopt;
    if (const T* t = std::get_if<T>(v)) return *t;
    return std::nullopt;
  }
  template <typename T>
  std::optional<T> Get(FieldId id) const {
    const Value* v = Find(id);
    if (v == nullptr) return std::nullopt;
    if (const T* t = std::get_if<T>(v)) return *t;
    return std::nullopt;
  }

  /// Numeric access with int64->double promotion.
  std::optional<double> GetNumeric(std::string_view name) const {
    return AsNumeric(FindByName(name));
  }
  std::optional<double> GetNumeric(FieldId id) const {
    return AsNumeric(Find(id));
  }

  /// Sets (inserting or overwriting) a field.  The name overload
  /// interns; hot paths should intern once and use the id overload.
  Tuple& Set(std::string_view name, Value v) {
    return Set(FieldTable::Intern(name), std::move(v));
  }
  Tuple& Set(FieldId id, Value v);

  /// The flat field slots, in insertion order.
  const Fields& fields() const { return fields_; }
  size_t field_count() const { return fields_.size(); }
  bool has_field(std::string_view name) const {
    return FindByName(name) != nullptr;
  }

  /// Pointer to the value slot, nullptr when absent.
  const Value* Find(FieldId id) const;
  /// Non-interning lookup by name.
  const Value* FindByName(std::string_view name) const;

  // ---- Flat wire encoding (names on the wire, ids in memory) ----
  /// Exact encoded size in bytes.
  size_t EncodedSize() const;
  /// Appends the encoding to `dst`.
  void EncodeTo(std::string* dst) const;
  /// Serialises once into a refcounted Buffer (exact-size arena slab).
  common::Buffer Encode() const;
  /// Parses a full encoding; false on malformed input.
  static bool Decode(common::Slice in, Tuple* out);
  /// Parses one tuple from the front of `*cursor` (for embedding in a
  /// larger frame, e.g. the Event wire form).
  static bool DecodeFrom(std::string_view* cursor, Tuple* out);

 private:
  static std::optional<double> AsNumeric(const Value* v) {
    if (v == nullptr) return std::nullopt;
    if (const double* d = std::get_if<double>(v)) return *d;
    if (const int64_t* i = std::get_if<int64_t>(v)) return double(*i);
    return std::nullopt;
  }

  Fields fields_;
};

}  // namespace deluge::stream

#endif  // DELUGE_STREAM_TUPLE_H_
