#ifndef DELUGE_STREAM_CONTINUOUS_QUERY_H_
#define DELUGE_STREAM_CONTINUOUS_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/qos.h"
#include "stream/operators.h"

namespace deluge::stream {

/// Quality-of-service contract of a continuous query (Section IV-C:
/// "schedule multiple (continuous) queries that meet different QoS
/// metrics").  The importance axis is the process-wide `QosClass`
/// taxonomy (DESIGN.md §13) — the scheduler derives its weight from the
/// class's policy row instead of a free-floating per-query number.
struct QosSpec {
  /// The query's service class; orders queries under kClassAware and
  /// supplies the fair-share weight under kWeighted.
  QosClass cls = QosClass::kInteractive;
  /// Soft latency target from tuple arrival to sink output.
  Micros deadline = 100 * kMicrosPerMilli;

  /// Fair-share weight from the class policy row.
  double weight() const { return QosPolicy::Default().target(cls).weight; }
};

/// A standing dataflow: a linear pipeline of operators with a sink.
///
/// Tuples pushed into the query traverse every operator; whatever reaches
/// the end goes to the sink callback.  `cost_per_tuple` models the CPU
/// cost the scheduler charges per input tuple (simulation currency).
class ContinuousQuery {
 public:
  ContinuousQuery(std::string id, QosSpec qos,
                  Micros cost_per_tuple = 50);

  ContinuousQuery(const ContinuousQuery&) = delete;
  ContinuousQuery& operator=(const ContinuousQuery&) = delete;

  /// Appends an operator to the pipeline (builder style).
  ContinuousQuery& Add(std::unique_ptr<Operator> op);

  /// Sets the terminal callback.
  ContinuousQuery& Sink(Emit sink);

  /// Runs one tuple through the whole pipeline synchronously.
  void Push(const Tuple& t);

  /// Flushes operator state (window tails) through the pipeline.
  void Flush();

  const std::string& id() const { return id_; }
  const QosSpec& qos() const { return qos_; }
  Micros cost_per_tuple() const { return cost_per_tuple_; }
  uint64_t tuples_in() const { return tuples_in_; }
  uint64_t tuples_out() const { return tuples_out_; }

 private:
  void Run(size_t stage, const Tuple& t);

  std::string id_;
  QosSpec qos_;
  Micros cost_per_tuple_;
  std::vector<std::unique_ptr<Operator>> ops_;
  Emit sink_;
  uint64_t tuples_in_ = 0;
  uint64_t tuples_out_ = 0;
};

}  // namespace deluge::stream

#endif  // DELUGE_STREAM_CONTINUOUS_QUERY_H_
