#ifndef DELUGE_STREAM_SCHEDULER_H_
#define DELUGE_STREAM_SCHEDULER_H_

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/histogram.h"
#include "obs/metrics.h"
#include "stream/continuous_query.h"

namespace deluge::stream {

/// Policies for ordering tuple processing across continuous queries.
enum class SchedulingPolicy {
  kRoundRobin,   ///< cycle queries, one tuple each
  kFifo,         ///< global arrival order
  kEdf,          ///< earliest absolute deadline first
  kLeastSlack,   ///< minimum (deadline - now - cost) first
  kWeighted,     ///< age x class-weight priority (aged weighted fair)
  kClassAware,   ///< best QosClass first (physical-space breaks ties),
                 ///< FIFO within a class
};

std::string PolicyName(SchedulingPolicy policy);

/// Per-query outcome statistics.
struct QueryStats {
  Histogram latency;          ///< arrival -> completion, micros
  uint64_t processed = 0;
  uint64_t deadline_misses = 0;
};

/// A single-core multi-query stream scheduler over virtual time.
///
/// Models the shared-resource problem of Section IV-C/IV-G: many standing
/// queries with heterogeneous QoS contend for one executor; the policy
/// decides who runs next.  Each tuple processed advances the clock by the
/// owning query's `cost_per_tuple` (the simulation's CPU currency).
class StreamScheduler {
 public:
  StreamScheduler(SimClock* clock, SchedulingPolicy policy);

  /// Registers a query; the scheduler does not take ownership.
  void Register(ContinuousQuery* query);

  /// Queues `t` for `query_id` with arrival time = now.
  /// Unknown ids are ignored (counted in `dropped`).
  void Enqueue(const std::string& query_id, Tuple t);

  /// Processes queued tuples until all queues are empty.  Returns the
  /// number of tuples processed.
  size_t RunUntilDrained();

  /// Processes at most one tuple; false when idle.
  bool Step();

  /// Registry-backed snapshot, refreshed on every call.
  const QueryStats& stats_for(const std::string& query_id) const;

  /// Aggregate over all queries.
  QueryStats TotalStats() const;

  uint64_t dropped() const { return dropped_->Value(); }
  size_t pending() const;

 private:
  struct Item {
    Tuple tuple;
    Micros arrival;
    uint64_t seq;
  };
  struct QueryState {
    ContinuousQuery* query;
    std::deque<Item> queue;
    // Registry handles, labelled {query=<id>}.
    obs::ConcurrentHistogram* latency = nullptr;
    obs::Counter* processed = nullptr;
    obs::Counter* deadline_misses = nullptr;
    mutable QueryStats snapshot;
  };

  /// Index into queries_ of the next queue to pop, or -1 if all empty.
  int PickNext() const;

  SimClock* clock_;
  SchedulingPolicy policy_;
  std::vector<QueryState> queries_;
  std::map<std::string, size_t> by_id_;
  size_t rr_cursor_ = 0;
  uint64_t next_seq_ = 0;
  obs::StatsScope obs_{"stream"};
  obs::Counter* dropped_ = obs_.counter("dropped");
  // Per-class processing latency, indexed by uint8_t(QosClass) — the
  // query-layer hop of the end-to-end {qos=...} accounting.
  obs::ConcurrentHistogram* class_latency_us_[kQosClassCount] = {};
};

}  // namespace deluge::stream

#endif  // DELUGE_STREAM_SCHEDULER_H_
