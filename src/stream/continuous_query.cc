#include "stream/continuous_query.h"

namespace deluge::stream {

ContinuousQuery::ContinuousQuery(std::string id, QosSpec qos,
                                 Micros cost_per_tuple)
    : id_(std::move(id)), qos_(qos), cost_per_tuple_(cost_per_tuple) {}

ContinuousQuery& ContinuousQuery::Add(std::unique_ptr<Operator> op) {
  ops_.push_back(std::move(op));
  return *this;
}

ContinuousQuery& ContinuousQuery::Sink(Emit sink) {
  sink_ = std::move(sink);
  return *this;
}

void ContinuousQuery::Run(size_t stage, const Tuple& t) {
  if (stage == ops_.size()) {
    ++tuples_out_;
    if (sink_) sink_(t);
    return;
  }
  ops_[stage]->Process(
      t, [this, stage](const Tuple& out) { Run(stage + 1, out); });
}

void ContinuousQuery::Push(const Tuple& t) {
  ++tuples_in_;
  Run(0, t);
}

void ContinuousQuery::Flush() {
  for (size_t stage = 0; stage < ops_.size(); ++stage) {
    ops_[stage]->Flush(
        [this, stage](const Tuple& out) { Run(stage + 1, out); });
  }
}

}  // namespace deluge::stream
