#include "stream/scheduler.h"

#include <limits>

namespace deluge::stream {

std::string PolicyName(SchedulingPolicy policy) {
  switch (policy) {
    case SchedulingPolicy::kRoundRobin:
      return "round-robin";
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kEdf:
      return "edf";
    case SchedulingPolicy::kLeastSlack:
      return "least-slack";
    case SchedulingPolicy::kWeighted:
      return "weighted";
    case SchedulingPolicy::kClassAware:
      return "class-aware";
  }
  return "unknown";
}

StreamScheduler::StreamScheduler(SimClock* clock, SchedulingPolicy policy)
    : clock_(clock), policy_(policy) {
  for (QosClass c : kAllQosClasses) {
    class_latency_us_[uint8_t(c)] =
        obs_.histogram("latency_us", {{"qos", QosClassName(c)}});
  }
}

void StreamScheduler::Register(ContinuousQuery* query) {
  by_id_[query->id()] = queries_.size();
  QueryState qs;
  qs.query = query;
  obs::Labels labels{{"query", query->id()}};
  qs.latency = obs_.histogram("latency_us", labels);
  qs.processed = obs_.counter("processed", labels);
  qs.deadline_misses = obs_.counter("deadline_misses", labels);
  queries_.push_back(std::move(qs));
}

void StreamScheduler::Enqueue(const std::string& query_id, Tuple t) {
  auto it = by_id_.find(query_id);
  if (it == by_id_.end()) {
    dropped_->Add(1);
    return;
  }
  queries_[it->second].queue.push_back(
      Item{std::move(t), clock_->NowMicros(), next_seq_++});
}

size_t StreamScheduler::pending() const {
  size_t n = 0;
  for (const auto& q : queries_) n += q.queue.size();
  return n;
}

int StreamScheduler::PickNext() const {
  const Micros now = clock_->NowMicros();
  int best = -1;
  double best_score = std::numeric_limits<double>::infinity();

  switch (policy_) {
    case SchedulingPolicy::kRoundRobin: {
      for (size_t off = 0; off < queries_.size(); ++off) {
        size_t i = (rr_cursor_ + off) % queries_.size();
        if (!queries_[i].queue.empty()) return int(i);
      }
      return -1;
    }
    case SchedulingPolicy::kFifo: {
      uint64_t best_seq = std::numeric_limits<uint64_t>::max();
      for (size_t i = 0; i < queries_.size(); ++i) {
        const auto& q = queries_[i];
        if (!q.queue.empty() && q.queue.front().seq < best_seq) {
          best_seq = q.queue.front().seq;
          best = int(i);
        }
      }
      return best;
    }
    case SchedulingPolicy::kEdf: {
      for (size_t i = 0; i < queries_.size(); ++i) {
        const auto& q = queries_[i];
        if (q.queue.empty()) continue;
        double deadline =
            double(q.queue.front().arrival + q.query->qos().deadline);
        if (deadline < best_score) {
          best_score = deadline;
          best = int(i);
        }
      }
      return best;
    }
    case SchedulingPolicy::kLeastSlack: {
      for (size_t i = 0; i < queries_.size(); ++i) {
        const auto& q = queries_[i];
        if (q.queue.empty()) continue;
        double slack =
            double(q.queue.front().arrival + q.query->qos().deadline - now -
                   q.query->cost_per_tuple());
        if (slack < best_score) {
          best_score = slack;
          best = int(i);
        }
      }
      return best;
    }
    case SchedulingPolicy::kWeighted: {
      // Maximize age * weight => minimize the negation.
      for (size_t i = 0; i < queries_.size(); ++i) {
        const auto& q = queries_[i];
        if (q.queue.empty()) continue;
        double age = double(now - q.queue.front().arrival) + 1.0;
        double score = -age * q.query->qos().weight();
        if (score < best_score) {
          best_score = score;
          best = int(i);
        }
      }
      return best;
    }
    case SchedulingPolicy::kClassAware: {
      // Best QoS class first (tuple-level, so one query's kRealtime
      // tuples outrank another's kBulk); physical-space origin breaks
      // class ties (Section IV-G); FIFO inside a (class, space) pair.
      uint64_t best_seq = std::numeric_limits<uint64_t>::max();
      int best_rank = -1;
      bool best_physical = false;
      for (size_t i = 0; i < queries_.size(); ++i) {
        const auto& q = queries_[i];
        if (q.queue.empty()) continue;
        const Item& item = q.queue.front();
        int rank = QosRank(item.tuple.qos);
        bool physical = item.tuple.space == Space::kPhysical;
        bool better = rank > best_rank ||
                      (rank == best_rank &&
                       ((physical && !best_physical) ||
                        (physical == best_physical && item.seq < best_seq)));
        if (better) {
          best_rank = rank;
          best_physical = physical;
          best_seq = item.seq;
          best = int(i);
        }
      }
      return best;
    }
  }
  return best;
}

bool StreamScheduler::Step() {
  int idx = PickNext();
  if (idx < 0) return false;
  QueryState& q = queries_[size_t(idx)];
  Item item = std::move(q.queue.front());
  q.queue.pop_front();
  if (policy_ == SchedulingPolicy::kRoundRobin) {
    rr_cursor_ = (size_t(idx) + 1) % queries_.size();
  }
  clock_->Advance(q.query->cost_per_tuple());
  q.query->Push(item.tuple);
  Micros latency = clock_->NowMicros() - item.arrival;
  q.latency->Record(latency);
  class_latency_us_[uint8_t(item.tuple.qos)]->Record(latency);
  q.processed->Add(1);
  if (latency > q.query->qos().deadline) q.deadline_misses->Add(1);
  return true;
}

size_t StreamScheduler::RunUntilDrained() {
  size_t n = 0;
  while (Step()) ++n;
  return n;
}

const QueryStats& StreamScheduler::stats_for(
    const std::string& query_id) const {
  static const QueryStats& kEmpty = *new QueryStats();
  auto it = by_id_.find(query_id);
  if (it == by_id_.end()) return kEmpty;
  const QueryState& q = queries_[it->second];
  q.snapshot.latency = q.latency->Snapshot();
  q.snapshot.processed = q.processed->Value();
  q.snapshot.deadline_misses = q.deadline_misses->Value();
  return q.snapshot;
}

QueryStats StreamScheduler::TotalStats() const {
  QueryStats total;
  for (const auto& q : queries_) {
    total.latency.Merge(q.latency->Snapshot());
    total.processed += q.processed->Value();
    total.deadline_misses += q.deadline_misses->Value();
  }
  return total;
}

}  // namespace deluge::stream
