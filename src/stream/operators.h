#ifndef DELUGE_STREAM_OPERATORS_H_
#define DELUGE_STREAM_OPERATORS_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stream/tuple.h"

namespace deluge::stream {

/// Downstream emission callback.
using Emit = std::function<void(const Tuple&)>;

/// A push-based stream operator.  `Process` consumes one tuple and emits
/// zero or more; `Flush` releases any state held back for completeness
/// (window tails, join buffers) at stream end.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual void Process(const Tuple& t, const Emit& emit) = 0;
  virtual void Flush(const Emit& emit) { (void)emit; }
  virtual std::string name() const = 0;
};

/// Stateless predicate filter.
class FilterOp : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;
  explicit FilterOp(Predicate pred) : pred_(std::move(pred)) {}
  void Process(const Tuple& t, const Emit& emit) override {
    if (pred_(t)) emit(t);
  }
  std::string name() const override { return "filter"; }

 private:
  Predicate pred_;
};

/// Stateless transformation (may change key/fields, not multiplicity).
class MapOp : public Operator {
 public:
  using Fn = std::function<Tuple(const Tuple&)>;
  explicit MapOp(Fn fn) : fn_(std::move(fn)) {}
  void Process(const Tuple& t, const Emit& emit) override { emit(fn_(t)); }
  std::string name() const override { return "map"; }

 private:
  Fn fn_;
};

/// Supported window aggregation functions.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

/// Tumbling event-time window aggregation grouped by tuple key.
///
/// Windows close when the watermark (max event time seen minus
/// `allowed_lateness`) passes their end; each closed window emits one
/// tuple per key with fields "agg" (the result) and "window_start".
/// Late tuples for closed windows are dropped and counted.
class WindowAggregateOp : public Operator {
 public:
  /// Aggregates `field` with `fn` over windows of `window` micros.
  WindowAggregateOp(Micros window, AggFn fn, std::string field,
                    Micros allowed_lateness = 0);

  void Process(const Tuple& t, const Emit& emit) override;
  void Flush(const Emit& emit) override;
  std::string name() const override { return "window-agg"; }

  uint64_t late_dropped() const { return late_dropped_; }

 private:
  struct Accum {
    double sum = 0;
    double min = 0;
    double max = 0;
    uint64_t count = 0;
    Space space = Space::kPhysical;
  };

  void EmitWindow(Micros window_start, const Emit& emit);
  double Finalize(const Accum& a) const;

  Micros window_;
  AggFn fn_;
  std::string field_;
  Micros lateness_;
  Micros watermark_ = INT64_MIN;
  // window start -> key -> accumulator
  std::map<Micros, std::map<std::string, Accum>> windows_;
  uint64_t late_dropped_ = 0;
};

/// Symmetric windowed hash join on tuple key.
///
/// Keeps a sliding buffer of `window` micros per side; each arriving
/// tuple probes the opposite buffer and emits merged tuples (right-side
/// fields prefixed with `right_prefix` on conflict).
class WindowJoinOp : public Operator {
 public:
  /// Tuples are routed to sides by `side_of` (0 = left, 1 = right).
  WindowJoinOp(Micros window, std::function<int(const Tuple&)> side_of,
               std::string right_prefix = "r_");

  void Process(const Tuple& t, const Emit& emit) override;
  std::string name() const override { return "window-join"; }

  size_t buffered() const { return left_.size() + right_.size(); }

 private:
  void Expire(Micros now);

  Micros window_;
  std::function<int(const Tuple&)> side_of_;
  std::string right_prefix_;
  std::deque<Tuple> left_;
  std::deque<Tuple> right_;
};

/// User-defined interpolation of sensor readings (Section IV-G: "sensor
/// data may have to be interpolated ... for them to be consumed by the
/// virtual space").  Emits, for each arriving tuple, additional synthetic
/// tuples linearly interpolated between the previous and current reading
/// of the same key when the gap exceeds `max_gap`.
class InterpolateOp : public Operator {
 public:
  InterpolateOp(std::string field, Micros max_gap, Micros step);
  void Process(const Tuple& t, const Emit& emit) override;
  std::string name() const override { return "interpolate"; }

  uint64_t synthesized() const { return synthesized_; }

 private:
  std::string field_;
  Micros max_gap_;
  Micros step_;
  std::unordered_map<std::string, Tuple> last_;
  uint64_t synthesized_ = 0;
};

}  // namespace deluge::stream

#endif  // DELUGE_STREAM_OPERATORS_H_
