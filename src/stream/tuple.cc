#include "stream/tuple.h"

#include <cstring>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "storage/format.h"

namespace deluge::stream {

// --------------------------------------------------------------- FieldTable

namespace {

/// Append-only intern table.  Names live in a deque so pointers handed
/// out by `Name` stay stable across growth; reads take a shared lock.
struct InternTable {
  std::shared_mutex mu;
  std::unordered_map<std::string_view, FieldTable::Id> ids;  // keys -> names_
  std::deque<std::string> names;

  static InternTable& Instance() {
    static InternTable* t = new InternTable();  // leaked: process-wide
    return *t;
  }
};

const std::string& EmptyName() {
  static const std::string empty;
  return empty;
}

}  // namespace

FieldTable::Id FieldTable::Intern(std::string_view name) {
  InternTable& t = InternTable::Instance();
  {
    std::shared_lock<std::shared_mutex> read(t.mu);
    auto it = t.ids.find(name);
    if (it != t.ids.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> write(t.mu);
  auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;  // raced: someone else won
  Id id = Id(t.names.size());
  t.names.emplace_back(name);
  t.ids.emplace(std::string_view(t.names.back()), id);
  return id;
}

std::optional<FieldTable::Id> FieldTable::Find(std::string_view name) {
  InternTable& t = InternTable::Instance();
  std::shared_lock<std::shared_mutex> read(t.mu);
  auto it = t.ids.find(name);
  if (it == t.ids.end()) return std::nullopt;
  return it->second;
}

const std::string& FieldTable::Name(Id id) {
  InternTable& t = InternTable::Instance();
  std::shared_lock<std::shared_mutex> read(t.mu);
  if (id >= t.names.size()) return EmptyName();
  return t.names[id];  // deque: stable reference past unlock
}

size_t FieldTable::size() {
  InternTable& t = InternTable::Instance();
  std::shared_lock<std::shared_mutex> read(t.mu);
  return t.names.size();
}

// -------------------------------------------------------------------- Tuple

Tuple& Tuple::Set(FieldId id, Value v) {
  for (Field& f : fields_) {
    if (f.id == id) {
      f.value = std::move(v);
      return *this;
    }
  }
  fields_.emplace_back(Field{id, std::move(v)});
  return *this;
}

const Value* Tuple::Find(FieldId id) const {
  for (const Field& f : fields_) {
    if (f.id == id) return &f.value;
  }
  return nullptr;
}

const Value* Tuple::FindByName(std::string_view name) const {
  // Non-interning: an absent name must not grow the process-wide table
  // (predicates routinely probe fields the tuple doesn't carry).
  std::optional<FieldId> id = FieldTable::Find(name);
  if (!id.has_value()) return nullptr;
  return Find(*id);
}

// Wire format (little-endian, storage/format.h conventions):
//   fixed64 event_time | u8 space_qos | varint32 key_len | key
//   | varint32 field_count
//   | per field: varint32 name_len | name | u8 type | value
// space_qos packs bit 0 = Space and bits 1.. = QosWireTag(qos); legacy
// encoders wrote only 0/1 here, which decodes as (space, kBulk).
// Value encodings by type tag (= variant index):
//   0 int64  -> fixed64    1 double -> fixed64 (bit pattern)
//   2 string -> varint32 len + bytes              3 bool -> u8

namespace {

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

size_t ValueEncodedSize(const Value& v) {
  switch (v.index()) {
    case 0:
    case 1:
      return 8;
    case 2: {
      const std::string& s = std::get<std::string>(v);
      return VarintLen(s.size()) + s.size();
    }
    default:
      return 1;
  }
}

}  // namespace

size_t Tuple::EncodedSize() const {
  size_t n = 8 + 1 + VarintLen(key.size()) + key.size() +
             VarintLen(fields_.size());
  for (const Field& f : fields_) {
    const std::string& name = FieldTable::Name(f.id);
    n += VarintLen(name.size()) + name.size() + 1 + ValueEncodedSize(f.value);
  }
  return n;
}

void Tuple::EncodeTo(std::string* dst) const {
  using storage::PutFixed64;
  using storage::PutLengthPrefixed;
  using storage::PutVarint32;
  PutFixed64(dst, uint64_t(event_time));
  dst->push_back(char(uint8_t(space) | uint8_t(QosWireTag(qos) << 1)));
  PutLengthPrefixed(dst, key);
  PutVarint32(dst, uint32_t(fields_.size()));
  for (const Field& f : fields_) {
    PutLengthPrefixed(dst, FieldTable::Name(f.id));
    dst->push_back(char(uint8_t(f.value.index())));
    switch (f.value.index()) {
      case 0:
        PutFixed64(dst, uint64_t(std::get<int64_t>(f.value)));
        break;
      case 1: {
        uint64_t bits;
        double d = std::get<double>(f.value);
        std::memcpy(&bits, &d, 8);
        PutFixed64(dst, bits);
        break;
      }
      case 2:
        PutLengthPrefixed(dst, std::get<std::string>(f.value));
        break;
      default:
        dst->push_back(std::get<bool>(f.value) ? char(1) : char(0));
        break;
    }
  }
}

common::Buffer Tuple::Encode() const {
  // One exact-size allocation; callers share the result by refcount.
  std::string wire;
  wire.reserve(EncodedSize());
  EncodeTo(&wire);
  return common::Buffer(std::move(wire));
}

bool Tuple::DecodeFrom(std::string_view* cursor, Tuple* out) {
  using storage::GetFixed64;
  using storage::GetLengthPrefixed;
  using storage::GetVarint32;
  uint64_t time_bits = 0;
  if (!GetFixed64(cursor, &time_bits)) return false;
  out->event_time = Micros(time_bits);
  if (cursor->empty()) return false;
  uint8_t space_byte = uint8_t(cursor->front());
  out->space = Space(space_byte & 1);
  // Unknown future tags degrade to kBulk rather than failing decode.
  out->qos = QosFromWireTag(uint8_t(space_byte >> 1));
  cursor->remove_prefix(1);
  std::string_view key;
  if (!GetLengthPrefixed(cursor, &key)) return false;
  out->key.assign(key);
  uint32_t count = 0;
  if (!GetVarint32(cursor, &count)) return false;
  out->fields_.clear();
  out->fields_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(cursor, &name)) return false;
    if (cursor->empty()) return false;
    uint8_t type = uint8_t(cursor->front());
    cursor->remove_prefix(1);
    Value value;
    switch (type) {
      case 0: {
        uint64_t bits = 0;
        if (!GetFixed64(cursor, &bits)) return false;
        value = int64_t(bits);
        break;
      }
      case 1: {
        uint64_t bits = 0;
        if (!GetFixed64(cursor, &bits)) return false;
        double d;
        std::memcpy(&d, &bits, 8);
        value = d;
        break;
      }
      case 2: {
        std::string_view s;
        if (!GetLengthPrefixed(cursor, &s)) return false;
        value = std::string(s);
        break;
      }
      case 3: {
        if (cursor->empty()) return false;
        value = cursor->front() != 0;
        cursor->remove_prefix(1);
        break;
      }
      default:
        return false;
    }
    out->fields_.emplace_back(Field{FieldTable::Intern(name), std::move(value)});
  }
  return true;
}

bool Tuple::Decode(common::Slice in, Tuple* out) {
  std::string_view cursor = in.view();
  return DecodeFrom(&cursor, out) && cursor.empty();
}

}  // namespace deluge::stream
