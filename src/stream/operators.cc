#include "stream/operators.h"

#include <algorithm>
#include <limits>

namespace deluge::stream {

// ------------------------------------------------------ WindowAggregateOp

WindowAggregateOp::WindowAggregateOp(Micros window, AggFn fn,
                                     std::string field,
                                     Micros allowed_lateness)
    : window_(window > 0 ? window : 1),
      fn_(fn),
      field_(std::move(field)),
      lateness_(allowed_lateness) {}

void WindowAggregateOp::Process(const Tuple& t, const Emit& emit) {
  Micros start = (t.event_time / window_) * window_;
  if (t.event_time < 0) start -= window_;  // floor for negatives

  // Late data: window already closed by the watermark.
  if (watermark_ != INT64_MIN && start + window_ <= watermark_) {
    ++late_dropped_;
    return;
  }

  Accum& a = windows_[start][t.key];
  double v = t.GetNumeric(field_).value_or(0.0);
  if (a.count == 0) {
    a.min = v;
    a.max = v;
    a.space = t.space;
  }
  a.sum += v;
  a.min = std::min(a.min, v);
  a.max = std::max(a.max, v);
  ++a.count;

  // Advance the watermark and close finished windows.
  watermark_ = std::max(watermark_, t.event_time - lateness_);
  while (!windows_.empty()) {
    Micros first_start = windows_.begin()->first;
    if (first_start + window_ > watermark_) break;
    EmitWindow(first_start, emit);
  }
}

double WindowAggregateOp::Finalize(const Accum& a) const {
  switch (fn_) {
    case AggFn::kCount:
      return double(a.count);
    case AggFn::kSum:
      return a.sum;
    case AggFn::kAvg:
      return a.count > 0 ? a.sum / double(a.count) : 0.0;
    case AggFn::kMin:
      return a.min;
    case AggFn::kMax:
      return a.max;
  }
  return 0.0;
}

void WindowAggregateOp::EmitWindow(Micros window_start, const Emit& emit) {
  auto it = windows_.find(window_start);
  if (it == windows_.end()) return;
  for (const auto& [key, accum] : it->second) {
    Tuple out;
    out.event_time = window_start + window_;
    out.space = accum.space;
    out.key = key;
    out.Set("agg", Finalize(accum));
    out.Set("window_start", int64_t(window_start));
    out.Set("count", int64_t(accum.count));
    emit(out);
  }
  windows_.erase(it);
}

void WindowAggregateOp::Flush(const Emit& emit) {
  while (!windows_.empty()) {
    EmitWindow(windows_.begin()->first, emit);
  }
}

// ---------------------------------------------------------- WindowJoinOp

WindowJoinOp::WindowJoinOp(Micros window,
                           std::function<int(const Tuple&)> side_of,
                           std::string right_prefix)
    : window_(window > 0 ? window : 1),
      side_of_(std::move(side_of)),
      right_prefix_(std::move(right_prefix)) {}

void WindowJoinOp::Expire(Micros now) {
  auto too_old = [&](const Tuple& t) {
    return t.event_time + window_ < now;
  };
  while (!left_.empty() && too_old(left_.front())) left_.pop_front();
  while (!right_.empty() && too_old(right_.front())) right_.pop_front();
}

void WindowJoinOp::Process(const Tuple& t, const Emit& emit) {
  Expire(t.event_time);
  int side = side_of_(t);
  const std::deque<Tuple>& probe = (side == 0) ? right_ : left_;
  for (const Tuple& other : probe) {
    if (other.key != t.key) continue;
    const Tuple& left = (side == 0) ? t : other;
    const Tuple& right = (side == 0) ? other : t;
    Tuple joined = left;
    joined.event_time = std::max(left.event_time, right.event_time);
    for (const Tuple::Field& f : right.fields()) {
      if (joined.Find(f.id) != nullptr) {
        // Name collision with the left side: prefix the right field.
        joined.Set(right_prefix_ + FieldTable::Name(f.id), f.value);
      } else {
        joined.Set(f.id, f.value);
      }
    }
    emit(joined);
  }
  ((side == 0) ? left_ : right_).push_back(t);
}

// --------------------------------------------------------- InterpolateOp

InterpolateOp::InterpolateOp(std::string field, Micros max_gap, Micros step)
    : field_(std::move(field)),
      max_gap_(max_gap > 0 ? max_gap : 1),
      step_(step > 0 ? step : 1) {}

void InterpolateOp::Process(const Tuple& t, const Emit& emit) {
  auto it = last_.find(t.key);
  if (it != last_.end()) {
    const Tuple& prev = it->second;
    Micros gap = t.event_time - prev.event_time;
    if (gap > max_gap_) {
      auto v0 = prev.GetNumeric(field_);
      auto v1 = t.GetNumeric(field_);
      if (v0 && v1) {
        for (Micros ts = prev.event_time + step_; ts < t.event_time;
             ts += step_) {
          double f = double(ts - prev.event_time) / double(gap);
          Tuple synth = prev;
          synth.event_time = ts;
          synth.Set(field_, *v0 + f * (*v1 - *v0));
          synth.Set("interpolated", true);
          emit(synth);
          ++synthesized_;
        }
      }
    }
  }
  last_[t.key] = t;
  emit(t);
}

}  // namespace deluge::stream
