#include "obs/metrics.h"

#include <algorithm>
#include <chrono>

namespace deluge::obs {

namespace {

// 0 = unassigned; stripe + 1 otherwise.  A POD thread_local keeps the
// fast path at one TLS load (no dynamic-init guard).
thread_local uint32_t tls_stripe_plus1 = 0;

std::atomic<uint32_t> g_next_stripe{0};
std::atomic<uint64_t> g_next_instance{1};

}  // namespace

uint32_t ThisThreadStripe() {
  uint32_t s = tls_stripe_plus1;
  if (s == 0) {
    s = g_next_stripe.fetch_add(1, std::memory_order_relaxed) % kStripes + 1;
    tls_stripe_plus1 = s;
  }
  return s - 1;
}

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string_view MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

// ---------------------------------------------------------- MetricSample

std::string MetricSample::Key() const {
  return MetricsRegistry::CanonicalKey(name, labels);
}

// -------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: subsystem instances may retire during static
  // destruction and must find the registry alive.
  static MetricsRegistry& reg = *new MetricsRegistry();
  return reg;
}

std::string MetricsRegistry::CanonicalKey(std::string_view name,
                                          const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key.push_back('{');
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreateLocked(
    std::string_view name, const Labels& labels, MetricKind kind,
    Gauge::Agg agg) {
  std::string key = CanonicalKey(name, labels);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.name = std::string(name);
    e.labels = labels;
    std::sort(e.labels.begin(), e.labels.end());
    e.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        e.gauge = std::make_unique<Gauge>(agg);
        break;
      case MetricKind::kHistogram:
        e.hist = std::make_unique<ConcurrentHistogram>();
        break;
    }
    it = entries_.emplace(std::move(key), std::move(e)).first;
  }
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e =
      FindOrCreateLocked(name, labels, MetricKind::kCounter, Gauge::Agg::kSum);
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels,
                                 Gauge::Agg agg) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, labels, MetricKind::kGauge, agg);
  return e->gauge.get();
}

ConcurrentHistogram* MetricsRegistry::GetHistogram(std::string_view name,
                                                   const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, labels, MetricKind::kHistogram,
                                Gauge::Agg::kSum);
  return e->hist.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, e] : entries_) {
      MetricSample s;
      s.name = e.name;
      s.labels = e.labels;
      s.kind = e.kind;
      switch (e.kind) {
        case MetricKind::kCounter:
          s.value = double(e.counter->Value());
          break;
        case MetricKind::kGauge:
          s.value = e.gauge->Value();
          break;
        case MetricKind::kHistogram:
          s.hist = e.hist->Snapshot();
          s.value = double(s.hist.count());
          break;
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.Key() < b.Key();
            });
  return out;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::Retire(const std::vector<std::string>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& key : keys) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    Entry& live = it->second;
    Labels agg_labels = live.labels;
    for (auto& [k, v] : agg_labels) {
      if (k == "instance") v = "all";
    }
    Gauge::Agg agg = live.gauge != nullptr ? live.gauge->agg()
                                           : Gauge::Agg::kSum;
    Entry* target =
        FindOrCreateLocked(live.name, agg_labels, live.kind, agg);
    switch (live.kind) {
      case MetricKind::kCounter:
        target->counter->Add(live.counter->Value());
        break;
      case MetricKind::kGauge:
        switch (agg) {
          case Gauge::Agg::kSum:
            target->gauge->Add(live.gauge->Value());
            break;
          case Gauge::Agg::kMax:
            target->gauge->UpdateMax(live.gauge->Value());
            break;
          case Gauge::Agg::kLast:
            target->gauge->Set(live.gauge->Value());
            break;
        }
        break;
      case MetricKind::kHistogram:
        target->hist->MergeFrom(live.hist->Snapshot());
        break;
    }
    // FindOrCreateLocked may have rehashed the map; re-find before erase.
    entries_.erase(key);
  }
}

// ------------------------------------------------------------ StatsScope

StatsScope::StatsScope(std::string_view subsystem, Labels extra,
                       MetricsRegistry* registry)
    : reg_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      subsystem_(subsystem),
      instance_id_(g_next_instance.fetch_add(1, std::memory_order_relaxed)) {
  labels_.reserve(extra.size() + 2);
  labels_.emplace_back("subsystem", subsystem_);
  labels_.emplace_back("instance", std::to_string(instance_id_));
  for (auto& kv : extra) labels_.push_back(std::move(kv));
}

StatsScope::~StatsScope() { reg_->Retire(keys_); }

std::string StatsScope::FullName(std::string_view name) const {
  std::string full = subsystem_;
  full.push_back('.');
  full += name;
  return full;
}

Labels StatsScope::MergedLabels(const Labels& extra) const {
  if (extra.empty()) return labels_;
  Labels merged = labels_;
  merged.insert(merged.end(), extra.begin(), extra.end());
  return merged;
}

Counter* StatsScope::counter(std::string_view name, const Labels& extra) {
  std::string full = FullName(name);
  Labels labels = MergedLabels(extra);
  keys_.push_back(MetricsRegistry::CanonicalKey(full, labels));
  return reg_->GetCounter(full, labels);
}

Gauge* StatsScope::gauge(std::string_view name, Gauge::Agg agg,
                         const Labels& extra) {
  std::string full = FullName(name);
  Labels labels = MergedLabels(extra);
  keys_.push_back(MetricsRegistry::CanonicalKey(full, labels));
  return reg_->GetGauge(full, labels, agg);
}

ConcurrentHistogram* StatsScope::histogram(std::string_view name,
                                           const Labels& extra) {
  std::string full = FullName(name);
  Labels labels = MergedLabels(extra);
  keys_.push_back(MetricsRegistry::CanonicalKey(full, labels));
  return reg_->GetHistogram(full, labels);
}

// ------------------------------------------------------------ ScopedTimer

ScopedTimer::ScopedTimer(ConcurrentHistogram* hist)
    : hist_(hist), start_us_(hist != nullptr ? SteadyNowMicros() : 0) {}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) hist_->Record(SteadyNowMicros() - start_us_);
}

}  // namespace deluge::obs
