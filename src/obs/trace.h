#ifndef DELUGE_OBS_TRACE_H_
#define DELUGE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace deluge::obs {

/// One finished span of a sampled trace.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint32_t span_id = 0;    ///< 1-based within the trace
  uint32_t parent_id = 0;  ///< 0 = root span
  std::string name;        ///< stage name, e.g. "broker.publish"
  int64_t start_us = 0;    ///< steady-clock micros
  int64_t dur_us = 0;
};

/// Process-wide trace collector with head sampling.
///
/// Disabled by default: a `Span` on a non-traced thread costs one TLS
/// load, one relaxed atomic load, and a branch (~2 ns), so spans can
/// sit on per-event hot paths.  `Enable(n)` samples every n-th root
/// span; all spans opened (transitively, same thread) under a sampled
/// root record their timing, which is how one trace stitches
/// ingest → coherency → broker → storage stages together.
class Tracer {
 public:
  static Tracer& Global();

  /// Samples one in `sample_every_n` root spans (1 = every trace);
  /// 0 disables tracing.  `max_records` bounds memory: once full, new
  /// spans are counted in `dropped()` instead of stored.
  void Enable(uint64_t sample_every_n, size_t max_records = 1u << 20);
  void Disable() { Enable(0); }
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }

  /// Takes and clears the recorded spans.
  std::vector<SpanRecord> Drain();

  size_t recorded() const;
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Appends every recorded span as one JSON line
  /// {"trace":…,"span":…,"parent":…,"name":…,"start_us":…,"dur_us":…}
  /// and clears the buffer.  Returns false when the file can't be
  /// opened.
  bool DumpJsonl(const std::string& path);

 private:
  friend class Span;

  void Record(SpanRecord record);
  uint64_t NextTraceId() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  size_t max_records_ = 1u << 20;
};

/// RAII stage timer for the tracing spine.  Spans opened while another
/// span is active on the same thread become its children; the
/// outermost span is the trace root and decides (via the sampler)
/// whether the whole trace records.  `name` must outlive the span
/// (string literals).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool sampled() const { return sampled_; }
  uint64_t trace_id() const { return trace_id_; }

 private:
  const char* name_;
  uint64_t trace_id_ = 0;
  uint32_t span_id_ = 0;
  uint32_t parent_id_ = 0;
  int64_t start_us_ = 0;
  bool sampled_ = false;
};

}  // namespace deluge::obs

#endif  // DELUGE_OBS_TRACE_H_
