#ifndef DELUGE_OBS_METRICS_H_
#define DELUGE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace deluge::obs {

/// A label set: unordered (key, value) pairs such as
/// {subsystem=broker, shard=3, topic=mirror.position}.  Label sets are
/// canonicalized (sorted by key) before interning, so two permutations
/// of the same pairs address the same metric.
///
/// Cardinality rule (see DESIGN.md §9): label values must be bounded by
/// configuration — shard indices, urgency classes, registered function
/// or query names.  Never label by entity id, event payload, or other
/// per-datum values.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Number of stripes used by sharded metrics.  Threads hash onto
/// stripes; 8 stripes keep same-cache-line contention negligible up to
/// a few dozen recording threads while costing 512 B per counter.
inline constexpr uint32_t kStripes = 8;

/// The calling thread's stripe index in [0, kStripes).  Assigned
/// round-robin on first use; a plain-old-data thread_local keeps the
/// lookup to one TLS load on the hot path.
uint32_t ThisThreadStripe();

/// A monotonically increasing counter, striped across cache lines so
/// concurrent `Add`s from different threads do not bounce one line.
/// `Add` is a single relaxed fetch-add on the caller's stripe
/// (~1-2 ns); `Value` sums the stripes.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    slots_[ThisThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  /// Zeroes the counter.  Not atomic with respect to concurrent `Add`s
  /// (increments racing the reset may survive it); intended for the
  /// single-threaded `ResetStats()` paths.
  void Reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kStripes];
};

/// A double-valued gauge.  `agg` declares how instances of this metric
/// combine when a `StatsScope` retires into the process aggregate (and
/// is a hint to dashboards): sums accumulate, maxima take the max, and
/// `kLast` keeps the most recent write.
class Gauge {
 public:
  enum class Agg : uint8_t { kSum, kMax, kLast };

  explicit Gauge(Agg agg = Agg::kSum) : agg_(agg) {}

  void Set(double v) { v_.store(v, std::memory_order_relaxed); }

  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }

  void UpdateMax(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }
  Agg agg() const { return agg_; }

 private:
  std::atomic<double> v_{0.0};
  Agg agg_;
};

/// A thread-safe histogram built on `common::Histogram`: one mutexed
/// `Histogram` per stripe, so recorders on different threads almost
/// never contend and the O(1)-hot-path property of the underlying
/// histogram is preserved (one uncontended lock + one bucket update).
/// `Snapshot` merges the stripes into a plain `Histogram`, which is the
/// type all existing `*Stats` structs and accessors already expose.
class ConcurrentHistogram {
 public:
  void Record(int64_t value) { RecordMany(value, 1); }

  void RecordMany(int64_t value, uint64_t count) {
    Stripe& s = stripes_[ThisThreadStripe()];
    std::lock_guard<std::mutex> lock(s.mu);
    s.hist.RecordMany(value, count);
  }

  /// Merges a plain histogram in (used by registry retirement folds).
  void MergeFrom(const Histogram& other) {
    Stripe& s = stripes_[ThisThreadStripe()];
    std::lock_guard<std::mutex> lock(s.mu);
    s.hist.Merge(other);
  }

  /// A merged copy of all stripes — a consistent-enough snapshot (each
  /// stripe is locked in turn, not all at once).
  Histogram Snapshot() const {
    Histogram out;
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      out.Merge(s.hist);
    }
    return out;
  }

  uint64_t Count() const {
    uint64_t n = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      n += s.hist.count();
    }
    return n;
  }

  void Reset() {
    for (Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.hist.Reset();
    }
  }

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    Histogram hist;
  };
  Stripe stripes_[kStripes];
};

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

std::string_view MetricKindName(MetricKind kind);

/// One exported metric value (see `MetricsRegistry::Snapshot`).
struct MetricSample {
  std::string name;
  Labels labels;  // canonical (sorted by key)
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< counter/gauge value; histogram observation count
  Histogram hist;      ///< filled only for histograms

  /// "name{k=v,k2=v2}" — the interned identity of the metric.
  std::string Key() const;
};

/// The process-wide metric store: every counter, gauge, and histogram
/// in Deluge lives here, addressable by name + labels, so one export
/// path (`Snapshot` → bench_results.json, logs, dashboards) sees every
/// subsystem (the paper's Fig. 7 "operate it as one system" view).
///
/// Get* calls intern the (name, labels) pair and return a stable
/// pointer: repeated calls with the same pair — in any label order —
/// return the same metric.  Handles returned for scope-less metrics
/// live as long as the registry; handles obtained through a
/// `StatsScope` are invalidated when the scope retires (the owning
/// subsystem instance is expected to hold the scope for as long as it
/// uses the handles, which member order gives for free).
///
/// Thread-safety: all methods are safe to call concurrently; metric
/// mutation (`Add`/`Record`) never takes the registry lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance (never destroyed, so metric handles in
  /// static-destruction order remain valid).
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {},
                  Gauge::Agg agg = Gauge::Agg::kSum);
  ConcurrentHistogram* GetHistogram(std::string_view name,
                                    const Labels& labels = {});

  /// All metrics, sorted by key, with histogram contents merged.
  std::vector<MetricSample> Snapshot() const;

  size_t size() const;

  /// The canonical interning key: labels sorted by key (then value).
  static std::string CanonicalKey(std::string_view name,
                                  const Labels& labels);

 private:
  friend class StatsScope;

  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<ConcurrentHistogram> hist;
  };

  /// Folds each keyed metric into its process aggregate — the same
  /// metric with the `instance` label rewritten to "all" — then drops
  /// the per-instance entry, keeping registry size bounded by *live*
  /// instances plus one aggregate per metric family.
  void Retire(const std::vector<std::string>& keys);

  Entry* FindOrCreateLocked(std::string_view name, const Labels& labels,
                            MetricKind kind, Gauge::Agg agg);

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // key: CanonicalKey
};

/// Per-instance metric bundle: each subsystem instance (a Broker, a
/// KVStore, one engine shard, …) owns one scope, which stamps every
/// metric it creates with {subsystem=…, instance=<unique id>} plus any
/// extra labels (shard index, function name, …).  Destruction retires
/// the instance: its final values fold into the instance="all"
/// aggregates so short-lived instances still show up in the export,
/// and the per-instance entries are erased so cardinality stays
/// bounded by live instances.
class StatsScope {
 public:
  /// `registry` defaults to `MetricsRegistry::Global()`.
  explicit StatsScope(std::string_view subsystem, Labels extra = {},
                      MetricsRegistry* registry = nullptr);
  ~StatsScope();
  StatsScope(const StatsScope&) = delete;
  StatsScope& operator=(const StatsScope&) = delete;

  /// Metric names are "<subsystem>.<name>".  `extra` labels add to the
  /// scope's labels (per-function / per-query / per-class metrics).
  Counter* counter(std::string_view name, const Labels& extra = {});
  Gauge* gauge(std::string_view name, Gauge::Agg agg = Gauge::Agg::kSum,
               const Labels& extra = {});
  ConcurrentHistogram* histogram(std::string_view name,
                                 const Labels& extra = {});

  const Labels& labels() const { return labels_; }
  uint64_t instance_id() const { return instance_id_; }
  MetricsRegistry* registry() const { return reg_; }

 private:
  std::string FullName(std::string_view name) const;
  Labels MergedLabels(const Labels& extra) const;

  MetricsRegistry* reg_;
  std::string subsystem_;
  uint64_t instance_id_;
  Labels labels_;
  std::vector<std::string> keys_;  // every key this scope interned
};

/// RAII timer: records elapsed wall-clock microseconds into a
/// `ConcurrentHistogram` at scope exit.  Null histogram = no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(ConcurrentHistogram* hist);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ConcurrentHistogram* hist_;
  int64_t start_us_;
};

/// Monotonic wall-clock microseconds (steady_clock).
int64_t SteadyNowMicros();

}  // namespace deluge::obs

#endif  // DELUGE_OBS_METRICS_H_
