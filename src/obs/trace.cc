#include "obs/trace.h"

#include <fstream>

#include "obs/metrics.h"

namespace deluge::obs {

namespace {

// Per-thread active-trace state.  POD thread_local: one TLS load on the
// (disabled) hot path.
struct TraceTls {
  uint64_t trace_id = 0;
  uint32_t next_span_id = 0;
  uint32_t current_parent = 0;
  uint32_t depth = 0;
  bool sampled = false;
};
thread_local TraceTls tls_trace;

std::string JsonEscape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer& tracer = *new Tracer();  // outlives static destructors
  return tracer;
}

void Tracer::Enable(uint64_t sample_every_n, size_t max_records) {
  std::lock_guard<std::mutex> lock(mu_);
  sample_every_.store(sample_every_n, std::memory_order_relaxed);
  max_records_ = max_records;
}

std::vector<SpanRecord> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.swap(records_);
  return out;
}

size_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void Tracer::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= max_records_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(std::move(record));
}

bool Tracer::DumpJsonl(const std::string& path) {
  std::vector<SpanRecord> records = Drain();
  std::ofstream out(path, std::ios::app);
  if (!out.good()) return false;
  for (const SpanRecord& r : records) {
    out << "{\"trace\":" << r.trace_id << ",\"span\":" << r.span_id
        << ",\"parent\":" << r.parent_id << ",\"name\":\""
        << JsonEscape(r.name.c_str()) << "\",\"start_us\":" << r.start_us
        << ",\"dur_us\":" << r.dur_us << "}\n";
  }
  return true;
}

Span::Span(const char* name) : name_(name) {
  TraceTls& t = tls_trace;
  if (t.depth == 0) {
    // Root span: consult the sampler.
    ++t.depth;
    uint64_t every = Tracer::Global().sample_every();
    if (every == 0) {
      t.sampled = false;
      return;
    }
    uint64_t id = Tracer::Global().NextTraceId();
    t.sampled = (id % every == 0);
    t.trace_id = id;
    t.next_span_id = 0;
    t.current_parent = 0;
  } else {
    ++t.depth;
  }
  sampled_ = t.sampled;
  if (sampled_) {
    trace_id_ = t.trace_id;
    span_id_ = ++t.next_span_id;
    parent_id_ = t.current_parent;
    t.current_parent = span_id_;
    start_us_ = SteadyNowMicros();
  }
}

Span::~Span() {
  TraceTls& t = tls_trace;
  if (sampled_) {
    SpanRecord r;
    r.trace_id = trace_id_;
    r.span_id = span_id_;
    r.parent_id = parent_id_;
    r.name = name_;
    r.start_us = start_us_;
    r.dur_us = SteadyNowMicros() - start_us_;
    Tracer::Global().Record(std::move(r));
    t.current_parent = parent_id_;
  }
  --t.depth;
}

}  // namespace deluge::obs
