#ifndef DELUGE_CORE_SENSORS_H_
#define DELUGE_CORE_SENSORS_H_

#include <vector>

#include "common/rng.h"
#include "core/entity.h"
#include "geo/trajectory.h"

namespace deluge::core {

/// One sensed fix from the field.
struct SensorReading {
  EntityId entity = 0;
  geo::Vec3 position;
  Micros t = 0;
};

/// Configuration of the synthetic sensor fleet.
struct SensorFleetOptions {
  size_t num_entities = 100;
  double max_speed = 5.0;       ///< m/s (pedestrian-to-vehicle range)
  double gps_noise_stddev = 0.5;  ///< metres of measurement noise
  double drop_probability = 0.0;  ///< fraction of readings lost
  /// Direction change probability per tick (random-waypoint flavour).
  double turn_probability = 0.1;
  uint64_t seed = 42;
};

/// The paper's substituted physical world (see DESIGN.md): a fleet of
/// entities doing random-waypoint motion inside the world bounds, read
/// out through a noisy, lossy GPS model.  Everything downstream — the
/// ingest path, fusion, coherency, indexes — sees exactly what real
/// tracking devices would produce.
class SensorFleet {
 public:
  SensorFleet(const geo::AABB& world, SensorFleetOptions options);

  /// Advances every entity by `dt` and returns the surviving readings
  /// (noise applied, drops removed) timestamped `now`.
  std::vector<SensorReading> Tick(Micros dt, Micros now);

  /// Ground-truth position (for error measurement in experiments).
  const geo::Vec3& TruePosition(EntityId id) const;

  size_t size() const { return states_.size(); }
  EntityId first_id() const { return 1; }

 private:
  struct EntityState {
    geo::Vec3 position;
    geo::Vec3 velocity;
  };

  void MaybeTurn(EntityState* s);
  void Bounce(EntityState* s);

  geo::AABB world_;
  SensorFleetOptions options_;
  Rng rng_;
  std::vector<EntityState> states_;  // index 0 => entity id 1
};

}  // namespace deluge::core

#endif  // DELUGE_CORE_SENSORS_H_
