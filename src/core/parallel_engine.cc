#include "core/parallel_engine.h"

#include <algorithm>
#include <cmath>

#include "common/parallel_for.h"
#include "geo/morton.h"
#include "obs/trace.h"

namespace deluge::core {

// ---------------------------------------------------------- SpatialSharder

SpatialSharder::SpatialSharder(const geo::AABB& world, double cell,
                               size_t num_shards)
    : world_(world),
      cell_(cell > 0 ? cell : 1.0),
      num_shards_(num_shards == 0 ? 1 : num_shards) {}

int64_t SpatialSharder::TileX(double x) const {
  return std::clamp<int64_t>(
      int64_t(std::floor((x - world_.min.x) / cell_)), 0,
      geo::MortonCodec::kCellsPerAxis - 1);
}

int64_t SpatialSharder::TileY(double y) const {
  return std::clamp<int64_t>(
      int64_t(std::floor((y - world_.min.y) / cell_)), 0,
      geo::MortonCodec::kCellsPerAxis - 1);
}

size_t SpatialSharder::ShardOf(const geo::Vec3& p) const {
  uint64_t code = geo::MortonCodec::Interleave2D(uint32_t(TileX(p.x)),
                                                 uint32_t(TileY(p.y)));
  return size_t(code % num_shards_);
}

std::vector<size_t> SpatialSharder::ShardsCovering(
    const geo::AABB& box) const {
  std::vector<size_t> all(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) all[s] = s;
  if (num_shards_ == 1) return all;

  int64_t lox = TileX(box.min.x), hix = TileX(box.max.x);
  int64_t loy = TileY(box.min.y), hiy = TileY(box.max.y);
  uint64_t tiles = uint64_t(hix - lox + 1) * uint64_t(hiy - loy + 1);
  if (tiles > 64 * uint64_t(num_shards_)) return all;  // not worth walking

  std::vector<bool> hit(num_shards_, false);
  std::vector<size_t> shards;
  for (int64_t x = lox; x <= hix; ++x) {
    for (int64_t y = loy; y <= hiy; ++y) {
      size_t s = size_t(
          geo::MortonCodec::Interleave2D(uint32_t(x), uint32_t(y)) %
          num_shards_);
      if (!hit[s]) {
        hit[s] = true;
        shards.push_back(s);
        if (shards.size() == num_shards_) return all;
      }
    }
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

// ---------------------------------------------------------- ParallelEngine

ParallelEngine::Shard::Shard(const EngineOptions& opts, size_t num_shards,
                             size_t index, pubsub::Broker::Deliver deliver)
    : physical(stream::Space::kPhysical, opts.world_bounds),
      virtual_space(stream::Space::kVirtual, opts.world_bounds),
      coherency(opts.default_contract),
      broker(std::make_unique<pubsub::Broker>(
          opts.world_bounds, opts.broker_cell, std::move(deliver),
          obs::Labels{{"shard", std::to_string(index)}})),
      obs("engine", obs::Labels{{"shard", std::to_string(index)}}),
      c(obs),
      outbox(num_shards) {}

ParallelEngine::ParallelEngine(ParallelEngineOptions options,
                               ThreadPool* pool, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      pool_(pool),
      sharder_(options.engine.world_bounds,
               options.shard_cell > 0
                   ? options.shard_cell
                   : (options.engine.world_bounds.max.x -
                      options.engine.world_bounds.min.x) /
                         (8.0 * double(std::max<size_t>(1,
                                                        options.num_shards))),
               options.num_shards) {
  const size_t n = sharder_.num_shards();
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        options_.engine, n, s,
        [this](net::NodeId subscriber, const pubsub::Event& event) {
          // Dispatch to the watcher registered for this subscriber id.
          for (auto& [node, deliver] : watchers_) {
            if (node == subscriber && deliver) deliver(subscriber, event);
          }
        }));
  }
}

size_t ParallelEngine::HomeOf(EntityId id,
                              const geo::Vec3& fallback_pos) const {
  auto it = home_.find(id);
  if (it != home_.end()) return it->second;
  // Unspawned entities are routed by position; spawn first for stable
  // ownership (and stats parity with the single-threaded engine).
  return sharder_.ShardOf(fallback_pos);
}

void ParallelEngine::SpawnPhysical(const Entity& entity) {
  size_t s = sharder_.ShardOf(entity.position);
  home_[entity.id] = s;
  Shard& shard = *shards_[s];
  Entity phys = entity;
  phys.origin = stream::Space::kPhysical;
  shard.physical.Upsert(phys);
  // Mirror immediately so the virtual model starts complete.
  shard.virtual_space.Upsert(phys);
  shard.coherency.Offer(entity.id, entity.position, entity.updated_at);
}

void ParallelEngine::SpawnVirtual(const Entity& entity) {
  size_t s = sharder_.ShardOf(entity.position);
  home_[entity.id] = s;
  Entity virt = entity;
  virt.origin = stream::Space::kVirtual;
  shards_[s]->virtual_space.Upsert(virt);
}

void ParallelEngine::SetContract(EntityId id,
                                 const consistency::CoherencyContract& c) {
  // Installed everywhere: only the home shard consults it, and this
  // keeps SetContract valid before the entity spawns.
  for (auto& shard : shards_) shard->coherency.SetContract(id, c);
}

uint64_t ParallelEngine::WatchRegion(net::NodeId subscriber,
                                     const geo::AABB& region,
                                     pubsub::Broker::Deliver deliver) {
  watchers_.emplace_back(subscriber, std::move(deliver));
  uint64_t id = next_watch_id_++;
  auto& legs = watches_[id];
  for (size_t s : sharder_.ShardsCovering(region)) {
    pubsub::Subscription sub;
    sub.subscriber = subscriber;
    sub.region = region;
    legs.emplace_back(s, shards_[s]->broker->Subscribe(std::move(sub)));
  }
  return id;
}

bool ParallelEngine::Unwatch(uint64_t watch_id) {
  auto it = watches_.find(watch_id);
  if (it == watches_.end()) return false;
  for (auto& [shard, sub_id] : it->second) {
    shards_[shard]->broker->Unsubscribe(sub_id);
  }
  watches_.erase(it);
  return true;
}

void ParallelEngine::OnPhysicalCommand(CoSpaceEngine::CommandHandler handler) {
  command_handlers_.push_back(std::move(handler));
}

bool ParallelEngine::IngestOnShard(Shard& shard, const SensedUpdate& u) {
  shard.c.physical_updates->Add(1);
  // The physical space always tracks ground truth.
  shard.physical.Move(u.id, u.position, u.t);

  if (!shard.coherency.Offer(u.id, u.position, u.t)) {
    shard.c.suppressed_updates->Add(1);
    return false;
  }
  shard.c.mirrored_updates->Add(1);
  shard.virtual_space.Move(u.id, u.position, u.t);

  // Stage the mirror event for phase 2 on the shard owning the event's
  // *position* — regional watches live on the shards their region
  // overlaps, so position-routing makes cross-shard delivery exact.
  shard.c.events_published->Add(1);
  shard.outbox[sharder_.ShardOf(u.position)].push_back(
      MakeMirrorPositionEvent(u.id, u.position, u.t));
  return true;
}

size_t ParallelEngine::RunPipeline(
    std::vector<std::vector<SensedUpdate>> batches) {
  obs::Span span("ingest.batch");
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  const size_t n = shards_.size();
  std::vector<size_t> mirrored(n, 0);
  // Phase 1 — ingest: every shard applies its own entities' updates.
  ParallelFor(pool_, n, [&](size_t s) {
    Shard& shard = *shards_[s];
    size_t m = 0;
    for (const SensedUpdate& u : batches[s]) {
      if (IngestOnShard(shard, u)) ++m;
    }
    mirrored[s] = m;
  });
  // Phase 2 — fan-out: every shard publishes the events routed to it,
  // draining outboxes in shard order so publish order is deterministic.
  ParallelFor(pool_, n, [&](size_t d) {
    pubsub::Broker& broker = *shards_[d]->broker;
    for (size_t s = 0; s < n; ++s) {
      std::vector<pubsub::Event>& out = shards_[s]->outbox[d];
      for (const pubsub::Event& event : out) broker.Publish(event);
      out.clear();
    }
  });
  size_t total = 0;
  for (size_t m : mirrored) total += m;
  return total;
}

size_t ParallelEngine::IngestBatch(std::span<const SensedUpdate> updates) {
  std::vector<std::vector<SensedUpdate>> batches(shards_.size());
  for (const SensedUpdate& u : updates) {
    batches[HomeOf(u.id, u.position)].push_back(u);
  }
  return RunPipeline(std::move(batches));
}

void ParallelEngine::Enqueue(const SensedUpdate& update) {
  Shard& shard = *shards_[HomeOf(update.id, update.position)];
  std::lock_guard<std::mutex> lock(shard.staged_mu);
  shard.staged.push_back(update);
}

size_t ParallelEngine::Flush() {
  std::vector<std::vector<SensedUpdate>> batches(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s]->staged_mu);
    batches[s].swap(shards_[s]->staged);
  }
  return RunPipeline(std::move(batches));
}

size_t ParallelEngine::IssueVirtualCommand(const geo::AABB& region,
                                           const stream::Tuple& command) {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  shards_[0]->c.virtual_commands->Add(1);
  // Affected entities are resolved against the VIRTUAL model, across
  // every shard in parallel (an entity may have roamed anywhere).
  const size_t n = shards_.size();
  std::vector<std::vector<const Entity*>> affected(n);
  ParallelFor(pool_, n, [&](size_t s) {
    affected[s] = shards_[s]->virtual_space.Range(region);
  });
  // Relay serially in shard order: handlers need not be thread-safe
  // and the relay order stays deterministic.
  size_t total = 0, relayed = 0;
  for (size_t s = 0; s < n; ++s) {
    total += affected[s].size();
    for (const Entity* e : affected[s]) {
      if (e->origin != stream::Space::kPhysical) continue;  // pure-virtual
      for (const auto& handler : command_handlers_) {
        handler(e->id, command);
        ++relayed;
      }
    }
  }
  shards_[0]->c.relayed_commands->Add(relayed);
  return total;
}

EngineStats ParallelEngine::TotalStats() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  EngineStats total;
  for (const auto& shard : shards_) {
    total.physical_updates += shard->c.physical_updates->Value();
    total.mirrored_updates += shard->c.mirrored_updates->Value();
    total.suppressed_updates += shard->c.suppressed_updates->Value();
    total.virtual_commands += shard->c.virtual_commands->Value();
    total.relayed_commands += shard->c.relayed_commands->Value();
    total.events_published += shard->c.events_published->Value();
  }
  return total;
}

consistency::CoherencyStats ParallelEngine::TotalCoherencyStats() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  consistency::CoherencyStats total;
  for (const auto& shard : shards_) {
    const consistency::CoherencyStats& s = shard->coherency.stats();
    total.updates_offered += s.updates_offered;
    total.updates_sent += s.updates_sent;
    total.updates_suppressed += s.updates_suppressed;
    total.bytes_sent += s.bytes_sent;
    total.deviation_sum += s.deviation_sum;
    total.deviation_max = std::max(total.deviation_max, s.deviation_max);
  }
  return total;
}

pubsub::BrokerStats ParallelEngine::TotalBrokerStats() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  pubsub::BrokerStats total;
  for (const auto& shard : shards_) {
    const pubsub::BrokerStats& s = shard->broker->stats();
    total.events_published += s.events_published;
    total.deliveries += s.deliveries;
    total.candidates_checked += s.candidates_checked;
    total.deliveries_queued += s.deliveries_queued;
    total.deliveries_shed += s.deliveries_shed;
    total.queue_high_water = std::max(total.queue_high_water,
                                      s.queue_high_water);
  }
  return total;
}

const EngineStats& ParallelEngine::shard_stats(size_t shard) const {
  shards_[shard]->c.Fill(&shards_[shard]->snapshot);
  return shards_[shard]->snapshot;
}

pubsub::Broker& ParallelEngine::shard_broker(size_t shard) {
  return *shards_[shard]->broker;
}

const Entity* ParallelEngine::FindPhysical(EntityId id) const {
  auto it = home_.find(id);
  return it == home_.end() ? nullptr : shards_[it->second]->physical.Get(id);
}

const Entity* ParallelEngine::FindVirtual(EntityId id) const {
  auto it = home_.find(id);
  return it == home_.end() ? nullptr
                           : shards_[it->second]->virtual_space.Get(id);
}

}  // namespace deluge::core
