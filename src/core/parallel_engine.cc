#include "core/parallel_engine.h"

#include <algorithm>
#include <cmath>

#include "common/parallel_for.h"
#include "geo/morton.h"
#include "obs/trace.h"

namespace deluge::core {

// ---------------------------------------------------------- SpatialSharder

SpatialSharder::SpatialSharder(const geo::AABB& world, double cell,
                               size_t num_shards)
    : world_(world),
      cell_(cell > 0 ? cell : 1.0),
      num_shards_(num_shards == 0 ? 1 : num_shards) {
  const double ext_x = std::max(0.0, world_.max.x - world_.min.x);
  const double ext_y = std::max(0.0, world_.max.y - world_.min.y);
  // Coarsen the cell if the requested granularity would overflow the
  // dense assignment table.
  const double min_cell =
      std::max(ext_x, ext_y) / double(kMaxTilesPerAxis);
  cell_ = std::max(cell_, min_cell);
  tiles_x_ = std::clamp<int64_t>(int64_t(std::ceil(ext_x / cell_)), 1,
                                 kMaxTilesPerAxis);
  tiles_y_ = std::clamp<int64_t>(int64_t(std::ceil(ext_y / cell_)), 1,
                                 kMaxTilesPerAxis);
  // The Morton code space is square: round the longer axis up to a
  // power of two and allocate codes for the full square (padding tiles
  // outside the world never receive load; they ride along in the map).
  uint32_t bits = 0;
  while ((int64_t(1) << bits) < std::max(tiles_x_, tiles_y_)) ++bits;
  map_.resize(size_t(1) << (2 * bits));
  for (size_t code = 0; code < map_.size(); ++code) {
    map_[code] = uint32_t(code % num_shards_);
  }
}

int64_t SpatialSharder::TileX(double x) const {
  return std::clamp<int64_t>(int64_t(std::floor((x - world_.min.x) / cell_)),
                             0, tiles_x_ - 1);
}

int64_t SpatialSharder::TileY(double y) const {
  return std::clamp<int64_t>(int64_t(std::floor((y - world_.min.y) / cell_)),
                             0, tiles_y_ - 1);
}

uint32_t SpatialSharder::TileCodeOf(const geo::Vec3& p) const {
  return uint32_t(geo::MortonCodec::Interleave2D(uint32_t(TileX(p.x)),
                                                 uint32_t(TileY(p.y))));
}

void SpatialSharder::ShardsCovering(const geo::AABB& box,
                                    ShardList* out) const {
  out->clear();
  if (num_shards_ == 1) {
    out->push_back(0);
    return;
  }
  const int64_t lox = TileX(box.min.x), hix = TileX(box.max.x);
  const int64_t loy = TileY(box.min.y), hiy = TileY(box.max.y);
  const uint64_t tiles = uint64_t(hix - lox + 1) * uint64_t(hiy - loy + 1);
  // Walk the tile rectangle only when it is small enough to be worth it
  // (and the shard count fits the 64-bit seen-mask); otherwise answer
  // conservatively with every shard.
  const bool enumerate =
      num_shards_ <= 64 && tiles <= 64 * uint64_t(num_shards_);
  uint64_t seen = 0;
  size_t distinct = 0;
  if (enumerate) {
    for (int64_t x = lox; x <= hix && distinct < num_shards_; ++x) {
      for (int64_t y = loy; y <= hiy && distinct < num_shards_; ++y) {
        size_t s = map_[size_t(
            geo::MortonCodec::Interleave2D(uint32_t(x), uint32_t(y)))];
        if ((seen >> s & 1) == 0) {
          seen |= uint64_t(1) << s;
          ++distinct;
        }
      }
    }
  }
  if (!enumerate || distinct == num_shards_) {
    for (size_t s = 0; s < num_shards_; ++s) out->push_back(s);
    return;
  }
  for (size_t s = 0; s < num_shards_; ++s) {
    if (seen >> s & 1) out->push_back(s);
  }
}

void SpatialSharder::SetAssignment(std::vector<uint32_t> assignment) {
  if (assignment.size() != map_.size()) return;  // contract violation
  for (uint32_t& s : assignment) {
    if (s >= num_shards_) s = uint32_t(s % num_shards_);
  }
  map_ = std::move(assignment);
}

std::vector<uint32_t> SpatialSharder::BalancedAssignment(
    const std::vector<double>& tile_load, size_t num_shards) {
  const size_t n = std::max<size_t>(1, num_shards);
  std::vector<uint32_t> out(tile_load.size(), 0);
  if (n == 1 || out.empty()) return out;
  double total = 0.0;
  for (double v : tile_load) total += v;
  if (total <= 0.0) {
    const size_t chunk = (out.size() + n - 1) / n;
    for (size_t t = 0; t < out.size(); ++t) {
      out[t] = uint32_t(std::min(t / chunk, n - 1));
    }
    return out;
  }
  // Greedy contiguous cut: close the current shard once it carries its
  // fair share of what is left.  A tile hotter than the fair share gets
  // a shard to itself (tile granularity is the split floor), and the
  // remainder rebalances across the shards still open.
  double remaining = total;
  double acc = 0.0;
  size_t shard = 0;
  for (size_t t = 0; t < out.size(); ++t) {
    out[t] = uint32_t(shard);
    acc += tile_load[t];
    if (shard + 1 < n && acc >= remaining / double(n - shard)) {
      remaining -= acc;
      acc = 0.0;
      ++shard;
    }
  }
  return out;
}

// ---------------------------------------------------------- ParallelEngine

ParallelEngine::Shard::Shard(const EngineOptions& opts, size_t num_shards,
                             size_t index, size_t tile_code_limit,
                             pubsub::Broker::Deliver deliver)
    : physical(stream::Space::kPhysical, opts.world_bounds),
      virtual_space(stream::Space::kVirtual, opts.world_bounds),
      coherency(opts.default_contract),
      broker(std::make_unique<pubsub::Broker>(
          opts.world_bounds, opts.broker_cell, std::move(deliver),
          obs::Labels{{"shard", std::to_string(index)}})),
      obs("engine", obs::Labels{{"shard", std::to_string(index)}}),
      c(obs),
      outbox(num_shards),
      tile_load(tile_code_limit, 0.0) {}

ParallelEngine::ParallelEngine(ParallelEngineOptions options,
                               ThreadPool* pool, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      pool_(pool),
      sharder_(options.engine.world_bounds,
               options.shard_cell > 0
                   ? options.shard_cell
                   : (options.engine.world_bounds.max.x -
                      options.engine.world_bounds.min.x) /
                         (8.0 * double(std::max<size_t>(1,
                                                        options.num_shards))),
               options.num_shards) {
  // An out-of-range (or NaN) smoothing factor would stall or explode
  // the EWMA; fall back to the default rather than propagate it.
  if (!(options_.elastic.ewma_alpha > 0.0 &&
        options_.elastic.ewma_alpha <= 1.0)) {
    options_.elastic.ewma_alpha = ElasticOptions{}.ewma_alpha;
  }
  const size_t n = sharder_.num_shards();
  const size_t accounting_tiles =
      options_.elastic.enabled ? sharder_.tile_code_limit() : 0;
  tile_ewma_.assign(accounting_tiles, 0.0);
  tile_batch_.assign(accounting_tiles, 0.0);
  shards_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        options_.engine, n, s, accounting_tiles,
        [this](net::NodeId subscriber, const pubsub::Event& event) {
          // Dispatch to the watcher registered for this subscriber id.
          for (auto& [node, deliver] : watchers_) {
            if (node == subscriber && deliver) deliver(subscriber, event);
          }
        }));
  }
}

size_t ParallelEngine::HomeOf(EntityId id,
                              const geo::Vec3& fallback_pos) const {
  auto it = home_.find(id);
  if (it != home_.end()) return it->second.shard;
  // Unspawned entities are routed by position; spawn first for stable
  // ownership (and stats parity with the single-threaded engine).
  return sharder_.ShardOf(fallback_pos);
}

void ParallelEngine::SpawnPhysical(const Entity& entity) {
  uint32_t tile = sharder_.TileCodeOf(entity.position);
  uint32_t s = uint32_t(sharder_.assignment()[tile]);
  home_[entity.id] = HomeRef{s, tile};
  Shard& shard = *shards_[s];
  Entity phys = entity;
  phys.origin = stream::Space::kPhysical;
  shard.physical.Upsert(phys);
  // Mirror immediately so the virtual model starts complete.
  shard.virtual_space.Upsert(phys);
  shard.coherency.Offer(entity.id, entity.position, entity.updated_at);
}

void ParallelEngine::SpawnVirtual(const Entity& entity) {
  uint32_t tile = sharder_.TileCodeOf(entity.position);
  uint32_t s = uint32_t(sharder_.assignment()[tile]);
  home_[entity.id] = HomeRef{s, tile};
  Entity virt = entity;
  virt.origin = stream::Space::kVirtual;
  shards_[s]->virtual_space.Upsert(virt);
}

void ParallelEngine::SetContract(EntityId id,
                                 const consistency::CoherencyContract& c) {
  // Installed everywhere: only the home shard consults it, this keeps
  // SetContract valid before the entity spawns — and migration never
  // has to move contracts, only per-entity mirror state.
  for (auto& shard : shards_) shard->coherency.SetContract(id, c);
}

uint64_t ParallelEngine::WatchRegion(net::NodeId subscriber,
                                     const geo::AABB& region,
                                     pubsub::Broker::Deliver deliver) {
  watchers_.emplace_back(subscriber, std::move(deliver));
  uint64_t id = next_watch_id_++;
  Watch& watch = watches_[id];
  watch.subscriber = subscriber;
  watch.region = region;
  SpatialSharder::ShardList cover;
  sharder_.ShardsCovering(region, &cover);
  for (size_t s : cover) {
    pubsub::Subscription sub;
    sub.subscriber = subscriber;
    sub.region = region;
    watch.legs.emplace_back(s, shards_[s]->broker->Subscribe(std::move(sub)));
  }
  return id;
}

bool ParallelEngine::Unwatch(uint64_t watch_id) {
  auto it = watches_.find(watch_id);
  if (it == watches_.end()) return false;
  for (auto& [shard, sub_id] : it->second.legs) {
    shards_[shard]->broker->Unsubscribe(sub_id);
  }
  watches_.erase(it);
  return true;
}

void ParallelEngine::OnPhysicalCommand(CoSpaceEngine::CommandHandler handler) {
  command_handlers_.push_back(std::move(handler));
}

void ParallelEngine::ChargeTile(Shard& shard, uint32_t tile, double amount) {
  if (amount <= 0.0) return;
  double& slot = shard.tile_load[tile];
  if (slot == 0.0) shard.touched.push_back(tile);
  slot += amount;
}

bool ParallelEngine::IngestOnShard(Shard& shard, const SensedUpdate& u) {
  obs::ScopedTimer ingest_timer(shard.c.ingest_us[uint8_t(u.qos)]);
  shard.c.physical_updates->Add(1);
  const uint32_t pos_tile = sharder_.TileCodeOf(u.position);
  if (options_.elastic.enabled) {
    // Ingest cost lands on the update's position tile — where the
    // entity's home will be re-anchored at the next rebalance, and
    // where its fan-out publishes.  Charging into this shard's own
    // tile_load array is race-free for any tile.
    ChargeTile(shard, pos_tile, 1.0);
  }
  // The physical space always tracks ground truth.
  shard.physical.Move(u.id, u.position, u.t);

  if (!shard.coherency.Offer(u.id, u.position, u.t, /*bytes=*/64, u.qos)) {
    shard.c.suppressed_updates->Add(1);
    return false;
  }
  shard.c.mirrored_updates->Add(1);
  shard.virtual_space.Move(u.id, u.position, u.t);

  // Stage the mirror event for phase 2 on the shard owning the event's
  // *position* — regional watches live on the shards their region
  // overlaps, so position-routing makes cross-shard delivery exact.
  shard.c.events_published->Add(1);
  shard.outbox[sharder_.assignment()[pos_tile]].push_back(
      MakeMirrorPositionEvent(u.id, u.position, u.t, u.qos));
  return true;
}

size_t ParallelEngine::RunPipeline(std::span<const SensedUpdate> direct,
                                   bool flush_staged) {
  obs::Span span("ingest.batch");
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  const size_t n = shards_.size();
  // Routing runs under pipeline_mu_: the assignment and home_ only
  // change inside a rebalance, which also holds pipeline_mu_ — so a
  // batch can never be bucketed against a map that migrates before the
  // pipeline consumes it.
  std::vector<std::vector<SensedUpdate>> batches(n);
  if (flush_staged) {
    for (size_t s = 0; s < n; ++s) {
      std::lock_guard<std::mutex> staged_lock(shards_[s]->staged_mu);
      batches[s].swap(shards_[s]->staged);
    }
  }
  for (const SensedUpdate& u : direct) {
    batches[HomeOf(u.id, u.position)].push_back(u);
  }

  std::vector<size_t> mirrored(n, 0);
  // Phase 1 — ingest: every shard applies its own entities' updates.
  ParallelFor(pool_, n, [&](size_t s) {
    Shard& shard = *shards_[s];
    size_t m = 0;
    for (const SensedUpdate& u : batches[s]) {
      if (IngestOnShard(shard, u)) ++m;
    }
    mirrored[s] = m;
  });
  // Phase 2 — fan-out: every shard publishes the events routed to it,
  // draining outboxes in shard order so publish order is deterministic.
  const bool elastic = options_.elastic.enabled;
  const double fanout_weight = options_.elastic.fanout_weight;
  ParallelFor(pool_, n, [&](size_t d) {
    Shard& dest = *shards_[d];
    pubsub::Broker& broker = *dest.broker;
    for (size_t s = 0; s < n; ++s) {
      std::vector<pubsub::Event>& out = shards_[s]->outbox[d];
      for (const pubsub::Event& event : out) {
        size_t deliveries = broker.Publish(event);
        if (elastic && deliveries > 0 && event.position.has_value()) {
          // Fan-out cost lands on the event's position tile, which this
          // destination shard owns (events are position-routed).
          ChargeTile(dest, sharder_.TileCodeOf(*event.position),
                     fanout_weight * double(deliveries));
        }
      }
      out.clear();
    }
  });
  if (elastic) {
    FoldTileLoadsLocked();
    MaybeRebalanceLocked();
  }
  size_t total = 0;
  for (size_t m : mirrored) total += m;
  return total;
}

size_t ParallelEngine::IngestBatch(std::span<const SensedUpdate> updates) {
  return RunPipeline(updates, /*flush_staged=*/false);
}

void ParallelEngine::Enqueue(const SensedUpdate& update) {
  // Shared routing lock: a concurrent rebalance (exclusive holder) may
  // be rewriting home_ and re-routing staged queues.
  std::shared_lock<std::shared_mutex> route(route_mu_);
  Shard& shard = *shards_[HomeOf(update.id, update.position)];
  std::lock_guard<std::mutex> lock(shard.staged_mu);
  shard.staged.push_back(update);
}

size_t ParallelEngine::Flush() {
  return RunPipeline({}, /*flush_staged=*/true);
}

void ParallelEngine::FoldTileLoadsLocked() {
  const double alpha = options_.elastic.ewma_alpha;
  for (auto& shard : shards_) {
    for (uint32_t t : shard->touched) {
      tile_batch_[t] += shard->tile_load[t];
      shard->tile_load[t] = 0.0;
    }
    shard->touched.clear();
  }
  const size_t limit = tile_batch_.size();
  for (size_t t = 0; t < limit; ++t) {
    tile_ewma_[t] = (1.0 - alpha) * tile_ewma_[t] + alpha * tile_batch_[t];
    tile_batch_[t] = 0.0;
  }
}

std::vector<double> ParallelEngine::ShardLoadsLocked() const {
  std::vector<double> loads(shards_.size(), 0.0);
  const std::vector<uint32_t>& map = sharder_.assignment();
  for (size_t t = 0; t < tile_ewma_.size(); ++t) {
    loads[map[t]] += tile_ewma_[t];
  }
  return loads;
}

void ParallelEngine::MaybeRebalanceLocked() {
  if (++batches_since_rebalance_check_ <
      options_.elastic.min_batches_between_rebalances) {
    return;
  }
  batches_since_rebalance_check_ = 0;
  std::vector<double> loads = ShardLoadsLocked();
  double total = 0.0, max_load = 0.0;
  for (double v : loads) {
    total += v;
    max_load = std::max(max_load, v);
  }
  const double mean = total / double(std::max<size_t>(1, loads.size()));
  const double imbalance = mean > 0.0 ? max_load / mean : 1.0;
  load_imbalance_->Set(imbalance);
  if (max_load < options_.elastic.min_shard_load) return;
  if (imbalance < options_.elastic.rebalance_threshold) return;
  RebalanceLocked();
}

bool ParallelEngine::RebalanceLocked() {
  const size_t n = shards_.size();
  if (n <= 1 || tile_ewma_.empty()) return false;
  double total = 0.0;
  for (double v : tile_ewma_) total += v;
  if (total <= 0.0) return false;

  std::vector<uint32_t> next =
      SpatialSharder::BalancedAssignment(tile_ewma_, n);
  const std::vector<uint32_t>& cur = sharder_.assignment();

  // BalancedAssignment numbers its ranges 0..n-1 in Morton order; the
  // labels themselves are arbitrary.  Relabel each new range as the old
  // shard owning the most load inside it (greedy max-overlap matching),
  // so a rebalance moves only the load that must move.
  std::vector<std::vector<double>> overlap(n, std::vector<double>(n, 0.0));
  for (size_t t = 0; t < next.size(); ++t) {
    overlap[next[t]][cur[t]] += tile_ewma_[t];
  }
  std::vector<uint32_t> relabel(n, UINT32_MAX);
  std::vector<bool> label_taken(n, false);
  for (size_t round = 0; round < n; ++round) {
    size_t best_range = n, best_old = n;
    double best = -1.0;
    for (size_t r = 0; r < n; ++r) {
      if (relabel[r] != UINT32_MAX) continue;
      for (size_t o = 0; o < n; ++o) {
        if (label_taken[o] || overlap[r][o] < best) continue;
        best = overlap[r][o];
        best_range = r;
        best_old = o;
      }
    }
    relabel[best_range] = uint32_t(best_old);
    label_taken[best_old] = true;
  }
  for (uint32_t& s : next) s = relabel[s];

  size_t tiles_changed = 0;
  for (size_t t = 0; t < next.size(); ++t) {
    tiles_changed += size_t(next[t] != cur[t]);
  }
  if (tiles_changed == 0) return false;

  // The migration pause: everything below happens between pipeline
  // runs with all outboxes drained (phase 2 cleared them), so no
  // published event is in flight — handoff can neither drop nor
  // duplicate a delivery.
  obs::ScopedTimer timer(migration_us_);
  // Exclusive routing lock: Enqueue callers wait out the swap.
  std::unique_lock<std::shared_mutex> route(route_mu_);
  sharder_.SetAssignment(std::move(next));

  // Re-anchor each entity's home tile to its current position and move
  // WorldSpace entries + coherency mirror state to the new owner, so
  // suppression decisions after the handoff are identical to a run that
  // never migrated.
  uint64_t moved = 0;
  for (auto& [id, home] : home_) {
    Shard& owner = *shards_[home.shard];
    const Entity* e = owner.physical.Get(id);
    if (e == nullptr) e = owner.virtual_space.Get(id);
    if (e != nullptr) home.tile = sharder_.TileCodeOf(e->position);
    uint32_t dst = sharder_.assignment()[home.tile];
    if (dst == home.shard) continue;
    MigrateEntity(id, owner, *shards_[dst]);
    home.shard = dst;
    ++moved;
  }

  // Staged updates follow their entity.  In-place compaction keeps the
  // survivors' order; movers append to their new shard in source order,
  // so per-entity order is preserved across the handoff.
  uint64_t staged_moved = 0;
  std::vector<std::vector<SensedUpdate>> inbound(n);
  for (size_t s = 0; s < n; ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> staged_lock(shard.staged_mu);
    size_t kept = 0;
    for (SensedUpdate& u : shard.staged) {
      size_t h = HomeOf(u.id, u.position);
      if (h == s) {
        shard.staged[kept++] = u;
      } else {
        inbound[h].push_back(u);
        ++staged_moved;
      }
    }
    shard.staged.resize(kept);
  }
  for (size_t s = 0; s < n; ++s) {
    if (inbound[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> staged_lock(shard.staged_mu);
    shard.staged.insert(shard.staged.end(), inbound[s].begin(),
                        inbound[s].end());
  }

  // Regional watch legs follow the tiles covering their region: drop
  // legs on shards that no longer own any overlapping tile, subscribe
  // on shards that now do.  Done before the next publish, so delivery
  // stays exact across the swap.
  SpatialSharder::ShardList cover;
  for (auto& [wid, watch] : watches_) {
    sharder_.ShardsCovering(watch.region, &cover);
    size_t kept = 0;
    for (auto& [shard, sub_id] : watch.legs) {
      if (std::find(cover.begin(), cover.end(), shard) != cover.end()) {
        watch.legs[kept++] = {shard, sub_id};
      } else {
        shards_[shard]->broker->Unsubscribe(sub_id);
        watch_legs_removed_->Add(1);
      }
    }
    watch.legs.resize(kept);
    for (size_t s : cover) {
      bool present = false;
      for (const auto& [shard, sub_id] : watch.legs) {
        if (shard == s) {
          present = true;
          break;
        }
      }
      if (present) continue;
      pubsub::Subscription sub;
      sub.subscriber = watch.subscriber;
      sub.region = watch.region;
      watch.legs.emplace_back(s,
                              shards_[s]->broker->Subscribe(std::move(sub)));
      watch_legs_added_->Add(1);
    }
  }

  rebalances_->Add(1);
  tiles_moved_->Add(tiles_changed);
  entities_migrated_->Add(moved);
  staged_moved_->Add(staged_moved);
  return true;
}

void ParallelEngine::MigrateEntity(EntityId id, Shard& from, Shard& to) {
  if (const Entity* e = from.physical.Get(id)) {
    to.physical.Upsert(*e);  // copies before the erase below
    from.physical.Remove(id);
  }
  if (const Entity* e = from.virtual_space.Get(id)) {
    to.virtual_space.Upsert(*e);
    from.virtual_space.Remove(id);
  }
  consistency::MirrorState state;
  if (from.coherency.ExtractEntity(id, &state)) {
    to.coherency.RestoreEntity(id, state);
  }
}

bool ParallelEngine::Rebalance() {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  return RebalanceLocked();
}

std::vector<double> ParallelEngine::ShardLoads() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  return ShardLoadsLocked();
}

double ParallelEngine::LoadImbalance() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  std::vector<double> loads = ShardLoadsLocked();
  double total = 0.0, max_load = 0.0;
  for (double v : loads) {
    total += v;
    max_load = std::max(max_load, v);
  }
  const double mean = total / double(std::max<size_t>(1, loads.size()));
  return mean > 0.0 ? max_load / mean : 1.0;
}

size_t ParallelEngine::IssueVirtualCommand(const geo::AABB& region,
                                           const stream::Tuple& command) {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  shards_[0]->c.virtual_commands->Add(1);
  // Affected entities are resolved against the VIRTUAL model, across
  // every shard in parallel (an entity may have roamed anywhere).
  const size_t n = shards_.size();
  std::vector<std::vector<const Entity*>> affected(n);
  ParallelFor(pool_, n, [&](size_t s) {
    affected[s] = shards_[s]->virtual_space.Range(region);
  });
  // Relay serially in shard order: handlers need not be thread-safe
  // and the relay order stays deterministic.
  size_t total = 0, relayed = 0;
  for (size_t s = 0; s < n; ++s) {
    total += affected[s].size();
    for (const Entity* e : affected[s]) {
      if (e->origin != stream::Space::kPhysical) continue;  // pure-virtual
      for (const auto& handler : command_handlers_) {
        handler(e->id, command);
        ++relayed;
      }
    }
  }
  shards_[0]->c.relayed_commands->Add(relayed);
  return total;
}

EngineStats ParallelEngine::TotalStats() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  EngineStats total;
  for (const auto& shard : shards_) {
    total.physical_updates += shard->c.physical_updates->Value();
    total.mirrored_updates += shard->c.mirrored_updates->Value();
    total.suppressed_updates += shard->c.suppressed_updates->Value();
    total.virtual_commands += shard->c.virtual_commands->Value();
    total.relayed_commands += shard->c.relayed_commands->Value();
    total.events_published += shard->c.events_published->Value();
  }
  return total;
}

consistency::CoherencyStats ParallelEngine::TotalCoherencyStats() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  consistency::CoherencyStats total;
  for (const auto& shard : shards_) {
    const consistency::CoherencyStats& s = shard->coherency.stats();
    total.updates_offered += s.updates_offered;
    total.updates_sent += s.updates_sent;
    total.updates_suppressed += s.updates_suppressed;
    total.bytes_sent += s.bytes_sent;
    total.deviation_sum += s.deviation_sum;
    total.deviation_max = std::max(total.deviation_max, s.deviation_max);
  }
  return total;
}

pubsub::BrokerStats ParallelEngine::TotalBrokerStats() const {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  pubsub::BrokerStats total;
  for (const auto& shard : shards_) {
    const pubsub::BrokerStats& s = shard->broker->stats();
    total.events_published += s.events_published;
    total.deliveries += s.deliveries;
    total.candidates_checked += s.candidates_checked;
    total.deliveries_queued += s.deliveries_queued;
    total.deliveries_shed += s.deliveries_shed;
    total.queue_high_water = std::max(total.queue_high_water,
                                      s.queue_high_water);
  }
  return total;
}

const EngineStats& ParallelEngine::shard_stats(size_t shard) const {
  shards_[shard]->c.Fill(&shards_[shard]->snapshot);
  return shards_[shard]->snapshot;
}

pubsub::Broker& ParallelEngine::shard_broker(size_t shard) {
  return *shards_[shard]->broker;
}

void ParallelEngine::SetQosClock(const Clock* clock) {
  std::lock_guard<std::mutex> lock(pipeline_mu_);
  for (auto& shard : shards_) shard->broker->SetClock(clock);
}

const Entity* ParallelEngine::FindPhysical(EntityId id) const {
  auto it = home_.find(id);
  return it == home_.end()
             ? nullptr
             : shards_[it->second.shard]->physical.Get(id);
}

const Entity* ParallelEngine::FindVirtual(EntityId id) const {
  auto it = home_.find(id);
  return it == home_.end()
             ? nullptr
             : shards_[it->second.shard]->virtual_space.Get(id);
}

}  // namespace deluge::core
