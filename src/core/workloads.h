#ifndef DELUGE_CORE_WORKLOADS_H_
#define DELUGE_CORE_WORKLOADS_H_

#include <vector>

#include "common/rng.h"
#include "core/parallel_engine.h"
#include "geo/geometry.h"

namespace deluge::core {

/// Shared knobs for the skewed movement workloads (E23).  Unlike
/// `SensorFleet` these generators model *where load concentrates*, not
/// sensor physics — no noise or drops, every entity reports every tick,
/// so a serial and a sharded engine can be driven with identical input.
struct WorkloadOptions {
  size_t num_entities = 1000;
  double max_speed = 5.0;  ///< m/s background wander speed
  /// Direction change probability per tick for wandering entities.
  double turn_probability = 0.1;
  uint64_t seed = 42;
};

/// Uniform random-waypoint baseline: every entity wanders independently.
/// The control arm of the E23 sweep (skew 1×).
class UniformWorkload {
 public:
  UniformWorkload(const geo::AABB& world, WorkloadOptions options);

  /// Advances every entity by `dt` and returns one update per entity,
  /// timestamped `now`, in entity-id order.
  std::vector<SensedUpdate> Tick(Micros dt, Micros now);

  const geo::Vec3& Position(EntityId id) const;
  size_t size() const { return states_.size(); }
  static constexpr EntityId first_id() { return 1; }

 private:
  friend class FlashCrowdWorkload;
  friend class DiurnalWaveWorkload;
  struct EntityState {
    geo::Vec3 position;
    geo::Vec3 velocity;
  };

  void MaybeTurn(EntityState* s);
  void Bounce(EntityState* s);

  geo::AABB world_;
  WorkloadOptions options_;
  Rng rng_;
  std::vector<EntityState> states_;  // index 0 => entity id 1
};

/// Flash crowd (ROADMAP item 3): a skew-controlled fraction of the
/// fleet packs into a hotspot — a concert, a parade route — and jitters
/// there while the rest wander uniformly.
///
/// The hotspot is a thin horizontal *band* (crowds form along streets
/// and stadium rows, not in neat squares), which is exactly the shape
/// that melts a static Z-order striping: every band tile shares its
/// y-tile bits, so tile Morton codes taken modulo a power-of-two shard
/// count collapse onto half (or fewer) of the shards no matter how many
/// tiles the band spans.
///
/// `skew ≥ 1` sets the concentration: the band receives `1 − 1/skew` of
/// all updates (skew 1 = uniform, skew 10 pins 90% of the fleet into
/// <1% of the world).  The crowd spawns inside the band — this models
/// the formed crowd; build-up dynamics are DiurnalWaveWorkload's job.
class FlashCrowdWorkload {
 public:
  FlashCrowdWorkload(const geo::AABB& world, WorkloadOptions options,
                     double skew);

  std::vector<SensedUpdate> Tick(Micros dt, Micros now);

  const geo::Vec3& Position(EntityId id) const;
  size_t size() const { return base_.size(); }
  static constexpr EntityId first_id() { return 1; }

  /// Entities pinned to the hotspot (prefix of the id range).
  size_t crowd_size() const { return crowd_size_; }
  const geo::AABB& hotspot() const { return hotspot_; }

 private:
  UniformWorkload base_;  // background wanderers + state storage
  geo::AABB hotspot_;
  size_t crowd_size_ = 0;
  double rush_speed_ = 0.0;  ///< stragglers head to the hotspot at this
};

/// Diurnal wave: the crowd band orbits the world once per `period`,
/// dragging the crowd with it — the follow-the-sun load drift that
/// makes any one-shot assignment stale within a fraction of a cycle,
/// so sustained balance needs *repeated* incremental migrations.
/// Same band hotspot and `skew` semantics as FlashCrowdWorkload.
class DiurnalWaveWorkload {
 public:
  DiurnalWaveWorkload(const geo::AABB& world, WorkloadOptions options,
                      double skew, Micros period);

  std::vector<SensedUpdate> Tick(Micros dt, Micros now);

  const geo::Vec3& Position(EntityId id) const;
  size_t size() const { return base_.size(); }
  static constexpr EntityId first_id() { return 1; }

  /// Hotspot band at time `t` (its center orbits the world center).
  geo::AABB Hotspot(Micros t) const;

 private:
  UniformWorkload base_;
  Micros period_;
  double orbit_radius_ = 0.0;
  geo::Vec3 band_half_extent_;
  size_t crowd_size_ = 0;
  double rush_speed_ = 0.0;
};

/// Roaming swarms: cohesive clusters (guild raids, tour groups) doing
/// random-waypoint motion as groups, members jittering around their
/// swarm's center.  Load stays bursty per-tile but the bursts *move*,
/// exercising repeated migration rather than one split.
class RoamingSwarmWorkload {
 public:
  RoamingSwarmWorkload(const geo::AABB& world, WorkloadOptions options,
                       size_t num_swarms, double spread);

  std::vector<SensedUpdate> Tick(Micros dt, Micros now);

  const geo::Vec3& Position(EntityId id) const;
  size_t size() const { return positions_.size(); }
  static constexpr EntityId first_id() { return 1; }

  size_t num_swarms() const { return swarms_.size(); }

 private:
  struct Swarm {
    geo::Vec3 center;
    geo::Vec3 velocity;
  };

  geo::AABB world_;
  WorkloadOptions options_;
  Rng rng_;
  double spread_;
  std::vector<Swarm> swarms_;
  std::vector<geo::Vec3> positions_;  // index 0 => entity id 1
};

}  // namespace deluge::core

#endif  // DELUGE_CORE_WORKLOADS_H_
