#include "core/world_space.h"

namespace deluge::core {

WorldSpace::WorldSpace(stream::Space tag, const geo::AABB& bounds,
                       double index_cell)
    : tag_(tag), bounds_(bounds), index_(bounds, index_cell) {}

void WorldSpace::Upsert(const Entity& entity) {
  entities_[entity.id] = entity;
  index_.Update(entity.id, entity.position);
}

Status WorldSpace::Move(EntityId id, const geo::Vec3& pos, Micros t) {
  auto it = entities_.find(id);
  if (it == entities_.end()) return Status::NotFound("unknown entity");
  it->second.position = pos;
  it->second.updated_at = t;
  index_.Update(id, pos);
  return Status::OK();
}

Status WorldSpace::SetAttribute(EntityId id, const std::string& name,
                                stream::Value value) {
  auto it = entities_.find(id);
  if (it == entities_.end()) return Status::NotFound("unknown entity");
  it->second.attributes[name] = std::move(value);
  return Status::OK();
}

Status WorldSpace::Remove(EntityId id) {
  auto it = entities_.find(id);
  if (it == entities_.end()) return Status::NotFound("unknown entity");
  index_.Remove(id);
  entities_.erase(it);
  return Status::OK();
}

const Entity* WorldSpace::Get(EntityId id) const {
  auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : &it->second;
}

std::vector<const Entity*> WorldSpace::Range(const geo::AABB& box) const {
  std::vector<const Entity*> out;
  for (const auto& hit : index_.Range(box)) {
    out.push_back(&entities_.at(hit.id));
  }
  return out;
}

std::vector<const Entity*> WorldSpace::Nearest(const geo::Vec3& q,
                                               size_t k) const {
  std::vector<const Entity*> out;
  for (const auto& hit : index_.Nearest(q, k)) {
    out.push_back(&entities_.at(hit.id));
  }
  return out;
}

}  // namespace deluge::core
