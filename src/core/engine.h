#ifndef DELUGE_CORE_ENGINE_H_
#define DELUGE_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "consistency/coherency.h"
#include "core/world_space.h"
#include "obs/metrics.h"
#include "pubsub/broker.h"

namespace deluge::core {

/// Builds the "mirror.position" event a mirror refresh publishes.
/// Shared by `CoSpaceEngine` and `ParallelEngine` so the sharded
/// pipeline emits a byte-identical event stream.  The event carries the
/// ingest's QoS class end-to-end (event, payload tuple, published_at =
/// ingest time) so downstream hops shed/schedule/account by class.
pubsub::Event MakeMirrorPositionEvent(EntityId id, const geo::Vec3& pos,
                                      Micros t,
                                      QosClass qos = QosClass::kRealtime);

/// Engine configuration.
struct EngineOptions {
  geo::AABB world_bounds{{0, 0, 0}, {1000, 1000, 100}};
  /// Default mirror contract for entities without a per-entity one.
  consistency::CoherencyContract default_contract{
      1.0, 500 * kMicrosPerMilli};
  /// Cell size of the broker's regional subscription index.
  double broker_cell = 50.0;
};

/// Synchronization counters (the data-flow arrows of Fig. 1).
struct EngineStats {
  uint64_t physical_updates = 0;   ///< sensed updates ingested
  uint64_t mirrored_updates = 0;   ///< pushed into the virtual space
  uint64_t suppressed_updates = 0; ///< held back by coherency contracts
  uint64_t virtual_commands = 0;   ///< virtual-space actions ingested
  uint64_t relayed_commands = 0;   ///< relayed to the physical side
  uint64_t events_published = 0;
};

/// The co-space engine: the paper's Fig. 1 realized.
///
/// Two `WorldSpace`s coexist.  Sensed physical updates flow in via
/// `IngestPhysical*`; a per-entity coherency contract decides whether
/// the virtual mirror must be refreshed (Section IV-C), and mirror
/// refreshes publish events on the embedded content+spatial broker so
/// cyber users (interest regions, topics) learn about them.  Actions
/// taken in the virtual space flow the other way through
/// `IssueVirtualCommand`, reaching physical-side handlers — the
/// air-raid-kills-the-troops loop of the military scenario.
class CoSpaceEngine {
 public:
  /// Delivery callback for physical-side command handlers.
  using CommandHandler =
      std::function<void(EntityId target, const stream::Tuple& command)>;

  explicit CoSpaceEngine(EngineOptions options, Clock* clock = nullptr);

  WorldSpace& physical() { return physical_; }
  WorldSpace& virtual_space() { return virtual_; }
  pubsub::Broker& broker() { return *broker_; }

  /// Registers an entity in the physical space and (immediately) its
  /// virtual mirror.
  void SpawnPhysical(const Entity& entity);

  /// Registers a purely virtual entity (cyber user, virtual shop).
  void SpawnVirtual(const Entity& entity);

  /// Installs a per-entity coherency contract for mirroring.
  void SetContract(EntityId id, const consistency::CoherencyContract& c);

  /// Ingests a sensed physical position (the sensor->engine arrow).
  /// Updates the physical space always; refreshes the virtual mirror
  /// only when the coherency contract demands it.  Returns true when
  /// the mirror was refreshed.  `qos` rides the published event and
  /// labels the ingest/coherency hop metrics.
  bool IngestPhysicalPosition(EntityId id, const geo::Vec3& pos, Micros t,
                              QosClass qos = QosClass::kRealtime);

  /// Ingests a sensed attribute (always mirrored — attributes are
  /// low-rate; positions are the firehose).
  Status IngestPhysicalAttribute(EntityId id, const std::string& name,
                                 stream::Value value, Micros t,
                                 QosClass qos = QosClass::kTelemetry);

  /// An action taken in the virtual space targeted at physical entities
  /// inside `region` (e.g. a simulated air raid).  The command is
  /// applied to the virtual space and relayed to every registered
  /// physical command handler per affected entity.  Returns affected
  /// entity count.
  size_t IssueVirtualCommand(const geo::AABB& region,
                             const stream::Tuple& command);

  /// Registers the physical-side command channel (ground relays).
  void OnPhysicalCommand(CommandHandler handler);

  /// Subscribes a cyber user to mirror updates inside `region`;
  /// returns the subscription id.
  uint64_t WatchRegion(net::NodeId subscriber, const geo::AABB& region,
                       pubsub::Broker::Deliver deliver);

  /// Registry-backed snapshot, refreshed on every call.
  const EngineStats& stats() const;
  const consistency::CoherencyStats& coherency_stats() const {
    return coherency_.stats();
  }

 private:
  /// Registry handles for `EngineStats` (metrics "engine.*", labelled
  /// {subsystem=engine, instance=<id>} + `extra_labels`).
  struct EngineCounters {
    EngineCounters(obs::StatsScope& scope);
    obs::Counter* physical_updates;
    obs::Counter* mirrored_updates;
    obs::Counter* suppressed_updates;
    obs::Counter* virtual_commands;
    obs::Counter* relayed_commands;
    obs::Counter* events_published;
    /// Wall-clock cost of the ingest hop, per QoS class
    /// (engine.ingest_us{qos=...}).
    obs::ConcurrentHistogram* ingest_us[kQosClassCount];

    void Fill(EngineStats* out) const;
  };
  friend class ParallelEngine;  // shards reuse EngineCounters

  EngineOptions options_;
  Clock* clock_;
  WorldSpace physical_;
  WorldSpace virtual_;
  consistency::CoherencyFilter coherency_;
  std::unique_ptr<pubsub::Broker> broker_;
  std::vector<CommandHandler> command_handlers_;
  std::vector<std::pair<uint64_t, pubsub::Broker::Deliver>> watchers_;
  obs::StatsScope obs_{"engine"};
  EngineCounters c_{obs_};
  mutable EngineStats snapshot_;
};

}  // namespace deluge::core

#endif  // DELUGE_CORE_ENGINE_H_
