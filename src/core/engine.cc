#include "core/engine.h"

#include "obs/trace.h"

namespace deluge::core {

namespace {

/// Hot-path field ids, interned once per process: ingest then writes
/// tuple slots by id without touching the name table.
const stream::FieldId kFieldEntity = stream::FieldTable::Intern("entity");
const stream::FieldId kFieldAttribute = stream::FieldTable::Intern("attribute");
const stream::FieldId kFieldValue = stream::FieldTable::Intern("value");

}  // namespace

CoSpaceEngine::EngineCounters::EngineCounters(obs::StatsScope& scope)
    : physical_updates(scope.counter("physical_updates")),
      mirrored_updates(scope.counter("mirrored_updates")),
      suppressed_updates(scope.counter("suppressed_updates")),
      virtual_commands(scope.counter("virtual_commands")),
      relayed_commands(scope.counter("relayed_commands")),
      events_published(scope.counter("events_published")) {
  for (QosClass c : kAllQosClasses) {
    ingest_us[uint8_t(c)] =
        scope.histogram("ingest_us", {{"qos", QosClassName(c)}});
  }
}

void CoSpaceEngine::EngineCounters::Fill(EngineStats* out) const {
  out->physical_updates = physical_updates->Value();
  out->mirrored_updates = mirrored_updates->Value();
  out->suppressed_updates = suppressed_updates->Value();
  out->virtual_commands = virtual_commands->Value();
  out->relayed_commands = relayed_commands->Value();
  out->events_published = events_published->Value();
}

const EngineStats& CoSpaceEngine::stats() const {
  c_.Fill(&snapshot_);
  return snapshot_;
}

pubsub::Event MakeMirrorPositionEvent(EntityId id, const geo::Vec3& pos,
                                      Micros t, QosClass qos) {
  pubsub::Event event;
  event.topic = "mirror.position";
  event.position = pos;
  event.qos = qos;
  event.published_at = t;
  event.payload.event_time = t;
  event.payload.space = stream::Space::kPhysical;
  event.payload.qos = qos;
  event.payload.key = std::to_string(id);
  event.payload.Set(kFieldEntity, int64_t(id));
  return event;
}

CoSpaceEngine::CoSpaceEngine(EngineOptions options, Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      physical_(stream::Space::kPhysical, options.world_bounds),
      virtual_(stream::Space::kVirtual, options.world_bounds),
      coherency_(options.default_contract) {
  broker_ = std::make_unique<pubsub::Broker>(
      options.world_bounds, options.broker_cell,
      [this](net::NodeId subscriber, const pubsub::Event& event) {
        // Dispatch to the watcher registered for this subscriber id.
        for (auto& [node, deliver] : watchers_) {
          if (node == subscriber && deliver) deliver(subscriber, event);
        }
      });
}

void CoSpaceEngine::SpawnPhysical(const Entity& entity) {
  Entity phys = entity;
  phys.origin = stream::Space::kPhysical;
  physical_.Upsert(phys);
  // Mirror immediately so the virtual model starts complete.
  Entity mirror = phys;
  virtual_.Upsert(mirror);
  coherency_.Offer(entity.id, entity.position, entity.updated_at);
}

void CoSpaceEngine::SpawnVirtual(const Entity& entity) {
  Entity virt = entity;
  virt.origin = stream::Space::kVirtual;
  virtual_.Upsert(virt);
}

void CoSpaceEngine::SetContract(EntityId id,
                                const consistency::CoherencyContract& c) {
  coherency_.SetContract(id, c);
}

bool CoSpaceEngine::IngestPhysicalPosition(EntityId id, const geo::Vec3& pos,
                                           Micros t, QosClass qos) {
  obs::Span span("ingest.position");
  obs::ScopedTimer ingest_timer(c_.ingest_us[uint8_t(qos)]);
  c_.physical_updates->Add(1);
  // The physical space always tracks ground truth.
  physical_.Move(id, pos, t);

  if (!coherency_.Offer(id, pos, t, /*bytes=*/64, qos)) {
    c_.suppressed_updates->Add(1);
    return false;
  }
  c_.mirrored_updates->Add(1);
  virtual_.Move(id, pos, t);

  // Tell interested cyber users.
  c_.events_published->Add(1);
  broker_->Publish(MakeMirrorPositionEvent(id, pos, t, qos));
  return true;
}

Status CoSpaceEngine::IngestPhysicalAttribute(EntityId id,
                                              const std::string& name,
                                              stream::Value value, Micros t,
                                              QosClass qos) {
  obs::ScopedTimer ingest_timer(c_.ingest_us[uint8_t(qos)]);
  Status s = physical_.SetAttribute(id, name, value);
  if (!s.ok()) return s;
  s = virtual_.SetAttribute(id, name, value);
  if (!s.ok()) return s;
  pubsub::Event event;
  event.topic = "mirror.attribute";
  event.qos = qos;
  event.published_at = t;
  event.payload.event_time = t;
  event.payload.qos = qos;
  event.payload.key = std::to_string(id);
  event.payload.Set(kFieldEntity, int64_t(id));
  event.payload.Set(kFieldAttribute, name);
  event.payload.Set(kFieldValue, std::move(value));
  const Entity* e = physical_.Get(id);
  if (e != nullptr) event.position = e->position;
  c_.events_published->Add(1);
  broker_->Publish(event);
  return Status::OK();
}

size_t CoSpaceEngine::IssueVirtualCommand(const geo::AABB& region,
                                          const stream::Tuple& command) {
  c_.virtual_commands->Add(1);
  // Affected entities are resolved against the VIRTUAL model — the
  // commander acts on what the virtual world shows (Fig. 1's
  // virtual->physical arrow), which is only coherency-bound accurate.
  auto affected = virtual_.Range(region);
  size_t relayed = 0;
  for (const Entity* e : affected) {
    if (e->origin != stream::Space::kPhysical) continue;  // pure-virtual
    for (const auto& handler : command_handlers_) {
      handler(e->id, command);
      ++relayed;
    }
  }
  c_.relayed_commands->Add(relayed);
  return affected.size();
}

void CoSpaceEngine::OnPhysicalCommand(CommandHandler handler) {
  command_handlers_.push_back(std::move(handler));
}

uint64_t CoSpaceEngine::WatchRegion(net::NodeId subscriber,
                                    const geo::AABB& region,
                                    pubsub::Broker::Deliver deliver) {
  watchers_.emplace_back(subscriber, std::move(deliver));
  pubsub::Subscription sub;
  sub.subscriber = subscriber;
  sub.region = region;
  return broker_->Subscribe(std::move(sub));
}

}  // namespace deluge::core
