#ifndef DELUGE_CORE_SCENARIOS_H_
#define DELUGE_CORE_SCENARIOS_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/qos.h"
#include "common/thread_pool.h"
#include "core/parallel_engine.h"
#include "core/workloads.h"
#include "net/network.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "pubsub/reliable.h"
#include "runtime/serverless.h"
#include "storage/kv_store.h"

namespace deluge::core {

/// Knobs for `MixedScenario` — the paper's three §II applications
/// composed into one mixed workload (E25).  Defaults run in a few
/// hundred milliseconds; the CI smoke run shrinks `ticks`.
struct ScenarioOptions {
  /// Virtual-time ticks to run and their spacing.  The tick interval is
  /// also the mirror refresh floor, so it must sit well inside the
  /// kRealtime freshness target (50 ms by default).
  int ticks = 200;
  Micros tick_dt = 20 * kMicrosPerMilli;

  // --- Live event streaming (§II-B): a concert crowd of kRealtime
  // avatars plus kInteractive roaming tour groups on a sharded engine.
  size_t crowd_entities = 512;
  double crowd_skew = 8.0;
  size_t ar_entities = 256;
  size_t num_swarms = 4;
  double swarm_spread = 30.0;

  // --- Digital-twin hospital (§II-A): kTelemetry vitals on a serial
  // engine, committed durably, archived in kBulk batches.
  size_t patients = 64;
  int archive_every = 20;  ///< ticks between kBulk archive batches

  // --- City-scale AR navigation (§II-C): serverless route queries
  // (kInteractive) racing map-tile prefetch (kBulk) under a
  // concurrency limit.
  size_t nav_invokes_per_tick = 12;
  size_t tile_prefetch_per_tick = 8;
  size_t nav_concurrency = 8;
  size_t nav_queue_limit = 16;

  // --- Remote mirror site: a sample of every class's events crosses
  // the simulated WAN through the retrying deliverer; periodic
  // partition windows exercise the per-class retry budgets.
  size_t remote_forward_per_tick = 24;
  /// Ticks between partition onsets (0 = off).  Keep this away from the
  /// deliverer's breaker open-duration (1 s = 50 ticks at the default
  /// dt): when the two resonate, every half-open probe lands inside the
  /// next partition window and the WAN never recovers.
  int partition_every = 60;
  int partition_ticks = 3;  ///< partition window length

  // --- Serving tier shape.
  size_t num_shards = 4;
  size_t broker_queue_limit = 4096;
  /// Queued deliveries are drained in chunks of this size with the
  /// virtual clock advanced `delivery_service_us` per delivery between
  /// chunks, so best-class-first draining turns into class-separated
  /// delivery latencies (kRealtime leaves in the first chunks).
  size_t drain_chunk = 256;
  Micros delivery_service_us = 4;

  /// Elastic rebalancing EWMA (forwarded to `ElasticOptions`).
  double ewma_alpha = 0.3;

  /// KVStore directory for the durable-telemetry leg; empty skips the
  /// storage leg entirely (totals report zero commits).
  std::string storage_dir;
  uint64_t seed = 42;
};

/// What actually happened, summed across the three applications.
struct ScenarioTotals {
  uint64_t updates_ingested = 0;    ///< sensed position updates
  uint64_t mirror_refreshes = 0;
  uint64_t broker_deliveries = 0;   ///< both engines' brokers
  uint64_t broker_shed = 0;         ///< shed by bounded queues
  uint64_t rebalances = 0;          ///< elastic migrations executed
  uint64_t nav_completed = 0;       ///< route queries finished
  uint64_t serverless_shed = 0;     ///< admission-queue sheds
  uint64_t telemetry_commits = 0;   ///< durable vitals batches
  uint64_t archive_commits = 0;     ///< kBulk archive batches
  uint64_t wal_syncs = 0;           ///< fdatasyncs actually issued
  uint64_t remote_forwarded = 0;    ///< events handed to the deliverer
  uint64_t remote_received = 0;     ///< frames that reached the site
  uint64_t remote_gave_up = 0;      ///< retry budgets exhausted
};

/// The E25 end-to-end composition: live event streaming, the hospital
/// digital twin, and AR navigation share one process, one QoS taxonomy
/// (DESIGN.md §13), and one metrics registry.  Running it populates
/// every per-class hop histogram (`engine.ingest_us`,
/// `coherency.refresh_gap_us`, `broker.delivery_us`, `net.send_us`,
/// `storage.commit_us`), which `ComputeSloReport` then grades against a
/// `QosPolicy` — the regression gate `bench_e25_e2e` ships.
class MixedScenario {
 public:
  explicit MixedScenario(ScenarioOptions options);
  ~MixedScenario();
  MixedScenario(const MixedScenario&) = delete;
  MixedScenario& operator=(const MixedScenario&) = delete;

  /// Runs the configured number of ticks and returns the totals.
  /// Single-shot: construct a fresh scenario per run.
  ScenarioTotals Run();

  const ScenarioOptions& options() const { return options_; }

 private:
  void DrainBrokers();
  void TickHospital(int tick, Micros now);
  void TickNavigation();
  void TickRemoteSite(int tick);

  ScenarioOptions options_;
  SimClock clock_;          // engines' virtual time
  net::Simulator sim_;      // WAN + serverless virtual time
  ThreadPool pool_;

  // Live event streaming tier.
  std::unique_ptr<ParallelEngine> engine_;
  std::unique_ptr<FlashCrowdWorkload> crowd_;
  std::unique_ptr<RoamingSwarmWorkload> swarms_;
  EntityId swarm_id_offset_ = 0;

  // Hospital twin tier.
  std::unique_ptr<CoSpaceEngine> hospital_;

  // AR navigation tier.
  runtime::ServerlessRuntime runtime_;

  // Remote mirror site.
  net::Network net_;
  net::SimTransport transport_;
  pubsub::ReliableDeliverer deliverer_;
  net::NodeId local_site_ = 0;
  net::NodeId remote_site_ = 0;
  std::vector<pubsub::Event> remote_backlog_;
  uint64_t backlog_sampler_ = 0;

  // Durable telemetry tier (null when storage_dir is empty).
  std::unique_ptr<storage::KVStore> store_;

  ScenarioTotals totals_;
};

// ---------------------------------------------------------------------
// Per-class SLO accounting over the metrics registry.

/// Attainment of one class at one hop.
struct LegSlo {
  std::string leg;            ///< registry metric name
  uint64_t samples = 0;
  double p99_us = 0.0;
  Micros target_us = 0;       ///< 0 = informational, no claim
  double min_attainment = 0.0;
  double attainment = 1.0;    ///< fraction of samples <= target
  /// True when the claim holds (vacuously for informational legs and
  /// legs nothing was measured against).
  bool met = true;
};

struct ClassSlo {
  QosClass cls = QosClass::kBulk;
  std::vector<LegSlo> legs;
  bool met = true;  ///< every claimed leg met
};

/// The per-class scorecard `bench_e25_e2e` gates on.
struct SloReport {
  std::array<ClassSlo, kQosClassCount> classes;
  bool all_met = true;

  const ClassSlo& for_class(QosClass c) const {
    return classes[uint8_t(c)];
  }
  /// The named leg of `c`; nullptr when it has no samples and no claim.
  const LegSlo* leg(QosClass c, std::string_view name) const;
  /// Fixed-width human-readable table (one line per class × leg).
  std::string ToString() const;
};

/// Grades the global registry against `policy`: for every class, each
/// instrumented hop's `{qos=...}` histograms are merged across
/// instances and scored as FractionBelow(target) >= min_attainment.
/// Hops and their policy targets:
///   engine.ingest_us          — informational (wall-clock, no claim)
///   coherency.refresh_gap_us  — freshness_us
///   broker.delivery_us        — delivery_p99_us
///   net.send_us               — delivery_p99_us (the WAN hop shares
///                               the delivery claim)
///   storage.commit_us         — commit_p99_us
/// Legs with zero samples or a zero target are vacuously met, so the
/// report is meaningful for partial deployments too.
SloReport ComputeSloReport(const QosPolicy& policy = QosPolicy::Default());

}  // namespace deluge::core

#endif  // DELUGE_CORE_SCENARIOS_H_
