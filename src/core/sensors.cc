#include "core/sensors.h"

#include <algorithm>
#include <cmath>

namespace deluge::core {

SensorFleet::SensorFleet(const geo::AABB& world, SensorFleetOptions options)
    : world_(world), options_(options), rng_(options.seed) {
  states_.resize(options_.num_entities);
  for (auto& s : states_) {
    s.position = {rng_.UniformDouble(world.min.x, world.max.x),
                  rng_.UniformDouble(world.min.y, world.max.y),
                  rng_.UniformDouble(world.min.z, world.max.z)};
    double heading = rng_.UniformDouble(0, 2 * M_PI);
    double speed = rng_.UniformDouble(0.2, options_.max_speed);
    s.velocity = {speed * std::cos(heading), speed * std::sin(heading), 0};
  }
}

void SensorFleet::MaybeTurn(EntityState* s) {
  if (!rng_.Bernoulli(options_.turn_probability)) return;
  double heading = rng_.UniformDouble(0, 2 * M_PI);
  double speed = rng_.UniformDouble(0.2, options_.max_speed);
  s->velocity = {speed * std::cos(heading), speed * std::sin(heading), 0};
}

void SensorFleet::Bounce(EntityState* s) {
  auto bounce_axis = [](double& p, double& v, double lo, double hi) {
    if (p < lo) {
      p = lo + (lo - p);
      v = -v;
    } else if (p > hi) {
      p = hi - (p - hi);
      v = -v;
    }
    p = std::clamp(p, lo, hi);
  };
  bounce_axis(s->position.x, s->velocity.x, world_.min.x, world_.max.x);
  bounce_axis(s->position.y, s->velocity.y, world_.min.y, world_.max.y);
  bounce_axis(s->position.z, s->velocity.z, world_.min.z, world_.max.z);
}

std::vector<SensorReading> SensorFleet::Tick(Micros dt, Micros now) {
  std::vector<SensorReading> readings;
  readings.reserve(states_.size());
  double dt_s = double(dt) / double(kMicrosPerSecond);
  for (size_t i = 0; i < states_.size(); ++i) {
    EntityState& s = states_[i];
    MaybeTurn(&s);
    s.position += s.velocity * dt_s;
    Bounce(&s);
    if (rng_.Bernoulli(options_.drop_probability)) continue;
    SensorReading r;
    r.entity = EntityId(i + 1);
    r.position = s.position;
    if (options_.gps_noise_stddev > 0) {
      r.position += {rng_.Gaussian(0, options_.gps_noise_stddev),
                     rng_.Gaussian(0, options_.gps_noise_stddev), 0};
    }
    r.t = now;
    readings.push_back(r);
  }
  return readings;
}

const geo::Vec3& SensorFleet::TruePosition(EntityId id) const {
  return states_.at(size_t(id - 1)).position;
}

}  // namespace deluge::core
