#ifndef DELUGE_CORE_PARALLEL_ENGINE_H_
#define DELUGE_CORE_PARALLEL_ENGINE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/small_vec.h"
#include "common/thread_pool.h"
#include "core/engine.h"

namespace deluge::core {

/// One sensed position update — the unit of the batched ingest API.
struct SensedUpdate {
  EntityId id = 0;
  geo::Vec3 position;
  Micros t = 0;
  /// Rides the emitted mirror event end-to-end (shedding, scheduling,
  /// per-class SLO accounting downstream).
  QosClass qos = QosClass::kRealtime;
};

/// Maps positions to spatial shards through an explicit tile→shard
/// assignment.
///
/// The world's XY extent is cut into a grid of `cell`-sized tiles and
/// each tile's Morton code (`geo::MortonCodec::Interleave2D` of its
/// coordinates) indexes a dense assignment table.  The initial
/// assignment stripes tiles across shards in Z-order (`code %
/// num_shards`), which spreads a uniform world evenly; an elastic
/// rebalancer may later install any other assignment — contiguous
/// Morton ranges sized by measured load — via `SetAssignment`.  Z is
/// ignored: metaverse worlds are flat relative to their horizontal
/// extent.
///
/// `ShardOf` is one clamp + interleave + table load; `ShardsCovering`
/// fills a caller-provided `common::SmallVec`, so neither allocates on
/// the hot path.
class SpatialSharder {
 public:
  /// Distinct-shard result set.  Inline capacity covers every practical
  /// shard count without touching the heap.
  using ShardList = common::SmallVec<size_t, 16>;

  /// Tile grids are capped at this many tiles per axis; finer `cell`
  /// values are coarsened so the dense assignment table stays small
  /// (≤ 128×128 → ≤ 16384 codes after rounding up to a power of two).
  static constexpr int64_t kMaxTilesPerAxis = 128;

  SpatialSharder(const geo::AABB& world, double cell, size_t num_shards);

  /// The shard owning the tile containing `p` (clamped into the world).
  size_t ShardOf(const geo::Vec3& p) const { return map_[TileCodeOf(p)]; }

  /// Fills `out` with the distinct shards owning any tile touching
  /// `box`, ascending.  Falls back to "all shards" when the box covers
  /// more tiles than is worth enumerating (or when num_shards exceeds
  /// the 64-bit seen-mask).  Allocation-free while the result fits the
  /// inline capacity.
  void ShardsCovering(const geo::AABB& box, ShardList* out) const;

  /// Morton code of the tile containing `p` (clamped into the grid);
  /// always < `tile_code_limit()`.
  uint32_t TileCodeOf(const geo::Vec3& p) const;

  /// Size of the assignment table (a power of four; includes codes for
  /// padding tiles outside the world that never receive load).
  size_t tile_code_limit() const { return map_.size(); }

  /// The current tile→shard assignment, indexed by tile Morton code.
  const std::vector<uint32_t>& assignment() const { return map_; }

  /// Installs a new assignment (must have `tile_code_limit()` entries,
  /// every value < num_shards).  Callers serialize against ShardOf /
  /// ShardsCovering readers.
  void SetAssignment(std::vector<uint32_t> assignment);

  /// Builds a load-balanced assignment: walking tiles in Morton order,
  /// contiguous code ranges are cut so each shard carries ~1/n of the
  /// total `tile_load` — hot ranges end up split across several shards,
  /// cold ranges merged onto one.  A zero total load yields an even
  /// contiguous split.
  static std::vector<uint32_t> BalancedAssignment(
      const std::vector<double>& tile_load, size_t num_shards);

  size_t num_shards() const { return num_shards_; }
  double cell() const { return cell_; }

 private:
  int64_t TileX(double x) const;
  int64_t TileY(double y) const;

  geo::AABB world_;
  double cell_;
  size_t num_shards_;
  int64_t tiles_x_ = 1;
  int64_t tiles_y_ = 1;
  std::vector<uint32_t> map_;  // tile Morton code -> shard
};

/// Load-adaptive shard rebalancing knobs (ROADMAP item 3: flash crowds
/// melt a static assignment's hot shard while the others idle).
struct ElasticOptions {
  /// Master switch.  Off (default) keeps the static Z-order striping
  /// and skips all load accounting — zero overhead on the E18 path.
  bool enabled = false;
  /// EWMA smoothing factor folded once per pipeline run:
  /// ewma = (1-alpha)*ewma + alpha*batch_load.  Higher values track
  /// load drift faster at the cost of rebalancing on noise; values
  /// outside (0, 1] fall back to the default at engine construction.  See
  /// EXPERIMENTS.md E23 for the drift-adaptation limitation this knob
  /// trades against.
  double ewma_alpha = 0.3;
  /// Rebalance when max/mean per-shard EWMA load exceeds this.
  double rebalance_threshold = 1.25;
  /// Pipeline runs between imbalance checks (amortizes the check and
  /// lets the EWMA settle after a migration).
  size_t min_batches_between_rebalances = 4;
  /// Weight of one fan-out delivery relative to one ingested update in
  /// the per-tile cost model.
  double fanout_weight = 1.0;
  /// Hottest shard must carry at least this much EWMA load before a
  /// rebalance is worth its pause (filters start-up noise).
  double min_shard_load = 64.0;
};

/// Configuration of the sharded pipeline.
struct ParallelEngineOptions {
  /// Per-shard engine configuration (world bounds, default coherency
  /// contract, broker cell size).
  EngineOptions engine;
  /// Number of spatial shards (clamped to at least 1).
  size_t num_shards = 4;
  /// Side length of the shard-assignment tile.  0 derives a tile that
  /// gives each shard ~8 tiles along the world's X extent.
  double shard_cell = 0.0;
  /// Elastic rebalancing (off by default).
  ElasticOptions elastic;
};

/// The co-space engine scaled across cores: Fig. 7's parallelized
/// serving tier for the Fig. 1 synchronization loop.
///
/// `WorldSpace` state, the coherency filter, and the broker's regional
/// subscription index are partitioned into `num_shards` spatial shards.
/// Each entity is owned by the shard of its home tile — its spawn
/// position initially, re-anchored to its current position when the
/// elastic rebalancer migrates it.  Ownership only changes between
/// pipeline runs, so per-entity update order — and therefore every
/// coherency decision — is identical to a single-threaded run.
/// `IngestBatch` drives a two-phase pipeline over the shared
/// `ThreadPool`:
///
///   1. ingest: each shard applies its entities' updates (hash-grid
///      move, coherency check, mirror refresh) and stages emitted
///      events into a per-destination outbox;
///   2. fan-out: each shard publishes the events whose *position* maps
///      to it on its own broker, so subscriber matching and delivery
///      run shard-local and in parallel.
///
/// Regional watches are registered on every shard overlapping the
/// region, which together with position-routed fan-out makes delivery
/// exact even when entities roam off their home shard.  Summed
/// `EngineStats` are byte-identical to `CoSpaceEngine` fed the same
/// per-entity update sequences.
///
/// With `ElasticOptions.enabled`, every pipeline run charges each
/// update and each delivery to its position tile; the per-tile EWMA
/// feeds a rebalancer that runs between pipeline runs.  When per-shard
/// load skews past the threshold it computes a new
/// contiguous-Morton-range assignment
/// sized by load (splitting hot ranges, merging cold ones) and
/// executes the handoff protocol: entity state (`WorldSpace` entries
/// in both spaces plus `CoherencyFilter` mirror state) moves to the
/// new owner, staged updates follow in order, regional watch legs are
/// re-registered to the shards now covering their region, and the tile
/// map is swapped — all before the next event is published, so no
/// delivery is dropped, duplicated, or reordered (DESIGN.md §7).
///
/// Thread-safety: spawn/watch/contract registration is a single-threaded
/// setup phase.  After setup, `Enqueue` may be called from any number of
/// threads concurrently (per-entity order is preserved per caller);
/// `IngestBatch`/`Flush`/`IssueVirtualCommand`/`Rebalance` serialize
/// against each other internally.  Watcher callbacks fire concurrently
/// from shard tasks and must be thread-safe.
class ParallelEngine {
 public:
  /// `pool` drives the shard tasks; null (or 1 shard) runs the same
  /// pipeline serially on the calling thread.  The pool is borrowed and
  /// must outlive the engine.
  explicit ParallelEngine(ParallelEngineOptions options,
                          ThreadPool* pool = nullptr,
                          Clock* clock = nullptr);

  // ------------------------------------------------ setup (not thread-safe)

  /// Registers an entity in the physical space of its home shard and
  /// (immediately) its virtual mirror.
  void SpawnPhysical(const Entity& entity);

  /// Registers a purely virtual entity on the shard of its position.
  void SpawnVirtual(const Entity& entity);

  /// Installs a per-entity coherency contract (on every shard, so the
  /// call is valid before or after the entity spawns).
  void SetContract(EntityId id, const consistency::CoherencyContract& c);

  /// Subscribes `subscriber` to mirror updates inside `region`.  The
  /// subscription is registered on every shard overlapping the region
  /// (and follows the region across rebalances); returns one watch id
  /// covering all of them.
  uint64_t WatchRegion(net::NodeId subscriber, const geo::AABB& region,
                       pubsub::Broker::Deliver deliver);

  /// Removes a watch registered via `WatchRegion`; false when unknown.
  bool Unwatch(uint64_t watch_id);

  /// Registers the physical-side command channel (ground relays).
  void OnPhysicalCommand(CoSpaceEngine::CommandHandler handler);

  // ------------------------------------------------ ingest (thread-safe)

  /// Ingests a batch of sensed updates through the two-phase pipeline.
  /// Updates are routed to home shards in order, so one batch may carry
  /// several updates per entity.  Returns the number of mirror
  /// refreshes.
  size_t IngestBatch(std::span<const SensedUpdate> updates);

  /// Stages one update on its home shard's ingest queue (callable from
  /// any thread; a per-shard mutex makes this an amortized few-ns
  /// append).  Staged updates are processed by the next `Flush` — and
  /// follow their entity if a rebalance migrates it first.
  void Enqueue(const SensedUpdate& update);

  /// Runs the pipeline over everything staged by `Enqueue`.  Returns
  /// the number of mirror refreshes.
  size_t Flush();

  /// An action taken in the virtual space targeted at physical entities
  /// inside `region`; affected entities are resolved against every
  /// shard's virtual space in parallel, then relayed to handlers in
  /// deterministic shard order.  Returns affected entity count.
  size_t IssueVirtualCommand(const geo::AABB& region,
                             const stream::Tuple& command);

  // ------------------------------------------------ elastic rebalancing

  /// Forces a rebalance pass now, bypassing the cadence and imbalance
  /// gates (the accounting itself still requires
  /// `ElasticOptions.enabled`).  Returns true when the assignment
  /// changed and a migration ran.  Serializes with the pipeline.
  bool Rebalance();

  /// Per-shard EWMA load under the current assignment (empty-world
  /// zeros before any elastic pipeline run).
  std::vector<double> ShardLoads() const;

  /// max/mean of `ShardLoads` (1.0 when unloaded).
  double LoadImbalance() const;

  uint64_t rebalance_count() const { return rebalances_->Value(); }
  uint64_t entities_migrated() const { return entities_migrated_->Value(); }
  uint64_t tiles_moved() const { return tiles_moved_->Value(); }
  /// Wall-clock cost of each completed migration pause, µs.
  const obs::ConcurrentHistogram* migration_histogram() const {
    return migration_us_;
  }

  // ------------------------------------------------ introspection

  /// Sums per-shard counters (deterministic for equal inputs).
  EngineStats TotalStats() const;
  consistency::CoherencyStats TotalCoherencyStats() const;
  pubsub::BrokerStats TotalBrokerStats() const;

  const EngineStats& shard_stats(size_t shard) const;
  pubsub::Broker& shard_broker(size_t shard);

  /// Installs `clock` as the QoS delivery-latency clock on every shard
  /// broker (see `Broker::SetClock`).  Pass the workload's virtual-time
  /// clock so `broker.delivery_us{qos=...}` measures publish→deliver in
  /// the same timebase as `Event::published_at`.  Null disables.
  void SetQosClock(const Clock* clock);

  /// Looks up an entity in its home shard's spaces; nullptr if absent.
  const Entity* FindPhysical(EntityId id) const;
  const Entity* FindVirtual(EntityId id) const;

  size_t num_shards() const { return shards_.size(); }
  const SpatialSharder& sharder() const { return sharder_; }

 private:
  struct Shard {
    Shard(const EngineOptions& opts, size_t num_shards, size_t index,
          size_t tile_code_limit, pubsub::Broker::Deliver deliver);

    WorldSpace physical;
    WorldSpace virtual_space;
    consistency::CoherencyFilter coherency;
    std::unique_ptr<pubsub::Broker> broker;
    /// Registry-backed engine counters, labelled {shard=<index>}.  Each
    /// shard is written by exactly one pool worker per pipeline phase,
    /// so sums stay byte-identical to the serial engine.
    obs::StatsScope obs;
    CoSpaceEngine::EngineCounters c;
    mutable EngineStats snapshot;
    std::mutex staged_mu;
    std::vector<SensedUpdate> staged;
    /// Events emitted in phase 1, bucketed by destination shard.
    std::vector<std::vector<pubsub::Event>> outbox;
    /// Per-tile load charged this pipeline run (elastic mode only).
    /// Only this shard's task writes it (each task charges its own
    /// array, whatever the tile), so the accounting is race-free
    /// without atomics; the fold sums the arrays under pipeline_mu_.
    std::vector<double> tile_load;
    std::vector<uint32_t> touched;  ///< indices of nonzero tile_load
  };

  /// Entity → owning shard + home tile.  The shard is re-read on every
  /// route; the tile is re-anchored to the entity's current position at
  /// each rebalance so load attribution follows roaming entities.
  struct HomeRef {
    uint32_t shard = 0;
    uint32_t tile = 0;
  };

  size_t HomeOf(EntityId id, const geo::Vec3& fallback_pos) const;
  bool IngestOnShard(Shard& shard, const SensedUpdate& u);
  static void ChargeTile(Shard& shard, uint32_t tile, double amount);
  /// Routes + runs the two-phase pipeline under `pipeline_mu_`.  When
  /// `flush_staged` is set, each shard's staged queue is drained ahead
  /// of `direct`.  Folds elastic load accounting and may rebalance.
  size_t RunPipeline(std::span<const SensedUpdate> direct,
                     bool flush_staged);
  /// Folds the shards' per-run tile loads into the EWMA (elastic only;
  /// pipeline_mu_ held).
  void FoldTileLoadsLocked();
  /// Cadence + threshold gate in front of RebalanceLocked.
  void MaybeRebalanceLocked();
  /// The handoff protocol; pipeline_mu_ held, outboxes empty.  Returns
  /// true when the assignment changed.
  bool RebalanceLocked();
  /// Moves one entity's spaces + coherency state between shards.
  void MigrateEntity(EntityId id, Shard& from, Shard& to);
  std::vector<double> ShardLoadsLocked() const;

  ParallelEngineOptions options_;
  Clock* clock_;
  ThreadPool* pool_;
  SpatialSharder sharder_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Entity -> owning shard + home tile.  Read-only during a pipeline
  /// run; mutated only by spawns (setup) and RebalanceLocked (which
  /// holds both pipeline_mu_ and route_mu_ exclusively).
  std::unordered_map<EntityId, HomeRef> home_;
  /// Guards routing state (home_, the sharder assignment, staged
  /// queues' shard choice) against migration: Enqueue takes it shared,
  /// RebalanceLocked takes it exclusive.  Pipeline-side readers are
  /// already excluded via pipeline_mu_.
  mutable std::shared_mutex route_mu_;
  std::vector<std::pair<net::NodeId, pubsub::Broker::Deliver>> watchers_;
  uint64_t next_watch_id_ = 1;
  /// One regional watch: its defining subscription plus the per-shard
  /// broker legs currently carrying it (re-registered on rebalance).
  struct Watch {
    net::NodeId subscriber = 0;
    geo::AABB region;
    std::vector<std::pair<size_t, uint64_t>> legs;  // (shard, sub id)
  };
  std::unordered_map<uint64_t, Watch> watches_;
  std::vector<CoSpaceEngine::CommandHandler> command_handlers_;
  /// Serializes pipeline runs, rebalances, and stats reads against
  /// each other.
  mutable std::mutex pipeline_mu_;

  // Elastic state (pipeline_mu_ held for all access).
  std::vector<double> tile_ewma_;
  std::vector<double> tile_batch_;  // fold scratch, zeroed after use
  size_t batches_since_rebalance_check_ = 0;

  obs::StatsScope elastic_obs_{"elastic"};
  obs::Counter* rebalances_ = elastic_obs_.counter("rebalances");
  obs::Counter* entities_migrated_ =
      elastic_obs_.counter("entities_migrated");
  obs::Counter* tiles_moved_ = elastic_obs_.counter("tiles_moved");
  obs::Counter* staged_moved_ = elastic_obs_.counter("staged_moved");
  obs::Counter* watch_legs_added_ = elastic_obs_.counter("watch_legs_added");
  obs::Counter* watch_legs_removed_ =
      elastic_obs_.counter("watch_legs_removed");
  obs::Gauge* load_imbalance_ =
      elastic_obs_.gauge("load_imbalance", obs::Gauge::Agg::kLast);
  obs::ConcurrentHistogram* migration_us_ =
      elastic_obs_.histogram("migration_us");
};

}  // namespace deluge::core

#endif  // DELUGE_CORE_PARALLEL_ENGINE_H_
