#ifndef DELUGE_CORE_PARALLEL_ENGINE_H_
#define DELUGE_CORE_PARALLEL_ENGINE_H_

#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"

namespace deluge::core {

/// One sensed position update — the unit of the batched ingest API.
struct SensedUpdate {
  EntityId id = 0;
  geo::Vec3 position;
  Micros t = 0;
};

/// Maps positions to spatial shards.
///
/// The world's XY extent is cut into a grid of `cell`-sized tiles and
/// tiles map to shards by Morton order of their coordinates (reusing
/// `geo::MortonCodec::Interleave`), so neighbouring tiles mostly land
/// on the same shard while the Z-order walk stripes far-apart regions
/// across all shards for load balance.  Z is ignored: metaverse worlds
/// are flat relative to their horizontal extent.
class SpatialSharder {
 public:
  SpatialSharder(const geo::AABB& world, double cell, size_t num_shards);

  /// The shard owning the tile containing `p` (clamped into the world).
  size_t ShardOf(const geo::Vec3& p) const;

  /// Distinct shards owning any tile touching `box`, ascending.  Falls
  /// back to "all shards" when the box covers more tiles than is worth
  /// enumerating.
  std::vector<size_t> ShardsCovering(const geo::AABB& box) const;

  size_t num_shards() const { return num_shards_; }
  double cell() const { return cell_; }

 private:
  int64_t TileX(double x) const;
  int64_t TileY(double y) const;

  geo::AABB world_;
  double cell_;
  size_t num_shards_;
};

/// Configuration of the sharded pipeline.
struct ParallelEngineOptions {
  /// Per-shard engine configuration (world bounds, default coherency
  /// contract, broker cell size).
  EngineOptions engine;
  /// Number of spatial shards (clamped to at least 1).
  size_t num_shards = 4;
  /// Side length of the shard-assignment tile.  0 derives a tile that
  /// gives each shard ~8 tiles along the world's X extent.
  double shard_cell = 0.0;
};

/// The co-space engine scaled across cores: Fig. 7's parallelized
/// serving tier for the Fig. 1 synchronization loop.
///
/// `WorldSpace` state, the coherency filter, and the broker's regional
/// subscription index are partitioned into `num_shards` spatial shards.
/// Each entity is owned by the shard of its spawn position (stable, so
/// per-entity update order — and therefore every coherency decision —
/// is identical to a single-threaded run).  `IngestBatch` drives a
/// two-phase pipeline over the shared `ThreadPool`:
///
///   1. ingest: each shard applies its entities' updates (hash-grid
///      move, coherency check, mirror refresh) and stages emitted
///      events into a per-destination outbox;
///   2. fan-out: each shard publishes the events whose *position* maps
///      to it on its own broker, so subscriber matching and delivery
///      run shard-local and in parallel.
///
/// Regional watches are registered on every shard overlapping the
/// region, which together with position-routed fan-out makes delivery
/// exact even when entities roam off their home shard.  Summed
/// `EngineStats` are byte-identical to `CoSpaceEngine` fed the same
/// per-entity update sequences.
///
/// Thread-safety: spawn/watch/contract registration is a single-threaded
/// setup phase.  After setup, `Enqueue` may be called from any number of
/// threads concurrently (per-entity order is preserved per caller);
/// `IngestBatch`/`Flush`/`IssueVirtualCommand` serialize against each
/// other internally.  Watcher callbacks fire concurrently from shard
/// tasks and must be thread-safe.
class ParallelEngine {
 public:
  /// `pool` drives the shard tasks; null (or 1 shard) runs the same
  /// pipeline serially on the calling thread.  The pool is borrowed and
  /// must outlive the engine.
  explicit ParallelEngine(ParallelEngineOptions options,
                          ThreadPool* pool = nullptr,
                          Clock* clock = nullptr);

  // ------------------------------------------------ setup (not thread-safe)

  /// Registers an entity in the physical space of its home shard and
  /// (immediately) its virtual mirror.
  void SpawnPhysical(const Entity& entity);

  /// Registers a purely virtual entity on the shard of its position.
  void SpawnVirtual(const Entity& entity);

  /// Installs a per-entity coherency contract (on every shard, so the
  /// call is valid before or after the entity spawns).
  void SetContract(EntityId id, const consistency::CoherencyContract& c);

  /// Subscribes `subscriber` to mirror updates inside `region`.  The
  /// subscription is registered on every shard overlapping the region;
  /// returns one watch id covering all of them.
  uint64_t WatchRegion(net::NodeId subscriber, const geo::AABB& region,
                       pubsub::Broker::Deliver deliver);

  /// Removes a watch registered via `WatchRegion`; false when unknown.
  bool Unwatch(uint64_t watch_id);

  /// Registers the physical-side command channel (ground relays).
  void OnPhysicalCommand(CoSpaceEngine::CommandHandler handler);

  // ------------------------------------------------ ingest (thread-safe)

  /// Ingests a batch of sensed updates through the two-phase pipeline.
  /// Updates are routed to home shards in order, so one batch may carry
  /// several updates per entity.  Returns the number of mirror
  /// refreshes.
  size_t IngestBatch(std::span<const SensedUpdate> updates);

  /// Stages one update on its home shard's ingest queue (callable from
  /// any thread; a per-shard mutex makes this an amortized few-ns
  /// append).  Staged updates are processed by the next `Flush`.
  void Enqueue(const SensedUpdate& update);

  /// Runs the pipeline over everything staged by `Enqueue`.  Returns
  /// the number of mirror refreshes.
  size_t Flush();

  /// An action taken in the virtual space targeted at physical entities
  /// inside `region`; affected entities are resolved against every
  /// shard's virtual space in parallel, then relayed to handlers in
  /// deterministic shard order.  Returns affected entity count.
  size_t IssueVirtualCommand(const geo::AABB& region,
                             const stream::Tuple& command);

  // ------------------------------------------------ introspection

  /// Sums per-shard counters (deterministic for equal inputs).
  EngineStats TotalStats() const;
  consistency::CoherencyStats TotalCoherencyStats() const;
  pubsub::BrokerStats TotalBrokerStats() const;

  const EngineStats& shard_stats(size_t shard) const;
  pubsub::Broker& shard_broker(size_t shard);

  /// Looks up an entity in its home shard's spaces; nullptr if absent.
  const Entity* FindPhysical(EntityId id) const;
  const Entity* FindVirtual(EntityId id) const;

  size_t num_shards() const { return shards_.size(); }
  const SpatialSharder& sharder() const { return sharder_; }

 private:
  struct Shard {
    Shard(const EngineOptions& opts, size_t num_shards, size_t index,
          pubsub::Broker::Deliver deliver);

    WorldSpace physical;
    WorldSpace virtual_space;
    consistency::CoherencyFilter coherency;
    std::unique_ptr<pubsub::Broker> broker;
    /// Registry-backed engine counters, labelled {shard=<index>}.  Each
    /// shard is written by exactly one pool worker per pipeline phase,
    /// so sums stay byte-identical to the serial engine.
    obs::StatsScope obs;
    CoSpaceEngine::EngineCounters c;
    mutable EngineStats snapshot;
    std::mutex staged_mu;
    std::vector<SensedUpdate> staged;
    /// Events emitted in phase 1, bucketed by destination shard.
    std::vector<std::vector<pubsub::Event>> outbox;
  };

  size_t HomeOf(EntityId id, const geo::Vec3& fallback_pos) const;
  bool IngestOnShard(Shard& shard, const SensedUpdate& u);
  size_t RunPipeline(std::vector<std::vector<SensedUpdate>> batches);

  ParallelEngineOptions options_;
  Clock* clock_;
  ThreadPool* pool_;
  SpatialSharder sharder_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Entity -> owning shard (fixed at spawn; read-only during ingest).
  std::unordered_map<EntityId, size_t> home_;
  std::vector<std::pair<net::NodeId, pubsub::Broker::Deliver>> watchers_;
  uint64_t next_watch_id_ = 1;
  /// Watch id -> (shard, broker subscription id) fan-in.
  std::unordered_map<uint64_t, std::vector<std::pair<size_t, uint64_t>>>
      watches_;
  std::vector<CoSpaceEngine::CommandHandler> command_handlers_;
  /// Serializes pipeline runs (and stats reads) against each other.
  mutable std::mutex pipeline_mu_;
};

}  // namespace deluge::core

#endif  // DELUGE_CORE_PARALLEL_ENGINE_H_
