#include "core/scenarios.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <utility>

#include "obs/metrics.h"

namespace deluge::core {

namespace {

/// One instrumented hop and the policy target it is graded against
/// (nullptr = informational leg, reported but never gated).
struct LegSpec {
  const char* name;
  Micros QosTarget::*target;
};

const LegSpec kLegSpecs[] = {
    {"engine.ingest_us", nullptr},
    {"coherency.refresh_gap_us", &QosTarget::freshness_us},
    {"broker.delivery_us", &QosTarget::delivery_p99_us},
    {"net.send_us", &QosTarget::delivery_p99_us},
    {"storage.commit_us", &QosTarget::commit_p99_us},
};

/// The class index of a sample's {qos=...} label; -1 when untagged.
int QosIndexOf(const obs::Labels& labels) {
  for (const auto& [k, v] : labels) {
    if (k != "qos") continue;
    for (QosClass c : kAllQosClasses) {
      if (v == QosClassName(c)) return int(uint8_t(c));
    }
  }
  return -1;
}

}  // namespace

// ---------------------------------------------------------------------
// MixedScenario

MixedScenario::MixedScenario(ScenarioOptions options)
    : options_(std::move(options)),
      pool_(std::max<size_t>(1, options_.num_shards)),
      runtime_(&sim_, /*keep_alive=*/500 * kMicrosPerMilli),
      net_(&sim_, options_.seed),
      transport_(&net_, &sim_),
      deliverer_(&transport_, RetryPolicy{}, options_.seed) {
  // --- Live event streaming: crowd + swarms on the sharded engine. ----
  ParallelEngineOptions peo;
  peo.num_shards = options_.num_shards;
  peo.elastic.enabled = true;
  peo.elastic.ewma_alpha = options_.ewma_alpha;
  const geo::AABB world = peo.engine.world_bounds;
  engine_ = std::make_unique<ParallelEngine>(peo, &pool_, &clock_);
  engine_->SetQosClock(&clock_);
  for (size_t i = 0; i < engine_->num_shards(); ++i) {
    engine_->shard_broker(i).SetQueueLimit(options_.broker_queue_limit);
  }

  WorkloadOptions crowd_opts;
  crowd_opts.num_entities = options_.crowd_entities;
  crowd_opts.seed = options_.seed;
  crowd_ = std::make_unique<FlashCrowdWorkload>(world, crowd_opts,
                                                options_.crowd_skew);
  WorkloadOptions swarm_opts;
  swarm_opts.num_entities = options_.ar_entities;
  swarm_opts.seed = options_.seed + 1;
  swarms_ = std::make_unique<RoamingSwarmWorkload>(
      world, swarm_opts, options_.num_swarms, options_.swarm_spread);
  swarm_id_offset_ = EntityId(options_.crowd_entities);

  // Crowd mirrors are the kRealtime tier: refresh on any movement, cap
  // staleness inside the freshness target.  Swarm (kInteractive) trades
  // precision for bandwidth with a looser bound.
  const consistency::CoherencyContract realtime_contract{
      0.0, 50 * kMicrosPerMilli};
  const consistency::CoherencyContract interactive_contract{
      0.5, 60 * kMicrosPerMilli};
  for (EntityId id = FlashCrowdWorkload::first_id();
       id < FlashCrowdWorkload::first_id() + EntityId(crowd_->size());
       ++id) {
    Entity e;
    e.id = id;
    e.position = crowd_->Position(id);
    engine_->SpawnPhysical(e);
    engine_->SetContract(id, realtime_contract);
  }
  for (EntityId id = RoamingSwarmWorkload::first_id();
       id < RoamingSwarmWorkload::first_id() + EntityId(swarms_->size());
       ++id) {
    Entity e;
    e.id = id + swarm_id_offset_;
    e.position = swarms_->Position(id);
    engine_->SpawnPhysical(e);
    engine_->SetContract(e.id, interactive_contract);
  }

  // Four quadrant audiences plus one world-wide feed that samples
  // events toward the remote mirror site.
  const geo::Vec3 mid{(world.min.x + world.max.x) / 2,
                      (world.min.y + world.max.y) / 2, world.max.z};
  const geo::AABB quadrants[4] = {
      {world.min, mid},
      {{mid.x, world.min.y, world.min.z}, {world.max.x, mid.y, world.max.z}},
      {{world.min.x, mid.y, world.min.z}, {mid.x, world.max.y, world.max.z}},
      {{mid.x, mid.y, world.min.z}, world.max},
  };
  for (int q = 0; q < 4; ++q) {
    engine_->WatchRegion(net::NodeId(q), quadrants[q],
                         [](net::NodeId, const pubsub::Event&) {});
  }
  engine_->WatchRegion(
      net::NodeId(4), world,
      [this](net::NodeId, const pubsub::Event& event) {
        if (++backlog_sampler_ % 8 == 0 && remote_backlog_.size() < 4096) {
          remote_backlog_.push_back(event);
        }
      });

  // --- Hospital twin: kTelemetry vitals on a serial engine. -----------
  EngineOptions hopts;
  hopts.world_bounds = geo::AABB{{0, 0, 0}, {100, 100, 20}};
  hopts.default_contract = {0.0, 200 * kMicrosPerMilli};
  hopts.broker_cell = 10.0;
  hospital_ = std::make_unique<CoSpaceEngine>(hopts, &clock_);
  hospital_->broker().SetClock(&clock_);
  hospital_->broker().SetQueueLimit(options_.broker_queue_limit);
  for (size_t p = 0; p < options_.patients; ++p) {
    Entity bed;
    bed.id = EntityId(p + 1);
    bed.kind = EntityKind::kSensor;
    bed.position = {5.0 + double(p % 10) * 8.0, 5.0 + double(p / 10) * 8.0,
                    1.0};
    hospital_->SpawnPhysical(bed);
  }
  hospital_->WatchRegion(
      net::NodeId(0), hopts.world_bounds,
      [this](net::NodeId, const pubsub::Event& event) {
        if (++backlog_sampler_ % 4 == 0 && remote_backlog_.size() < 4096) {
          remote_backlog_.push_back(event);
        }
      });

  // --- AR navigation: serverless functions under a concurrency cap. --
  runtime_.Register({"nav.route", /*cold_start=*/30 * kMicrosPerMilli,
                     /*exec_time=*/5 * kMicrosPerMilli, /*memory_mb=*/128});
  runtime_.Register({"map.tile", /*cold_start=*/50 * kMicrosPerMilli,
                     /*exec_time=*/10 * kMicrosPerMilli, /*memory_mb=*/256});
  runtime_.SetConcurrencyLimit(options_.nav_concurrency,
                               options_.nav_queue_limit);

  // --- Remote mirror site across the simulated WAN. -------------------
  local_site_ = net_.AddNode([](const net::Message&) {});
  remote_site_ = net_.AddNode(
      [this](const net::Message&) { ++totals_.remote_received; });
  net::LinkOptions wan;
  wan.latency = 3 * kMicrosPerMilli;
  wan.bandwidth_bytes_per_sec = 12.5e6;  // 100 Mbps site uplink
  wan.jitter = 500;
  net_.SetBidirectional(local_site_, remote_site_, wan);

  // --- Durable telemetry store (optional). ----------------------------
  if (!options_.storage_dir.empty()) {
    storage::KVStoreOptions sopts;
    sopts.dir = options_.storage_dir;
    auto opened = storage::KVStore::Open(sopts);
    if (opened.ok()) store_ = std::move(opened).value();
  }
}

MixedScenario::~MixedScenario() = default;

void MixedScenario::DrainBrokers() {
  // Best-class-first chunked draining: advancing the virtual clock by
  // the chunk's service time between chunks converts drain *order* into
  // per-class delivery *latency* — kRealtime leaves in the first
  // chunks, kBulk pays for everything queued ahead of it.
  auto drain = [this](pubsub::Broker& broker) {
    while (broker.queue_depth() > 0) {
      const size_t chunk =
          std::min(options_.drain_chunk, broker.queue_depth());
      clock_.Advance(Micros(chunk) * options_.delivery_service_us);
      if (broker.Drain(chunk) == 0) break;
    }
  };
  for (size_t i = 0; i < engine_->num_shards(); ++i) {
    drain(engine_->shard_broker(i));
  }
  drain(hospital_->broker());
}

void MixedScenario::TickHospital(int tick, Micros now) {
  for (size_t p = 0; p < options_.patients; ++p) {
    const EntityId id = EntityId(p + 1);
    // Bed-level jitter keeps the mirror refreshing every tick (vitals
    // monitors report continuously even for a stationary patient).
    geo::Vec3 pos = hospital_->physical().Get(id)->position;
    pos.x += ((size_t(tick) + p) % 2 == 0) ? 0.05 : -0.05;
    hospital_->IngestPhysicalPosition(id, pos, now, QosClass::kTelemetry);
    ++totals_.updates_ingested;
    if ((size_t(tick) + p) % 5 == 0) {
      const double bpm = 60.0 + double((tick * 7 + int(p) * 13) % 40);
      (void)hospital_->IngestPhysicalAttribute(id, "heart_rate", bpm, now);
    }
  }
  if (store_ == nullptr) return;
  // Vitals of the whole ward commit as one durable batch (kTelemetry
  // forces the group's WAL sync even though the store runs async).
  storage::WriteBatch vitals;
  for (size_t p = 0; p < options_.patients; ++p) {
    vitals.Put("vitals/" + std::to_string(p) + "/" + std::to_string(tick),
               std::to_string(now));
  }
  if (store_->Write(vitals, {QosClass::kTelemetry}).ok()) {
    ++totals_.telemetry_commits;
  }
  if (options_.archive_every > 0 && tick % options_.archive_every == 0) {
    storage::WriteBatch archive;
    for (size_t p = 0; p < options_.patients; ++p) {
      archive.Put("archive/" + std::to_string(tick / options_.archive_every) +
                      "/" + std::to_string(p),
                  std::string(256, 'a'));
    }
    if (store_->Write(archive, {QosClass::kBulk}).ok()) {
      ++totals_.archive_commits;
    }
  }
}

void MixedScenario::TickNavigation() {
  for (size_t i = 0; i < options_.nav_invokes_per_tick; ++i) {
    runtime_.Invoke(
        "nav.route", [this]() { ++totals_.nav_completed; },
        QosClass::kInteractive);
  }
  for (size_t i = 0; i < options_.tile_prefetch_per_tick; ++i) {
    runtime_.Invoke("map.tile", nullptr, QosClass::kBulk);
  }
}

void MixedScenario::TickRemoteSite(int tick) {
  if (options_.partition_every > 0) {
    const int phase = tick % options_.partition_every;
    if (phase == 0 && tick > 0) {
      transport_.Partition(local_site_, remote_site_);
    } else if (phase == options_.partition_ticks) {
      transport_.Heal(local_site_, remote_site_);
    }
  }
  // A steady kBulk trickle (map-tile sync) rides along with the sampled
  // mirror/telemetry events, so every class crosses the WAN.
  pubsub::Event tile;
  tile.topic = "map.tile.sync";
  tile.qos = QosClass::kBulk;
  tile.published_at = clock_.NowMicros();
  tile.bytes = 16 * 1024;
  remote_backlog_.push_back(tile);

  size_t budget = options_.remote_forward_per_tick;
  while (budget-- > 0 && !remote_backlog_.empty()) {
    deliverer_.Deliver(local_site_, remote_site_, remote_backlog_.back());
    remote_backlog_.pop_back();
    ++totals_.remote_forwarded;
  }
}

ScenarioTotals MixedScenario::Run() {
  for (int tick = 0; tick < options_.ticks; ++tick) {
    clock_.Advance(options_.tick_dt);
    const Micros now = clock_.NowMicros();

    auto batch = crowd_->Tick(options_.tick_dt, now);
    auto swarm_updates = swarms_->Tick(options_.tick_dt, now);
    batch.reserve(batch.size() + swarm_updates.size());
    for (SensedUpdate u : swarm_updates) {
      u.id += swarm_id_offset_;
      u.qos = QosClass::kInteractive;
      batch.push_back(u);
    }
    totals_.updates_ingested += batch.size();
    engine_->IngestBatch(batch);

    TickHospital(tick, now);
    DrainBrokers();
    TickNavigation();
    TickRemoteSite(tick);
    sim_.RunUntil(sim_.Now() + options_.tick_dt);
  }
  // Let in-flight retries, queued invocations, and keep-alive reclaims
  // finish before reading the counters.
  DrainBrokers();
  sim_.RunUntil(sim_.Now() + kMicrosPerSecond);

  const EngineStats streaming = engine_->TotalStats();
  const EngineStats& hospital = hospital_->stats();
  totals_.mirror_refreshes =
      streaming.mirrored_updates + hospital.mirrored_updates;
  const pubsub::BrokerStats streaming_broker = engine_->TotalBrokerStats();
  const pubsub::BrokerStats& ward_broker = hospital_->broker().stats();
  totals_.broker_deliveries =
      streaming_broker.deliveries + ward_broker.deliveries;
  totals_.broker_shed =
      streaming_broker.deliveries_shed + ward_broker.deliveries_shed;
  totals_.rebalances = engine_->rebalance_count();
  totals_.serverless_shed = runtime_.shed();
  if (store_ != nullptr) totals_.wal_syncs = store_->stats().wal_syncs;
  totals_.remote_gave_up = deliverer_.stats().gave_up;
  return totals_;
}

// ---------------------------------------------------------------------
// SLO accounting

const LegSlo* SloReport::leg(QosClass c, std::string_view name) const {
  for (const LegSlo& l : classes[uint8_t(c)].legs) {
    if (l.leg == name) return &l;
  }
  return nullptr;
}

std::string SloReport::ToString() const {
  std::string out =
      "class        leg                         samples     p99_us  "
      "target_us  attain   min  status\n";
  char line[160];
  for (const ClassSlo& cls : classes) {
    for (const LegSlo& l : cls.legs) {
      std::snprintf(
          line, sizeof(line),
          "%-12s %-26s %9llu %10.0f %10lld  %5.1f%% %5.0f%%  %s\n",
          QosClassName(cls.cls), l.leg.c_str(),
          static_cast<unsigned long long>(l.samples), l.p99_us,
          static_cast<long long>(l.target_us), 100.0 * l.attainment,
          100.0 * l.min_attainment,
          l.target_us == 0 ? "info" : (l.met ? "ok" : "VIOLATED"));
      out += line;
    }
  }
  return out;
}

SloReport ComputeSloReport(const QosPolicy& policy) {
  // Merge every {qos=...} histogram of each instrumented hop across
  // subsystem instances.  Retired scopes fold into one instance="all"
  // aggregate (and drop their per-instance entries), so summing every
  // sample of a (name, class) pair never double-counts.
  constexpr size_t kNumLegs = std::size(kLegSpecs);
  Histogram merged[kNumLegs][kQosClassCount];
  const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
  for (const auto& sample : snapshot) {
    if (sample.kind != obs::MetricKind::kHistogram) continue;
    for (size_t leg = 0; leg < kNumLegs; ++leg) {
      if (sample.name != kLegSpecs[leg].name) continue;
      const int cls = QosIndexOf(sample.labels);
      if (cls >= 0) merged[leg][cls].Merge(sample.hist);
      break;
    }
  }

  SloReport report;
  for (QosClass c : kAllQosClasses) {
    ClassSlo& cls = report.classes[uint8_t(c)];
    cls.cls = c;
    const QosTarget& target = policy.target(c);
    for (size_t leg = 0; leg < kNumLegs; ++leg) {
      const Histogram& hist = merged[leg][uint8_t(c)];
      LegSlo slo;
      slo.leg = kLegSpecs[leg].name;
      slo.samples = hist.count();
      slo.p99_us = hist.P99();
      slo.target_us =
          kLegSpecs[leg].target != nullptr ? target.*kLegSpecs[leg].target : 0;
      slo.min_attainment = target.min_attainment;
      if (slo.target_us > 0 && slo.samples > 0) {
        slo.attainment = hist.FractionBelow(slo.target_us);
        slo.met = slo.attainment >= slo.min_attainment;
      }
      cls.met = cls.met && slo.met;
      cls.legs.push_back(std::move(slo));
    }
    report.all_met = report.all_met && cls.met;
  }
  return report;
}

}  // namespace deluge::core
