#ifndef DELUGE_CORE_ENTITY_H_
#define DELUGE_CORE_ENTITY_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "geo/geometry.h"
#include "index/spatial_index.h"
#include "stream/tuple.h"

namespace deluge::core {

using index::EntityId;

/// Kinds of things that live in a metaverse world.
enum class EntityKind : uint8_t {
  kAvatar = 0,    ///< a user's embodiment (physical person or cyber user)
  kVehicle = 1,
  kSensor = 2,
  kAsset = 3,     ///< scene object / product / exhibit
  kZone = 4,      ///< named region (shop, sector, ward)
};

/// A live entity in one space.
///
/// The same logical id may exist in both spaces (a soldier and their
/// virtual mirror); the engine keeps the mirror within the entity's
/// coherency contract.
struct Entity {
  EntityId id = 0;
  EntityKind kind = EntityKind::kAvatar;
  stream::Space origin = stream::Space::kPhysical;
  geo::Vec3 position;
  geo::Vec3 velocity;
  Micros updated_at = 0;
  std::unordered_map<std::string, stream::Value> attributes;

  /// Typed attribute access.
  template <typename T>
  std::optional<T> Attr(const std::string& name) const {
    auto it = attributes.find(name);
    if (it == attributes.end()) return std::nullopt;
    if (const T* v = std::get_if<T>(&it->second)) return *v;
    return std::nullopt;
  }
};

}  // namespace deluge::core

#endif  // DELUGE_CORE_ENTITY_H_
