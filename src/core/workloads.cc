#include "core/workloads.h"

#include <algorithm>
#include <cmath>

namespace deluge::core {

// --------------------------------------------------------- UniformWorkload

UniformWorkload::UniformWorkload(const geo::AABB& world,
                                 WorkloadOptions options)
    : world_(world), options_(options), rng_(options.seed) {
  states_.resize(options_.num_entities);
  for (auto& s : states_) {
    s.position = {rng_.UniformDouble(world.min.x, world.max.x),
                  rng_.UniformDouble(world.min.y, world.max.y),
                  rng_.UniformDouble(world.min.z, world.max.z)};
    double heading = rng_.UniformDouble(0, 2 * M_PI);
    double speed = rng_.UniformDouble(0.2, options_.max_speed);
    s.velocity = {speed * std::cos(heading), speed * std::sin(heading), 0};
  }
}

void UniformWorkload::MaybeTurn(EntityState* s) {
  if (!rng_.Bernoulli(options_.turn_probability)) return;
  double heading = rng_.UniformDouble(0, 2 * M_PI);
  double speed = rng_.UniformDouble(0.2, options_.max_speed);
  s->velocity = {speed * std::cos(heading), speed * std::sin(heading), 0};
}

void UniformWorkload::Bounce(EntityState* s) {
  auto bounce_axis = [](double& p, double& v, double lo, double hi) {
    if (p < lo) {
      p = lo + (lo - p);
      v = -v;
    } else if (p > hi) {
      p = hi - (p - hi);
      v = -v;
    }
    p = std::clamp(p, lo, hi);
  };
  bounce_axis(s->position.x, s->velocity.x, world_.min.x, world_.max.x);
  bounce_axis(s->position.y, s->velocity.y, world_.min.y, world_.max.y);
  bounce_axis(s->position.z, s->velocity.z, world_.min.z, world_.max.z);
}

std::vector<SensedUpdate> UniformWorkload::Tick(Micros dt, Micros now) {
  std::vector<SensedUpdate> out;
  out.reserve(states_.size());
  double dt_s = double(dt) / double(kMicrosPerSecond);
  for (size_t i = 0; i < states_.size(); ++i) {
    EntityState& s = states_[i];
    MaybeTurn(&s);
    s.position += s.velocity * dt_s;
    Bounce(&s);
    out.push_back({EntityId(i + 1), s.position, now});
  }
  return out;
}

const geo::Vec3& UniformWorkload::Position(EntityId id) const {
  return states_.at(size_t(id - 1)).position;
}

// ------------------------------------------------------ FlashCrowdWorkload

namespace {

/// Crowd sizing shared by the hotspot workloads: skew k ⇒ the hotspot
/// receives 1 − 1/k of all updates (k = 1 is uniform).
size_t CrowdSize(size_t num_entities, double skew) {
  double fraction = std::clamp(1.0 - 1.0 / std::max(1.0, skew), 0.0, 0.95);
  return size_t(std::llround(fraction * double(num_entities)));
}

/// The crowd band: a thin horizontal strip — half the X extent long,
/// 1.5% of the Y extent tall (a parade route) — centered at `center`.
/// Band tiles share their y-tile bits, which is what defeats modulo
/// striping; the length spreads the load over enough tiles that a
/// load-sized contiguous-range assignment can flatten it.
geo::AABB BandAt(const geo::AABB& world, const geo::Vec3& center) {
  const double half_x = 0.25 * (world.max.x - world.min.x);
  const double half_y = 0.0075 * (world.max.y - world.min.y);
  return {{center.x - half_x, center.y - half_y, world.min.z},
          {center.x + half_x, center.y + half_y, world.max.z}};
}

/// One step of hotspot behaviour: rush toward the band center while
/// outside it, jitter at wander speed inside.
void CrowdStep(Rng& rng, const geo::AABB& spot, double rush_speed,
               double jitter_speed, double dt_s, geo::Vec3* p) {
  const geo::Vec3 center = spot.Center();
  if (!spot.Contains(*p)) {
    geo::Vec3 to_center = center - *p;
    double dist = std::sqrt(to_center.Dot(to_center));
    double step = rush_speed * dt_s;
    *p = dist <= step ? center : *p + to_center * (step / dist);
    return;
  }
  double heading = rng.UniformDouble(0, 2 * M_PI);
  geo::Vec3 next = *p + geo::Vec3{jitter_speed * std::cos(heading),
                                  jitter_speed * std::sin(heading), 0} *
                            dt_s;
  // Jitter that would leave the band is folded back toward its center.
  *p = spot.Contains(next) ? next : *p + (center - *p) * 0.1;
}

}  // namespace

FlashCrowdWorkload::FlashCrowdWorkload(const geo::AABB& world,
                                       WorkloadOptions options, double skew)
    : base_(world, options) {
  const double ext_x = world.max.x - world.min.x;
  const double ext_y = world.max.y - world.min.y;
  // Deliberately off-center (30%, 35%) so the band straddles tiles
  // asymmetrically.
  geo::Vec3 center{world.min.x + 0.30 * ext_x, world.min.y + 0.35 * ext_y,
                   world.Center().z};
  hotspot_ = BandAt(world, center);
  crowd_size_ = CrowdSize(options.num_entities, skew);
  rush_speed_ = 4.0 * options.max_speed;
  // The crowd has already formed: place members uniformly in the band.
  for (size_t i = 0; i < crowd_size_; ++i) {
    base_.states_[i].position = {
        base_.rng_.UniformDouble(hotspot_.min.x, hotspot_.max.x),
        base_.rng_.UniformDouble(hotspot_.min.y, hotspot_.max.y),
        base_.rng_.UniformDouble(world.min.z, world.max.z)};
  }
}

std::vector<SensedUpdate> FlashCrowdWorkload::Tick(Micros dt, Micros now) {
  std::vector<SensedUpdate> out;
  out.reserve(base_.states_.size());
  const double dt_s = double(dt) / double(kMicrosPerSecond);
  for (size_t i = 0; i < base_.states_.size(); ++i) {
    UniformWorkload::EntityState& s = base_.states_[i];
    if (i < crowd_size_) {
      CrowdStep(base_.rng_, hotspot_, rush_speed_, base_.options_.max_speed,
                dt_s, &s.position);
    } else {
      base_.MaybeTurn(&s);
      s.position += s.velocity * dt_s;
      base_.Bounce(&s);
    }
    out.push_back({EntityId(i + 1), s.position, now});
  }
  return out;
}

const geo::Vec3& FlashCrowdWorkload::Position(EntityId id) const {
  return base_.Position(id);
}

// ----------------------------------------------------- DiurnalWaveWorkload

DiurnalWaveWorkload::DiurnalWaveWorkload(const geo::AABB& world,
                                         WorkloadOptions options, double skew,
                                         Micros period)
    : base_(world, options), period_(period > 0 ? period : 1) {
  const double ext_x = world.max.x - world.min.x;
  const double ext_y = world.max.y - world.min.y;
  orbit_radius_ = 0.30 * std::min(ext_x, ext_y);
  geo::AABB band = BandAt(world, world.Center());
  band_half_extent_ = (band.max - band.min) * 0.5;
  crowd_size_ = CrowdSize(options.num_entities, skew);
  // The crowd must outrun the orbiting band or the wave smears out.
  const double orbit_speed =
      2 * M_PI * orbit_radius_ / (double(period_) / kMicrosPerSecond);
  rush_speed_ = std::max(4.0 * options.max_speed, 2.0 * orbit_speed);
  // The wave starts formed, in the band's t=0 position.
  geo::AABB spot = Hotspot(0);
  for (size_t i = 0; i < crowd_size_; ++i) {
    base_.states_[i].position = {
        base_.rng_.UniformDouble(spot.min.x, spot.max.x),
        base_.rng_.UniformDouble(spot.min.y, spot.max.y),
        base_.rng_.UniformDouble(world.min.z, world.max.z)};
  }
}

geo::AABB DiurnalWaveWorkload::Hotspot(Micros t) const {
  const double phase = 2 * M_PI * double(t % period_) / double(period_);
  geo::Vec3 c = base_.world_.Center();
  geo::Vec3 center{c.x + orbit_radius_ * std::cos(phase),
                   c.y + orbit_radius_ * std::sin(phase), c.z};
  return {{center.x - band_half_extent_.x, center.y - band_half_extent_.y,
           base_.world_.min.z},
          {center.x + band_half_extent_.x, center.y + band_half_extent_.y,
           base_.world_.max.z}};
}

std::vector<SensedUpdate> DiurnalWaveWorkload::Tick(Micros dt, Micros now) {
  std::vector<SensedUpdate> out;
  out.reserve(base_.states_.size());
  const double dt_s = double(dt) / double(kMicrosPerSecond);
  const geo::AABB spot = Hotspot(now);
  for (size_t i = 0; i < base_.states_.size(); ++i) {
    UniformWorkload::EntityState& s = base_.states_[i];
    if (i < crowd_size_) {
      CrowdStep(base_.rng_, spot, rush_speed_, base_.options_.max_speed,
                dt_s, &s.position);
    } else {
      base_.MaybeTurn(&s);
      s.position += s.velocity * dt_s;
      base_.Bounce(&s);
    }
    out.push_back({EntityId(i + 1), s.position, now});
  }
  return out;
}

const geo::Vec3& DiurnalWaveWorkload::Position(EntityId id) const {
  return base_.Position(id);
}

// ---------------------------------------------------- RoamingSwarmWorkload

RoamingSwarmWorkload::RoamingSwarmWorkload(const geo::AABB& world,
                                           WorkloadOptions options,
                                           size_t num_swarms, double spread)
    : world_(world),
      options_(options),
      rng_(options.seed),
      spread_(spread > 0 ? spread : 1.0) {
  swarms_.resize(std::max<size_t>(1, num_swarms));
  for (auto& sw : swarms_) {
    sw.center = {rng_.UniformDouble(world.min.x, world.max.x),
                 rng_.UniformDouble(world.min.y, world.max.y),
                 world.Center().z};
    double heading = rng_.UniformDouble(0, 2 * M_PI);
    // Swarms cruise at full speed: the point is that the hot tiles move.
    sw.velocity = {options_.max_speed * std::cos(heading),
                   options_.max_speed * std::sin(heading), 0};
  }
  positions_.resize(options_.num_entities);
  for (size_t i = 0; i < positions_.size(); ++i) {
    const Swarm& sw = swarms_[i % swarms_.size()];
    positions_[i] = {sw.center.x + rng_.Gaussian(0, spread_ / 2),
                     sw.center.y + rng_.Gaussian(0, spread_ / 2),
                     sw.center.z};
  }
}

std::vector<SensedUpdate> RoamingSwarmWorkload::Tick(Micros dt, Micros now) {
  const double dt_s = double(dt) / double(kMicrosPerSecond);
  auto bounce_axis = [](double& p, double& v, double lo, double hi) {
    if (p < lo) {
      p = lo + (lo - p);
      v = -v;
    } else if (p > hi) {
      p = hi - (p - hi);
      v = -v;
    }
    p = std::clamp(p, lo, hi);
  };
  for (auto& sw : swarms_) {
    if (rng_.Bernoulli(options_.turn_probability)) {
      double heading = rng_.UniformDouble(0, 2 * M_PI);
      sw.velocity = {options_.max_speed * std::cos(heading),
                     options_.max_speed * std::sin(heading), 0};
    }
    sw.center += sw.velocity * dt_s;
    bounce_axis(sw.center.x, sw.velocity.x, world_.min.x, world_.max.x);
    bounce_axis(sw.center.y, sw.velocity.y, world_.min.y, world_.max.y);
  }
  std::vector<SensedUpdate> out;
  out.reserve(positions_.size());
  for (size_t i = 0; i < positions_.size(); ++i) {
    const Swarm& sw = swarms_[i % swarms_.size()];
    geo::Vec3 p{sw.center.x + rng_.Gaussian(0, spread_ / 2),
                sw.center.y + rng_.Gaussian(0, spread_ / 2), sw.center.z};
    p.x = std::clamp(p.x, world_.min.x, world_.max.x);
    p.y = std::clamp(p.y, world_.min.y, world_.max.y);
    positions_[i] = p;
    out.push_back({EntityId(i + 1), p, now});
  }
  return out;
}

const geo::Vec3& RoamingSwarmWorkload::Position(EntityId id) const {
  return positions_.at(size_t(id - 1));
}

}  // namespace deluge::core
