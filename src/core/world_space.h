#ifndef DELUGE_CORE_WORLD_SPACE_H_
#define DELUGE_CORE_WORLD_SPACE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/entity.h"
#include "index/grid_index.h"

namespace deluge::core {

/// One half of the metaverse: a bounded world holding entities with a
/// spatial index for range/k-NN retrieval.  The engine owns two of these
/// (physical + virtual) and keeps them synchronized.
class WorldSpace {
 public:
  WorldSpace(stream::Space tag, const geo::AABB& bounds,
             double index_cell = 50.0);

  stream::Space tag() const { return tag_; }
  const geo::AABB& bounds() const { return bounds_; }

  /// Inserts or updates an entity (position re-indexed).
  void Upsert(const Entity& entity);

  /// Position-only fast path.
  Status Move(EntityId id, const geo::Vec3& pos, Micros t);

  /// Sets one attribute.
  Status SetAttribute(EntityId id, const std::string& name,
                      stream::Value value);

  Status Remove(EntityId id);

  /// Pointer valid until the next mutation; nullptr when absent.
  const Entity* Get(EntityId id) const;

  /// Entities inside `box`.
  std::vector<const Entity*> Range(const geo::AABB& box) const;

  /// k nearest entities to `q`.
  std::vector<const Entity*> Nearest(const geo::Vec3& q, size_t k) const;

  size_t entity_count() const { return entities_.size(); }

 private:
  stream::Space tag_;
  geo::AABB bounds_;
  index::GridIndex index_;
  std::unordered_map<EntityId, Entity> entities_;
};

}  // namespace deluge::core

#endif  // DELUGE_CORE_WORLD_SPACE_H_
