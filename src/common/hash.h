#ifndef DELUGE_COMMON_HASH_H_
#define DELUGE_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

namespace deluge {

/// 64-bit FNV-1a hash of an arbitrary byte range.  Fast, non-cryptographic;
/// used for hash partitioning, bloom filters, and sharding decisions.
uint64_t Hash64(const void* data, size_t len, uint64_t seed = 0);

/// Convenience overload for string-like data.
inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// Mixes a 64-bit integer (Stafford variant 13 finalizer) — good avalanche,
/// used to derive independent hash functions from one value.
uint64_t Mix64(uint64_t x);

}  // namespace deluge

#endif  // DELUGE_COMMON_HASH_H_
