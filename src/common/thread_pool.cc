#include "common/thread_pool.h"

namespace deluge {

namespace {
// Which pool (if any) the current thread is a worker of, and how many
// of that pool's task frames are on its stack.  Lets Wait() detect the
// task-spawned-from-task case and help instead of self-deadlocking.
thread_local const ThreadPool* tls_worker_pool = nullptr;
thread_local size_t tls_task_depth = 0;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& task : tasks) queue_.push_back(std::move(task));
  }
  work_cv_.notify_all();
}

void ThreadPool::RunTask(std::function<void()> task) {
  ++tls_task_depth;
  task();
  --tls_task_depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    // Waiters re-check their predicates whenever the pool may have gone
    // idle; helping waiters also need wake-ups while other workers wind
    // down, hence notify on every empty-queue completion.
    if (queue_.empty()) idle_cv_.notify_all();
  }
}

void ThreadPool::Wait() {
  if (tls_worker_pool == this) {
    // Called from inside one of our own tasks: drain the queue inline
    // so subtasks cannot starve behind their blocked parent.
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (!queue_.empty()) {
          task = std::move(queue_.front());
          queue_.pop_front();
          ++in_flight_;
        } else if (in_flight_ == tls_task_depth) {
          return;  // only this thread's own call stack remains
        } else {
          idle_cv_.wait(lock);
          continue;
        }
      }
      RunTask(std::move(task));
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with empty queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    RunTask(std::move(task));
  }
}

}  // namespace deluge
