#include "common/status.h"

namespace deluge {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace deluge
