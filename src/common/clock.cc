#include "common/clock.h"

#include <chrono>

namespace deluge {

Micros SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SystemClock* SystemClock::Default() {
  static SystemClock clock;
  return &clock;
}

}  // namespace deluge
