#ifndef DELUGE_COMMON_PARALLEL_FOR_H_
#define DELUGE_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

#include "common/thread_pool.h"

namespace deluge {

/// Runs `body(i)` for every `i` in `[0, n)` across `pool`'s workers and
/// the calling thread, returning only when every iteration has
/// finished.
///
/// Iterations are claimed in chunks of `grain` from a shared atomic
/// cursor, so uneven per-iteration cost self-levels.  The caller always
/// participates in the claim loop, which guarantees forward progress —
/// the call is safe from inside a pool task (nested parallelism) and
/// when the pool is saturated with unrelated work.  A null `pool` (or a
/// trip count at or below `grain`) degrades to a plain serial loop.
///
/// `body` must be safe to invoke concurrently from multiple threads for
/// distinct `i`; each index is executed exactly once.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body, size_t grain = 1);

}  // namespace deluge

#endif  // DELUGE_COMMON_PARALLEL_FOR_H_
