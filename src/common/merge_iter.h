#ifndef DELUGE_COMMON_MERGE_ITER_H_
#define DELUGE_COMMON_MERGE_ITER_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace deluge {

/// A streaming k-way merge over already-sorted sources.
///
/// `Source` must expose `bool Valid()`, `void Next()`, and
/// `const T& entry()`; `Compare` is a 3-way comparator over `T`
/// (negative / zero / positive).  The merge holds one heap slot per
/// source — memory is O(k), independent of the total entry count — and
/// yields entries in globally sorted order.  Ties between sources break
/// toward the lower source index, so callers that order sources
/// newest-first get the newest duplicate first (the LSM shadowing
/// rule), deterministically.
///
/// Sources are borrowed, not owned, and must be positioned (e.g. via
/// `SeekToFirst`/`Seek`) before construction.  `entry()` returns a
/// reference into the front source; `Next()` invalidates it.
///
/// Not internally synchronized: one merge instance per thread.
template <typename Source, typename Compare>
class KWayMergeIterator {
 public:
  KWayMergeIterator(std::vector<Source*> sources, Compare cmp)
      : sources_(std::move(sources)), cmp_(std::move(cmp)) {
    heap_.reserve(sources_.size());
    for (size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i]->Valid()) heap_.push_back(i);
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapOrder{this});
  }

  bool Valid() const { return !heap_.empty(); }

  /// The globally smallest entry.  Only when `Valid()`.
  const auto& entry() const { return sources_[heap_.front()]->entry(); }

  /// Index (into the constructor's vector) of the source currently at
  /// the front.
  size_t source_index() const { return heap_.front(); }

  /// Advances past the front entry; the exhausted source drops out of
  /// the heap.
  void Next() {
    std::pop_heap(heap_.begin(), heap_.end(), HeapOrder{this});
    size_t idx = heap_.back();
    sources_[idx]->Next();
    if (sources_[idx]->Valid()) {
      std::push_heap(heap_.begin(), heap_.end(), HeapOrder{this});
    } else {
      heap_.pop_back();
    }
  }

 private:
  /// std::*_heap keeps the max at the front; inverting the comparator
  /// (and the index tie-break) makes that the smallest entry.
  struct HeapOrder {
    const KWayMergeIterator* m;
    bool operator()(size_t a, size_t b) const {
      int c = m->cmp_(m->sources_[a]->entry(), m->sources_[b]->entry());
      if (c != 0) return c > 0;
      return a > b;  // equal entries: lower source index surfaces first
    }
  };

  std::vector<Source*> sources_;
  Compare cmp_;
  std::vector<size_t> heap_;  // indices into sources_, min-heap by entry
};

}  // namespace deluge

#endif  // DELUGE_COMMON_MERGE_ITER_H_
