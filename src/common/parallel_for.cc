#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

namespace deluge {

namespace {
struct ForState {
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  size_t n = 0;
  size_t grain = 1;
  const std::function<void(size_t)>* body = nullptr;
  std::mutex mu;
  std::condition_variable cv;
};

// Claims chunks until the cursor runs past the end.  `body` is only
// dereferenced while at least one chunk is unfinished, so the caller's
// stack frame (which owns it) is guaranteed alive.
void ClaimLoop(const std::shared_ptr<ForState>& s) {
  for (;;) {
    size_t start = s->next.fetch_add(s->grain, std::memory_order_relaxed);
    if (start >= s->n) return;
    size_t end = std::min(s->n, start + s->grain);
    for (size_t i = start; i < end; ++i) (*s->body)(i);
    if (s->done.fetch_add(end - start) + (end - start) == s->n) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->cv.notify_all();
    }
  }
}
}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& body, size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (pool == nullptr || pool->num_threads() < 2 || n <= grain) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->grain = grain;
  state->body = &body;

  const size_t chunks = (n + grain - 1) / grain;
  // The caller runs one claim loop itself; workers cover the rest.
  const size_t helpers = std::min(pool->num_threads(), chunks - 1);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(helpers);
  for (size_t i = 0; i < helpers; ++i) {
    tasks.emplace_back([state] { ClaimLoop(state); });
  }
  pool->SubmitBatch(std::move(tasks));
  ClaimLoop(state);

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() == state->n; });
}

}  // namespace deluge
