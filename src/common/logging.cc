#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstring>

namespace deluge {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogImpl(LogLevel level, const char* file, int line, const char* fmt,
             ...) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  char msg[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg);
}

}  // namespace deluge
