#ifndef DELUGE_COMMON_LOGGING_H_
#define DELUGE_COMMON_LOGGING_H_

#include <cstdio>
#include <string>

namespace deluge {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// printf-style logging to stderr with a severity prefix.  Cheap when the
/// level is filtered out (one branch).
void LogImpl(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

#define DELUGE_LOG_DEBUG(...) \
  ::deluge::LogImpl(::deluge::LogLevel::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define DELUGE_LOG_INFO(...) \
  ::deluge::LogImpl(::deluge::LogLevel::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define DELUGE_LOG_WARN(...) \
  ::deluge::LogImpl(::deluge::LogLevel::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define DELUGE_LOG_ERROR(...) \
  ::deluge::LogImpl(::deluge::LogLevel::kError, __FILE__, __LINE__, __VA_ARGS__)

}  // namespace deluge

#endif  // DELUGE_COMMON_LOGGING_H_
