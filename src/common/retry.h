#ifndef DELUGE_COMMON_RETRY_H_
#define DELUGE_COMMON_RETRY_H_

#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/rng.h"

namespace deluge {

/// Backoff configuration for retried operations.
///
/// All latency-sensitive layers (txn coordinator retransmits, pub/sub
/// redelivery, chaos experiments) share this one policy type so the
/// backoff math — exponential growth, jitter, deadline awareness — is
/// implemented and tested exactly once.  Delays are deterministic given
/// the caller's `Rng`, keeping every simulation reproducible.
struct RetryPolicy {
  /// How jittered delays are drawn from the exponential envelope.
  enum class Jitter : uint8_t {
    kNone,          ///< pure exponential: base * mult^attempt
    kFull,          ///< uniform in [0, envelope] (AWS "full jitter")
    kDecorrelated,  ///< uniform in [base, 3 * previous] ("decorrelated")
  };

  /// Total tries allowed, including the first (0 or 1 = never retry).
  int max_attempts = 5;
  Micros initial_backoff = 10 * kMicrosPerMilli;
  Micros max_backoff = kMicrosPerSecond;
  double multiplier = 2.0;
  Jitter jitter = Jitter::kDecorrelated;
  /// Relative deadline from the first attempt; retries whose backoff
  /// would land past it are refused.  0 = no deadline.
  Micros deadline = 0;
};

/// Per-operation retry bookkeeping over a `RetryPolicy`.
///
/// Usage: construct at first attempt, then after each failure call
/// `NextBackoff(now, rng)`; a negative return means the retry budget
/// (attempts or deadline) is exhausted and the operation should fail.
class RetryState {
 public:
  RetryState() = default;
  RetryState(const RetryPolicy& policy, Micros start)
      : policy_(policy), start_(start) {}

  /// True while another attempt is permitted at `now` (attempts remain
  /// and the deadline, if any, has not passed).
  bool CanRetry(Micros now) const;

  /// Draws the delay before the next attempt and consumes one attempt.
  /// Returns -1 when no retry is allowed — out of attempts, or the
  /// backoff would overshoot the deadline (deadline expiry mid-backoff).
  Micros NextBackoff(Micros now, Rng* rng);

  /// Attempts consumed so far (the initial try is attempt 0).
  int attempt() const { return attempt_; }
  Micros deadline_at() const {
    return policy_.deadline > 0 ? start_ + policy_.deadline : 0;
  }

 private:
  RetryPolicy policy_;
  Micros start_ = 0;
  int attempt_ = 0;
  Micros prev_backoff_ = 0;
};

/// Options for `CircuitBreaker`.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long the breaker stays open before admitting a probe.
  Micros open_duration = kMicrosPerSecond;
};

/// A minimal closed / open / half-open circuit breaker.
///
/// Closed: requests flow, consecutive failures are counted.  Open: all
/// requests fast-fail until `open_duration` elapses.  Half-open: one
/// probe request is admitted; success closes the breaker, failure
/// re-opens it.  Time is caller-provided (virtual time in simulations).
///
/// Thread-safe: all transitions happen under one mutex, so concurrent
/// `Allow` calls racing the open -> half-open cooldown edge admit
/// exactly one probe (the others fast-fail) — the property callers
/// rely on to avoid a thundering herd against a recovering dependency.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions opts = {}) : opts_(opts) {}

  /// True when a request may proceed at `now`; false = fast-fail.
  /// An open breaker transitions to half-open (admitting this call as
  /// the probe) once the cooldown has elapsed; while a probe is in
  /// flight every other caller is rejected.
  bool Allow(Micros now);

  void RecordSuccess();
  void RecordFailure(Micros now);

  State state(Micros now) const;
  /// Times the breaker has tripped closed -> open.
  uint64_t trips() const;
  /// Requests rejected while open.
  uint64_t fast_fails() const;

 private:
  CircuitBreakerOptions opts_;
  mutable std::mutex mu_;  // guards everything below
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  Micros opened_at_ = 0;
  bool probe_in_flight_ = false;
  uint64_t trips_ = 0;
  uint64_t fast_fails_ = 0;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_RETRY_H_
