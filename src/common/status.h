#ifndef DELUGE_COMMON_STATUS_H_
#define DELUGE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace deluge {

/// Canonical error codes for all fallible Deluge operations.
///
/// Deluge never throws exceptions across API boundaries; every operation
/// that can fail returns a `Status` (or a `Result<T>` when it also produces
/// a value).  The code set mirrors the usual storage-engine palette
/// (RocksDB / Abseil style) so that callers can branch on coarse classes of
/// failure without parsing messages.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kAlreadyExists = 3,
  kCorruption = 4,
  kIOError = 5,
  kNotSupported = 6,
  kBusy = 7,
  kTimedOut = 8,
  kAborted = 9,
  kOutOfRange = 10,
  kResourceExhausted = 11,
  kUnavailable = 12,
  kInternal = 13,
  kPermissionDenied = 14,
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value.
///
/// `Status` is cheap to copy in the success case (a single enum) and carries
/// an explanatory message in the failure case.  Typical usage:
///
/// ```
/// deluge::Status s = store.Put(key, value);
/// if (!s.ok()) return s;  // propagate
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per canonical code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PermissionDenied(std::string msg = "") {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error pair, the Deluge analogue of `absl::StatusOr<T>`.
///
/// Invariant: exactly one of {value, error status} is meaningful.  Accessing
/// `value()` on an error `Result` is a programming error (checked via
/// assert-like hard failure in debug builds through `Expect()`).
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;` inside a `Result<int>` function.
  Result(T value) : status_(), value_(std::move(value)), has_value_(true) {}

  /// Implicit from an error status.  The status must not be OK.
  Result(Status status) : status_(std::move(status)), has_value_(false) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  /// Access to the contained value; only valid when `ok()`.
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  /// Returns the value or `fallback` when in the error state.
  T value_or(T fallback) const {
    return has_value_ ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_STATUS_H_
