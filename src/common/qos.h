#ifndef DELUGE_COMMON_QOS_H_
#define DELUGE_COMMON_QOS_H_

#include <array>
#include <cstdint>

#include "common/clock.h"

namespace deluge {

/// The one service-class taxonomy shared by every layer (DESIGN.md §13).
///
/// The paper's §II applications map onto four classes with sharply
/// different freshness / latency / durability needs:
///
///   kRealtime    — live event streaming mirrors: pose/position updates
///                  whose value decays in tens of milliseconds.  Never
///                  shed first, never durable (a fresher update always
///                  supersedes a lost one).
///   kInteractive — city-scale AR navigation: user-facing request/
///                  response traffic (route queries, scene deltas).
///   kTelemetry   — digital-twin hospital telemetry: modest rates, but
///                  every committed sample must survive a crash.
///   kBulk        — map-tile prefetch, backfill, anti-entropy: shed
///                  first, retried patiently, no freshness claim.
///
/// Numeric order is rank order: lower value = more important.  All
/// scheduling layers derive ordering from this single enum — adding a
/// local priority enum elsewhere is a lint error
/// (tools/check_qos_enums.sh).
enum class QosClass : uint8_t {
  kRealtime = 0,
  kInteractive = 1,
  kTelemetry = 2,
  kBulk = 3,
};

inline constexpr int kQosClassCount = 4;

/// Stable lowercase label for metric labels ({qos=...}) and logs.
const char* QosClassName(QosClass c);

/// All classes, most- to least-important, for iteration.
inline constexpr std::array<QosClass, kQosClassCount> kAllQosClasses = {
    QosClass::kRealtime, QosClass::kInteractive, QosClass::kTelemetry,
    QosClass::kBulk};

/// Shedding/serving rank: higher survives overload longer and is served
/// first.  This is the bridge to "bigger number wins" call sites
/// (DeliveryHeap slots, serverless admission queue).
constexpr uint8_t QosRank(QosClass c) {
  return uint8_t(kQosClassCount - 1) - uint8_t(c);
}

/// Clamps an arbitrary byte to a valid class (out-of-range → kBulk).
constexpr QosClass QosClassFromByte(uint8_t b) {
  return b < kQosClassCount ? QosClass(b) : QosClass::kBulk;
}

/// Wire tag for a class.  kBulk encodes as 0 so a class-untagged legacy
/// frame (which carries 0 in the tag position) decodes as kBulk, and a
/// default-class message encodes byte-identically to the legacy format.
constexpr uint8_t QosWireTag(QosClass c) {
  return c == QosClass::kBulk ? 0 : uint8_t(uint8_t(c) + 1);
}

/// Inverse of `QosWireTag`; unknown future tags degrade to kBulk rather
/// than failing decode, so old nodes tolerate newer senders.
constexpr QosClass QosFromWireTag(uint8_t tag) {
  return (tag == 0 || tag > kQosClassCount) ? QosClass::kBulk
                                            : QosClass(tag - 1);
}

/// Per-class service-level targets.  All latencies are virtual-time
/// microseconds measured end-to-end from publish/ingest:
///   freshness  — mirror-refresh staleness at the coherency layer,
///   delivery   — broker → subscriber delivery latency,
///   commit     — storage commit latency (enqueue → durable/acked).
struct QosTarget {
  Micros freshness_us = 0;      ///< 0 = no freshness claim
  Micros delivery_p99_us = 0;   ///< 0 = no delivery-latency claim
  Micros commit_p99_us = 0;     ///< 0 = no commit-latency claim
  bool durable_commit = false;  ///< class requires fdatasync'd commits
  int max_retry_attempts = 1;   ///< redelivery budget (incl. first try)
  double weight = 1.0;          ///< weighted-fair share for schedulers
  double min_attainment = 0.0;  ///< fraction of samples that must meet
                                ///< the p99-style targets (SLO gate)
};

/// The per-class target table.  One process-wide default mirrors the
/// §II application mix; scenario code may construct bespoke tables.
class QosPolicy {
 public:
  QosPolicy();

  /// The process-wide default policy (DESIGN.md §13 table).
  static const QosPolicy& Default();

  const QosTarget& target(QosClass c) const {
    return targets_[uint8_t(c) < kQosClassCount ? uint8_t(c)
                                                : kQosClassCount - 1];
  }
  QosTarget& mutable_target(QosClass c) {
    return targets_[uint8_t(c) < kQosClassCount ? uint8_t(c)
                                                : kQosClassCount - 1];
  }

 private:
  std::array<QosTarget, kQosClassCount> targets_;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_QOS_H_
