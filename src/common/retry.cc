#include "common/retry.h"

#include <algorithm>

namespace deluge {

bool RetryState::CanRetry(Micros now) const {
  if (attempt_ + 1 >= policy_.max_attempts) return false;
  if (policy_.deadline > 0 && now >= start_ + policy_.deadline) return false;
  return true;
}

Micros RetryState::NextBackoff(Micros now, Rng* rng) {
  if (!CanRetry(now)) return -1;

  // Exponential envelope for the attempt about to be scheduled.
  double envelope = double(policy_.initial_backoff);
  for (int i = 0; i < attempt_; ++i) envelope *= policy_.multiplier;
  envelope = std::min(envelope, double(policy_.max_backoff));

  Micros delay = 0;
  switch (policy_.jitter) {
    case RetryPolicy::Jitter::kNone:
      delay = Micros(envelope);
      break;
    case RetryPolicy::Jitter::kFull:
      delay = Micros(rng->UniformDouble(0.0, envelope));
      break;
    case RetryPolicy::Jitter::kDecorrelated: {
      // sleep = min(cap, uniform(base, 3 * previous)); the first retry
      // has no previous sleep, so it draws from the base envelope.
      double hi = prev_backoff_ > 0 ? 3.0 * double(prev_backoff_) : envelope;
      hi = std::max(hi, double(policy_.initial_backoff) + 1.0);
      delay = Micros(std::min(double(policy_.max_backoff),
                              rng->UniformDouble(
                                  double(policy_.initial_backoff), hi)));
      break;
    }
  }
  delay = std::max<Micros>(delay, 0);

  if (policy_.deadline > 0 && now + delay > start_ + policy_.deadline) {
    return -1;  // the wait itself would blow the deadline
  }
  ++attempt_;
  prev_backoff_ = delay;
  return delay;
}

// ---------------------------------------------------------- CircuitBreaker

bool CircuitBreaker::Allow(Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      // The state change and the probe claim are one atomic step under
      // mu_, so of N callers racing the cooldown edge exactly one
      // becomes the probe; the rest fall through to the half-open
      // rejection below on their own calls.
      if (now - opened_at_ >= opts_.open_duration) {
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;  // this caller is the probe
      }
      ++fast_fails_;
      return false;
    case State::kHalfOpen:
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      ++fast_fails_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure(Micros now) {
  std::lock_guard<std::mutex> lock(mu_);
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen) {
    state_ = State::kOpen;  // failed probe: straight back to open
    opened_at_ = now;
    ++trips_;
    return;
  }
  if (++consecutive_failures_ >= opts_.failure_threshold &&
      state_ == State::kClosed) {
    state_ = State::kOpen;
    opened_at_ = now;
    ++trips_;
  }
}

CircuitBreaker::State CircuitBreaker::state(Micros now) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen && now - opened_at_ >= opts_.open_duration) {
    return State::kHalfOpen;
  }
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

uint64_t CircuitBreaker::fast_fails() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fast_fails_;
}

}  // namespace deluge
