#ifndef DELUGE_COMMON_SMALL_VEC_H_
#define DELUGE_COMMON_SMALL_VEC_H_

#include <cstddef>
#include <new>
#include <utility>

namespace deluge::common {

/// A contiguous vector with N elements of inline storage.
///
/// The first N elements live inside the object — no heap allocation and
/// no pointer chase — which is what makes the flat `stream::Tuple`
/// cache-friendly: a typical sensor tuple (≤8 fields) is one contiguous
/// block, copied by memberwise move instead of rehashing a map.  Beyond
/// N elements it spills to the heap like std::vector (growth ×2).
template <typename T, size_t N>
class SmallVec {
 public:
  SmallVec() = default;

  SmallVec(const SmallVec& other) { CopyFrom(other); }

  SmallVec(SmallVec&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      Destroy();
      CopyFrom(other);
    }
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVec() { Destroy(); }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }

  void push_back(T v) {
    if (size_ == capacity_) Grow(size_ + 1);
    new (data_ + size_) T(std::move(v));
    ++size_;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(size_ + 1);
    T* slot = new (data_ + size_) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data_[i].~T();
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

 private:
  T* inline_ptr() { return reinterpret_cast<T*>(inline_storage_); }
  bool is_inline() const {
    return data_ == reinterpret_cast<const T*>(inline_storage_);
  }

  void Grow(size_t need) {
    size_t cap = capacity_ * 2;
    if (cap < need) cap = need;
    T* fresh = static_cast<T*>(::operator new(cap * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (!is_inline()) ::operator delete(data_);
    data_ = fresh;
    capacity_ = cap;
  }

  void Destroy() {
    clear();
    if (!is_inline()) {
      ::operator delete(data_);
      data_ = inline_ptr();
      capacity_ = N;
    }
  }

  void CopyFrom(const SmallVec& other) {
    if (other.size_ > N) Grow(other.size_);
    for (size_t i = 0; i < other.size_; ++i) new (data_ + i) T(other.data_[i]);
    size_ = other.size_;
  }

  void MoveFrom(SmallVec&& other) noexcept {
    if (!other.is_inline()) {
      // Steal the heap block.
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_ptr();
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    for (size_t i = 0; i < other.size_; ++i) {
      new (data_ + i) T(std::move(other.data_[i]));
    }
    size_ = other.size_;
    other.clear();
  }

  T* data_ = inline_ptr();
  size_t size_ = 0;
  size_t capacity_ = N;
  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
};

}  // namespace deluge::common

#endif  // DELUGE_COMMON_SMALL_VEC_H_
