#ifndef DELUGE_COMMON_THREAD_POOL_H_
#define DELUGE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deluge {

/// A fixed-size worker pool with a FIFO task queue.
///
/// Used by the elastic executor tier (`deluge::runtime`) and by parallel
/// benchmark drivers.  Tasks are `std::function<void()>`; exceptions must
/// not escape tasks (Deluge code reports errors via `Status`).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished.
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_THREAD_POOL_H_
