#ifndef DELUGE_COMMON_THREAD_POOL_H_
#define DELUGE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deluge {

/// A fixed-size worker pool with a FIFO task queue.
///
/// Used by the elastic executor tier (`deluge::runtime`), the sharded
/// co-space pipeline (`deluge::core::ParallelEngine`), and parallel
/// benchmark drivers.  Tasks are `std::function<void()>`; exceptions
/// must not escape tasks (Deluge code reports errors via `Status`).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; never blocks.
  void Submit(std::function<void()> task);

  /// Enqueues all tasks under one lock acquisition and wakes every
  /// worker — the cheap way to launch a fan-out.
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every submitted task has finished executing —
  /// including tasks submitted while waiting (task-spawned-from-task).
  ///
  /// Safe to call concurrently with `Submit` from any thread.  When
  /// called from inside a task running on this pool, the calling worker
  /// *helps*: it drains queued tasks inline instead of blocking, and
  /// returns once no work remains beyond its own call stack — so a task
  /// that submits subtasks and waits for them cannot deadlock the pool.
  /// The one unsupported pattern is two tasks each waiting on the
  /// other's completion with no queued work left; that is a semantic
  /// deadlock no scheduler can resolve.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet finished.
  size_t pending() const;

 private:
  void WorkerLoop();
  /// Pops + runs one queued task; used by workers and helping waiters.
  void RunTask(std::function<void()> task);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_THREAD_POOL_H_
