#include "common/buffer.h"

#include <cassert>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "obs/metrics.h"

namespace deluge::common {

namespace {

/// Process-wide Buffer metrics (DESIGN.md §10): `bytes_copied` counts
/// payload bytes duplicated into fresh owned storage (Buffer::CopyOf);
/// sharing a Buffer never moves it.  `buffers_live` tracks distinct
/// backing allocations, `payload_refs` tracks handles — refs growing
/// while buffers stay flat is the zero-copy fan-out signature.
struct BufferMetrics {
  obs::Counter* bytes_copied;
  obs::Gauge* buffers_live;
  obs::Gauge* payload_refs;
};

BufferMetrics& Metrics() {
  static BufferMetrics m{
      obs::MetricsRegistry::Global().GetCounter("buffer.bytes_copied"),
      obs::MetricsRegistry::Global().GetGauge("buffer.buffers_live"),
      obs::MetricsRegistry::Global().GetGauge("buffer.payload_refs"),
  };
  return m;
}

}  // namespace

// -------------------------------------------------------------- Buffer::Rep

/// Shared backing store.  Slab-backed Reps (`size_class < kNumClasses`
/// or oversized heap slabs) store their bytes inline after the struct;
/// string-backed Reps own a moved-in std::string.  A recycled slab Rep
/// stays constructed on the free list — reuse just resets refs/size.
struct Buffer::Rep {
  std::atomic<uint32_t> refs{1};
  uint32_t size_class = kStringBacked;
  size_t size = 0;
  size_t capacity = 0;          // slab bytes following the struct
  BufferArena* arena = nullptr; // owner; nullptr = string-backed / plain heap
  std::string owner;            // string-backed storage only

  static constexpr uint32_t kStringBacked = 0xFFFFFFFF;

  const char* data() const {
    return size_class == kStringBacked ? owner.data() : slab();
  }
  char* slab() { return reinterpret_cast<char*>(this + 1); }
  const char* slab() const { return reinterpret_cast<const char*>(this + 1); }

  static Rep* NewString(std::string s) {
    Rep* r = new Rep();
    r->owner = std::move(s);
    r->size = r->owner.size();
    return r;
  }

  static Rep* NewSlab(size_t capacity) {
    void* mem = ::operator new(sizeof(Rep) + capacity);
    Rep* r = new (mem) Rep();
    r->size_class = 0;  // caller sets the real class
    r->capacity = capacity;
    return r;
  }

  void Destroy() {
    if (size_class == kStringBacked) {
      delete this;
    } else {
      this->~Rep();
      ::operator delete(this);
    }
  }

  /// Hands a dead slab back to its arena (or destroys it).  Lives on
  /// Rep — a nested class of Buffer — so it inherits Buffer's friend
  /// access to BufferArena::Recycle.
  void Release() {
    if (arena != nullptr) {
      arena->Recycle(this);
    } else {
      Destroy();
    }
  }

  // Refcount + metrics plumbing (member functions because Rep is
  // private to Buffer).
  void Ref();
  void Unref();
  /// Registers a freshly created rep with the live-buffer metrics.
  Rep* Track();
};

void Buffer::Rep::Ref() {
  refs.fetch_add(1, std::memory_order_relaxed);
  Metrics().payload_refs->Add(1);
}

void Buffer::Rep::Unref() {
  Metrics().payload_refs->Add(-1);
  if (refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  Metrics().buffers_live->Add(-1);
  Release();  // pooled slabs return to the arena free list
}

Buffer::Rep* Buffer::Rep::Track() {
  Metrics().buffers_live->Add(1);
  Metrics().payload_refs->Add(1);
  return this;
}

// ------------------------------------------------------------------ Buffer

Buffer::Buffer(std::string s) {
  if (s.empty()) return;
  rep_ = Rep::NewString(std::move(s))->Track();
}

Buffer::Buffer(const Buffer& other) : rep_(other.rep_) {
  if (rep_ != nullptr) rep_->Ref();
}

Buffer::Buffer(Buffer&& other) noexcept : rep_(other.rep_) {
  other.rep_ = nullptr;
}

Buffer& Buffer::operator=(const Buffer& other) {
  if (this == &other) return *this;
  if (other.rep_ != nullptr) other.rep_->Ref();
  if (rep_ != nullptr) rep_->Unref();
  rep_ = other.rep_;
  return *this;
}

Buffer& Buffer::operator=(Buffer&& other) noexcept {
  if (this == &other) return *this;
  if (rep_ != nullptr) rep_->Unref();
  rep_ = other.rep_;
  other.rep_ = nullptr;
  return *this;
}

Buffer::~Buffer() {
  if (rep_ != nullptr) rep_->Unref();
}

Buffer Buffer::CopyOf(Slice bytes, BufferArena* arena) {
  if (bytes.empty()) return Buffer();
  if (arena == nullptr) arena = BufferArena::Default();
  Rep* rep = arena->Allocate(bytes.size());
  std::memcpy(rep->slab(), bytes.data(), bytes.size());
  rep->size = bytes.size();
  Metrics().bytes_copied->Add(bytes.size());
  return Buffer(rep->Track());
}

const char* Buffer::data() const { return rep_ == nullptr ? "" : rep_->data(); }

size_t Buffer::size() const { return rep_ == nullptr ? 0 : rep_->size; }

uint32_t Buffer::use_count() const {
  return rep_ == nullptr ? 0 : rep_->refs.load(std::memory_order_relaxed);
}

void Buffer::Reset() {
  if (rep_ != nullptr) rep_->Unref();
  rep_ = nullptr;
}

// ------------------------------------------------------------ BufferWriter

BufferWriter::BufferWriter(size_t size, BufferArena* arena) : size_(size) {
  if (size == 0) return;
  if (arena == nullptr) arena = BufferArena::Default();
  rep_ = arena->Allocate(size);
  rep_->size = size;
}

BufferWriter::~BufferWriter() {
  if (rep_ == nullptr) return;
  // Abandoned without Finish(): the rep was never published (Track),
  // so bypass the metric-updating Unref and release the slab directly.
  rep_->Release();
}

char* BufferWriter::data() {
  return rep_ == nullptr ? nullptr : rep_->slab();
}

Buffer BufferWriter::Finish() {
  Buffer::Rep* rep = rep_;
  rep_ = nullptr;
  size_ = 0;
  if (rep == nullptr) return Buffer();
  return Buffer(rep->Track());
}

// ------------------------------------------------------------- BufferArena

struct BufferArena::FreeList {
  std::mutex mu;
  std::vector<Buffer::Rep*> reps;
};

BufferArena* BufferArena::Default() {
  static BufferArena* arena = new BufferArena();  // leaked: process-wide
  return arena;
}

BufferArena::BufferArena() : free_lists_(new FreeList[kNumClasses]) {}

BufferArena::~BufferArena() {
  for (size_t c = 0; c < kNumClasses; ++c) {
    for (Buffer::Rep* rep : free_lists_[c].reps) rep->Destroy();
  }
  delete[] free_lists_;
}

size_t BufferArena::ClassFor(size_t n) {
  size_t cls = 0;
  size_t bytes = kMinClassBytes;
  while (bytes < n && cls < kNumClasses) {
    bytes <<= 1;
    ++cls;
  }
  return cls;  // == kNumClasses when n > kMaxClassBytes
}

Buffer::Rep* BufferArena::Allocate(size_t n) {
  const size_t cls = ClassFor(n);
  if (cls >= kNumClasses) {
    // Oversized: plain heap slab, destroyed (not pooled) on release.
    Buffer::Rep* rep = Buffer::Rep::NewSlab(n);
    slabs_created_.fetch_add(1, std::memory_order_relaxed);
    return rep;
  }
  FreeList& list = free_lists_[cls];
  {
    std::lock_guard<std::mutex> lock(list.mu);
    if (!list.reps.empty()) {
      Buffer::Rep* rep = list.reps.back();
      list.reps.pop_back();
      slabs_reused_.fetch_add(1, std::memory_order_relaxed);
      rep->refs.store(1, std::memory_order_relaxed);
      rep->size = 0;
      return rep;
    }
  }
  Buffer::Rep* rep = Buffer::Rep::NewSlab(kMinClassBytes << cls);
  rep->size_class = uint32_t(cls);
  rep->arena = this;
  slabs_created_.fetch_add(1, std::memory_order_relaxed);
  return rep;
}

void BufferArena::Recycle(Buffer::Rep* rep) {
  assert(rep->arena == this && rep->size_class < kNumClasses);
  FreeList& list = free_lists_[rep->size_class];
  {
    std::lock_guard<std::mutex> lock(list.mu);
    if (list.reps.size() < kMaxFreePerClass) {
      list.reps.push_back(rep);
      slabs_recycled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  rep->Destroy();
}

uint64_t BufferArena::slabs_created() const {
  return slabs_created_.load(std::memory_order_relaxed);
}
uint64_t BufferArena::slabs_recycled() const {
  return slabs_recycled_.load(std::memory_order_relaxed);
}
uint64_t BufferArena::slabs_reused() const {
  return slabs_reused_.load(std::memory_order_relaxed);
}
size_t BufferArena::free_slabs() const {
  size_t n = 0;
  for (size_t c = 0; c < kNumClasses; ++c) {
    std::lock_guard<std::mutex> lock(free_lists_[c].mu);
    n += free_lists_[c].reps.size();
  }
  return n;
}

}  // namespace deluge::common
