#ifndef DELUGE_COMMON_BUFFER_H_
#define DELUGE_COMMON_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace deluge::common {

/// An unowned view over contiguous bytes (LevelDB-style).  The viewed
/// storage must outlive the slice; `Buffer` is the owning counterpart.
class Slice {
 public:
  constexpr Slice() = default;
  constexpr Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : Slice(std::string_view(cstr)) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  char operator[](size_t i) const { return data_[i]; }
  void remove_prefix(size_t n) {
    data_ += n;
    size_ -= n;
  }
  Slice subslice(size_t pos, size_t n) const { return Slice(data_ + pos, n); }

  std::string_view view() const { return {data_, size_}; }
  operator std::string_view() const { return view(); }  // NOLINT
  std::string ToString() const { return std::string(data_, size_); }

  friend bool operator==(Slice a, Slice b) { return a.view() == b.view(); }
  friend bool operator!=(Slice a, Slice b) { return !(a == b); }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

class BufferArena;

/// A refcounted immutable byte buffer — the unit of payload ownership on
/// the event path (DESIGN.md §10).
///
/// Copying a Buffer copies a pointer and bumps an atomic refcount; the
/// bytes themselves are written exactly once (by `BufferWriter` into an
/// arena slab, or by the `std::string` move-wrap constructor) and are
/// immutable afterwards, so any number of queue slots, in-flight
/// messages, retry closures, and WAL batches may share one Buffer across
/// threads without synchronisation.  When the last reference drops, a
/// slab-backed Buffer returns its slab to the owning `BufferArena`'s
/// free list for reuse.
class Buffer {
 public:
  Buffer() = default;
  /// Wraps a string by *move* — no byte copy; the string becomes the
  /// backing store.  Implicit on purpose: encode functions build a
  /// std::string and hand it off (`msg.payload = std::move(encoded)`).
  Buffer(std::string s);  // NOLINT
  /// Literal convenience (tests, tags): copies the C string.
  Buffer(const char* cstr) : Buffer(std::string(cstr)) {}  // NOLINT
  Buffer(const Buffer& other);
  Buffer(Buffer&& other) noexcept;
  Buffer& operator=(const Buffer& other);
  Buffer& operator=(Buffer&& other) noexcept;
  ~Buffer();

  /// Copies `bytes` into a fresh slab — the only path that duplicates
  /// payload bytes, counted in the `buffer.bytes_copied` metric.
  /// `arena` nullptr uses the process-wide default arena.
  static Buffer CopyOf(Slice bytes, BufferArena* arena = nullptr);

  const char* data() const;
  size_t size() const;
  bool empty() const { return size() == 0; }
  Slice slice() const { return Slice(data(), size()); }
  std::string_view view() const { return {data(), size()}; }
  operator std::string_view() const { return view(); }  // NOLINT
  std::string ToString() const { return std::string(data(), size()); }

  /// Number of Buffer handles sharing the backing bytes (0 when empty).
  uint32_t use_count() const;
  /// Drops this handle's reference; the Buffer becomes empty.
  void Reset();

  friend bool operator==(const Buffer& b, std::string_view s) {
    return b.view() == s;
  }
  friend bool operator==(std::string_view s, const Buffer& b) {
    return b.view() == s;
  }
  friend bool operator!=(const Buffer& b, std::string_view s) {
    return b.view() != s;
  }

 private:
  friend class BufferArena;
  friend class BufferWriter;
  struct Rep;
  explicit Buffer(Rep* rep) : rep_(rep) {}  // takes ownership of one ref

  Rep* rep_ = nullptr;
};

/// Builds an immutable Buffer by writing `size` bytes into an arena slab
/// exactly once, then sealing it with `Finish()`.  Destroying an
/// unfinished writer returns the slab.
class BufferWriter {
 public:
  /// `arena` nullptr uses the process-wide default arena.
  explicit BufferWriter(size_t size, BufferArena* arena = nullptr);
  BufferWriter(const BufferWriter&) = delete;
  BufferWriter& operator=(const BufferWriter&) = delete;
  ~BufferWriter();

  char* data();
  size_t size() const { return size_; }

  /// Seals the bytes into an immutable Buffer; the writer is empty
  /// afterwards.
  Buffer Finish();

 private:
  Buffer::Rep* rep_ = nullptr;
  size_t size_ = 0;
};

/// A size-class slab allocator for payload buffers.
///
/// Slabs are power-of-two classes from 64 B to 64 KB; a slab whose
/// Buffer refcount drops to zero is pushed onto its class's free list
/// (bounded) instead of hitting the heap, so the steady-state event path
/// allocates nothing.  Oversized payloads fall through to plain heap
/// allocation, freed on release.  Thread-safe.
class BufferArena {
 public:
  /// The process-wide arena used by Buffer/BufferWriter when no arena is
  /// passed.  `runtime::BufferPool::AllocatePayload` draws from it too.
  static BufferArena* Default();

  BufferArena();
  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;
  ~BufferArena();

  // Introspection for tests and the E21 bench.
  uint64_t slabs_created() const;
  uint64_t slabs_recycled() const;  ///< released to a free list
  uint64_t slabs_reused() const;    ///< served from a free list
  size_t free_slabs() const;

 private:
  friend class Buffer;
  friend class BufferWriter;

  static constexpr size_t kMinClassBytes = 64;
  static constexpr size_t kMaxClassBytes = 64 * 1024;
  static constexpr size_t kNumClasses = 11;  // 64 B .. 64 KB
  static constexpr size_t kMaxFreePerClass = 64;

  /// Size class for `n` payload bytes, or kNumClasses when oversized.
  static size_t ClassFor(size_t n);

  Buffer::Rep* Allocate(size_t n);
  /// Called when a slab Buffer's refcount hits zero.
  void Recycle(Buffer::Rep* rep);

  struct FreeList;

  std::atomic<uint64_t> slabs_created_{0};
  std::atomic<uint64_t> slabs_recycled_{0};
  std::atomic<uint64_t> slabs_reused_{0};
  // Array of kNumClasses lists; FreeList is defined in buffer.cc.
  FreeList* free_lists_ = nullptr;
};

}  // namespace deluge::common

#endif  // DELUGE_COMMON_BUFFER_H_
