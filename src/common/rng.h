#ifndef DELUGE_COMMON_RNG_H_
#define DELUGE_COMMON_RNG_H_

#include <cstdint>
#include <cmath>
#include <vector>

namespace deluge {

/// Deterministic, seedable pseudo-random number generator.
///
/// All randomness in Deluge (workload generators, simulators, sampling, DP
/// noise) flows through `Rng` so that every test and benchmark is exactly
/// reproducible from its seed.  The core generator is xoshiro256**, seeded
/// via splitmix64, which is fast and has excellent statistical quality for
/// simulation purposes (not cryptographic use).
class Rng {
 public:
  /// Constructs a generator whose entire stream is determined by `seed`.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit draw.
  uint64_t Next();

  /// Uniform integer in [0, n).  `n` must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal draw (Box–Muller).
  double Gaussian();

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential draw with the given rate (lambda > 0); mean is 1/lambda.
  double Exponential(double lambda);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipfian draw in [0, n) with skew `theta` in [0, 1); theta = 0 is
  /// uniform, values near 1 are highly skewed.  Used for hot-key workloads.
  uint64_t Zipf(uint64_t n, double theta);

  /// Samples `k` distinct indices from [0, n) (reservoir sampling);
  /// if k >= n returns all of [0, n).
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  // Cached state for Zipf draws (recomputed when n/theta change).
  uint64_t zipf_n_ = 0;
  double zipf_theta_ = -1.0;
  double zipf_zetan_ = 0.0;
  double zipf_alpha_ = 0.0;
  double zipf_eta_ = 0.0;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_RNG_H_
