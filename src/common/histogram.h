#ifndef DELUGE_COMMON_HISTOGRAM_H_
#define DELUGE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace deluge {

/// Fixed-memory latency/size histogram with log-spaced buckets.
///
/// Records non-negative values (typically microseconds or bytes) and
/// answers mean/percentile queries.  Percentiles are approximate: within a
/// bucket the distribution is assumed uniform, which bounds relative error
/// by the bucket growth factor (~12% here).  This is the standard
/// storage-engine tradeoff (cf. RocksDB's histogram) — O(1) record cost,
/// no allocation on the hot path.
///
/// Not thread-safe: when multiple threads record into one histogram,
/// use `obs::ConcurrentHistogram`, which stripes mutexed instances of
/// this class and merges them on snapshot.
class Histogram {
 public:
  Histogram();

  /// Adds one observation (values < 0 are clamped to 0).
  void Record(int64_t value);

  /// Adds `count` observations of `value`.
  void RecordMany(int64_t value, uint64_t count);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  /// Removes all observations.
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / double(count_); }

  /// Approximate value at percentile `p` in [0, 100].
  double Percentile(double p) const;

  /// Approximate fraction of observations <= `threshold`, in [0, 1] —
  /// the SLO-attainment query (how much of the traffic met its
  /// target).  Empty histograms answer 1.0: a target nothing was
  /// measured against is vacuously met.
  double FractionBelow(int64_t threshold) const;

  double P50() const { return Percentile(50.0); }
  double P95() const { return Percentile(95.0); }
  double P99() const { return Percentile(99.0); }

  /// One-line summary "count=… mean=… p50=… p95=… p99=… max=…".
  std::string ToString() const;

 private:
  static size_t BucketFor(int64_t value);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_HISTOGRAM_H_
