#include "common/rng.h"

#include <algorithm>

namespace deluge {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  // Box–Muller; draw u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double lambda) {
  double u = 1.0 - NextDouble();
  return -std::log(u) / lambda;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  if (n == 0) return 0;
  if (theta <= 0.0) return Uniform(n);
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = Zeta(n, theta);
    const double zeta2 = Zeta(2, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  const double u = NextDouble();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  return static_cast<uint64_t>(
      double(n) * std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  std::vector<uint64_t> out;
  if (k >= n) {
    out.resize(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(k);
  for (uint64_t i = 0; i < k; ++i) out.push_back(i);
  for (uint64_t i = k; i < n; ++i) {
    uint64_t j = Uniform(i + 1);
    if (j < k) out[j] = i;
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace deluge
