#ifndef DELUGE_COMMON_CLOCK_H_
#define DELUGE_COMMON_CLOCK_H_

#include <cstdint>

namespace deluge {

/// Time in microseconds.  All Deluge components speak one time unit.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

/// Abstract time source.
///
/// Production components read time through a `Clock*` so that the
/// discrete-event simulator (`SimClock`) can drive them with virtual time,
/// making tests and benchmarks deterministic and instantaneous regardless
/// of the simulated timescale.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual Micros NowMicros() const = 0;
};

/// Wall-clock implementation (monotonic).
class SystemClock : public Clock {
 public:
  Micros NowMicros() const override;

  /// A process-wide instance (no destruction-order issues: trivially
  /// destructible state only).
  static SystemClock* Default();
};

/// Manually-advanced virtual clock for simulations and tests.
///
/// Not thread-safe by design: the discrete-event simulator is
/// single-threaded (determinism beats parallelism for a simulator whose
/// events take nanoseconds to execute).
class SimClock : public Clock {
 public:
  explicit SimClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_; }

  /// Moves time forward by `delta` (must be >= 0).
  void Advance(Micros delta) { now_ += delta; }

  /// Jumps to an absolute time (must be >= current time).
  void AdvanceTo(Micros t) {
    if (t > now_) now_ = t;
  }

 private:
  Micros now_;
};

}  // namespace deluge

#endif  // DELUGE_COMMON_CLOCK_H_
