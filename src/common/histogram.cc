#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace deluge {

namespace {
// Bucket boundaries grow geometrically by ~1.125x; precomputed lazily.
// Bucket i covers [kBounds[i-1], kBounds[i]).
std::vector<int64_t> MakeBounds() {
  std::vector<int64_t> bounds;
  bounds.push_back(1);
  while (bounds.back() < (int64_t{1} << 62)) {
    int64_t next = bounds.back() + std::max<int64_t>(1, bounds.back() / 8);
    bounds.push_back(next);
  }
  return bounds;
}

const std::vector<int64_t>& Bounds() {
  static const std::vector<int64_t>& b = *new std::vector<int64_t>(MakeBounds());
  return b;
}
}  // namespace

Histogram::Histogram() : buckets_(Bounds().size() + 1, 0) {}

size_t Histogram::BucketFor(int64_t value) {
  const auto& bounds = Bounds();
  // First bucket whose upper bound exceeds value.
  auto it = std::upper_bound(bounds.begin(), bounds.end(), value);
  return static_cast<size_t>(it - bounds.begin());
}

void Histogram::Record(int64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(int64_t value, uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += count;
  sum_ += double(value) * double(count);
  buckets_[BucketFor(value)] += count;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * double(count_);
  const auto& bounds = Bounds();
  double seen = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    double next = seen + double(buckets_[i]);
    if (next >= target) {
      const double lo = i == 0 ? 0.0 : double(bounds[i - 1]);
      const double hi =
          i < bounds.size() ? double(bounds[i]) : double(max_);
      const double frac =
          buckets_[i] == 0 ? 0.0 : (target - seen) / double(buckets_[i]);
      double v = lo + frac * (hi - lo);
      return std::clamp(v, double(min_), double(max_));
    }
    seen = next;
  }
  return double(max_);
}

double Histogram::FractionBelow(int64_t threshold) const {
  if (count_ == 0) return 1.0;
  if (threshold < 0) return 0.0;
  const auto& bounds = Bounds();
  const size_t cut = BucketFor(threshold);
  double below = 0.0;
  for (size_t i = 0; i < cut; ++i) below += double(buckets_[i]);
  // Uniform interpolation inside the bucket containing the threshold
  // (same assumption Percentile makes).
  if (cut < buckets_.size() && buckets_[cut] > 0) {
    const double lo = cut == 0 ? 0.0 : double(bounds[cut - 1]);
    const double hi = cut < bounds.size()
                          ? double(bounds[cut])
                          : double(std::max(max_, threshold));
    const double frac =
        hi > lo ? (double(threshold) + 1.0 - lo) / (hi - lo) : 1.0;
    below += std::clamp(frac, 0.0, 1.0) * double(buckets_[cut]);
  }
  return std::clamp(below / double(count_), 0.0, 1.0);
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.1f p95=%.1f p99=%.1f max=%lld",
                static_cast<unsigned long long>(count_), mean(), P50(), P95(),
                P99(), static_cast<long long>(max_));
  return buf;
}

}  // namespace deluge
