#include "common/qos.h"

namespace deluge {

const char* QosClassName(QosClass c) {
  switch (c) {
    case QosClass::kRealtime:
      return "realtime";
    case QosClass::kInteractive:
      return "interactive";
    case QosClass::kTelemetry:
      return "telemetry";
    case QosClass::kBulk:
      return "bulk";
  }
  return "bulk";
}

QosPolicy::QosPolicy() {
  // Defaults mirror the §II application mix.  Latency targets are
  // virtual-time and sized for DEBUG builds so the E25 gate is about
  // behaviour (sheds, retry budgets, durability), not machine speed.
  QosTarget& rt = targets_[uint8_t(QosClass::kRealtime)];
  rt.freshness_us = 50 * kMicrosPerMilli;
  rt.delivery_p99_us = 20 * kMicrosPerMilli;
  rt.commit_p99_us = 0;  // never durable: a fresher mirror supersedes
  rt.durable_commit = false;
  rt.max_retry_attempts = 1;  // no redelivery — staleness beats replay
  rt.weight = 8.0;
  rt.min_attainment = 0.99;

  QosTarget& ia = targets_[uint8_t(QosClass::kInteractive)];
  ia.freshness_us = 100 * kMicrosPerMilli;
  ia.delivery_p99_us = 50 * kMicrosPerMilli;
  ia.commit_p99_us = 100 * kMicrosPerMilli;
  ia.durable_commit = false;
  ia.max_retry_attempts = 2;
  ia.weight = 4.0;
  ia.min_attainment = 0.95;

  QosTarget& tm = targets_[uint8_t(QosClass::kTelemetry)];
  tm.freshness_us = kMicrosPerSecond;
  tm.delivery_p99_us = 200 * kMicrosPerMilli;
  tm.commit_p99_us = 200 * kMicrosPerMilli;
  tm.durable_commit = true;  // hospital telemetry must survive a crash
  tm.max_retry_attempts = 4;
  tm.weight = 2.0;
  tm.min_attainment = 0.99;

  QosTarget& bk = targets_[uint8_t(QosClass::kBulk)];
  bk.freshness_us = 0;  // no freshness claim
  bk.delivery_p99_us = kMicrosPerSecond;
  bk.commit_p99_us = kMicrosPerSecond;
  bk.durable_commit = false;
  bk.max_retry_attempts = 6;
  bk.weight = 1.0;
  bk.min_attainment = 0.50;  // bulk may shed under overload
}

const QosPolicy& QosPolicy::Default() {
  static const QosPolicy kDefault;
  return kDefault;
}

}  // namespace deluge
