#include "common/hash.h"

namespace deluge {

uint64_t Hash64(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  // Final avalanche so that short keys spread over all bits.
  return Mix64(h);
}

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace deluge
