#ifndef DELUGE_TXN_DISTRIBUTED_H_
#define DELUGE_TXN_DISTRIBUTED_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <deque>

#include "common/buffer.h"
#include "common/histogram.h"
#include "common/retry.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "txn/mvcc.h"

namespace deluge::txn {

/// Wire message types of the commit protocols.
enum class TxnMsg : uint32_t {
  kPrepare = 1,
  kVoteYes = 2,
  kVoteNo = 3,
  kCommit = 4,
  kAbort = 5,
  kAck = 6,
  kSingleRound = 7,        ///< one-shot validate+apply
  kSingleRoundOk = 8,
  kSingleRoundReject = 9,
};

/// One buffered write.
struct WriteOp {
  std::string key;
  std::string value;
};

/// Commit outcome reported to the application.
struct TxnResult {
  bool committed = false;
  Timestamp commit_ts = 0;
  Micros latency = 0;  ///< submit -> decision, virtual time
};

/// Commit protocols compared in E6.
enum class CommitProtocol {
  kTwoPhase,      ///< classic 2PC: prepare round + commit round (2 RTT)
  kSingleRound,   ///< Carousel-style one-round commit (1 RTT)
};

/// A participant shard bound to a network node.
///
/// Owns an `MvccStore` and answers protocol messages: PREPARE locks the
/// write set and votes; COMMIT applies and unlocks; SINGLE_ROUND
/// validates the read versions and applies in one step.
class ShardNode {
 public:
  /// Registers the shard on `net` and returns it; alive until the
  /// owning DistributedTxnSystem is destroyed.
  explicit ShardNode(net::Transport* net);

  net::NodeId node_id() const { return node_id_; }
  MvccStore& store() { return store_; }

  /// Processing-time model per message (CPU cost).
  Micros processing_cost = 20;

 private:
  void OnMessage(const net::Message& msg);
  void HandlePrepare(const net::Message& msg);
  void HandleCommit(const net::Message& msg, bool commit);
  void HandleSingleRound(const net::Message& msg);

  /// Remembers a decision (idempotence under retransmission) with FIFO
  /// eviction once the cache exceeds its cap.
  void RememberDecision(uint64_t txn_id, bool outcome);

  net::Transport* net_;
  net::NodeId node_id_ = 0;
  MvccStore store_;
  // txn id -> prepared writes awaiting commit.
  std::unordered_map<uint64_t, std::vector<WriteOp>> prepared_;
  // txn id -> decision outcome, so duplicate (retransmitted) messages
  // re-reply instead of re-executing.  Bounded FIFO cache.
  std::unordered_map<uint64_t, bool> decided_;
  std::deque<uint64_t> decided_order_;
};

/// The distributed transaction layer of a decentralized metaverse
/// database: keys hash-partitioned over shards, commit via 2PC or a
/// single-round protocol, all over the simulated (multi-DC) network so
/// that E6 can sweep inter-DC RTT.
class DistributedTxnSystem {
 public:
  using Callback = std::function<void(const TxnResult&)>;

  /// `shards` are created by the caller (placed into DCs as desired);
  /// the system registers one coordinator node on `net`.
  DistributedTxnSystem(net::Transport* net, std::vector<ShardNode*> shards);

  /// The shard index owning `key`.
  size_t ShardOf(const std::string& key) const;

  /// Submits a transaction writing `writes` (read-your-writes snapshot at
  /// submit time), committing via `protocol`.  The callback fires at
  /// decision time in virtual time.  Reads for validation are the
  /// latest versions of the written keys at submit (OCC-style).
  ///
  /// If the protocol does not complete within `timeout` (lost messages,
  /// partitions), the coordinator aborts: participants get an ABORT (so
  /// prepared locks release when reachable) and the callback reports
  /// `committed = false`.
  void Submit(std::vector<WriteOp> writes, CommitProtocol protocol,
              Callback cb, Micros timeout = 10 * kMicrosPerSecond);

  /// Snapshot read through the owning shard (local, no network; models a
  /// client library with a shard map).
  Status Read(const std::string& key, std::string* value) const;

  /// Registry-backed snapshot, refreshed on every call.
  const Histogram& commit_latency() const {
    latency_snapshot_ = commit_latency_->Snapshot();
    return latency_snapshot_;
  }
  uint64_t committed() const { return committed_->Value(); }
  uint64_t aborted() const { return aborted_->Value(); }
  net::NodeId coordinator_node() const { return coord_node_; }

  // --- Recovery machinery (chaos-hardening) ---------------------------

  /// Per-round retransmission policy: while votes (or acks) are missing,
  /// the coordinator re-sends the round to the silent participants with
  /// backoff, deadline-capped by the transaction timeout.
  RetryPolicy& retransmit_policy() { return retransmit_policy_; }

  /// Redelivery policy for decisions left unacknowledged at timeout.
  /// A decided COMMIT whose commit message was lost to a partitioned
  /// shard is re-driven until every participant applies it — otherwise
  /// the write would be reported committed and then lost.
  RetryPolicy& redelivery_policy() { return redelivery_policy_; }

  /// Per-shard circuit breaker: repeated round failures open the breaker
  /// and later submissions touching that shard fast-fail (abort
  /// immediately) until a cooldown probe succeeds.
  CircuitBreakerOptions& breaker_options() { return breaker_options_; }
  CircuitBreaker& breaker_for_shard(size_t shard);

  uint64_t retransmits() const { return retransmits_->Value(); }
  uint64_t fast_fails() const { return fast_fails_->Value(); }
  uint64_t redeliveries() const { return redeliveries_->Value(); }
  /// Decisions abandoned with participants still unreachable after the
  /// redelivery budget (should be 0 when faults eventually heal).
  uint64_t unresolved_decisions() const {
    return unresolved_decisions_->Value();
  }

 private:
  struct InFlight {
    uint64_t txn_id;
    CommitProtocol protocol;
    std::vector<WriteOp> writes;
    std::vector<size_t> participant_shards;
    std::vector<char> voted;         ///< parallel to participant_shards
    std::vector<char> acked;         ///< parallel to participant_shards
    /// Per-participant prepare payloads, encoded once at Submit; every
    /// send and retransmit shares the refcounted Buffer.
    std::vector<common::Buffer> round_payloads;
    /// Decision payload, encoded once when the decision is reached and
    /// shared across the commit round, retransmits, and redelivery.
    common::Buffer decision_payload;
    size_t votes_pending = 0;
    bool vote_failed = false;
    bool decided = false;          ///< 2PC: decision reached (commit/abort)
    bool decision_commit = false;  ///< the decision, valid when `decided`
    size_t acks_pending = 0;
    Micros started_at = 0;
    Micros timeout = 0;
    Timestamp commit_ts = 0;
    RetryState retransmit;
    Callback cb;
  };

  /// A decision whose acks were still missing when the transaction timed
  /// out; re-driven in the background until applied everywhere.
  struct PendingDecision {
    uint64_t txn_id;
    bool commit;
    common::Buffer payload;  ///< shared with the timed-out transaction
    std::vector<size_t> shards;  ///< only the still-unacked participants
    RetryState retry;
  };

  void OnMessage(const net::Message& msg);
  void Finish(InFlight& txn, bool committed);
  void SendToShard(size_t shard, TxnMsg type, uint64_t txn_id,
                   const common::Buffer& payload);
  /// Builds (once) and returns the txn's shared decision payload.
  const common::Buffer& DecisionPayload(InFlight& txn);
  void ScheduleRetransmit(uint64_t txn_id);
  void ScheduleRedelivery(uint64_t txn_id);
  /// Index of `shard` in txn.participant_shards, or npos.
  static size_t ParticipantIndex(const InFlight& txn, size_t shard);

  net::Transport* net_;
  std::vector<ShardNode*> shards_;
  std::unordered_map<net::NodeId, size_t> node_to_shard_;
  net::NodeId coord_node_ = 0;
  uint64_t next_txn_id_ = 1;
  Timestamp next_ts_ = 1;
  std::unordered_map<uint64_t, InFlight> in_flight_;
  std::unordered_map<uint64_t, PendingDecision> pending_decisions_;
  RetryPolicy retransmit_policy_;
  RetryPolicy redelivery_policy_;
  CircuitBreakerOptions breaker_options_;
  // Deque: grows without relocating (CircuitBreaker owns a mutex and is
  // neither movable nor copyable).
  std::deque<CircuitBreaker> breakers_;
  Rng rng_{0xC4A05u};  ///< backoff jitter (seeded: runs are reproducible)
  obs::StatsScope obs_{"txn"};
  obs::ConcurrentHistogram* commit_latency_ =
      obs_.histogram("commit_latency_us");
  obs::Counter* committed_ = obs_.counter("committed");
  obs::Counter* aborted_ = obs_.counter("aborted");
  obs::Counter* retransmits_ = obs_.counter("retransmits");
  obs::Counter* fast_fails_ = obs_.counter("fast_fails");
  obs::Counter* redeliveries_ = obs_.counter("redeliveries");
  obs::Counter* unresolved_decisions_ = obs_.counter("unresolved_decisions");
  mutable Histogram latency_snapshot_;
};

/// Wire coding helpers (exposed for tests).
std::string EncodeWrites(uint64_t txn_id, Timestamp ts,
                         const std::vector<WriteOp>& writes);
bool DecodeWrites(std::string_view payload, uint64_t* txn_id, Timestamp* ts,
                  std::vector<WriteOp>* writes);

}  // namespace deluge::txn

#endif  // DELUGE_TXN_DISTRIBUTED_H_
