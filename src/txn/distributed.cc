#include "txn/distributed.h"

#include "common/hash.h"
#include "storage/format.h"

namespace deluge::txn {

using storage::GetFixed64;
using storage::GetLengthPrefixed;
using storage::PutFixed64;
using storage::PutLengthPrefixed;

std::string EncodeWrites(uint64_t txn_id, Timestamp ts,
                         const std::vector<WriteOp>& writes) {
  std::string out;
  PutFixed64(&out, txn_id);
  PutFixed64(&out, ts);
  PutFixed64(&out, writes.size());
  for (const auto& w : writes) {
    PutLengthPrefixed(&out, w.key);
    PutLengthPrefixed(&out, w.value);
  }
  return out;
}

bool DecodeWrites(std::string_view payload, uint64_t* txn_id, Timestamp* ts,
                  std::vector<WriteOp>* writes) {
  uint64_t count = 0;
  if (!GetFixed64(&payload, txn_id) || !GetFixed64(&payload, ts) ||
      !GetFixed64(&payload, &count)) {
    return false;
  }
  writes->clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view k, v;
    if (!GetLengthPrefixed(&payload, &k) || !GetLengthPrefixed(&payload, &v)) {
      return false;
    }
    writes->push_back(WriteOp{std::string(k), std::string(v)});
  }
  return true;
}

// -------------------------------------------------------------- ShardNode

ShardNode::ShardNode(net::Network* net, net::Simulator* sim)
    : net_(net), sim_(sim) {
  node_id_ = net->AddNode([this](const net::Message& m) { OnMessage(m); });
}

void ShardNode::OnMessage(const net::Message& msg) {
  switch (static_cast<TxnMsg>(msg.type)) {
    case TxnMsg::kPrepare:
      HandlePrepare(msg);
      break;
    case TxnMsg::kCommit:
      HandleCommit(msg, true);
      break;
    case TxnMsg::kAbort:
      HandleCommit(msg, false);
      break;
    case TxnMsg::kSingleRound:
      HandleSingleRound(msg);
      break;
    default:
      break;  // replies are coordinator-side
  }
}

void ShardNode::HandlePrepare(const net::Message& msg) {
  uint64_t txn_id = 0;
  Timestamp ts = 0;
  std::vector<WriteOp> writes;
  bool vote_yes = DecodeWrites(msg.payload, &txn_id, &ts, &writes);
  if (vote_yes) {
    for (const auto& w : writes) {
      if (!store_.TryLock(w.key, txn_id).ok()) {
        vote_yes = false;
        break;
      }
    }
    if (!vote_yes) {
      for (const auto& w : writes) store_.Unlock(w.key, txn_id);
    }
  }
  if (vote_yes) prepared_[txn_id] = std::move(writes);

  net::Message reply;
  reply.from = node_id_;
  reply.to = msg.from;
  reply.type = uint32_t(vote_yes ? TxnMsg::kVoteYes : TxnMsg::kVoteNo);
  std::string payload;
  PutFixed64(&payload, txn_id);
  reply.payload = std::move(payload);
  net::Network* net = net_;
  sim_->After(processing_cost,
              [net, reply = std::move(reply)]() { net->Send(reply); });
}

void ShardNode::HandleCommit(const net::Message& msg, bool commit) {
  std::string_view payload(msg.payload);
  uint64_t txn_id = 0;
  Timestamp ts = 0;
  if (!GetFixed64(&payload, &txn_id) || !GetFixed64(&payload, &ts)) return;
  auto it = prepared_.find(txn_id);
  if (it != prepared_.end()) {
    for (const auto& w : it->second) {
      if (commit) {
        store_.CommitWrite(w.key, w.value, ts, txn_id);
      } else {
        store_.Unlock(w.key, txn_id);
      }
    }
    prepared_.erase(it);
  }
  net::Message reply;
  reply.from = node_id_;
  reply.to = msg.from;
  reply.type = uint32_t(TxnMsg::kAck);
  std::string ack;
  PutFixed64(&ack, txn_id);
  reply.payload = std::move(ack);
  net::Network* net = net_;
  sim_->After(processing_cost,
              [net, reply = std::move(reply)]() { net->Send(reply); });
}

void ShardNode::HandleSingleRound(const net::Message& msg) {
  uint64_t txn_id = 0;
  Timestamp ts = 0;
  std::vector<WriteOp> writes;
  bool ok = DecodeWrites(msg.payload, &txn_id, &ts, &writes);
  if (ok) {
    // Validation: the key must not be write-locked by a concurrent 2PC
    // transaction, and its latest version must precede our timestamp
    // (deterministic ordering by coordinator timestamp).
    for (const auto& w : writes) {
      if (!store_.TryLock(w.key, txn_id).ok() ||
          store_.LatestVersion(w.key) >= ts) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& w : writes) store_.CommitWrite(w.key, w.value, ts, txn_id);
    } else {
      for (const auto& w : writes) store_.Unlock(w.key, txn_id);
    }
  }
  net::Message reply;
  reply.from = node_id_;
  reply.to = msg.from;
  reply.type =
      uint32_t(ok ? TxnMsg::kSingleRoundOk : TxnMsg::kSingleRoundReject);
  std::string payload;
  PutFixed64(&payload, txn_id);
  reply.payload = std::move(payload);
  net::Network* net = net_;
  sim_->After(processing_cost,
              [net, reply = std::move(reply)]() { net->Send(reply); });
}

// --------------------------------------------------- DistributedTxnSystem

DistributedTxnSystem::DistributedTxnSystem(net::Network* net,
                                           net::Simulator* sim,
                                           std::vector<ShardNode*> shards)
    : net_(net), sim_(sim), shards_(std::move(shards)) {
  coord_node_ = net->AddNode([this](const net::Message& m) { OnMessage(m); });
}

size_t DistributedTxnSystem::ShardOf(const std::string& key) const {
  return size_t(Hash64(key) % shards_.size());
}

Status DistributedTxnSystem::Read(const std::string& key,
                                  std::string* value) const {
  return shards_[ShardOf(key)]->store().Get(key, ~Timestamp{0}, value);
}

void DistributedTxnSystem::SendToShard(size_t shard, TxnMsg type,
                                       uint64_t txn_id,
                                       const std::string& payload) {
  (void)txn_id;
  net::Message msg;
  msg.from = coord_node_;
  msg.to = shards_[shard]->node_id();
  msg.type = uint32_t(type);
  msg.payload = payload;
  net_->Send(std::move(msg));
}

void DistributedTxnSystem::Submit(std::vector<WriteOp> writes,
                                  CommitProtocol protocol, Callback cb,
                                  Micros timeout) {
  InFlight txn;
  txn.txn_id = next_txn_id_++;
  txn.protocol = protocol;
  txn.writes = std::move(writes);
  txn.started_at = sim_->Now();
  txn.commit_ts = next_ts_++;
  txn.cb = std::move(cb);

  // Group writes by shard.
  std::map<size_t, std::vector<WriteOp>> by_shard;
  for (const auto& w : txn.writes) by_shard[ShardOf(w.key)].push_back(w);
  for (const auto& [shard, ops] : by_shard) {
    txn.participant_shards.push_back(shard);
  }
  txn.votes_pending = txn.participant_shards.size();

  TxnMsg round_type = protocol == CommitProtocol::kTwoPhase
                          ? TxnMsg::kPrepare
                          : TxnMsg::kSingleRound;
  uint64_t id = txn.txn_id;
  Timestamp ts = txn.commit_ts;
  in_flight_.emplace(id, std::move(txn));
  for (const auto& [shard, ops] : by_shard) {
    SendToShard(shard, round_type, id, EncodeWrites(id, ts, ops));
  }
  // Safety net: a lost message or partition must not wedge the
  // transaction (and its locks) forever.
  if (timeout > 0) {
    sim_->After(timeout, [this, id]() {
      auto it = in_flight_.find(id);
      if (it == in_flight_.end()) return;  // already decided
      InFlight& stuck = it->second;
      // If the decision was already reached (commit sent, acks lost),
      // honour it — a durable decision must never be reported as abort.
      // Otherwise broadcast a best-effort abort so reachable
      // participants release their prepared locks.
      bool committed = stuck.decided && stuck.decision_commit;
      std::string decision;
      PutFixed64(&decision, stuck.txn_id);
      PutFixed64(&decision, stuck.commit_ts);
      for (size_t shard : stuck.participant_shards) {
        SendToShard(shard, committed ? TxnMsg::kCommit : TxnMsg::kAbort,
                    stuck.txn_id, decision);
      }
      Finish(stuck, committed);
      in_flight_.erase(it);
    });
  }
}

void DistributedTxnSystem::OnMessage(const net::Message& msg) {
  std::string_view payload(msg.payload);
  uint64_t txn_id = 0;
  if (!GetFixed64(&payload, &txn_id)) return;
  auto it = in_flight_.find(txn_id);
  if (it == in_flight_.end()) return;
  InFlight& txn = it->second;

  switch (static_cast<TxnMsg>(msg.type)) {
    case TxnMsg::kVoteYes:
    case TxnMsg::kVoteNo: {
      if (static_cast<TxnMsg>(msg.type) == TxnMsg::kVoteNo) {
        txn.vote_failed = true;
      }
      if (--txn.votes_pending > 0) return;
      // All votes in: second round.
      bool commit = !txn.vote_failed;
      txn.acks_pending = txn.participant_shards.size();
      std::string decision;
      PutFixed64(&decision, txn.txn_id);
      PutFixed64(&decision, txn.commit_ts);
      for (size_t shard : txn.participant_shards) {
        SendToShard(shard, commit ? TxnMsg::kCommit : TxnMsg::kAbort,
                    txn.txn_id, decision);
      }
      // 2PC completes when the commit round is acknowledged: only then
      // are locks released and writes visible everywhere.  (This is the
      // full-protocol latency the single-round protocol eliminates.)
      txn.decided = true;
      txn.decision_commit = commit;
      return;
    }
    case TxnMsg::kAck: {
      if (txn.acks_pending > 0 && --txn.acks_pending == 0) {
        Finish(txn, txn.decision_commit);
        in_flight_.erase(it);
      }
      return;
    }
    case TxnMsg::kSingleRoundOk:
    case TxnMsg::kSingleRoundReject: {
      if (static_cast<TxnMsg>(msg.type) == TxnMsg::kSingleRoundReject) {
        txn.vote_failed = true;
      }
      if (--txn.votes_pending > 0) return;
      Finish(txn, !txn.vote_failed);
      in_flight_.erase(it);
      return;
    }
    default:
      return;
  }
}

void DistributedTxnSystem::Finish(InFlight& txn, bool committed) {
  if (txn.cb == nullptr) return;
  TxnResult result;
  result.committed = committed;
  result.commit_ts = txn.commit_ts;
  result.latency = sim_->Now() - txn.started_at;
  commit_latency_.Record(result.latency);
  if (committed) {
    ++committed_;
  } else {
    ++aborted_;
  }
  Callback cb = std::move(txn.cb);
  txn.cb = nullptr;
  cb(result);
}

}  // namespace deluge::txn
