#include "txn/distributed.h"

#include <algorithm>

#include "common/hash.h"
#include "storage/format.h"

namespace deluge::txn {

using storage::GetFixed64;
using storage::GetLengthPrefixed;
using storage::PutFixed64;
using storage::PutLengthPrefixed;

std::string EncodeWrites(uint64_t txn_id, Timestamp ts,
                         const std::vector<WriteOp>& writes) {
  std::string out;
  PutFixed64(&out, txn_id);
  PutFixed64(&out, ts);
  PutFixed64(&out, writes.size());
  for (const auto& w : writes) {
    PutLengthPrefixed(&out, w.key);
    PutLengthPrefixed(&out, w.value);
  }
  return out;
}

bool DecodeWrites(std::string_view payload, uint64_t* txn_id, Timestamp* ts,
                  std::vector<WriteOp>* writes) {
  uint64_t count = 0;
  if (!GetFixed64(&payload, txn_id) || !GetFixed64(&payload, ts) ||
      !GetFixed64(&payload, &count)) {
    return false;
  }
  writes->clear();
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view k, v;
    if (!GetLengthPrefixed(&payload, &k) || !GetLengthPrefixed(&payload, &v)) {
      return false;
    }
    writes->push_back(WriteOp{std::string(k), std::string(v)});
  }
  return true;
}

// -------------------------------------------------------------- ShardNode

ShardNode::ShardNode(net::Transport* net) : net_(net) {
  node_id_ = net->AddNode([this](const net::Message& m) { OnMessage(m); });
}

void ShardNode::OnMessage(const net::Message& msg) {
  switch (static_cast<TxnMsg>(msg.type)) {
    case TxnMsg::kPrepare:
      HandlePrepare(msg);
      break;
    case TxnMsg::kCommit:
      HandleCommit(msg, true);
      break;
    case TxnMsg::kAbort:
      HandleCommit(msg, false);
      break;
    case TxnMsg::kSingleRound:
      HandleSingleRound(msg);
      break;
    default:
      break;  // replies are coordinator-side
  }
}

void ShardNode::RememberDecision(uint64_t txn_id, bool outcome) {
  if (decided_.emplace(txn_id, outcome).second) {
    decided_order_.push_back(txn_id);
    // Bounded cache: old decisions age out; by then no retransmit for
    // them is still in flight (retry budgets are finite).
    while (decided_order_.size() > 8192) {
      decided_.erase(decided_order_.front());
      decided_order_.pop_front();
    }
  }
}

void ShardNode::HandlePrepare(const net::Message& msg) {
  uint64_t txn_id = 0;
  Timestamp ts = 0;
  std::vector<WriteOp> writes;
  bool vote_yes = DecodeWrites(msg.payload, &txn_id, &ts, &writes);
  if (vote_yes && decided_.count(txn_id) > 0) {
    // Stale retransmit of an already-decided transaction: nothing to
    // prepare, and the coordinator no longer listens.
    return;
  }
  if (vote_yes && prepared_.count(txn_id) > 0) {
    // Duplicate prepare (our vote was lost): re-vote without re-locking.
  } else if (vote_yes) {
    for (const auto& w : writes) {
      if (!store_.TryLock(w.key, txn_id).ok()) {
        vote_yes = false;
        break;
      }
    }
    if (!vote_yes) {
      for (const auto& w : writes) store_.Unlock(w.key, txn_id);
    }
    if (vote_yes) prepared_[txn_id] = std::move(writes);
  }

  net::Message reply;
  reply.from = node_id_;
  reply.to = msg.from;
  reply.type = uint32_t(vote_yes ? TxnMsg::kVoteYes : TxnMsg::kVoteNo);
  std::string wire;
  PutFixed64(&wire, txn_id);
  reply.payload = std::move(wire);
  net::Transport* net = net_;
  net_->After(processing_cost,
              [net, reply = std::move(reply)]() { net->Send(reply); });
}

void ShardNode::HandleCommit(const net::Message& msg, bool commit) {
  std::string_view payload(msg.payload);
  uint64_t txn_id = 0;
  Timestamp ts = 0;
  if (!GetFixed64(&payload, &txn_id) || !GetFixed64(&payload, &ts)) return;
  auto it = prepared_.find(txn_id);
  if (it != prepared_.end()) {
    for (const auto& w : it->second) {
      if (commit) {
        store_.CommitWrite(w.key, w.value, ts, txn_id);
      } else {
        store_.Unlock(w.key, txn_id);
      }
    }
    prepared_.erase(it);
  }
  RememberDecision(txn_id, commit);
  net::Message reply;
  reply.from = node_id_;
  reply.to = msg.from;
  reply.type = uint32_t(TxnMsg::kAck);
  std::string ack;
  PutFixed64(&ack, txn_id);
  reply.payload = std::move(ack);
  net::Transport* net = net_;
  net_->After(processing_cost,
              [net, reply = std::move(reply)]() { net->Send(reply); });
}

void ShardNode::HandleSingleRound(const net::Message& msg) {
  uint64_t txn_id = 0;
  Timestamp ts = 0;
  std::vector<WriteOp> writes;
  bool ok = DecodeWrites(msg.payload, &txn_id, &ts, &writes);
  if (ok) {
    auto dit = decided_.find(txn_id);
    if (dit != decided_.end()) {
      // Duplicate single-round request (our reply was lost): re-reply
      // the recorded verdict instead of re-validating — a re-validation
      // would reject its own committed write (version >= ts) and flip
      // the answer.
      net::Message reply;
      reply.from = node_id_;
      reply.to = msg.from;
      reply.type = uint32_t(dit->second ? TxnMsg::kSingleRoundOk
                                        : TxnMsg::kSingleRoundReject);
      std::string wire;
      PutFixed64(&wire, txn_id);
      reply.payload = std::move(wire);
      net::Transport* net = net_;
      net_->After(processing_cost,
                  [net, reply = std::move(reply)]() { net->Send(reply); });
      return;
    }
  }
  if (ok) {
    // Validation: the key must not be write-locked by a concurrent 2PC
    // transaction, and its latest version must precede our timestamp
    // (deterministic ordering by coordinator timestamp).
    for (const auto& w : writes) {
      if (!store_.TryLock(w.key, txn_id).ok() ||
          store_.LatestVersion(w.key) >= ts) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& w : writes) store_.CommitWrite(w.key, w.value, ts, txn_id);
    } else {
      for (const auto& w : writes) store_.Unlock(w.key, txn_id);
    }
    RememberDecision(txn_id, ok);
  }
  net::Message reply;
  reply.from = node_id_;
  reply.to = msg.from;
  reply.type =
      uint32_t(ok ? TxnMsg::kSingleRoundOk : TxnMsg::kSingleRoundReject);
  std::string wire;
  PutFixed64(&wire, txn_id);
  reply.payload = std::move(wire);
  net::Transport* net = net_;
  net_->After(processing_cost,
              [net, reply = std::move(reply)]() { net->Send(reply); });
}

// --------------------------------------------------- DistributedTxnSystem

DistributedTxnSystem::DistributedTxnSystem(net::Transport* net,
                                           std::vector<ShardNode*> shards)
    : net_(net), shards_(std::move(shards)) {
  coord_node_ = net->AddNode([this](const net::Message& m) { OnMessage(m); });
  for (size_t i = 0; i < shards_.size(); ++i) {
    node_to_shard_[shards_[i]->node_id()] = i;
  }
  // Round retransmission: a handful of tries, deadline-capped per txn by
  // its timeout (set at Submit).
  retransmit_policy_.max_attempts = 6;
  retransmit_policy_.initial_backoff = 100 * kMicrosPerMilli;
  retransmit_policy_.max_backoff = kMicrosPerSecond;
  // Decision redelivery keeps trying much longer: it must outlast
  // realistic partition windows so decided commits eventually apply on
  // every participant.
  redelivery_policy_.max_attempts = 16;
  redelivery_policy_.initial_backoff = 100 * kMicrosPerMilli;
  redelivery_policy_.max_backoff = 2 * kMicrosPerSecond;
}

CircuitBreaker& DistributedTxnSystem::breaker_for_shard(size_t shard) {
  while (breakers_.size() <= shard) breakers_.emplace_back(breaker_options_);
  return breakers_[shard];
}

size_t DistributedTxnSystem::ParticipantIndex(const InFlight& txn,
                                              size_t shard) {
  for (size_t i = 0; i < txn.participant_shards.size(); ++i) {
    if (txn.participant_shards[i] == shard) return i;
  }
  return size_t(-1);
}

size_t DistributedTxnSystem::ShardOf(const std::string& key) const {
  return size_t(Hash64(key) % shards_.size());
}

Status DistributedTxnSystem::Read(const std::string& key,
                                  std::string* value) const {
  return shards_[ShardOf(key)]->store().Get(key, ~Timestamp{0}, value);
}

void DistributedTxnSystem::SendToShard(size_t shard, TxnMsg type,
                                       uint64_t txn_id,
                                       const common::Buffer& payload) {
  (void)txn_id;
  net::Message msg;
  msg.from = coord_node_;
  msg.to = shards_[shard]->node_id();
  msg.type = uint32_t(type);
  // Refcount bump only: all participants (and every retransmit /
  // redelivery) of a round share one encoded payload allocation.
  msg.payload = payload;
  net_->Send(std::move(msg));
}

const common::Buffer& DistributedTxnSystem::DecisionPayload(InFlight& txn) {
  if (txn.decision_payload.empty()) {
    std::string decision;
    PutFixed64(&decision, txn.txn_id);
    PutFixed64(&decision, txn.commit_ts);
    txn.decision_payload = common::Buffer(std::move(decision));
  }
  return txn.decision_payload;
}

void DistributedTxnSystem::Submit(std::vector<WriteOp> writes,
                                  CommitProtocol protocol, Callback cb,
                                  Micros timeout) {
  InFlight txn;
  txn.txn_id = next_txn_id_++;
  txn.protocol = protocol;
  txn.writes = std::move(writes);
  txn.started_at = net_->Now();
  txn.timeout = timeout;
  txn.commit_ts = next_ts_++;
  txn.cb = std::move(cb);

  // Group writes by shard.
  std::map<size_t, std::vector<WriteOp>> by_shard;
  for (const auto& w : txn.writes) by_shard[ShardOf(w.key)].push_back(w);
  for (const auto& [shard, ops] : by_shard) {
    txn.participant_shards.push_back(shard);
    txn.round_payloads.push_back(EncodeWrites(txn.txn_id, txn.commit_ts, ops));
  }
  txn.votes_pending = txn.participant_shards.size();
  txn.voted.assign(txn.participant_shards.size(), 0);
  txn.acked.assign(txn.participant_shards.size(), 0);

  // Fast-fail when any participant's breaker is open: aborting now is
  // cheaper than locking healthy shards and timing out.
  for (size_t shard : txn.participant_shards) {
    if (!breaker_for_shard(shard).Allow(net_->Now())) {
      fast_fails_->Add(1);
      Finish(txn, false);
      return;
    }
  }

  RetryPolicy per_txn = retransmit_policy_;
  if (timeout > 0 &&
      (per_txn.deadline == 0 || per_txn.deadline > timeout)) {
    per_txn.deadline = timeout;  // never retransmit past the abort point
  }
  txn.retransmit = RetryState(per_txn, net_->Now());

  TxnMsg round_type = protocol == CommitProtocol::kTwoPhase
                          ? TxnMsg::kPrepare
                          : TxnMsg::kSingleRound;
  uint64_t id = txn.txn_id;
  in_flight_.emplace(id, std::move(txn));
  {
    const InFlight& t = in_flight_[id];
    for (size_t i = 0; i < t.participant_shards.size(); ++i) {
      SendToShard(t.participant_shards[i], round_type, id,
                  t.round_payloads[i]);
    }
  }
  ScheduleRetransmit(id);
  // Safety net: a lost message or partition must not wedge the
  // transaction (and its locks) forever.
  if (timeout > 0) {
    net_->After(timeout, [this, id]() {
      auto it = in_flight_.find(id);
      if (it == in_flight_.end()) return;  // already decided
      InFlight& stuck = it->second;
      // If the decision was already reached (commit sent, acks lost),
      // honour it — a durable decision must never be reported as abort.
      // Otherwise broadcast a best-effort abort so reachable
      // participants release their prepared locks.
      bool committed = stuck.decided && stuck.decision_commit;
      const common::Buffer& decision = DecisionPayload(stuck);
      PendingDecision pd;
      pd.txn_id = stuck.txn_id;
      pd.commit = committed;
      pd.payload = decision;  // shared, survives the erase below
      for (size_t i = 0; i < stuck.participant_shards.size(); ++i) {
        if (stuck.acked[i]) continue;
        size_t shard = stuck.participant_shards[i];
        SendToShard(shard, committed ? TxnMsg::kCommit : TxnMsg::kAbort,
                    stuck.txn_id, decision);
        pd.shards.push_back(shard);
        // Silence during the whole transaction = a strike against the
        // shard; enough strikes open its breaker.
        if (!stuck.voted[i]) {
          breaker_for_shard(shard).RecordFailure(net_->Now());
        }
      }
      // The decision outlives the transaction: keep re-driving it until
      // every participant applies it (commits must not be lost, aborted
      // locks must not leak) or the redelivery budget runs out.
      if (!pd.shards.empty()) {
        pd.retry = RetryState(redelivery_policy_, net_->Now());
        pending_decisions_.emplace(stuck.txn_id, std::move(pd));
        ScheduleRedelivery(stuck.txn_id);
      }
      Finish(stuck, committed);
      in_flight_.erase(it);
    });
  }
}

void DistributedTxnSystem::ScheduleRetransmit(uint64_t txn_id) {
  auto it = in_flight_.find(txn_id);
  if (it == in_flight_.end()) return;
  Micros delay = it->second.retransmit.NextBackoff(net_->Now(), &rng_);
  if (delay < 0) return;  // budget spent; the timeout net decides
  net_->After(delay, [this, txn_id]() {
    auto it = in_flight_.find(txn_id);
    if (it == in_flight_.end()) return;  // decided meanwhile
    InFlight& txn = it->second;
    bool sent = false;
    if (!txn.decided && txn.votes_pending > 0) {
      TxnMsg round = txn.protocol == CommitProtocol::kTwoPhase
                         ? TxnMsg::kPrepare
                         : TxnMsg::kSingleRound;
      for (size_t i = 0; i < txn.participant_shards.size(); ++i) {
        if (txn.voted[i]) continue;
        SendToShard(txn.participant_shards[i], round, txn_id,
                    txn.round_payloads[i]);
        sent = true;
      }
    } else if (txn.decided && txn.acks_pending > 0) {
      const common::Buffer& decision = DecisionPayload(txn);
      TxnMsg type =
          txn.decision_commit ? TxnMsg::kCommit : TxnMsg::kAbort;
      for (size_t i = 0; i < txn.participant_shards.size(); ++i) {
        if (txn.acked[i]) continue;
        SendToShard(txn.participant_shards[i], type, txn_id, decision);
        sent = true;
      }
    }
    if (sent) retransmits_->Add(1);
    ScheduleRetransmit(txn_id);
  });
}

void DistributedTxnSystem::ScheduleRedelivery(uint64_t txn_id) {
  auto it = pending_decisions_.find(txn_id);
  if (it == pending_decisions_.end()) return;
  Micros delay = it->second.retry.NextBackoff(net_->Now(), &rng_);
  if (delay < 0) {
    // Redelivery budget exhausted with participants still unreachable.
    unresolved_decisions_->Add(1);
    pending_decisions_.erase(it);
    return;
  }
  net_->After(delay, [this, txn_id]() {
    auto it = pending_decisions_.find(txn_id);
    if (it == pending_decisions_.end()) return;  // fully acknowledged
    PendingDecision& pd = it->second;
    for (size_t shard : pd.shards) {
      SendToShard(shard, pd.commit ? TxnMsg::kCommit : TxnMsg::kAbort,
                  txn_id, pd.payload);
    }
    redeliveries_->Add(1);
    ScheduleRedelivery(txn_id);
  });
}

void DistributedTxnSystem::OnMessage(const net::Message& msg) {
  std::string_view payload(msg.payload);
  uint64_t txn_id = 0;
  if (!GetFixed64(&payload, &txn_id)) return;
  auto nit = node_to_shard_.find(msg.from);
  if (nit == node_to_shard_.end()) return;
  const size_t shard = nit->second;
  breaker_for_shard(shard).RecordSuccess();  // the shard is reachable

  auto it = in_flight_.find(txn_id);
  if (it == in_flight_.end()) {
    // Late ack for a decision that outlived its transaction: the
    // background redelivery is what this shard is answering.
    if (static_cast<TxnMsg>(msg.type) == TxnMsg::kAck) {
      auto pit = pending_decisions_.find(txn_id);
      if (pit != pending_decisions_.end()) {
        auto& shards = pit->second.shards;
        shards.erase(std::remove(shards.begin(), shards.end(), shard),
                     shards.end());
        if (shards.empty()) pending_decisions_.erase(pit);
      }
    }
    return;
  }
  InFlight& txn = it->second;
  const size_t idx = ParticipantIndex(txn, shard);
  if (idx == size_t(-1)) return;

  switch (static_cast<TxnMsg>(msg.type)) {
    case TxnMsg::kVoteYes:
    case TxnMsg::kVoteNo: {
      if (txn.decided || txn.voted[idx]) return;  // duplicate vote
      txn.voted[idx] = 1;
      if (static_cast<TxnMsg>(msg.type) == TxnMsg::kVoteNo) {
        txn.vote_failed = true;
      }
      if (--txn.votes_pending > 0) return;
      // All votes in: second round — one shared decision payload for
      // every participant, kept on the txn for retransmits.
      bool commit = !txn.vote_failed;
      txn.acks_pending = txn.participant_shards.size();
      const common::Buffer& decision = DecisionPayload(txn);
      for (size_t participant : txn.participant_shards) {
        SendToShard(participant, commit ? TxnMsg::kCommit : TxnMsg::kAbort,
                    txn.txn_id, decision);
      }
      // 2PC completes when the commit round is acknowledged: only then
      // are locks released and writes visible everywhere.  (This is the
      // full-protocol latency the single-round protocol eliminates.)
      txn.decided = true;
      txn.decision_commit = commit;
      return;
    }
    case TxnMsg::kAck: {
      if (!txn.decided || txn.acked[idx]) return;  // duplicate ack
      txn.acked[idx] = 1;
      if (txn.acks_pending > 0 && --txn.acks_pending == 0) {
        Finish(txn, txn.decision_commit);
        in_flight_.erase(it);
      }
      return;
    }
    case TxnMsg::kSingleRoundOk:
    case TxnMsg::kSingleRoundReject: {
      if (txn.voted[idx]) return;  // duplicate reply
      txn.voted[idx] = 1;
      if (static_cast<TxnMsg>(msg.type) == TxnMsg::kSingleRoundReject) {
        txn.vote_failed = true;
      }
      if (--txn.votes_pending > 0) return;
      Finish(txn, !txn.vote_failed);
      in_flight_.erase(it);
      return;
    }
    default:
      return;
  }
}

void DistributedTxnSystem::Finish(InFlight& txn, bool committed) {
  if (txn.cb == nullptr) return;
  TxnResult result;
  result.committed = committed;
  result.commit_ts = txn.commit_ts;
  result.latency = net_->Now() - txn.started_at;
  commit_latency_->Record(result.latency);
  if (committed) {
    committed_->Add(1);
  } else {
    aborted_->Add(1);
  }
  Callback cb = std::move(txn.cb);
  txn.cb = nullptr;
  cb(result);
}

}  // namespace deluge::txn
