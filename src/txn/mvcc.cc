#include "txn/mvcc.h"

#include <algorithm>

namespace deluge::txn {

Status MvccStore::Get(const std::string& key, Timestamp snapshot,
                      std::string* value) const {
  auto it = versions_.find(key);
  if (it == versions_.end()) return Status::NotFound(key);
  const auto& vs = it->second;
  // Last version with ts <= snapshot.
  auto vit = std::upper_bound(
      vs.begin(), vs.end(), snapshot,
      [](Timestamp s, const Version& v) { return s < v.ts; });
  if (vit == vs.begin()) return Status::NotFound("no visible version");
  *value = (vit - 1)->value;
  return Status::OK();
}

Timestamp MvccStore::LatestVersion(const std::string& key) const {
  auto it = versions_.find(key);
  if (it == versions_.end() || it->second.empty()) return 0;
  return it->second.back().ts;
}

Status MvccStore::TryLock(const std::string& key, uint64_t txn_id) {
  auto [it, inserted] = locks_.emplace(key, txn_id);
  if (!inserted && it->second != txn_id) {
    return Status::Busy("write lock held");
  }
  return Status::OK();
}

void MvccStore::Unlock(const std::string& key, uint64_t txn_id) {
  auto it = locks_.find(key);
  if (it != locks_.end() && it->second == txn_id) locks_.erase(it);
}

void MvccStore::CommitWrite(const std::string& key, const std::string& value,
                            Timestamp commit_ts, uint64_t txn_id) {
  Apply(key, value, commit_ts);
  Unlock(key, txn_id);
}

void MvccStore::Apply(const std::string& key, const std::string& value,
                      Timestamp commit_ts) {
  auto& vs = versions_[key];
  if (!vs.empty() && vs.back().ts >= commit_ts) {
    // Out-of-order apply: insert at the right position, replacing any
    // version with the identical timestamp.
    auto vit = std::lower_bound(
        vs.begin(), vs.end(), commit_ts,
        [](const Version& v, Timestamp t) { return v.ts < t; });
    if (vit != vs.end() && vit->ts == commit_ts) {
      vit->value = value;
    } else {
      vs.insert(vit, Version{commit_ts, value});
    }
    return;
  }
  vs.push_back(Version{commit_ts, value});
}

size_t MvccStore::Vacuum(Timestamp horizon) {
  size_t removed = 0;
  for (auto& [key, vs] : versions_) {
    // Keep the newest version with ts <= horizon plus everything after.
    auto vit = std::upper_bound(
        vs.begin(), vs.end(), horizon,
        [](Timestamp h, const Version& v) { return h < v.ts; });
    if (vit == vs.begin()) continue;
    auto keep_from = vit - 1;
    removed += size_t(keep_from - vs.begin());
    vs.erase(vs.begin(), keep_from);
  }
  return removed;
}

}  // namespace deluge::txn
