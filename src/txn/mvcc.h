#ifndef DELUGE_TXN_MVCC_H_
#define DELUGE_TXN_MVCC_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace deluge::txn {

/// Commit timestamps; globally ordered by the coordinator's clock.
using Timestamp = uint64_t;

/// A multi-version key-value shard with a write-lock table.
///
/// Reads at a snapshot timestamp see the newest version with
/// commit_ts <= snapshot (repeatable-read).  Writes go through the lock
/// table: `TryLock` is the prepare-phase hook of 2PC, `CommitWrite`
/// installs a version and releases the lock.
class MvccStore {
 public:
  /// Newest version visible at `snapshot`; NotFound when none.
  Status Get(const std::string& key, Timestamp snapshot,
             std::string* value) const;

  /// Timestamp of the newest committed version (0 when none).
  Timestamp LatestVersion(const std::string& key) const;

  /// Acquires the write lock for `txn_id`.  Re-entrant for the same
  /// transaction; Busy when another transaction holds it.
  Status TryLock(const std::string& key, uint64_t txn_id);

  /// Releases `txn_id`'s lock on `key` (no-op for non-holders).
  void Unlock(const std::string& key, uint64_t txn_id);

  /// Installs a committed version and releases the holder's lock.
  /// The caller guarantees ordering (commit timestamps increase).
  void CommitWrite(const std::string& key, const std::string& value,
                   Timestamp commit_ts, uint64_t txn_id);

  /// Direct unlocked write (loader / single-owner paths).
  void Apply(const std::string& key, const std::string& value,
             Timestamp commit_ts);

  /// Garbage-collects versions older than `horizon` (keeps the newest
  /// version at or below it so reads never lose data).
  size_t Vacuum(Timestamp horizon);

  size_t key_count() const { return versions_.size(); }
  size_t locked_keys() const { return locks_.size(); }

 private:
  struct Version {
    Timestamp ts;
    std::string value;
  };
  // Versions per key, ascending by ts.
  std::unordered_map<std::string, std::vector<Version>> versions_;
  std::unordered_map<std::string, uint64_t> locks_;
};

}  // namespace deluge::txn

#endif  // DELUGE_TXN_MVCC_H_
