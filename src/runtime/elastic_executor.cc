#include "runtime/elastic_executor.h"

#include <algorithm>

namespace deluge::runtime {

ElasticExecutorPool::ElasticExecutorPool(net::Simulator* sim,
                                         ElasticOptions options)
    : sim_(sim),
      options_(options),
      executors_(std::max<size_t>(1, options.min_executors)),
      last_accounted_(sim->Now()) {}

const ElasticStats& ElasticExecutorPool::stats() const {
  snapshot_.task_latency = task_latency_->Snapshot();
  snapshot_.completed = completed_->Value();
  snapshot_.scale_outs = scale_outs_->Value();
  snapshot_.scale_ins = scale_ins_->Value();
  snapshot_.executor_time = executor_time_->Value();
  return snapshot_;
}

void ElasticExecutorPool::AccountExecutorTime() {
  Micros now = sim_->Now();
  executor_time_->Add(double(executors_) * double(now - last_accounted_));
  last_accounted_ = now;
}

void ElasticExecutorPool::Submit(Micros cost, std::function<void()> done) {
  queue_.push_back(Task{cost, sim_->Now(), std::move(done)});
  if (!autoscaler_running_) {
    autoscaler_running_ = true;
    sim_->After(options_.evaluate_every, [this] { AutoscaleTick(); });
  }
  PumpQueue();
}

void ElasticExecutorPool::PumpQueue() {
  while (busy_ < executors_ && !queue_.empty()) {
    Task task = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    sim_->After(task.cost, [this, task = std::move(task)]() {
      --busy_;
      task_latency_->Record(sim_->Now() - task.submitted_at);
      completed_->Add(1);
      if (task.done) task.done();
      PumpQueue();
    });
  }
}

void ElasticExecutorPool::AutoscaleTick() {
  AccountExecutorTime();
  double load = double(queue_.size()) /
                double(std::max<size_t>(1, executors_ + pending_scale_outs_));
  if (load > options_.scale_out_queue_per_executor &&
      executors_ + pending_scale_outs_ < options_.max_executors) {
    ++pending_scale_outs_;
    scale_outs_->Add(1);
    sim_->After(options_.scale_out_delay, [this] {
      AccountExecutorTime();
      --pending_scale_outs_;
      ++executors_;
      PumpQueue();
    });
  } else if (load < options_.scale_in_queue_per_executor &&
             executors_ > options_.min_executors && busy_ < executors_) {
    AccountExecutorTime();
    --executors_;
    scale_ins_->Add(1);
  }
  // Keep ticking while there is (or may come) work.
  if (!queue_.empty() || busy_ > 0 || pending_scale_outs_ > 0) {
    sim_->After(options_.evaluate_every, [this] { AutoscaleTick(); });
  } else {
    autoscaler_running_ = false;
  }
}

}  // namespace deluge::runtime
