#ifndef DELUGE_RUNTIME_BUFFER_POOL_H_
#define DELUGE_RUNTIME_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "common/buffer.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "stream/tuple.h"

namespace deluge::runtime {

/// Buffer pool counters.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_fetched = 0;

  double HitRatio() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

/// A semantics-aware buffer pool for the cloud tier of Fig. 7.
///
/// Pages carry the space they serve (Section IV-F: "data from the real
/// space may be given higher priority over data from the virtual
/// space").  Eviction is LRU within a space class; virtual-space pages
/// absorb eviction pressure first, except that physical-page inserts
/// cannot reclaim the protected `virtual_share` fraction of capacity —
/// guaranteeing the virtual space a minimum working set while physical
/// data otherwise outranks it.
class BufferPool {
 public:
  /// Fetch callback: loads page `id` from the storage tier, returning
  /// its contents (simulations usually return a sized dummy buffer).
  using Fetcher = std::function<std::string(const std::string& id)>;

  BufferPool(uint64_t capacity_bytes, Fetcher fetcher,
             double virtual_share = 0.5);

  /// Returns the page contents, fetching and caching on miss.
  /// `space` tags the page's priority class on first fetch.
  Status Get(const std::string& id, stream::Space space, std::string* data);

  /// Installs/overwrites a page directly (write path).
  void Put(const std::string& id, stream::Space space, std::string data);

  /// Drops a page if cached.
  void Invalidate(const std::string& id);

  bool Contains(const std::string& id) const;

  // --- Payload slab integration (zero-copy event path) -----------------

  /// The slab arena backing refcounted payload Buffers (the process
  /// default arena — see `common::BufferArena`).  Exposed here because
  /// the buffer pool is the runtime's memory-tier owner: payload slabs
  /// whose refcount drops to zero return to this arena's free lists.
  static common::BufferArena& payload_arena();

  /// Copies `bytes` into a refcounted payload Buffer backed by
  /// `payload_arena()`.  When the last reference drops, the slab goes
  /// back to the arena free list instead of the heap.
  static common::Buffer AllocatePayload(common::Slice bytes);

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_; }
  /// Registry-backed snapshot, refreshed on every call.
  const BufferPoolStats& stats() const;
  void ResetStats();

 private:
  struct Page {
    std::string id;
    std::string data;
    stream::Space space;
  };
  // Two LRU lists (front = most recent), one per space class.
  using LruList = std::list<Page>;

  void EvictUntilFits(uint64_t incoming_bytes, stream::Space incoming_space);
  void InsertPage(Page page);
  LruList& ListFor(stream::Space space) {
    return space == stream::Space::kPhysical ? physical_ : virtual_;
  }
  uint64_t BytesOf(const LruList& l) const;

  uint64_t capacity_;
  Fetcher fetcher_;
  double virtual_share_;
  LruList physical_;
  LruList virtual_;
  std::unordered_map<std::string, LruList::iterator> pages_;
  uint64_t used_bytes_ = 0;
  uint64_t virtual_bytes_ = 0;
  obs::StatsScope obs_{"bufferpool"};
  obs::Counter* hits_ = obs_.counter("hits");
  obs::Counter* misses_ = obs_.counter("misses");
  obs::Counter* evictions_ = obs_.counter("evictions");
  obs::Counter* bytes_fetched_ = obs_.counter("bytes_fetched");
  mutable BufferPoolStats snapshot_;
};

}  // namespace deluge::runtime

#endif  // DELUGE_RUNTIME_BUFFER_POOL_H_
