#include "runtime/buffer_pool.h"

namespace deluge::runtime {

BufferPool::BufferPool(uint64_t capacity_bytes, Fetcher fetcher,
                       double virtual_share)
    : capacity_(capacity_bytes),
      fetcher_(std::move(fetcher)),
      virtual_share_(virtual_share) {}

common::BufferArena& BufferPool::payload_arena() {
  return *common::BufferArena::Default();
}

common::Buffer BufferPool::AllocatePayload(common::Slice bytes) {
  return common::Buffer::CopyOf(bytes, &payload_arena());
}

const BufferPoolStats& BufferPool::stats() const {
  snapshot_.hits = hits_->Value();
  snapshot_.misses = misses_->Value();
  snapshot_.evictions = evictions_->Value();
  snapshot_.bytes_fetched = bytes_fetched_->Value();
  return snapshot_;
}

void BufferPool::ResetStats() {
  hits_->Reset();
  misses_->Reset();
  evictions_->Reset();
  bytes_fetched_->Reset();
}

uint64_t BufferPool::BytesOf(const LruList& l) const {
  return &l == &virtual_ ? virtual_bytes_ : used_bytes_ - virtual_bytes_;
}

void BufferPool::EvictUntilFits(uint64_t incoming_bytes,
                                stream::Space incoming_space) {
  const uint64_t protected_virtual =
      uint64_t(virtual_share_ * double(capacity_));
  while (used_bytes_ + incoming_bytes > capacity_ &&
         (!physical_.empty() || !virtual_.empty())) {
    // Space-aware policy: virtual pages absorb eviction pressure first,
    // but physical-page inserts cannot reclaim the protected virtual
    // share — below it, physical LRU pages are evicted instead.
    LruList* victim_list = nullptr;
    bool virtual_protected =
        incoming_space == stream::Space::kPhysical &&
        virtual_bytes_ <= protected_virtual;
    if (!virtual_.empty() && !virtual_protected) {
      victim_list = &virtual_;
    } else if (!physical_.empty()) {
      victim_list = &physical_;
    } else {
      victim_list = &virtual_;
    }
    Page& victim = victim_list->back();
    used_bytes_ -= victim.data.size();
    if (victim_list == &virtual_) virtual_bytes_ -= victim.data.size();
    pages_.erase(victim.id);
    victim_list->pop_back();
    evictions_->Add(1);
  }
}

void BufferPool::InsertPage(Page page) {
  EvictUntilFits(page.data.size(), page.space);
  if (page.data.size() > capacity_) return;  // page larger than pool: skip
  used_bytes_ += page.data.size();
  if (page.space == stream::Space::kVirtual) {
    virtual_bytes_ += page.data.size();
  }
  LruList& list = ListFor(page.space);
  list.push_front(std::move(page));
  pages_[list.front().id] = list.begin();
}

Status BufferPool::Get(const std::string& id, stream::Space space,
                       std::string* data) {
  auto it = pages_.find(id);
  if (it != pages_.end()) {
    hits_->Add(1);
    // Move to front of its list.
    LruList& list = ListFor(it->second->space);
    list.splice(list.begin(), list, it->second);
    it->second = list.begin();
    *data = it->second->data;
    return Status::OK();
  }
  misses_->Add(1);
  if (!fetcher_) return Status::NotFound("no fetcher and page absent: " + id);
  std::string fetched = fetcher_(id);
  bytes_fetched_->Add(fetched.size());
  *data = fetched;
  InsertPage(Page{id, std::move(fetched), space});
  return Status::OK();
}

void BufferPool::Put(const std::string& id, stream::Space space,
                     std::string data) {
  Invalidate(id);
  InsertPage(Page{id, std::move(data), space});
}

void BufferPool::Invalidate(const std::string& id) {
  auto it = pages_.find(id);
  if (it == pages_.end()) return;
  LruList& list = ListFor(it->second->space);
  used_bytes_ -= it->second->data.size();
  if (it->second->space == stream::Space::kVirtual) {
    virtual_bytes_ -= it->second->data.size();
  }
  list.erase(it->second);
  pages_.erase(it);
}

bool BufferPool::Contains(const std::string& id) const {
  return pages_.count(id) > 0;
}

}  // namespace deluge::runtime
