#ifndef DELUGE_RUNTIME_ELASTIC_EXECUTOR_H_
#define DELUGE_RUNTIME_ELASTIC_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "net/simulator.h"

namespace deluge::runtime {

/// Configuration of the elastic executor pool.
struct ElasticOptions {
  size_t min_executors = 1;
  size_t max_executors = 64;
  /// Scale out when queued tasks per executor exceed this.
  double scale_out_queue_per_executor = 4.0;
  /// Scale in when it drops below this (hysteresis band).
  double scale_in_queue_per_executor = 0.5;
  /// Provisioning delay for a new executor.
  Micros scale_out_delay = 500 * kMicrosPerMilli;
  /// How often the autoscaler re-evaluates.
  Micros evaluate_every = 100 * kMicrosPerMilli;
};

/// Pool metrics for E1/E7.
struct ElasticStats {
  Histogram task_latency;     ///< submit -> completion
  uint64_t completed = 0;
  uint64_t scale_outs = 0;
  uint64_t scale_ins = 0;
  /// Integral of executor count over time (for utilization/cost):
  /// executor-microseconds.
  double executor_time = 0.0;
};

/// The elastic transaction/query executor tier of Fig. 7 in virtual
/// time: tasks queue centrally; each executor serves one task at a time;
/// an autoscaler grows/shrinks the pool between min and max based on
/// queue pressure (the "scale elastically based on the workload"
/// behaviour the paper calls for, with realistic provisioning delay).
class ElasticExecutorPool {
 public:
  ElasticExecutorPool(net::Simulator* sim, ElasticOptions options);

  /// Submits a task of `cost` virtual CPU time; `done` (optional) fires
  /// at completion.
  void Submit(Micros cost, std::function<void()> done = nullptr);

  size_t executors() const { return executors_; }
  size_t queued() const { return queue_.size(); }
  const ElasticStats& stats() const { return stats_; }

 private:
  struct Task {
    Micros cost;
    Micros submitted_at;
    std::function<void()> done;
  };

  void PumpQueue();
  void AutoscaleTick();
  void AccountExecutorTime();

  net::Simulator* sim_;
  ElasticOptions options_;
  size_t executors_;
  size_t busy_ = 0;
  std::deque<Task> queue_;
  ElasticStats stats_;
  Micros last_accounted_ = 0;
  bool autoscaler_running_ = false;
  size_t pending_scale_outs_ = 0;
};

}  // namespace deluge::runtime

#endif  // DELUGE_RUNTIME_ELASTIC_EXECUTOR_H_
