#ifndef DELUGE_RUNTIME_ELASTIC_EXECUTOR_H_
#define DELUGE_RUNTIME_ELASTIC_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "net/simulator.h"
#include "obs/metrics.h"

namespace deluge::runtime {

/// Configuration of the elastic executor pool.
struct ElasticOptions {
  size_t min_executors = 1;
  size_t max_executors = 64;
  /// Scale out when queued tasks per executor exceed this.
  double scale_out_queue_per_executor = 4.0;
  /// Scale in when it drops below this (hysteresis band).
  double scale_in_queue_per_executor = 0.5;
  /// Provisioning delay for a new executor.
  Micros scale_out_delay = 500 * kMicrosPerMilli;
  /// How often the autoscaler re-evaluates.
  Micros evaluate_every = 100 * kMicrosPerMilli;
};

/// Pool metrics for E1/E7.
struct ElasticStats {
  Histogram task_latency;     ///< submit -> completion
  uint64_t completed = 0;
  uint64_t scale_outs = 0;
  uint64_t scale_ins = 0;
  /// Integral of executor count over time (for utilization/cost):
  /// executor-microseconds.
  double executor_time = 0.0;
};

/// The elastic transaction/query executor tier of Fig. 7 in virtual
/// time: tasks queue centrally; each executor serves one task at a time;
/// an autoscaler grows/shrinks the pool between min and max based on
/// queue pressure (the "scale elastically based on the workload"
/// behaviour the paper calls for, with realistic provisioning delay).
class ElasticExecutorPool {
 public:
  ElasticExecutorPool(net::Simulator* sim, ElasticOptions options);

  /// Submits a task of `cost` virtual CPU time; `done` (optional) fires
  /// at completion.
  void Submit(Micros cost, std::function<void()> done = nullptr);

  size_t executors() const { return executors_; }
  size_t queued() const { return queue_.size(); }
  /// Registry-backed snapshot, refreshed on every call.
  const ElasticStats& stats() const;

 private:
  struct Task {
    Micros cost;
    Micros submitted_at;
    std::function<void()> done;
  };

  void PumpQueue();
  void AutoscaleTick();
  void AccountExecutorTime();

  net::Simulator* sim_;
  ElasticOptions options_;
  size_t executors_;
  size_t busy_ = 0;
  std::deque<Task> queue_;
  obs::StatsScope obs_{"elastic"};
  obs::ConcurrentHistogram* task_latency_ = obs_.histogram("task_latency_us");
  obs::Counter* completed_ = obs_.counter("completed");
  obs::Counter* scale_outs_ = obs_.counter("scale_outs");
  obs::Counter* scale_ins_ = obs_.counter("scale_ins");
  obs::Gauge* executor_time_ = obs_.gauge("executor_time_us");
  mutable ElasticStats snapshot_;
  Micros last_accounted_ = 0;
  bool autoscaler_running_ = false;
  size_t pending_scale_outs_ = 0;
};

}  // namespace deluge::runtime

#endif  // DELUGE_RUNTIME_ELASTIC_EXECUTOR_H_
