#ifndef DELUGE_RUNTIME_SERVERLESS_H_
#define DELUGE_RUNTIME_SERVERLESS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/qos.h"
#include "net/simulator.h"
#include "obs/metrics.h"

namespace deluge::runtime {

/// A registered serverless function.
struct FunctionSpec {
  std::string name;
  Micros cold_start = 200 * kMicrosPerMilli;  ///< sandbox + load time
  Micros exec_time = 10 * kMicrosPerMilli;    ///< warm execution time
  uint64_t memory_mb = 128;
};

/// Billing and latency accounting per function.
struct FunctionStats {
  Histogram latency;          ///< invoke -> completion
  uint64_t invocations = 0;
  uint64_t cold_starts = 0;
  /// Billed MB-milliseconds (pay-per-use: execution only).
  double billed_mb_ms = 0.0;
  /// Idle warm-instance MB-ms the *provider* carries (keep-alive cost).
  double idle_mb_ms = 0.0;

  double ColdStartRatio() const {
    return invocations == 0 ? 0.0
                            : double(cold_starts) / double(invocations);
  }
};

/// A serverless function runtime in virtual time (Section IV-E-3):
/// invocations route to a warm instance when one is idle, otherwise pay
/// a cold start; finished instances stay warm for `keep_alive` before
/// being reclaimed.  E14 sweeps keep-alive against arrival rate to show
/// the latency/cost tradeoff ("Serverless in the Wild" policy space).
class ServerlessRuntime {
 public:
  ServerlessRuntime(net::Simulator* sim, Micros keep_alive);

  /// Registers a function.
  void Register(FunctionSpec spec);

  /// Invokes `name`; `done` (optional) fires at completion in virtual
  /// time.  Unknown functions are dropped (counted).  Under a
  /// concurrency limit, the QoS class decides who waits and who is shed
  /// (same taxonomy as every other layer, DESIGN.md §13).
  void Invoke(const std::string& name, std::function<void()> done = nullptr,
              QosClass qos = QosClass::kBulk);

  /// Bounds concurrent executions (graceful degradation).  Excess
  /// invocations wait in a bounded queue served best-class-first; when
  /// the queue is also full, the lowest-class waiter (or the incoming
  /// invocation, if it is the least important) is shed and counted —
  /// admission latency grows before anything is lost, and what is lost
  /// is the kBulk tier, never silently.
  /// `max_concurrent` 0 = unlimited (the default, previous behavior).
  void SetConcurrencyLimit(size_t max_concurrent, size_t queue_limit);

  /// Registry-backed snapshot, refreshed on every call.
  const FunctionStats& stats_for(const std::string& name) const;
  uint64_t dropped() const { return dropped_->Value(); }
  /// Invocations shed by the bounded admission queue.
  uint64_t shed() const { return shed_->Value(); }
  size_t running() const { return running_; }
  size_t queue_depth() const { return pending_.size(); }
  size_t warm_instances(const std::string& name) const;

 private:
  struct WarmInstance {
    Micros idle_since;
    uint64_t generation;  ///< reclaim token
  };
  struct FunctionState {
    FunctionSpec spec;
    // Registry handles, labelled {function=<name>}.
    obs::ConcurrentHistogram* latency = nullptr;
    obs::Counter* invocations = nullptr;
    obs::Counter* cold_starts = nullptr;
    obs::Gauge* billed_mb_ms = nullptr;
    obs::Gauge* idle_mb_ms = nullptr;
    mutable FunctionStats snapshot;
    std::deque<WarmInstance> warm;
    uint64_t next_generation = 1;
  };
  struct PendingInvocation {
    FunctionState* fs;
    std::function<void()> done;
    uint8_t priority;  ///< QosRank(qos): bigger = admitted first
    QosClass qos;
    Micros enqueued_at;
    uint64_t seq;  ///< FIFO within a class
  };

  void ScheduleReclaim(FunctionState* fs, uint64_t generation);
  /// Starts executing on `fs` now (`started` is the admission time, so
  /// recorded latency includes queue wait).
  void Start(FunctionState* fs, Micros started, std::function<void()> done);
  void DrainQueue();

  net::Simulator* sim_;
  Micros keep_alive_;
  std::unordered_map<std::string, FunctionState> functions_;
  size_t max_concurrent_ = 0;  // 0 = unlimited
  size_t queue_limit_ = 0;
  size_t running_ = 0;
  std::vector<PendingInvocation> pending_;
  uint64_t next_pending_seq_ = 0;
  obs::StatsScope obs_{"serverless"};
  obs::Counter* dropped_ = obs_.counter("dropped");
  obs::Counter* shed_ = obs_.counter("shed");
  // Per-class admission accounting, indexed by uint8_t(QosClass).
  obs::ConcurrentHistogram* queue_wait_us_[kQosClassCount] = {};
  obs::Counter* class_shed_[kQosClassCount] = {};
};

}  // namespace deluge::runtime

#endif  // DELUGE_RUNTIME_SERVERLESS_H_
