#include "runtime/serverless.h"

namespace deluge::runtime {

ServerlessRuntime::ServerlessRuntime(net::Simulator* sim, Micros keep_alive)
    : sim_(sim), keep_alive_(keep_alive) {
  for (QosClass c : kAllQosClasses) {
    obs::Labels qos{{"qos", QosClassName(c)}};
    queue_wait_us_[uint8_t(c)] = obs_.histogram("queue_wait_us", qos);
    class_shed_[uint8_t(c)] = obs_.counter("class_shed", qos);
  }
}

void ServerlessRuntime::Register(FunctionSpec spec) {
  FunctionState fs;
  fs.spec = spec;
  obs::Labels labels{{"function", spec.name}};
  fs.latency = obs_.histogram("latency_us", labels);
  fs.invocations = obs_.counter("invocations", labels);
  fs.cold_starts = obs_.counter("cold_starts", labels);
  fs.billed_mb_ms = obs_.gauge("billed_mb_ms", obs::Gauge::Agg::kSum, labels);
  fs.idle_mb_ms = obs_.gauge("idle_mb_ms", obs::Gauge::Agg::kSum, labels);
  functions_.emplace(spec.name, std::move(fs));
}

void ServerlessRuntime::ScheduleReclaim(FunctionState* fs,
                                        uint64_t generation) {
  sim_->After(keep_alive_, [this, fs, generation]() {
    // Reclaim the instance only if it is still idle with the same
    // generation token (it may have been reused and re-queued since).
    for (auto it = fs->warm.begin(); it != fs->warm.end(); ++it) {
      if (it->generation == generation) {
        fs->idle_mb_ms->Add(
            double(fs->spec.memory_mb) *
            double(sim_->Now() - it->idle_since) / double(kMicrosPerMilli));
        fs->warm.erase(it);
        return;
      }
    }
  });
}

void ServerlessRuntime::SetConcurrencyLimit(size_t max_concurrent,
                                            size_t queue_limit) {
  max_concurrent_ = max_concurrent;
  queue_limit_ = queue_limit;
}

void ServerlessRuntime::Invoke(const std::string& name,
                               std::function<void()> done, QosClass qos) {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    dropped_->Add(1);
    return;
  }
  FunctionState& fs = it->second;
  fs.invocations->Add(1);
  Micros start = sim_->Now();
  const uint8_t priority = QosRank(qos);

  if (max_concurrent_ > 0 && running_ >= max_concurrent_) {
    // At capacity: queue, or shed the least important invocation.
    if (pending_.size() >= queue_limit_) {
      size_t victim = size_t(-1);
      for (size_t i = 0; i < pending_.size(); ++i) {
        if (victim == size_t(-1) ||
            pending_[i].priority < pending_[victim].priority ||
            (pending_[i].priority == pending_[victim].priority &&
             pending_[i].seq < pending_[victim].seq)) {
          victim = i;
        }
      }
      shed_->Add(1);
      if (victim == size_t(-1) || pending_[victim].priority >= priority) {
        class_shed_[uint8_t(qos)]->Add(1);
        return;  // the incoming invocation is the least important
      }
      class_shed_[uint8_t(pending_[victim].qos)]->Add(1);
      pending_.erase(pending_.begin() + long(victim));
    }
    pending_.push_back(PendingInvocation{&fs, std::move(done), priority, qos,
                                         start, next_pending_seq_++});
    return;
  }
  Start(&fs, start, std::move(done));
}

void ServerlessRuntime::DrainQueue() {
  while (!pending_.empty() &&
         (max_concurrent_ == 0 || running_ < max_concurrent_)) {
    size_t best = 0;
    for (size_t i = 1; i < pending_.size(); ++i) {
      if (pending_[i].priority > pending_[best].priority ||
          (pending_[i].priority == pending_[best].priority &&
           pending_[i].seq < pending_[best].seq)) {
        best = i;
      }
    }
    PendingInvocation inv = std::move(pending_[best]);
    pending_.erase(pending_.begin() + long(best));
    queue_wait_us_[uint8_t(inv.qos)]->Record(sim_->Now() - inv.enqueued_at);
    Start(inv.fs, inv.enqueued_at, std::move(inv.done));
  }
}

void ServerlessRuntime::Start(FunctionState* fsp, Micros start,
                              std::function<void()> done) {
  FunctionState& fs = *fsp;
  ++running_;
  Micros startup = 0;
  if (!fs.warm.empty()) {
    // Reuse the most recently idle instance (LIFO keeps the warm set
    // small, matching production schedulers).
    WarmInstance inst = fs.warm.back();
    fs.warm.pop_back();
    fs.idle_mb_ms->Add(double(fs.spec.memory_mb) *
                       double(start - inst.idle_since) /
                       double(kMicrosPerMilli));
  } else {
    fs.cold_starts->Add(1);
    startup = fs.spec.cold_start;
  }

  Micros total = startup + fs.spec.exec_time;
  sim_->After(total, [this, fsp, start, done = std::move(done)]() {
    Micros now = sim_->Now();
    fsp->latency->Record(now - start);
    fsp->billed_mb_ms->Add(double(fsp->spec.memory_mb) *
                           double(fsp->spec.exec_time) /
                           double(kMicrosPerMilli));
    // Instance goes warm; reclaim after keep-alive unless reused.
    uint64_t generation = fsp->next_generation++;
    fsp->warm.push_back(WarmInstance{now, generation});
    if (keep_alive_ > 0) {
      ScheduleReclaim(fsp, generation);
    } else {
      fsp->warm.pop_back();  // keep-alive 0: reclaim immediately
    }
    --running_;
    if (done) done();
    DrainQueue();  // a slot opened: admit the most important waiter
  });
}

const FunctionStats& ServerlessRuntime::stats_for(
    const std::string& name) const {
  static const FunctionStats& kEmpty = *new FunctionStats();
  auto it = functions_.find(name);
  if (it == functions_.end()) return kEmpty;
  const FunctionState& fs = it->second;
  fs.snapshot.latency = fs.latency->Snapshot();
  fs.snapshot.invocations = fs.invocations->Value();
  fs.snapshot.cold_starts = fs.cold_starts->Value();
  fs.snapshot.billed_mb_ms = fs.billed_mb_ms->Value();
  fs.snapshot.idle_mb_ms = fs.idle_mb_ms->Value();
  return fs.snapshot;
}

size_t ServerlessRuntime::warm_instances(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? 0 : it->second.warm.size();
}

}  // namespace deluge::runtime
