#include "runtime/serverless.h"

namespace deluge::runtime {

ServerlessRuntime::ServerlessRuntime(net::Simulator* sim, Micros keep_alive)
    : sim_(sim), keep_alive_(keep_alive) {}

void ServerlessRuntime::Register(FunctionSpec spec) {
  FunctionState fs;
  fs.spec = spec;
  functions_.emplace(spec.name, std::move(fs));
}

void ServerlessRuntime::ScheduleReclaim(FunctionState* fs,
                                        uint64_t generation) {
  sim_->After(keep_alive_, [this, fs, generation]() {
    // Reclaim the instance only if it is still idle with the same
    // generation token (it may have been reused and re-queued since).
    for (auto it = fs->warm.begin(); it != fs->warm.end(); ++it) {
      if (it->generation == generation) {
        fs->stats.idle_mb_ms +=
            double(fs->spec.memory_mb) *
            double(sim_->Now() - it->idle_since) / double(kMicrosPerMilli);
        fs->warm.erase(it);
        return;
      }
    }
  });
}

void ServerlessRuntime::Invoke(const std::string& name,
                               std::function<void()> done) {
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    ++dropped_;
    return;
  }
  FunctionState& fs = it->second;
  ++fs.stats.invocations;
  Micros start = sim_->Now();

  Micros startup = 0;
  if (!fs.warm.empty()) {
    // Reuse the most recently idle instance (LIFO keeps the warm set
    // small, matching production schedulers).
    WarmInstance inst = fs.warm.back();
    fs.warm.pop_back();
    fs.stats.idle_mb_ms += double(fs.spec.memory_mb) *
                           double(start - inst.idle_since) /
                           double(kMicrosPerMilli);
  } else {
    ++fs.stats.cold_starts;
    startup = fs.spec.cold_start;
  }

  Micros total = startup + fs.spec.exec_time;
  FunctionState* fsp = &fs;
  sim_->After(total, [this, fsp, start, done = std::move(done)]() {
    Micros now = sim_->Now();
    fsp->stats.latency.Record(now - start);
    fsp->stats.billed_mb_ms += double(fsp->spec.memory_mb) *
                               double(fsp->spec.exec_time) /
                               double(kMicrosPerMilli);
    // Instance goes warm; reclaim after keep-alive unless reused.
    uint64_t generation = fsp->next_generation++;
    fsp->warm.push_back(WarmInstance{now, generation});
    if (keep_alive_ > 0) {
      ScheduleReclaim(fsp, generation);
    } else {
      fsp->warm.pop_back();  // keep-alive 0: reclaim immediately
    }
    if (done) done();
  });
}

const FunctionStats& ServerlessRuntime::stats_for(
    const std::string& name) const {
  static const FunctionStats& kEmpty = *new FunctionStats();
  auto it = functions_.find(name);
  return it == functions_.end() ? kEmpty : it->second.stats;
}

size_t ServerlessRuntime::warm_instances(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? 0 : it->second.warm.size();
}

}  // namespace deluge::runtime
