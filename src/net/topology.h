#ifndef DELUGE_NET_TOPOLOGY_H_
#define DELUGE_NET_TOPOLOGY_H_

#include <vector>

#include "net/network.h"

namespace deluge::net {

/// Helpers that wire common experiment topologies onto a `Network`.
///
/// All builders only *configure links* between already-added nodes; the
/// caller owns node creation so it can attach its own handlers.

/// Link presets roughly matching the environments the paper discusses.
struct LinkPresets {
  /// LAN / intra-data-center: 50 us, 10 Gbps.
  static LinkOptions IntraDc();
  /// Inter-data-center WAN with the given one-way latency (default 30 ms),
  /// 1 Gbps.
  static LinkOptions InterDc(Micros one_way = 30 * kMicrosPerMilli);
  /// Mobile/5G edge uplink: 10 ms, 50 Mbps, 2 ms jitter, 0.1% loss.
  static LinkOptions MobileEdge();
  /// Constrained field link (military exercise, disaster zone):
  /// 40 ms, 1 Mbps, 10 ms jitter, 1% loss.
  static LinkOptions Constrained();
};

/// Configures a star: every `leaf` talks to `hub` with `leaf_link`;
/// leaves have no direct links (route through the hub at the protocol
/// level if needed).
void BuildStar(Network* net, NodeId hub, const std::vector<NodeId>& leaves,
               const LinkOptions& leaf_link);

/// Configures a full mesh among `nodes` with `link`.
void BuildMesh(Network* net, const std::vector<NodeId>& nodes,
               const LinkOptions& link);

/// Configures a multi-data-center layout: nodes are grouped into DCs;
/// intra-group pairs get `intra`, inter-group pairs get `inter`.
void BuildMultiDc(Network* net, const std::vector<std::vector<NodeId>>& dcs,
                  const LinkOptions& intra, const LinkOptions& inter);

}  // namespace deluge::net

#endif  // DELUGE_NET_TOPOLOGY_H_
