#include "net/aggregation_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "storage/format.h"

namespace deluge::net {

namespace {

constexpr uint32_t kMsgPartial = 0xA661;

std::string EncodePartial(uint64_t epoch, double value,
                          uint32_t contributors) {
  std::string out;
  storage::PutFixed64(&out, epoch);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  storage::PutFixed64(&out, bits);
  storage::PutFixed32(&out, contributors);
  return out;
}

bool DecodePartial(std::string_view payload, uint64_t* epoch, double* value,
                   uint32_t* contributors) {
  uint64_t bits = 0;
  if (!storage::GetFixed64(&payload, epoch) ||
      !storage::GetFixed64(&payload, &bits) ||
      !storage::GetFixed32(&payload, contributors)) {
    return false;
  }
  std::memcpy(value, &bits, sizeof(*value));
  return true;
}

}  // namespace

struct AggregationTree::TreeNode {
  NodeId net_id = 0;
  size_t parent = SIZE_MAX;       // index into nodes_; SIZE_MAX = root
  size_t expected_children = 0;   // direct children (nodes or sensors)
  int height = 1;                 // 1 = leaf parent; root is deepest
  struct EpochState {
    double acc = 0.0;
    uint32_t contributors = 0;
    size_t reports = 0;
    bool forwarded = false;
    bool timeout_armed = false;
  };
  std::unordered_map<uint64_t, EpochState> epochs;
};

AggregationTree::AggregationTree(Network* net, Simulator* sim,
                                 size_t num_sensors, size_t fanout,
                                 AggregateFn fn, SinkCallback sink,
                                 Micros timeout)
    : net_(net),
      sim_(sim),
      num_sensors_(std::max<size_t>(1, num_sensors)),
      fanout_(std::max<size_t>(2, fanout)),
      fn_(fn),
      sink_(std::move(sink)),
      timeout_(timeout) {
  // Build level by level from the leaves' parents up to a single root.
  // `levels` holds node indexes per level, leaf-parents first.
  size_t leaf_parents = (num_sensors_ + fanout_ - 1) / fanout_;
  std::vector<size_t> current;
  auto make_node = [this]() {
    auto node = std::make_unique<TreeNode>();
    TreeNode* raw = node.get();
    raw->net_id = net_->AddNode(
        [this, raw](const Message& m) { OnNodeMessage(raw, m); });
    nodes_.push_back(std::move(node));
    return nodes_.size() - 1;
  };

  for (size_t i = 0; i < leaf_parents; ++i) current.push_back(make_node());
  // Assign sensors round-robin blocks to leaf parents.
  for (size_t s = 0; s < num_sensors_; ++s) {
    size_t parent_idx = current[s / fanout_];
    sensor_parent_.push_back(parent_idx);
    nodes_[parent_idx]->expected_children++;
    sensor_net_ids_.push_back(
        net_->AddNode([](const Message&) {}));  // sensors only send
  }
  depth_ = 1;
  while (current.size() > 1) {
    std::vector<size_t> next;
    for (size_t i = 0; i < current.size(); i += fanout_) {
      size_t parent_idx = make_node();
      nodes_[parent_idx]->height = depth_ + 1;
      for (size_t j = i; j < std::min(i + fanout_, current.size()); ++j) {
        nodes_[current[j]]->parent = parent_idx;
        nodes_[parent_idx]->expected_children++;
      }
      next.push_back(parent_idx);
    }
    current = std::move(next);
    ++depth_;
  }
  // current[0] is the root; move it to a canonical spot semantically
  // (kept wherever it is; parent == SIZE_MAX marks it).
}

AggregationTree::~AggregationTree() = default;

Status AggregationTree::Report(size_t index, uint64_t epoch, double value) {
  if (index >= num_sensors_) {
    return Status::InvalidArgument("sensor index out of range");
  }
  Message msg;
  msg.from = sensor_net_ids_[index];
  msg.to = nodes_[sensor_parent_[index]]->net_id;
  msg.type = kMsgPartial;
  msg.payload = EncodePartial(epoch, value, 1);
  return net_->Send(std::move(msg));
}

void AggregationTree::OnNodeMessage(TreeNode* node, const Message& msg) {
  if (msg.type != kMsgPartial) return;
  uint64_t epoch = 0;
  double value = 0.0;
  uint32_t contributors = 0;
  if (!DecodePartial(msg.payload, &epoch, &value, &contributors)) return;

  TreeNode::EpochState& st = node->epochs[epoch];
  if (st.forwarded) return;  // straggler after forwarding: dropped
  switch (fn_) {
    case AggregateFn::kSum:
    case AggregateFn::kCount:
      st.acc += value;
      break;
    case AggregateFn::kMax:
      st.acc = st.reports == 0 ? value : std::max(st.acc, value);
      break;
  }
  st.contributors += contributors;
  ++st.reports;

  if (st.reports >= node->expected_children) {
    ForwardOrDeliver(node, epoch);
  } else if (!st.timeout_armed && timeout_ > 0) {
    st.timeout_armed = true;
    // Staggered epoch scheduling (TinyDB-style): a node at height h waits
    // h timeouts, so children's partials — even timed-out ones — arrive
    // before the parent gives up on them.
    sim_->After(timeout_ * node->height, [this, node, epoch]() {
      auto it = node->epochs.find(epoch);
      if (it != node->epochs.end() && !it->second.forwarded) {
        ForwardOrDeliver(node, epoch);  // partial: stragglers missed out
      }
    });
  }
}

void AggregationTree::ForwardOrDeliver(TreeNode* node, uint64_t epoch) {
  TreeNode::EpochState& st = node->epochs[epoch];
  st.forwarded = true;
  double out_value = fn_ == AggregateFn::kCount ? double(st.contributors)
                                                : st.acc;
  if (node->parent == SIZE_MAX) {
    if (sink_) {
      EpochResult result;
      result.epoch = epoch;
      result.value = out_value;
      result.contributors = st.contributors;
      result.completed_at = sim_->Now();
      sink_(result);
    }
    // Keep the forwarded tombstone: a straggler for this epoch must not
    // restart aggregation and double-deliver.
    return;
  }
  Message msg;
  msg.from = node->net_id;
  msg.to = nodes_[node->parent]->net_id;
  msg.type = kMsgPartial;
  msg.payload =
      EncodePartial(epoch, fn_ == AggregateFn::kCount ? double(st.contributors)
                                                      : st.acc,
                    st.contributors);
  net_->Send(std::move(msg));
}

}  // namespace deluge::net
