#include "net/topology.h"

namespace deluge::net {

LinkOptions LinkPresets::IntraDc() {
  LinkOptions o;
  o.latency = 50;                      // 50 us
  o.bandwidth_bytes_per_sec = 1.25e9;  // 10 Gbps
  return o;
}

LinkOptions LinkPresets::InterDc(Micros one_way) {
  LinkOptions o;
  o.latency = one_way;
  o.bandwidth_bytes_per_sec = 125e6;  // 1 Gbps
  return o;
}

LinkOptions LinkPresets::MobileEdge() {
  LinkOptions o;
  o.latency = 10 * kMicrosPerMilli;
  o.bandwidth_bytes_per_sec = 6.25e6;  // 50 Mbps
  o.jitter = 2 * kMicrosPerMilli;
  o.drop_probability = 0.001;
  return o;
}

LinkOptions LinkPresets::Constrained() {
  LinkOptions o;
  o.latency = 40 * kMicrosPerMilli;
  o.bandwidth_bytes_per_sec = 125e3;  // 1 Mbps
  o.jitter = 10 * kMicrosPerMilli;
  o.drop_probability = 0.01;
  return o;
}

void BuildStar(Network* net, NodeId hub, const std::vector<NodeId>& leaves,
               const LinkOptions& leaf_link) {
  for (NodeId leaf : leaves) net->SetBidirectional(hub, leaf, leaf_link);
}

void BuildMesh(Network* net, const std::vector<NodeId>& nodes,
               const LinkOptions& link) {
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t j = i + 1; j < nodes.size(); ++j) {
      net->SetBidirectional(nodes[i], nodes[j], link);
    }
  }
}

void BuildMultiDc(Network* net, const std::vector<std::vector<NodeId>>& dcs,
                  const LinkOptions& intra, const LinkOptions& inter) {
  for (size_t a = 0; a < dcs.size(); ++a) {
    BuildMesh(net, dcs[a], intra);
    for (size_t b = a + 1; b < dcs.size(); ++b) {
      for (NodeId na : dcs[a]) {
        for (NodeId nb : dcs[b]) net->SetBidirectional(na, nb, inter);
      }
    }
  }
}

}  // namespace deluge::net
