#include "net/frame.h"

#include <cstring>

namespace deluge::net {

namespace {

/// Bytes of header covered by the length prefix (from/to/type/size).
constexpr size_t kHeaderBody = kFrameHeaderBytes - 4;

inline void PutU32(char* out, uint32_t v) {
  out[0] = char(v & 0xFF);
  out[1] = char((v >> 8) & 0xFF);
  out[2] = char((v >> 16) & 0xFF);
  out[3] = char((v >> 24) & 0xFF);
}

inline void PutU64(char* out, uint64_t v) {
  PutU32(out, uint32_t(v & 0xFFFFFFFFu));
  PutU32(out + 4, uint32_t(v >> 32));
}

inline uint32_t GetU32(const char* in) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in);
  return uint32_t(p[0]) | (uint32_t(p[1]) << 8) | (uint32_t(p[2]) << 16) |
         (uint32_t(p[3]) << 24);
}

inline uint64_t GetU64(const char* in) {
  return uint64_t(GetU32(in)) | (uint64_t(GetU32(in + 4)) << 32);
}

/// The QoS wire tag rides the top byte of the size field; modelled
/// sizes are far below 2^56 so the packing is lossless.
constexpr uint64_t kSizeMask = (uint64_t(1) << 56) - 1;

}  // namespace

void EncodeFrameHeader(const Message& msg, char* out) {
  PutU32(out, uint32_t(kHeaderBody + msg.payload.size()));
  PutU32(out + 4, msg.from);
  PutU32(out + 8, msg.to);
  PutU32(out + 12, msg.type);
  PutU64(out + 16, (msg.size_bytes & kSizeMask) |
                       (uint64_t(QosWireTag(msg.qos)) << 56));
}

std::string EncodeFrame(const Message& msg) {
  std::string out;
  out.resize(kFrameHeaderBytes);
  EncodeFrameHeader(msg, out.data());
  out.append(msg.payload.data(), msg.payload.size());
  return out;
}

Status FrameDecoder::Feed(const char* data, size_t n,
                          std::vector<Message>* out) {
  if (!status_.ok()) return status_;
  pending_.append(data, n);
  size_t pos = 0;
  while (pending_.size() - pos >= 4) {
    const uint32_t length = GetU32(pending_.data() + pos);
    if (length < kHeaderBody) {
      status_ = Status::Corruption("frame length shorter than header");
      break;
    }
    const size_t payload_len = length - kHeaderBody;
    if (payload_len > max_frame_bytes_) {
      status_ = Status::Corruption("frame exceeds maximum size");
      break;
    }
    if (pending_.size() - pos < 4 + size_t(length)) break;  // incomplete
    const char* h = pending_.data() + pos + 4;
    Message msg;
    msg.from = GetU32(h);
    msg.to = GetU32(h + 4);
    msg.type = GetU32(h + 8);
    const uint64_t size_and_qos = GetU64(h + 12);
    msg.size_bytes = size_and_qos & kSizeMask;
    msg.qos = QosFromWireTag(uint8_t(size_and_qos >> 56));
    if (payload_len > 0) {
      msg.payload = common::Buffer::CopyOf(
          common::Slice(h + kHeaderBody, payload_len));
    }
    out->push_back(std::move(msg));
    ++frames_decoded_;
    pos += 4 + size_t(length);
  }
  pending_.erase(0, pos);
  if (!status_.ok()) pending_.clear();  // poisoned: stop buffering
  return status_;
}

}  // namespace deluge::net
