#include "net/node_config.h"

#include <fstream>
#include <sstream>

namespace deluge::net {

std::string SocketEndpoint::ToString() const {
  if (is_unix()) return "unix:" + unix_path;
  return "tcp:" + host + ":" + std::to_string(port);
}

const ProcessSpec* ClusterConfig::process(uint32_t id) const {
  for (const ProcessSpec& p : processes) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

const ProcessSpec* ClusterConfig::process_of(NodeId node) const {
  for (const NodeSpec& n : nodes) {
    if (n.node == node) return process(n.process);
  }
  return nullptr;
}

const NodeSpec* ClusterConfig::node(NodeId id) const {
  for (const NodeSpec& n : nodes) {
    if (n.node == id) return &n;
  }
  return nullptr;
}

std::vector<NodeId> ClusterConfig::nodes_of(uint32_t process) const {
  std::vector<NodeId> out;
  for (const NodeSpec& n : nodes) {
    if (n.process == process) out.push_back(n.node);
  }
  return out;
}

std::string ClusterConfig::Serialize() const {
  std::ostringstream out;
  out << "# deluge cluster config v1\n";
  for (const ProcessSpec& p : processes) {
    if (p.endpoint.is_unix()) {
      out << "process " << p.id << " unix " << p.endpoint.unix_path << "\n";
    } else {
      out << "process " << p.id << " tcp " << p.endpoint.host << " "
          << p.endpoint.port << "\n";
    }
  }
  for (const NodeSpec& n : nodes) {
    out << "node " << n.node << " " << n.process << " "
        << (n.role.empty() ? "node" : n.role);
    if (!n.name.empty()) out << " " << n.name;
    out << "\n";
  }
  return out.str();
}

Status ClusterConfig::Parse(std::string_view text, ClusterConfig* out) {
  ClusterConfig cfg;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank
    const std::string where = " at line " + std::to_string(lineno);
    if (kind == "process") {
      ProcessSpec p;
      std::string proto;
      if (!(ls >> p.id >> proto)) {
        return Status::InvalidArgument("malformed process" + where);
      }
      if (proto == "unix") {
        if (!(ls >> p.endpoint.unix_path)) {
          return Status::InvalidArgument("missing unix path" + where);
        }
      } else if (proto == "tcp") {
        unsigned port = 0;
        if (!(ls >> p.endpoint.host >> port) || port > 65535) {
          return Status::InvalidArgument("malformed tcp endpoint" + where);
        }
        p.endpoint.port = uint16_t(port);
        p.endpoint.unix_path.clear();
      } else {
        return Status::InvalidArgument("unknown protocol '" + proto + "'" +
                                       where);
      }
      if (cfg.process(p.id) != nullptr) {
        return Status::InvalidArgument("duplicate process id" + where);
      }
      cfg.processes.push_back(std::move(p));
    } else if (kind == "node") {
      NodeSpec n;
      if (!(ls >> n.node >> n.process >> n.role)) {
        return Status::InvalidArgument("malformed node" + where);
      }
      ls >> n.name;  // optional
      if (cfg.node(n.node) != nullptr) {
        return Status::InvalidArgument("duplicate node id" + where);
      }
      cfg.nodes.push_back(std::move(n));
    } else {
      return Status::InvalidArgument("unknown directive '" + kind + "'" +
                                     where);
    }
  }
  for (const NodeSpec& n : cfg.nodes) {
    if (cfg.process(n.process) == nullptr) {
      return Status::InvalidArgument("node " + std::to_string(n.node) +
                                     " names unknown process " +
                                     std::to_string(n.process));
    }
  }
  *out = std::move(cfg);
  return Status::OK();
}

Status ClusterConfig::Load(const std::string& path, ClusterConfig* out) {
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str(), out);
}

Status ClusterConfig::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) return Status::Unavailable("cannot write " + path);
  out << Serialize();
  out.flush();
  return out.good() ? Status::OK() : Status::Unavailable("write failed");
}

}  // namespace deluge::net
