#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace deluge::net {

namespace {

void PutU32(char* out, uint32_t v) {
  out[0] = char(v & 0xFF);
  out[1] = char((v >> 8) & 0xFF);
  out[2] = char((v >> 16) & 0xFF);
  out[3] = char((v >> 24) & 0xFF);
}

void PutU64(char* out, uint64_t v) {
  PutU32(out, uint32_t(v & 0xFFFFFFFFu));
  PutU32(out + 4, uint32_t(v >> 32));
}

uint64_t GetU64(const char* in) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportOptions opts)
    : opts_(std::move(opts)),
      local_ids_(opts_.config.nodes_of(opts_.local_process)),
      epoch_(obs::SteadyNowMicros()),
      rng_(opts_.seed) {}

SocketTransport::~SocketTransport() { Stop(); }

Micros SocketTransport::Now() const { return obs::SteadyNowMicros() - epoch_; }

NodeId SocketTransport::AddNode(Handler handler) {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (started_.load(std::memory_order_acquire)) {
    std::fprintf(stderr, "SocketTransport: AddNode after Start\n");
    std::abort();
  }
  if (next_local_ >= local_ids_.size()) {
    std::fprintf(stderr,
                 "SocketTransport: more AddNode calls than nodes configured "
                 "for process %u\n",
                 opts_.local_process);
    std::abort();
  }
  const NodeId id = local_ids_[next_local_++];
  handlers_[id] = std::move(handler);
  return id;
}

size_t SocketTransport::node_count() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return handlers_.size();
}

NodeId SocketTransport::FirstLocalNode() const {
  return local_ids_.empty() ? 0 : local_ids_[0];
}

void SocketTransport::After(Micros delay, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    timers_.push(
        Timer{Now() + std::max<Micros>(delay, 0), timer_seq_++, std::move(fn)});
  }
  WakeLoop();
}

void SocketTransport::WakeLoop() {
  if (wake_pipe_[1] < 0) return;
  const char b = 1;
  ssize_t rc = ::write(wake_pipe_[1], &b, 1);  // EAGAIN = already pending
  (void)rc;
}

// --- lifecycle ---------------------------------------------------------

Status SocketTransport::Listen() {
  const ProcessSpec* self = opts_.config.process(opts_.local_process);
  if (self == nullptr) {
    return Status::InvalidArgument("local process not in cluster config");
  }
  const SocketEndpoint& ep = self->endpoint;
  if (ep.is_unix()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Unavailable("socket: unix");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::memcpy(addr.sun_path, ep.unix_path.c_str(), ep.unix_path.size());
    ::unlink(ep.unix_path.c_str());  // stale socket from a dead process
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::Unavailable("bind " + ep.unix_path + ": " +
                                 std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Unavailable("socket: tcp");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad listen host " + ep.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::Unavailable("bind " + ep.ToString() + ": " +
                                 std::strerror(errno));
    }
    if (ep.port == 0) {
      // Ephemeral port: learn it and write it back so config() readers
      // (tests) can tell peers where we actually listen.
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                        &len) == 0) {
        for (ProcessSpec& p : opts_.config.processes) {
          if (p.id == opts_.local_process) {
            p.endpoint.port = ntohs(bound.sin_port);
          }
        }
      }
    }
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Unavailable(std::string("listen: ") + std::strerror(errno));
  }
  SetNonBlocking(listen_fd_);
  return Status::OK();
}

Status SocketTransport::Start() {
  if (opts_.pool == nullptr) {
    return Status::InvalidArgument("SocketTransport needs a ThreadPool");
  }
  if (started_.exchange(true)) {
    return Status::InvalidArgument("SocketTransport already started");
  }
  Status s = Listen();
  if (!s.ok()) return s;
  if (::pipe(wake_pipe_) != 0) {
    return Status::Unavailable("pipe: " + std::string(std::strerror(errno)));
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
  for (const ProcessSpec& p : opts_.config.processes) {
    if (p.id == opts_.local_process) continue;
    auto peer = std::make_unique<Peer>();
    peer->process = p.id;
    peer->endpoint = p.endpoint;
    peers_.push_back(std::move(peer));
  }
  running_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    live_tasks_ = 1 + int(peers_.size());
  }
  auto done = [this] {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    --live_tasks_;
    tasks_cv_.notify_all();
  };
  opts_.pool->Submit([this, done] {
    EventLoop();
    done();
  });
  for (auto& peer : peers_) {
    Peer* p = peer.get();
    opts_.pool->Submit([this, p, done] {
      SenderLoop(p);
      done();
    });
  }
  if (opts_.ping_period > 0) {
    After(opts_.ping_period, [this] { SendPings(); });
  }
  return Status::OK();
}

void SocketTransport::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (running_.exchange(false)) {
    WakeLoop();
    for (auto& p : peers_) {
      std::lock_guard<std::mutex> lk(p->mu);
      p->cv.notify_all();
    }
    std::unique_lock<std::mutex> lk(tasks_mu_);
    tasks_cv_.wait(lk, [this] { return live_tasks_ == 0; });
  }
  for (auto& p : peers_) {
    std::lock_guard<std::mutex> lk(p->mu);
    if (p->fd >= 0) {
      ::close(p->fd);
      p->fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  const ProcessSpec* self = opts_.config.process(opts_.local_process);
  if (self != nullptr && self->endpoint.is_unix()) {
    ::unlink(self->endpoint.unix_path.c_str());
  }
}

// --- send path ---------------------------------------------------------

Status SocketTransport::Send(Message msg) {
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (handlers_.find(msg.from) == handlers_.end()) {
      return Status::InvalidArgument("unknown sender in Send");
    }
  }
  const NodeSpec* dst = opts_.config.node(msg.to);
  if (dst == nullptr) return Status::InvalidArgument("unknown node in Send");
  msg.sent_at = Now();
  const uint64_t wire = msg.WireSize();
  messages_sent_->Add(1);
  bytes_sent_->Add(wire);

  Micros extra = 0;
  bool deliver = false;
  Status s = ApplySendFaults(msg, &extra, &deliver);
  if (!deliver) return s;

  if (dst->process == opts_.local_process) {
    ScheduleDelivery(std::move(msg), extra);
    return Status::OK();
  }
  OutFrame frame;
  frame.header.resize(kFrameHeaderBytes);
  EncodeFrameHeader(msg, frame.header.data());
  frame.payload = msg.payload;  // refcount bump, no copy
  const uint32_t process = dst->process;
  if (extra > 0) {
    // Injected latency on the local view: hold the frame on the strand
    // before it reaches the wire.
    After(extra, [this, process, f = std::move(frame)]() mutable {
      if (!EnqueueToPeer(process, std::move(f))) messages_dropped_->Add(1);
    });
    return Status::OK();
  }
  if (!EnqueueToPeer(process, std::move(frame))) {
    messages_dropped_->Add(1);
    return Status::Unavailable("send queue full");
  }
  return Status::OK();
}

Status SocketTransport::ApplySendFaults(const Message& msg, Micros* extra,
                                        bool* deliver) {
  *extra = 0;
  *deliver = false;
  std::lock_guard<std::mutex> lk(state_mu_);
  if (nodes_down_.count(msg.from) > 0 || nodes_down_.count(msg.to) > 0) {
    messages_dropped_->Add(1);
    drops_node_down_->Add(1);
    return Status::Unavailable("node down");
  }
  if (partitions_.count(PairKey(msg.from, msg.to)) > 0) {
    messages_dropped_->Add(1);
    return Status::Unavailable("partitioned");
  }
  auto it = faults_.find(PairKey(msg.from, msg.to));
  LinkFault* fault = it != faults_.end() ? &it->second : nullptr;
  if (fault != nullptr && fault->down) {
    messages_dropped_->Add(1);
    drops_link_down_->Add(1);
    return Status::Unavailable("link down");
  }
  if (fault != nullptr && fault->has_burst && BurstDropLocked(*fault)) {
    messages_dropped_->Add(1);
    drops_burst_loss_->Add(1);
    return Status::OK();  // silent correlated loss
  }
  *extra = fault != nullptr ? fault->extra_latency : 0;
  *deliver = true;
  return Status::OK();
}

bool SocketTransport::BurstDropLocked(LinkFault& fault) {
  if (fault.burst_bad) {
    if (rng_.Bernoulli(fault.burst.p_bad_to_good)) fault.burst_bad = false;
  } else {
    if (rng_.Bernoulli(fault.burst.p_good_to_bad)) fault.burst_bad = true;
  }
  return rng_.Bernoulli(fault.burst_bad ? fault.burst.loss_bad
                                        : fault.burst.loss_good);
}

bool SocketTransport::EnqueueToPeer(uint32_t process, OutFrame frame,
                                    bool front) {
  for (auto& p : peers_) {
    if (p->process != process) continue;
    std::lock_guard<std::mutex> lk(p->mu);
    if (!front && p->queue.size() >= opts_.max_send_queue_frames) return false;
    if (front) {
      p->queue.push_front(std::move(frame));
    } else {
      p->queue.push_back(std::move(frame));
    }
    p->cv.notify_one();
    return true;
  }
  return false;
}

// --- sender tasks ------------------------------------------------------

bool SocketTransport::WriteFrame(int fd, const OutFrame& frame) {
  const size_t hlen = frame.header.size();
  const size_t plen = frame.payload.size();
  const size_t total = hlen + plen;
  size_t off = 0;
  while (off < total) {
    iovec iov[2];
    int cnt = 0;
    if (off < hlen) {
      iov[cnt].iov_base = const_cast<char*>(frame.header.data()) + off;
      iov[cnt].iov_len = hlen - off;
      ++cnt;
      if (plen > 0) {
        iov[cnt].iov_base = const_cast<char*>(frame.payload.data());
        iov[cnt].iov_len = plen;
        ++cnt;
      }
    } else {
      iov[cnt].iov_base = const_cast<char*>(frame.payload.data()) + (off - hlen);
      iov[cnt].iov_len = plen - (off - hlen);
      ++cnt;
    }
    const ssize_t n = ::writev(fd, iov, cnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // includes SO_SNDTIMEO expiry on a stalled peer
    }
    if (n == 0) return false;
    off += size_t(n);
  }
  return true;
}

int SocketTransport::ConnectPeer(Peer* peer) {
  Rng rng(opts_.seed ^ (uint64_t(peer->process) * 0x9E3779B97F4A7C15ull));
  RetryState retry(opts_.reconnect, Now());
  while (running_.load(std::memory_order_acquire)) {
    int fd = -1;
    if (peer->endpoint.is_unix()) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd >= 0) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, peer->endpoint.unix_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
          ::close(fd);
          fd = -1;
        }
      }
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(peer->endpoint.port);
        if (::inet_pton(AF_INET, peer->endpoint.host.c_str(),
                        &addr.sin_addr) != 1 ||
            ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
                0) {
          ::close(fd);
          fd = -1;
        }
      }
    }
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                   sizeof(one));  // harmless EOPNOTSUPP on AF_UNIX
      timeval tv{};
      tv.tv_sec = 1;  // bound writes so Stop() cannot hang on a stall
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

      // Introduce ourselves so the acceptor can sanity-check placement.
      Message hello;
      hello.type = kTypeHello;
      hello.from = FirstLocalNode();
      const std::vector<NodeId> theirs = opts_.config.nodes_of(peer->process);
      hello.to = theirs.empty() ? 0 : theirs[0];
      std::string pid(4, '\0');
      PutU32(pid.data(), opts_.local_process);
      hello.payload = common::Buffer(std::move(pid));
      OutFrame hf;
      hf.header.resize(kFrameHeaderBytes);
      EncodeFrameHeader(hello, hf.header.data());
      hf.payload = hello.payload;
      if (WriteFrame(fd, hf)) {
        frames_sent_->Add(1);
        wire_bytes_sent_->Add(hf.header.size() + hf.payload.size());
        if (peer->ever_connected) reconnects_->Add(1);
        peer->ever_connected = true;
        return fd;
      }
      ::close(fd);
    }
    const Micros backoff = retry.NextBackoff(Now(), &rng);
    if (backoff < 0) return -1;  // budget exhausted
    std::unique_lock<std::mutex> lk(peer->mu);
    peer->cv.wait_for(lk, std::chrono::microseconds(backoff), [this] {
      return !running_.load(std::memory_order_acquire);
    });
  }
  return -1;
}

void SocketTransport::SenderLoop(Peer* peer) {
  while (true) {
    OutFrame frame;
    int fd = -1;
    {
      std::unique_lock<std::mutex> lk(peer->mu);
      peer->cv.wait(lk, [this, peer] {
        return !running_.load(std::memory_order_acquire) ||
               !peer->queue.empty();
      });
      if (!running_.load(std::memory_order_acquire)) break;
      fd = peer->fd;
    }
    if (fd < 0) {
      fd = ConnectPeer(peer);
      if (fd < 0) {
        if (!running_.load(std::memory_order_acquire)) break;
        // Reconnect budget spent: this batch is lost (datagram
        // semantics); the budget resets with the next enqueue.
        std::lock_guard<std::mutex> lk(peer->mu);
        messages_dropped_->Add(peer->queue.size());
        peer->queue.clear();
        continue;
      }
      std::lock_guard<std::mutex> lk(peer->mu);
      peer->fd = fd;
    }
    {
      std::lock_guard<std::mutex> lk(peer->mu);
      if (peer->queue.empty()) continue;
      frame = std::move(peer->queue.front());
      peer->queue.pop_front();
    }
    if (WriteFrame(fd, frame)) {
      frames_sent_->Add(1);
      wire_bytes_sent_->Add(frame.header.size() + frame.payload.size());
    } else {
      ::close(fd);
      std::lock_guard<std::mutex> lk(peer->mu);
      peer->fd = -1;
      peer->queue.push_front(std::move(frame));  // resend after reconnect
    }
  }
  std::lock_guard<std::mutex> lk(peer->mu);
  if (peer->fd >= 0) {
    ::close(peer->fd);
    peer->fd = -1;
  }
}

// --- event strand ------------------------------------------------------

void SocketTransport::EventLoop() {
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<pollfd> pfds;
  while (running_.load(std::memory_order_acquire)) {
    int timeout_ms = 200;
    {
      std::lock_guard<std::mutex> lk(state_mu_);
      if (!timers_.empty()) {
        const Micros diff = timers_.top().at - Now();
        timeout_ms =
            diff <= 0 ? 0 : int(std::min<Micros>((diff + 999) / 1000, 200));
      }
    }
    pfds.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& c : conns) pfds.push_back(pollfd{c->fd, POLLIN, 0});
    const int rc = ::poll(pfds.data(), nfds_t(pfds.size()), timeout_ms);
    if (rc < 0 && errno != EINTR) break;

    if (rc > 0 && (pfds[0].revents & POLLIN) != 0) {
      char drain[256];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }

    // Due timers fire before new I/O so After(0) posts are prompt.
    for (;;) {
      std::function<void()> fn;
      {
        std::lock_guard<std::mutex> lk(state_mu_);
        if (timers_.empty() || timers_.top().at > Now()) break;
        fn = std::move(const_cast<Timer&>(timers_.top()).fn);
        timers_.pop();
      }
      fn();
    }
    if (rc <= 0) continue;

    if ((pfds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        SetNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        conns.push_back(std::make_unique<Conn>(fd, opts_.max_frame_bytes));
      }
    }
    bool closed_any = false;
    for (size_t i = 2; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      Conn* conn = conns[i - 2].get();
      if (!ReadConn(conn)) {
        ::close(conn->fd);
        conn->fd = -1;
        closed_any = true;
      }
    }
    if (closed_any) {
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const std::unique_ptr<Conn>& c) {
                                   return c->fd < 0;
                                 }),
                  conns.end());
    }
  }
  for (const auto& c : conns) ::close(c->fd);
}

bool SocketTransport::ReadConn(Conn* conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      wire_bytes_received_->Add(uint64_t(n));
      std::vector<Message> msgs;
      const Status s = conn->decoder.Feed(buf, size_t(n), &msgs);
      for (Message& m : msgs) {
        frames_received_->Add(1);
        Dispatch(m);
      }
      if (!s.ok()) return false;  // poisoned stream: drop the connection
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

void SocketTransport::Dispatch(const Message& msg) {
  if (msg.type >= kReservedTypeBase) {
    HandleControl(msg);
    return;
  }
  Micros extra = 0;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    if (nodes_down_.count(msg.from) > 0 || nodes_down_.count(msg.to) > 0 ||
        partitions_.count(PairKey(msg.from, msg.to)) > 0) {
      messages_dropped_->Add(1);
      return;
    }
    auto it = faults_.find(PairKey(msg.from, msg.to));
    if (it != faults_.end()) {
      if (it->second.down) {
        messages_dropped_->Add(1);
        return;
      }
      extra = it->second.extra_latency;
    }
  }
  if (extra > 0) {
    ScheduleDelivery(msg, extra);
    return;
  }
  DeliverNow(msg);
}

bool SocketTransport::ReceiveBlocked(const Message& msg) {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (nodes_down_.count(msg.from) > 0 || nodes_down_.count(msg.to) > 0) {
    return true;
  }
  if (partitions_.count(PairKey(msg.from, msg.to)) > 0) return true;
  auto it = faults_.find(PairKey(msg.from, msg.to));
  return it != faults_.end() && it->second.down;
}

void SocketTransport::ScheduleDelivery(Message msg, Micros extra) {
  After(extra, [this, m = std::move(msg)] {
    // Re-check faults at delivery time, like the simulator: packets in
    // flight when a fault starts are lost.
    if (ReceiveBlocked(m)) {
      messages_dropped_->Add(1);
      return;
    }
    DeliverNow(m);
  });
}

void SocketTransport::DeliverNow(const Message& msg) {
  Handler* handler = nullptr;
  {
    std::lock_guard<std::mutex> lk(state_mu_);
    auto it = handlers_.find(msg.to);
    if (it != handlers_.end()) handler = &it->second;
  }
  if (handler == nullptr) {
    messages_dropped_->Add(1);  // configured here but never registered
    return;
  }
  messages_delivered_->Add(1);
  bytes_delivered_->Add(msg.WireSize());
  (*handler)(msg);
}

void SocketTransport::HandleControl(const Message& msg) {
  switch (msg.type) {
    case kTypeHello:
      break;  // placement is carried per-frame; hello is a liveness nudge
    case kTypePing: {
      const NodeSpec* src = opts_.config.node(msg.from);
      if (src == nullptr) break;
      Message pong;
      pong.type = kTypePong;
      pong.from = msg.to;
      pong.to = msg.from;
      pong.payload = msg.payload;  // echo the sender's timestamp
      OutFrame f;
      f.header.resize(kFrameHeaderBytes);
      EncodeFrameHeader(pong, f.header.data());
      f.payload = pong.payload;
      EnqueueToPeer(src->process, std::move(f), /*front=*/true);
      break;
    }
    case kTypePong: {
      if (msg.payload.size() >= 8) {
        const int64_t sent = int64_t(GetU64(msg.payload.data()));
        rtt_us_->Record(obs::SteadyNowMicros() - sent);
      }
      break;
    }
    default:
      break;  // unknown control frames are ignored, never delivered
  }
}

void SocketTransport::SendPings() {
  if (!running_.load(std::memory_order_acquire)) return;
  for (const auto& peer : peers_) {
    const std::vector<NodeId> theirs = opts_.config.nodes_of(peer->process);
    Message ping;
    ping.type = kTypePing;
    ping.from = FirstLocalNode();
    ping.to = theirs.empty() ? 0 : theirs[0];
    std::string ts(8, '\0');
    PutU64(ts.data(), uint64_t(obs::SteadyNowMicros()));
    ping.payload = common::Buffer(std::move(ts));
    OutFrame f;
    f.header.resize(kFrameHeaderBytes);
    EncodeFrameHeader(ping, f.header.data());
    f.payload = ping.payload;
    EnqueueToPeer(peer->process, std::move(f), /*front=*/true);
  }
  After(opts_.ping_period, [this] { SendPings(); });
}

// --- fault hooks (local view) ------------------------------------------

void SocketTransport::SetNodeUp(NodeId n, bool up) {
  std::lock_guard<std::mutex> lk(state_mu_);
  if (up) {
    nodes_down_.erase(n);
  } else {
    nodes_down_.insert(n);
  }
}

bool SocketTransport::IsNodeUp(NodeId n) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return nodes_down_.count(n) == 0;
}

void SocketTransport::Partition(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lk(state_mu_);
  partitions_.insert(PairKey(a, b));
  partitions_.insert(PairKey(b, a));
}

void SocketTransport::Heal(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lk(state_mu_);
  partitions_.erase(PairKey(a, b));
  partitions_.erase(PairKey(b, a));
}

bool SocketTransport::IsPartitioned(NodeId a, NodeId b) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  return partitions_.count(PairKey(a, b)) > 0;
}

void SocketTransport::SetLinkDown(NodeId a, NodeId b, bool down) {
  std::lock_guard<std::mutex> lk(state_mu_);
  faults_[PairKey(a, b)].down = down;
  faults_[PairKey(b, a)].down = down;
}

bool SocketTransport::IsLinkDown(NodeId a, NodeId b) const {
  std::lock_guard<std::mutex> lk(state_mu_);
  auto it = faults_.find(PairKey(a, b));
  return it != faults_.end() && it->second.down;
}

void SocketTransport::SetExtraLatency(NodeId a, NodeId b, Micros extra) {
  std::lock_guard<std::mutex> lk(state_mu_);
  faults_[PairKey(a, b)].extra_latency = extra;
  faults_[PairKey(b, a)].extra_latency = extra;
}

void SocketTransport::SetBurstLoss(NodeId a, NodeId b,
                                   const BurstLossModel& model) {
  std::lock_guard<std::mutex> lk(state_mu_);
  for (LinkFault* f : {&faults_[PairKey(a, b)], &faults_[PairKey(b, a)]}) {
    f->has_burst = true;
    f->burst = model;
    f->burst_bad = false;
  }
}

void SocketTransport::ClearBurstLoss(NodeId a, NodeId b) {
  std::lock_guard<std::mutex> lk(state_mu_);
  faults_[PairKey(a, b)].has_burst = false;
  faults_[PairKey(b, a)].has_burst = false;
}

// --- stats -------------------------------------------------------------

const NetworkStats& SocketTransport::stats() const {
  std::lock_guard<std::mutex> lk(state_mu_);
  snapshot_.messages_sent = messages_sent_->Value();
  snapshot_.messages_delivered = messages_delivered_->Value();
  snapshot_.messages_dropped = messages_dropped_->Value();
  snapshot_.bytes_sent = bytes_sent_->Value();
  snapshot_.bytes_delivered = bytes_delivered_->Value();
  snapshot_.drops_node_down = drops_node_down_->Value();
  snapshot_.drops_link_down = drops_link_down_->Value();
  snapshot_.drops_burst_loss = drops_burst_loss_->Value();
  return snapshot_;
}

void SocketTransport::ResetStats() {
  messages_sent_->Reset();
  messages_delivered_->Reset();
  messages_dropped_->Reset();
  bytes_sent_->Reset();
  bytes_delivered_->Reset();
  drops_node_down_->Reset();
  drops_link_down_->Reset();
  drops_burst_loss_->Reset();
  frames_sent_->Reset();
  frames_received_->Reset();
  wire_bytes_sent_->Reset();
  wire_bytes_received_->Reset();
  reconnects_->Reset();
  rtt_us_->Reset();
}

}  // namespace deluge::net
