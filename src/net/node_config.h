#ifndef DELUGE_NET_NODE_CONFIG_H_
#define DELUGE_NET_NODE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/message.h"

namespace deluge::net {

/// Where a process listens.  `unix_path` non-empty selects an
/// AF_UNIX stream socket; otherwise TCP on host:port.
struct SocketEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string unix_path;

  bool is_unix() const { return !unix_path.empty(); }
  std::string ToString() const;
};

/// One OS process of the cluster.
struct ProcessSpec {
  uint32_t id = 0;
  SocketEndpoint endpoint;
};

/// Message types spoken by `tools/deluge_node` "sink" endpoints: any
/// other type below the reserved range is counted, and a
/// `kSinkCountReq` answers with `kSinkCountResp` carrying fixed64
/// {messages_received, wire_bytes_received} — how a driver process
/// audits fan-out delivery across the cluster (bench E24).
inline constexpr uint32_t kSinkCountReq = 0x7E01;
inline constexpr uint32_t kSinkCountResp = 0x7E02;

/// One endpoint (engine shard, broker, replica, driver) pinned to the
/// process hosting it.  `role`/`name` tell `tools/deluge_node` what to
/// construct; the transport itself only cares about the placement.
struct NodeSpec {
  NodeId node = 0;
  uint32_t process = 0;
  std::string role;  ///< e.g. "driver", "replica", "sink"
  std::string name;  ///< role-specific (replica ring name, ...)
};

/// The shared map every process of a multi-process cluster loads: who
/// listens where, and which node ids live in which process.  Node ids
/// are cluster-global; each process's transport assigns its local ids
/// in the order they appear here, so protocol objects constructed in
/// config order land on the ids the rest of the cluster expects
/// (`SocketTransport` enforces the count, the hello handshake carries
/// the process id).
///
/// Text format, one directive per line ('#' comments):
///   process <id> unix <path>
///   process <id> tcp <host> <port>
///   node <id> <process> <role> [name]
struct ClusterConfig {
  std::vector<ProcessSpec> processes;
  std::vector<NodeSpec> nodes;

  const ProcessSpec* process(uint32_t id) const;
  /// Process hosting `node`, or nullptr when unknown.
  const ProcessSpec* process_of(NodeId node) const;
  const NodeSpec* node(NodeId id) const;
  /// Node ids hosted by `process`, in declaration order.
  std::vector<NodeId> nodes_of(uint32_t process) const;

  std::string Serialize() const;
  static Status Parse(std::string_view text, ClusterConfig* out);
  static Status Load(const std::string& path, ClusterConfig* out);
  Status Save(const std::string& path) const;
};

}  // namespace deluge::net

#endif  // DELUGE_NET_NODE_CONFIG_H_
