#include "net/simulator.h"

#include <utility>

namespace deluge::net {

void Simulator::At(Micros t, Callback cb) {
  if (t < Now()) t = Now();
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

size_t Simulator::Run() {
  size_t n = 0;
  while (Step()) ++n;
  return n;
}

size_t Simulator::RunUntil(Micros deadline) {
  size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= deadline) {
    Step();
    ++n;
  }
  clock_.AdvanceTo(deadline);
  return n;
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // The callback may schedule new events, so detach it first.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  clock_.AdvanceTo(ev.t);
  ev.cb();
  return true;
}

}  // namespace deluge::net
