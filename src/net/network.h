#ifndef DELUGE_NET_NETWORK_H_
#define DELUGE_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/buffer.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/message.h"
#include "net/simulator.h"
#include "obs/metrics.h"

namespace deluge::net {

/// Per-directed-edge link characteristics.
struct LinkOptions {
  Micros latency = 1 * kMicrosPerMilli;  ///< one-way propagation delay
  double bandwidth_bytes_per_sec = 125e6;  ///< 1 Gbps default
  Micros jitter = 0;                       ///< uniform +/- jitter bound
  double drop_probability = 0.0;           ///< i.i.d. loss
};

/// A simulated message-passing network over a `Simulator`.
///
/// Models per-link propagation latency, serialization delay from finite
/// bandwidth (a link transmits one message at a time; later sends queue
/// behind earlier ones), optional jitter and drops, and pairwise
/// partitions.  This is the substitute substrate for the paper's 5G /
/// inter-data-center links (see DESIGN.md substitution table).
class Network {
 public:
  using Handler =
      std::function<void(const Message&)>;  ///< delivery callback

  /// `sim` must outlive the network.
  Network(Simulator* sim, uint64_t seed = 42);

  /// Adds a node with the given delivery handler; returns its id.
  NodeId AddNode(Handler handler);

  /// Sets characteristics of the directed link a->b.  Unset links use
  /// `default_link()`.
  void SetLink(NodeId a, NodeId b, const LinkOptions& opts);

  /// Sets characteristics of both directions between a and b.
  void SetBidirectional(NodeId a, NodeId b, const LinkOptions& opts);

  /// Default characteristics for links that were never configured.
  LinkOptions& default_link() { return default_link_; }

  /// Sends `msg` (msg.from/to must be valid nodes).  Delivery is scheduled
  /// on the simulator; returns InvalidArgument for unknown nodes and
  /// Unavailable when the pair is partitioned (the message is counted as
  /// dropped).
  Status Send(Message msg);

  /// Cuts communication between `a` and `b` (both directions).
  void Partition(NodeId a, NodeId b);

  /// Restores communication between `a` and `b`.
  void Heal(NodeId a, NodeId b);

  /// True if a->b traffic is currently blocked.
  bool IsPartitioned(NodeId a, NodeId b) const;

  // --- Fault-hook API (driven by chaos::FaultSchedule) -----------------
  //
  // These model transient faults orthogonal to the static topology:
  // fail-stop node crashes (all traffic to/from the node is lost while it
  // is down; handler state survives, like a process partition), link
  // flaps, added latency (congestion spikes), and correlated burst loss.
  // Messages in flight when a fault starts are re-checked at delivery
  // time and lost, matching datagram semantics.

  /// Marks a node down (crash) or back up (restart).  Nodes start up.
  void SetNodeUp(NodeId n, bool up);
  bool IsNodeUp(NodeId n) const;

  /// Takes the links between `a` and `b` down / back up (both
  /// directions).  Distinct from Partition so scheduled flaps and
  /// protocol-level partitions cannot mask each other's state.
  void SetLinkDown(NodeId a, NodeId b, bool down);
  bool IsLinkDown(NodeId a, NodeId b) const;

  /// Adds `extra` one-way latency on top of the configured link latency
  /// in both directions (0 clears the spike).
  void SetExtraLatency(NodeId a, NodeId b, Micros extra);

  /// Installs a Gilbert–Elliott burst-loss process on both directions
  /// (each direction keeps independent chain state).
  void SetBurstLoss(NodeId a, NodeId b, const BurstLossModel& model);
  void ClearBurstLoss(NodeId a, NodeId b);

  size_t node_count() const { return handlers_.size(); }
  /// Registry-backed snapshot, refreshed on every call.
  const NetworkStats& stats() const;
  void ResetStats();

 private:
  struct LinkState {
    LinkOptions opts;
    Micros busy_until = 0;  // serialization queue tail
  };
  /// Transient fault overlay for one directed link.
  struct LinkFault {
    bool down = false;
    Micros extra_latency = 0;
    bool has_burst = false;
    BurstLossModel burst;
    bool burst_bad = false;  // current Gilbert–Elliott chain state
  };

  static uint64_t PairKey(NodeId a, NodeId b) {
    return (uint64_t(a) << 32) | b;
  }

  LinkState& GetLink(NodeId a, NodeId b);
  LinkFault& GetFault(NodeId a, NodeId b) { return faults_[PairKey(a, b)]; }
  /// Advances the GE chain one step; true = this message is lost.
  bool BurstDrop(LinkFault& fault);
  /// True when a->b traffic is blocked by partition, link-down, or a
  /// down endpoint (the reasons a datagram vanishes en route).
  bool Blocked(NodeId a, NodeId b) const;

  Simulator* sim_;
  Rng rng_;
  LinkOptions default_link_;
  std::vector<Handler> handlers_;
  std::vector<char> node_up_;  // parallel to handlers_
  std::unordered_map<uint64_t, LinkState> links_;
  std::unordered_map<uint64_t, LinkFault> faults_;
  std::unordered_set<uint64_t> partitions_;
  obs::StatsScope obs_{"net"};
  obs::Counter* messages_sent_ = obs_.counter("messages_sent");
  obs::Counter* messages_delivered_ = obs_.counter("messages_delivered");
  obs::Counter* messages_dropped_ = obs_.counter("messages_dropped");
  obs::Counter* bytes_sent_ = obs_.counter("bytes_sent");
  obs::Counter* bytes_delivered_ = obs_.counter("bytes_delivered");
  obs::Counter* drops_node_down_ = obs_.counter("drops_node_down");
  obs::Counter* drops_link_down_ = obs_.counter("drops_link_down");
  obs::Counter* drops_burst_loss_ = obs_.counter("drops_burst_loss");
  /// Virtual-time send→deliver latency per QoS class
  /// (net.send_us{qos=...}) — the transport hop of the per-class SLO
  /// accounting.
  obs::ConcurrentHistogram* send_us_[kQosClassCount] = {};
  mutable NetworkStats snapshot_;
};

}  // namespace deluge::net

#endif  // DELUGE_NET_NETWORK_H_
