#ifndef DELUGE_NET_NETWORK_H_
#define DELUGE_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/simulator.h"

namespace deluge::net {

/// Identifier of a simulated node (device, broker, executor, data center).
using NodeId = uint32_t;

/// A message in flight.  `payload` is opaque bytes; `size_bytes` may exceed
/// payload.size() to model headers or media frames whose content we do not
/// materialize (e.g. a "2 MB video keyframe" with a 20-byte descriptor).
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  uint32_t type = 0;
  std::string payload;
  uint64_t size_bytes = 0;
  Micros sent_at = 0;

  /// Effective size used for bandwidth accounting.
  uint64_t WireSize() const {
    return size_bytes > 0 ? size_bytes : payload.size() + 64;
  }
};

/// Per-directed-edge link characteristics.
struct LinkOptions {
  Micros latency = 1 * kMicrosPerMilli;  ///< one-way propagation delay
  double bandwidth_bytes_per_sec = 125e6;  ///< 1 Gbps default
  Micros jitter = 0;                       ///< uniform +/- jitter bound
  double drop_probability = 0.0;           ///< i.i.d. loss
};

/// Counters exposed for experiments.
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;
};

/// A simulated message-passing network over a `Simulator`.
///
/// Models per-link propagation latency, serialization delay from finite
/// bandwidth (a link transmits one message at a time; later sends queue
/// behind earlier ones), optional jitter and drops, and pairwise
/// partitions.  This is the substitute substrate for the paper's 5G /
/// inter-data-center links (see DESIGN.md substitution table).
class Network {
 public:
  using Handler =
      std::function<void(const Message&)>;  ///< delivery callback

  /// `sim` must outlive the network.
  Network(Simulator* sim, uint64_t seed = 42);

  /// Adds a node with the given delivery handler; returns its id.
  NodeId AddNode(Handler handler);

  /// Sets characteristics of the directed link a->b.  Unset links use
  /// `default_link()`.
  void SetLink(NodeId a, NodeId b, const LinkOptions& opts);

  /// Sets characteristics of both directions between a and b.
  void SetBidirectional(NodeId a, NodeId b, const LinkOptions& opts);

  /// Default characteristics for links that were never configured.
  LinkOptions& default_link() { return default_link_; }

  /// Sends `msg` (msg.from/to must be valid nodes).  Delivery is scheduled
  /// on the simulator; returns InvalidArgument for unknown nodes and
  /// Unavailable when the pair is partitioned (the message is counted as
  /// dropped).
  Status Send(Message msg);

  /// Cuts communication between `a` and `b` (both directions).
  void Partition(NodeId a, NodeId b);

  /// Restores communication between `a` and `b`.
  void Heal(NodeId a, NodeId b);

  /// True if a->b traffic is currently blocked.
  bool IsPartitioned(NodeId a, NodeId b) const;

  size_t node_count() const { return handlers_.size(); }
  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  struct LinkState {
    LinkOptions opts;
    Micros busy_until = 0;  // serialization queue tail
  };

  static uint64_t PairKey(NodeId a, NodeId b) {
    return (uint64_t(a) << 32) | b;
  }

  LinkState& GetLink(NodeId a, NodeId b);

  Simulator* sim_;
  Rng rng_;
  LinkOptions default_link_;
  std::vector<Handler> handlers_;
  std::unordered_map<uint64_t, LinkState> links_;
  std::unordered_set<uint64_t> partitions_;
  NetworkStats stats_;
};

}  // namespace deluge::net

#endif  // DELUGE_NET_NETWORK_H_
