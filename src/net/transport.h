#ifndef DELUGE_NET_TRANSPORT_H_
#define DELUGE_NET_TRANSPORT_H_

#include <functional>

#include "common/status.h"
#include "net/message.h"
#include "net/network.h"
#include "net/simulator.h"

namespace deluge::net {

/// The messaging + time substrate every distributed-protocol layer
/// (txn coordinator, reliable pub/sub delivery, replica fabric, Chord
/// overlay, chaos schedules) is written against (DESIGN.md §12).
///
/// Two backends implement it:
///  - `SimTransport` wraps the discrete-event `Network`/`Simulator`
///    pair: virtual time, deterministic delivery, full link modelling.
///    The in-process default for tests and experiments.
///  - `SocketTransport` (socket_transport.h) speaks length-prefixed
///    frames over real TCP or Unix-domain sockets, so the same protocol
///    objects run as separate OS processes in wall-clock time.
///
/// The interface deliberately merges the old `(Network*, Simulator*)`
/// pair: protocols need a time source and timers wherever their
/// messages travel, and which clock that is (virtual vs wall) is
/// exactly a property of the transport.
///
/// Threading contract: every handler and timer callback is invoked on
/// the transport's single event strand (the simulator loop, or the
/// socket backend's receive loop), never concurrently.  Protocol
/// objects therefore stay single-threaded, as before.  Code outside
/// the strand (a bench main thread) must marshal calls in via `Post`.
///
/// Fault-hook semantics differ per backend and are documented on each
/// virtual; the default implementations are no-ops so a backend only
/// models the faults that make sense for it.
class Transport {
 public:
  using Handler = std::function<void(const Message&)>;  ///< delivery callback

  virtual ~Transport() = default;

  /// Registers a local endpoint with its delivery handler; returns its
  /// node id.  Sim backend: the next dense id.  Socket backend: the
  /// next cluster-global id configured for this process (AddNode order
  /// must match the config's node order — the handshake layer checks).
  virtual NodeId AddNode(Handler handler) = 0;

  /// Sends `msg` (msg.from/to must be valid nodes).  Delivery is
  /// asynchronous on the event strand; a synchronous error means the
  /// message will never arrive (unknown node, partitioned pair, dead
  /// endpoint, full send queue).  Silent losses stay silent, as on a
  /// real datagram fabric.
  virtual Status Send(Message msg) = 0;

  /// Current time on this transport's clock: virtual micros under the
  /// simulator, monotonic wall-clock micros under sockets.
  virtual Micros Now() const = 0;

  /// Runs `fn` on the event strand `delay` micros from now.
  virtual void After(Micros delay, std::function<void()> fn) = 0;

  /// Runs `fn` on the event strand as soon as possible.  The way for
  /// threads outside the strand to touch protocol objects safely.
  virtual void Post(std::function<void()> fn) { After(0, std::move(fn)); }

  /// Endpoints registered locally (sim: all nodes; socket: this
  /// process's nodes).
  virtual size_t node_count() const = 0;

  // --- Fault hooks (driven by chaos::FaultSchedule) --------------------
  //
  // Sim backend: global truth — every node observes the fault.
  // Socket backend: a *local view* — this process stops sending to /
  // accepting from the named nodes, which from this process's protocols
  // is indistinguishable from the real fault.  See DESIGN.md §12.

  virtual void SetNodeUp(NodeId n, bool up) { (void)n, (void)up; }
  virtual bool IsNodeUp(NodeId n) const {
    (void)n;
    return true;
  }
  virtual void Partition(NodeId a, NodeId b) { (void)a, (void)b; }
  virtual void Heal(NodeId a, NodeId b) { (void)a, (void)b; }
  virtual bool IsPartitioned(NodeId a, NodeId b) const {
    (void)a, (void)b;
    return false;
  }
  virtual void SetLinkDown(NodeId a, NodeId b, bool down) {
    (void)a, (void)b, (void)down;
  }
  virtual bool IsLinkDown(NodeId a, NodeId b) const {
    (void)a, (void)b;
    return false;
  }
  /// Added one-way latency (sim models it exactly; the socket backend
  /// applies it as a delivery delay on received frames from/to the
  /// pair — congestion you can inject on loopback).
  virtual void SetExtraLatency(NodeId a, NodeId b, Micros extra) {
    (void)a, (void)b, (void)extra;
  }
  virtual void SetBurstLoss(NodeId a, NodeId b, const BurstLossModel& model) {
    (void)a, (void)b, (void)model;
  }
  virtual void ClearBurstLoss(NodeId a, NodeId b) { (void)a, (void)b; }

  /// Registry-backed snapshot, refreshed on every call.
  virtual const NetworkStats& stats() const = 0;
  virtual void ResetStats() {}
};

/// The simulator backend: a thin veneer over the existing
/// `Network` + `Simulator` pair.  Behavior (delivery order, link
/// models, fault semantics, stats) is byte-identical to driving the
/// `Network` directly — every pre-transport experiment reproduces
/// exactly through this wrapper.
class SimTransport final : public Transport {
 public:
  /// `net` and `sim` must outlive the transport (they are typically the
  /// fixture's own members; `sim` must be the simulator `net` runs on).
  SimTransport(Network* net, Simulator* sim) : net_(net), sim_(sim) {}

  NodeId AddNode(Handler handler) override {
    return net_->AddNode(std::move(handler));
  }
  Status Send(Message msg) override { return net_->Send(std::move(msg)); }
  Micros Now() const override { return sim_->Now(); }
  void After(Micros delay, std::function<void()> fn) override {
    sim_->After(delay, std::move(fn));
  }
  size_t node_count() const override { return net_->node_count(); }

  void SetNodeUp(NodeId n, bool up) override { net_->SetNodeUp(n, up); }
  bool IsNodeUp(NodeId n) const override { return net_->IsNodeUp(n); }
  void Partition(NodeId a, NodeId b) override { net_->Partition(a, b); }
  void Heal(NodeId a, NodeId b) override { net_->Heal(a, b); }
  bool IsPartitioned(NodeId a, NodeId b) const override {
    return net_->IsPartitioned(a, b);
  }
  void SetLinkDown(NodeId a, NodeId b, bool down) override {
    net_->SetLinkDown(a, b, down);
  }
  bool IsLinkDown(NodeId a, NodeId b) const override {
    return net_->IsLinkDown(a, b);
  }
  void SetExtraLatency(NodeId a, NodeId b, Micros extra) override {
    net_->SetExtraLatency(a, b, extra);
  }
  void SetBurstLoss(NodeId a, NodeId b, const BurstLossModel& model) override {
    net_->SetBurstLoss(a, b, model);
  }
  void ClearBurstLoss(NodeId a, NodeId b) override {
    net_->ClearBurstLoss(a, b);
  }

  const NetworkStats& stats() const override { return net_->stats(); }
  void ResetStats() override { net_->ResetStats(); }

  Network* network() { return net_; }
  Simulator* simulator() { return sim_; }

 private:
  Network* net_;
  Simulator* sim_;
};

}  // namespace deluge::net

#endif  // DELUGE_NET_TRANSPORT_H_
