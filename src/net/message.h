#ifndef DELUGE_NET_MESSAGE_H_
#define DELUGE_NET_MESSAGE_H_

#include <cstdint>

#include "common/buffer.h"
#include "common/clock.h"
#include "common/qos.h"

namespace deluge::net {

/// Identifier of a node (device, broker, executor, data center).  Under
/// `SimTransport` ids are assigned densely per `Network`; under
/// `SocketTransport` they are *cluster-global* and come from the
/// `ClusterConfig`, so the same id names the same endpoint in every
/// process.
using NodeId = uint32_t;

/// Per-message framing overhead, in bytes, charged on top of the payload
/// when a message does not declare an explicit `size_bytes`.
///
/// This one constant is shared by both transport backends: the simulator
/// uses it for bandwidth accounting (`Message::WireSize`), and the real
/// frame encoder budgets its header inside it (`net::kFrameHeaderBytes
/// <= kFrameOverheadBytes`, static-asserted in frame.h), standing in for
/// the L2-L4 headers the socket path pays below the frame.  Keeping them
/// tied together means a byte counted by the sim is a byte the wire
/// path actually accounts for.
inline constexpr uint64_t kFrameOverheadBytes = 64;

/// Message types at or above this value are reserved for the transport
/// itself (handshake, ping/pong).  Application protocols must stay
/// below it; `SocketTransport` consumes reserved-type frames instead of
/// delivering them.
inline constexpr uint32_t kReservedTypeBase = 0xFFFF0000u;

/// A message in flight.  `payload` is opaque bytes; `size_bytes` may exceed
/// payload.size() to model headers or media frames whose content we do not
/// materialize (e.g. a "2 MB video keyframe" with a 20-byte descriptor).
///
/// The payload is a refcounted `common::Buffer`: assigning an encoded
/// string moves it in (no copy), and fanning the same bytes out to many
/// destinations or retries shares one allocation (DESIGN.md §10).
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  uint32_t type = 0;
  common::Buffer payload;
  uint64_t size_bytes = 0;
  Micros sent_at = 0;
  /// Service class (DESIGN.md §13).  Rides the frame header's size
  /// field top byte on the socket path (sizes stay < 2^56); legacy
  /// frames carry tag 0 there and decode as kBulk.
  QosClass qos = QosClass::kBulk;

  /// Effective size used for bandwidth accounting (both backends).
  uint64_t WireSize() const {
    return size_bytes > 0 ? size_bytes : payload.size() + kFrameOverheadBytes;
  }
};

/// Gilbert–Elliott two-state burst-loss model.  Real links lose packets
/// in correlated bursts, not i.i.d. (congestion, fading, handover); the
/// chain sits in a Good or Bad state with per-message transition
/// probabilities and a loss rate per state.
struct BurstLossModel {
  double p_good_to_bad = 0.01;  ///< per-message Good -> Bad probability
  double p_bad_to_good = 0.25;  ///< per-message Bad -> Good probability
  double loss_good = 0.0;       ///< loss rate while Good
  double loss_bad = 1.0;        ///< loss rate while Bad
};

/// Counters exposed for experiments (same meaning on both backends).
struct NetworkStats {
  uint64_t messages_sent = 0;
  uint64_t messages_delivered = 0;
  uint64_t messages_dropped = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;
  // Drop breakdown by injected-fault cause (all also counted in
  // `messages_dropped`).
  uint64_t drops_node_down = 0;
  uint64_t drops_link_down = 0;
  uint64_t drops_burst_loss = 0;
};

}  // namespace deluge::net

#endif  // DELUGE_NET_MESSAGE_H_
