#ifndef DELUGE_NET_SOCKET_TRANSPORT_H_
#define DELUGE_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/node_config.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace deluge::net {

// Control message types the transport consumes itself (never delivered
// to handlers).  All are >= kReservedTypeBase, which application
// protocols must stay below.
inline constexpr uint32_t kTypeHello = kReservedTypeBase + 1;  ///< process id
inline constexpr uint32_t kTypePing = kReservedTypeBase + 2;   ///< u64 ts
inline constexpr uint32_t kTypePong = kReservedTypeBase + 3;   ///< echoed ts

struct SocketTransportOptions {
  /// The shared cluster map (who listens where, node placement).
  ClusterConfig config;
  /// Which process of `config` this transport is.
  uint32_t local_process = 0;
  /// Worker pool the event loop and per-peer sender tasks run on.  Must
  /// outlive the transport and have at least `1 + remote process count`
  /// threads free, since those tasks occupy workers for the transport's
  /// lifetime.
  ThreadPool* pool = nullptr;
  /// Backoff for (re)connecting to a peer process.  When the budget is
  /// exhausted the queued frames are dropped (counted) and the budget
  /// resets on the next send — datagram semantics over a stream.  The
  /// default is generous because cluster processes start in any order.
  RetryPolicy reconnect = [] {
    RetryPolicy p;
    p.max_attempts = 30;
    p.initial_backoff = 20 * kMicrosPerMilli;
    p.max_backoff = kMicrosPerSecond;
    return p;
  }();
  /// Frames above this are rejected by the decoder (connection dropped).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Interval between transport-level pings to each peer process;
  /// responses feed the `transport.rtt_us` histogram.  0 disables.
  Micros ping_period = 0;
  /// Frames a peer's send queue may hold before Send fast-fails with
  /// Unavailable (backpressure instead of unbounded memory).
  size_t max_send_queue_frames = 1u << 16;
  /// Seed for the local burst-loss chains (fault injection).
  uint64_t seed = 42;
};

/// The real-socket `Transport` backend: length-prefixed frames (frame.h)
/// over TCP or Unix-domain stream sockets, so protocol objects written
/// against `Transport` run as separate OS processes in wall-clock time.
///
/// Threading: one long-running *event loop* task owns the listen socket,
/// every accepted connection, and the timer heap — handlers and timer
/// callbacks all run there, giving the same single-strand contract as
/// the simulator backend.  Each remote process additionally gets one
/// *sender* task draining that peer's frame queue (blocking connect with
/// `RetryPolicy` backoff, then writev of header + zero-copy payload
/// Buffer).  `Send` may be called from any thread.
///
/// Clock: `Now()` is monotonic wall-clock micros since construction.
///
/// Fault hooks model a *local view*: SetNodeUp(n, false) makes this
/// process drop traffic to and from `n` (send- and receive-side
/// filters), which from the local protocols' perspective is exactly a
/// crashed peer; partitions, link flaps, extra latency, and burst loss
/// filter the same way.  Counted in the same NetworkStats buckets as
/// the simulator so chaos experiments read identically.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions opts);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Binds the listen socket and launches the event loop + sender
  /// tasks.  Call after registering local nodes with AddNode.
  Status Start();

  /// Stops the loops, joins the tasks (they return to the pool), closes
  /// every socket.  Idempotent; the destructor calls it.
  void Stop();

  // --- Transport interface ---------------------------------------------

  /// Returns the next cluster-global id configured for this process
  /// (config order).  Registering more nodes than the config pins to
  /// this process is a programming error.
  NodeId AddNode(Handler handler) override;

  Status Send(Message msg) override;
  Micros Now() const override;
  void After(Micros delay, std::function<void()> fn) override;
  size_t node_count() const override;

  void SetNodeUp(NodeId n, bool up) override;
  bool IsNodeUp(NodeId n) const override;
  void Partition(NodeId a, NodeId b) override;
  void Heal(NodeId a, NodeId b) override;
  bool IsPartitioned(NodeId a, NodeId b) const override;
  void SetLinkDown(NodeId a, NodeId b, bool down) override;
  bool IsLinkDown(NodeId a, NodeId b) const override;
  void SetExtraLatency(NodeId a, NodeId b, Micros extra) override;
  void SetBurstLoss(NodeId a, NodeId b, const BurstLossModel& model) override;
  void ClearBurstLoss(NodeId a, NodeId b) override;

  const NetworkStats& stats() const override;
  void ResetStats() override;

  const ClusterConfig& config() const { return opts_.config; }
  uint32_t local_process() const { return opts_.local_process; }
  /// True while the event loop is running.
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  /// One frame queued toward a peer process: encoded header plus the
  /// payload Buffer (written separately — the payload is never copied).
  struct OutFrame {
    std::string header;
    common::Buffer payload;
  };

  /// Send side of one remote process.
  struct Peer {
    uint32_t process = 0;
    SocketEndpoint endpoint;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutFrame> queue;
    int fd = -1;
    bool ever_connected = false;
  };

  /// Receive side of one accepted connection.
  struct Conn {
    int fd = -1;
    FrameDecoder decoder;
    explicit Conn(int f, size_t max_frame) : fd(f), decoder(max_frame) {}
  };

  struct Timer {
    Micros at = 0;
    uint64_t seq = 0;  // FIFO among equal deadlines
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  struct LinkFault {
    bool down = false;
    Micros extra_latency = 0;
    bool has_burst = false;
    BurstLossModel burst;
    bool burst_bad = false;
  };

  static uint64_t PairKey(NodeId a, NodeId b) {
    return (uint64_t(a) << 32) | b;
  }

  Status Listen();
  void EventLoop();
  void SenderLoop(Peer* peer);
  /// Blocking connect to `peer` honouring the retry policy; returns the
  /// fd or -1 when the budget is exhausted or the transport stopped.
  int ConnectPeer(Peer* peer);
  bool WriteFrame(int fd, const OutFrame& frame);
  /// False when the peer is unknown or its queue is full.
  bool EnqueueToPeer(uint32_t process, OutFrame frame, bool front = false);

  /// Drains readable bytes from `conn`; false = close the connection.
  bool ReadConn(Conn* conn);
  /// Routes one decoded or locally-sent message on the event strand.
  void Dispatch(const Message& msg);
  void HandleControl(const Message& msg);

  /// Send-side fault filter, counting into the sim-compatible stats
  /// buckets.  Returns the status Send should report: OK-and-deliver
  /// only when `*deliver` is true.
  Status ApplySendFaults(const Message& msg, Micros* extra, bool* deliver);
  /// Receive-side filter (remote frames): true = drop.
  bool ReceiveBlocked(const Message& msg);
  bool BurstDropLocked(LinkFault& fault);

  /// Schedules `msg` for handler dispatch on the strand after `extra`.
  void ScheduleDelivery(Message msg, Micros extra);
  /// Counts and invokes the destination handler (event strand only).
  void DeliverNow(const Message& msg);

  void WakeLoop();
  NodeId FirstLocalNode() const;
  void SendPings();

  SocketTransportOptions opts_;
  std::vector<NodeId> local_ids_;  // config order
  Micros epoch_;                   // SteadyNowMicros at construction

  mutable std::mutex state_mu_;  // handlers, faults, timers
  std::unordered_map<NodeId, Handler> handlers_;
  size_t next_local_ = 0;
  std::unordered_set<NodeId> nodes_down_;
  std::unordered_set<uint64_t> partitions_;
  std::unordered_map<uint64_t, LinkFault> faults_;
  Rng rng_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  uint64_t timer_seq_ = 0;

  std::vector<std::unique_ptr<Peer>> peers_;  // one per remote process

  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::mutex tasks_mu_;
  std::condition_variable tasks_cv_;
  int live_tasks_ = 0;

  obs::StatsScope obs_{"transport"};
  obs::Counter* messages_sent_ = obs_.counter("messages_sent");
  obs::Counter* messages_delivered_ = obs_.counter("messages_delivered");
  obs::Counter* messages_dropped_ = obs_.counter("messages_dropped");
  obs::Counter* bytes_sent_ = obs_.counter("bytes_sent");
  obs::Counter* bytes_delivered_ = obs_.counter("bytes_delivered");
  obs::Counter* drops_node_down_ = obs_.counter("drops_node_down");
  obs::Counter* drops_link_down_ = obs_.counter("drops_link_down");
  obs::Counter* drops_burst_loss_ = obs_.counter("drops_burst_loss");
  obs::Counter* frames_sent_ = obs_.counter("frames_sent");
  obs::Counter* frames_received_ = obs_.counter("frames_received");
  obs::Counter* wire_bytes_sent_ = obs_.counter("wire_bytes_sent");
  obs::Counter* wire_bytes_received_ = obs_.counter("wire_bytes_received");
  obs::Counter* reconnects_ = obs_.counter("reconnects");
  obs::ConcurrentHistogram* rtt_us_ = obs_.histogram("rtt_us");
  mutable NetworkStats snapshot_;
};

}  // namespace deluge::net

#endif  // DELUGE_NET_SOCKET_TRANSPORT_H_
