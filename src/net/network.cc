#include "net/network.h"

#include <algorithm>

namespace deluge::net {

Network::Network(Simulator* sim, uint64_t seed) : sim_(sim), rng_(seed) {
  for (QosClass c : kAllQosClasses) {
    send_us_[uint8_t(c)] =
        obs_.histogram("send_us", {{"qos", QosClassName(c)}});
  }
}

const NetworkStats& Network::stats() const {
  snapshot_.messages_sent = messages_sent_->Value();
  snapshot_.messages_delivered = messages_delivered_->Value();
  snapshot_.messages_dropped = messages_dropped_->Value();
  snapshot_.bytes_sent = bytes_sent_->Value();
  snapshot_.bytes_delivered = bytes_delivered_->Value();
  snapshot_.drops_node_down = drops_node_down_->Value();
  snapshot_.drops_link_down = drops_link_down_->Value();
  snapshot_.drops_burst_loss = drops_burst_loss_->Value();
  return snapshot_;
}

void Network::ResetStats() {
  messages_sent_->Reset();
  messages_delivered_->Reset();
  messages_dropped_->Reset();
  bytes_sent_->Reset();
  bytes_delivered_->Reset();
  drops_node_down_->Reset();
  drops_link_down_->Reset();
  drops_burst_loss_->Reset();
}

NodeId Network::AddNode(Handler handler) {
  handlers_.push_back(std::move(handler));
  node_up_.push_back(1);
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::SetLink(NodeId a, NodeId b, const LinkOptions& opts) {
  links_[PairKey(a, b)] = LinkState{opts, 0};
}

void Network::SetBidirectional(NodeId a, NodeId b, const LinkOptions& opts) {
  SetLink(a, b, opts);
  SetLink(b, a, opts);
}

Network::LinkState& Network::GetLink(NodeId a, NodeId b) {
  auto it = links_.find(PairKey(a, b));
  if (it != links_.end()) return it->second;
  auto [ins, _] = links_.emplace(PairKey(a, b), LinkState{default_link_, 0});
  return ins->second;
}

Status Network::Send(Message msg) {
  if (msg.from >= handlers_.size() || msg.to >= handlers_.size()) {
    return Status::InvalidArgument("unknown node in Send");
  }
  msg.sent_at = sim_->Now();
  const uint64_t wire = msg.WireSize();
  messages_sent_->Add(1);
  bytes_sent_->Add(wire);

  if (!node_up_[msg.from] || !node_up_[msg.to]) {
    messages_dropped_->Add(1);
    drops_node_down_->Add(1);
    return Status::Unavailable("node down");
  }
  if (IsPartitioned(msg.from, msg.to)) {
    messages_dropped_->Add(1);
    return Status::Unavailable("partitioned");
  }

  LinkFault* fault = nullptr;
  auto fit = faults_.find(PairKey(msg.from, msg.to));
  if (fit != faults_.end()) fault = &fit->second;
  if (fault != nullptr && fault->down) {
    messages_dropped_->Add(1);
    drops_link_down_->Add(1);
    return Status::Unavailable("link down");
  }
  if (fault != nullptr && fault->has_burst && BurstDrop(*fault)) {
    messages_dropped_->Add(1);
    drops_burst_loss_->Add(1);
    return Status::OK();  // silent correlated loss
  }

  LinkState& link = GetLink(msg.from, msg.to);
  if (rng_.Bernoulli(link.opts.drop_probability)) {
    messages_dropped_->Add(1);
    return Status::OK();  // silent loss, like a real network
  }

  // Serialization: the link transmits messages one after another.
  const Micros now = sim_->Now();
  const Micros start = std::max(now, link.busy_until);
  Micros tx = 0;
  if (link.opts.bandwidth_bytes_per_sec > 0) {
    tx = static_cast<Micros>(double(wire) /
                             link.opts.bandwidth_bytes_per_sec *
                             double(kMicrosPerSecond));
  }
  link.busy_until = start + tx;

  Micros jitter = 0;
  if (link.opts.jitter > 0) {
    jitter = rng_.UniformRange(-link.opts.jitter, link.opts.jitter);
    jitter = std::max<Micros>(jitter, -(link.opts.latency));
  }
  const Micros extra = fault != nullptr ? fault->extra_latency : 0;
  const Micros deliver_at =
      link.busy_until + link.opts.latency + extra + jitter;

  NodeId to = msg.to;
  sim_->At(deliver_at, [this, to, m = std::move(msg), wire]() {
    // Re-check faults at delivery time: packets in flight when a
    // partition/flap/crash starts are lost, matching TCP-less datagram
    // semantics.
    if (Blocked(m.from, m.to)) {
      messages_dropped_->Add(1);
      return;
    }
    messages_delivered_->Add(1);
    bytes_delivered_->Add(wire);
    send_us_[uint8_t(m.qos)]->Record(sim_->Now() - m.sent_at);
    handlers_[to](m);
  });
  return Status::OK();
}

bool Network::Blocked(NodeId a, NodeId b) const {
  if (!node_up_[a] || !node_up_[b]) return true;
  if (IsPartitioned(a, b)) return true;
  auto it = faults_.find(PairKey(a, b));
  return it != faults_.end() && it->second.down;
}

bool Network::BurstDrop(LinkFault& fault) {
  // Advance the two-state Markov chain one message step, then draw the
  // state's loss rate.  All draws come from the network RNG, so a seeded
  // run replays the exact same loss pattern.
  if (fault.burst_bad) {
    if (rng_.Bernoulli(fault.burst.p_bad_to_good)) fault.burst_bad = false;
  } else {
    if (rng_.Bernoulli(fault.burst.p_good_to_bad)) fault.burst_bad = true;
  }
  return rng_.Bernoulli(fault.burst_bad ? fault.burst.loss_bad
                                        : fault.burst.loss_good);
}

void Network::SetNodeUp(NodeId n, bool up) {
  if (n < node_up_.size()) node_up_[n] = up ? 1 : 0;
}

bool Network::IsNodeUp(NodeId n) const {
  return n < node_up_.size() && node_up_[n] != 0;
}

void Network::SetLinkDown(NodeId a, NodeId b, bool down) {
  GetFault(a, b).down = down;
  GetFault(b, a).down = down;
}

bool Network::IsLinkDown(NodeId a, NodeId b) const {
  auto it = faults_.find(PairKey(a, b));
  return it != faults_.end() && it->second.down;
}

void Network::SetExtraLatency(NodeId a, NodeId b, Micros extra) {
  GetFault(a, b).extra_latency = extra;
  GetFault(b, a).extra_latency = extra;
}

void Network::SetBurstLoss(NodeId a, NodeId b, const BurstLossModel& model) {
  for (LinkFault* f : {&GetFault(a, b), &GetFault(b, a)}) {
    f->has_burst = true;
    f->burst = model;
    f->burst_bad = false;  // bursts start in the Good state
  }
}

void Network::ClearBurstLoss(NodeId a, NodeId b) {
  GetFault(a, b).has_burst = false;
  GetFault(b, a).has_burst = false;
}

void Network::Partition(NodeId a, NodeId b) {
  partitions_.insert(PairKey(a, b));
  partitions_.insert(PairKey(b, a));
}

void Network::Heal(NodeId a, NodeId b) {
  partitions_.erase(PairKey(a, b));
  partitions_.erase(PairKey(b, a));
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(PairKey(a, b)) > 0;
}

}  // namespace deluge::net
