#include "net/network.h"

#include <algorithm>

namespace deluge::net {

Network::Network(Simulator* sim, uint64_t seed) : sim_(sim), rng_(seed) {}

NodeId Network::AddNode(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::SetLink(NodeId a, NodeId b, const LinkOptions& opts) {
  links_[PairKey(a, b)] = LinkState{opts, 0};
}

void Network::SetBidirectional(NodeId a, NodeId b, const LinkOptions& opts) {
  SetLink(a, b, opts);
  SetLink(b, a, opts);
}

Network::LinkState& Network::GetLink(NodeId a, NodeId b) {
  auto it = links_.find(PairKey(a, b));
  if (it != links_.end()) return it->second;
  auto [ins, _] = links_.emplace(PairKey(a, b), LinkState{default_link_, 0});
  return ins->second;
}

Status Network::Send(Message msg) {
  if (msg.from >= handlers_.size() || msg.to >= handlers_.size()) {
    return Status::InvalidArgument("unknown node in Send");
  }
  msg.sent_at = sim_->Now();
  const uint64_t wire = msg.WireSize();
  ++stats_.messages_sent;
  stats_.bytes_sent += wire;

  if (IsPartitioned(msg.from, msg.to)) {
    ++stats_.messages_dropped;
    return Status::Unavailable("partitioned");
  }

  LinkState& link = GetLink(msg.from, msg.to);
  if (rng_.Bernoulli(link.opts.drop_probability)) {
    ++stats_.messages_dropped;
    return Status::OK();  // silent loss, like a real network
  }

  // Serialization: the link transmits messages one after another.
  const Micros now = sim_->Now();
  const Micros start = std::max(now, link.busy_until);
  Micros tx = 0;
  if (link.opts.bandwidth_bytes_per_sec > 0) {
    tx = static_cast<Micros>(double(wire) /
                             link.opts.bandwidth_bytes_per_sec *
                             double(kMicrosPerSecond));
  }
  link.busy_until = start + tx;

  Micros jitter = 0;
  if (link.opts.jitter > 0) {
    jitter = rng_.UniformRange(-link.opts.jitter, link.opts.jitter);
    jitter = std::max<Micros>(jitter, -(link.opts.latency));
  }
  const Micros deliver_at = link.busy_until + link.opts.latency + jitter;

  NodeId to = msg.to;
  sim_->At(deliver_at, [this, to, m = std::move(msg), wire]() {
    // Re-check partition at delivery time: packets in flight when a
    // partition starts are lost, matching TCP-less datagram semantics.
    if (IsPartitioned(m.from, m.to)) {
      ++stats_.messages_dropped;
      return;
    }
    ++stats_.messages_delivered;
    stats_.bytes_delivered += wire;
    handlers_[to](m);
  });
  return Status::OK();
}

void Network::Partition(NodeId a, NodeId b) {
  partitions_.insert(PairKey(a, b));
  partitions_.insert(PairKey(b, a));
}

void Network::Heal(NodeId a, NodeId b) {
  partitions_.erase(PairKey(a, b));
  partitions_.erase(PairKey(b, a));
}

bool Network::IsPartitioned(NodeId a, NodeId b) const {
  return partitions_.count(PairKey(a, b)) > 0;
}

}  // namespace deluge::net
