#ifndef DELUGE_NET_SIMULATOR_H_
#define DELUGE_NET_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace deluge::net {

/// Deterministic single-threaded discrete-event simulator.
///
/// Components schedule callbacks at virtual times; `Run*` pops events in
/// (time, insertion-order) order and advances the embedded `SimClock`.
/// Everything that needs simulated time (network links, serverless cold
/// starts, dissemination schedulers) runs on one of these, making the whole
/// experiment suite reproducible and independent of wall-clock speed.
class Simulator {
 public:
  using Callback = std::function<void()>;

  explicit Simulator(Micros start = 0) : clock_(start) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// The simulator's virtual clock (readable by all components).
  SimClock* clock() { return &clock_; }
  Micros Now() const { return clock_.NowMicros(); }

  /// Schedules `cb` to run at absolute virtual time `t` (clamped to now).
  void At(Micros t, Callback cb);

  /// Schedules `cb` to run `delay` microseconds from now.
  void After(Micros delay, Callback cb) { At(Now() + delay, std::move(cb)); }

  /// Runs events until the queue empties. Returns events processed.
  size_t Run();

  /// Runs events with time <= `deadline`; the clock lands on `deadline`
  /// (or later if an event at exactly `deadline` schedules follow-ups at
  /// the same instant). Returns events processed.
  size_t RunUntil(Micros deadline);

  /// Runs at most one event; returns false when the queue is empty.
  bool Step();

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Micros t;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimClock clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace deluge::net

#endif  // DELUGE_NET_SIMULATOR_H_
