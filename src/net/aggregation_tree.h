#ifndef DELUGE_NET_AGGREGATION_TREE_H_
#define DELUGE_NET_AGGREGATION_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "net/network.h"

namespace deluge::net {

/// Aggregate functions supported by the in-network tree.
enum class AggregateFn : uint8_t { kSum = 0, kMax = 1, kCount = 2 };

/// A per-epoch aggregate result delivered at the sink.
struct EpochResult {
  uint64_t epoch = 0;
  double value = 0.0;
  uint32_t contributors = 0;
  Micros completed_at = 0;
};

/// TinyDB-style in-network aggregation (Section III of the paper: "a
/// large number of sensors ... In-network processing may be needed to
/// aggregate data before transmission").
///
/// Builds a k-ary tree of relay nodes over the simulated network.
/// Sensors report readings tagged with an epoch to their parent; each
/// interior node folds its children's partial aggregates and forwards
/// ONE message upward once all children (or a timeout) reported,
/// so the sink receives O(1) messages per epoch instead of O(sensors).
/// The bandwidth comparison against direct-to-sink reporting is the
/// measurable claim.
class AggregationTree {
 public:
  using SinkCallback = std::function<void(const EpochResult&)>;

  /// Builds a tree of `num_sensors` leaves with fan-in `fanout` on
  /// `net`; interior/relay nodes are created as needed.  `timeout` is
  /// how long an interior node waits for stragglers before forwarding a
  /// partial aggregate.
  AggregationTree(Network* net, Simulator* sim, size_t num_sensors,
                  size_t fanout, AggregateFn fn, SinkCallback sink,
                  Micros timeout = 50 * kMicrosPerMilli);
  ~AggregationTree();

  AggregationTree(const AggregationTree&) = delete;
  AggregationTree& operator=(const AggregationTree&) = delete;

  /// Injects a reading from sensor `index` (0-based) for `epoch`.
  Status Report(size_t index, uint64_t epoch, double value);

  size_t num_sensors() const { return num_sensors_; }
  size_t tree_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }

 private:
  struct TreeNode;

  void OnNodeMessage(TreeNode* node, const Message& msg);
  void ForwardOrDeliver(TreeNode* node, uint64_t epoch);

  Network* net_;
  Simulator* sim_;
  size_t num_sensors_;
  size_t fanout_;
  AggregateFn fn_;
  SinkCallback sink_;
  Micros timeout_;
  int depth_ = 0;
  std::vector<std::unique_ptr<TreeNode>> nodes_;  // [0] is the root/sink
  std::vector<NodeId> sensor_endpoints_;  // network ids of leaf parents
  std::vector<size_t> sensor_parent_;     // index into nodes_ per sensor
  std::vector<NodeId> sensor_net_ids_;    // sensors' own network nodes
};

}  // namespace deluge::net

#endif  // DELUGE_NET_AGGREGATION_TREE_H_
