#ifndef DELUGE_NET_FRAME_H_
#define DELUGE_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/message.h"

namespace deluge::net {

/// Real-socket wire framing for `net::Message` (DESIGN.md §12).
///
/// A frame is a little-endian length prefix followed by a fixed header
/// and the payload bytes:
///
///   u32 length      bytes after this field (== 20 + payload size)
///   u32 from        sender node id (cluster-global)
///   u32 to          destination node id
///   u32 type        application message type
///   u64 size+qos    bits 0..55: modelled size (0 = payload + overhead,
///                   so bandwidth accounting matches the simulator's);
///                   bits 56..63: QoS wire tag (`QosWireTag`).  Legacy
///                   encoders wrote sizes < 2^56 with zero top bits, so
///                   their frames decode with qos = kBulk unchanged.
///   ...payload      `length - 20` opaque bytes
///
/// The payload is the same zero-copy `common::Buffer` encoding the sim
/// path carries; the encoder never copies it (senders writev the header
/// and the buffer separately).

/// Encoded header size, including the length prefix.
inline constexpr size_t kFrameHeaderBytes = 24;

/// The frame header must fit inside the per-message overhead the
/// simulator charges, so a byte budgeted by sim bandwidth accounting
/// covers the real header too (the remainder models L2-L4 framing).
static_assert(kFrameHeaderBytes <= kFrameOverheadBytes,
              "frame header outgrew the shared overhead constant");

/// Frames whose declared payload exceeds this are rejected before any
/// payload allocation (a corrupt or hostile length prefix cannot make
/// the decoder balloon).
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Writes the frame header for `msg` into `out[kFrameHeaderBytes]`.
void EncodeFrameHeader(const Message& msg, char* out);

/// Header + payload as one contiguous string (tests and small frames;
/// the hot path uses EncodeFrameHeader + writev instead).
std::string EncodeFrame(const Message& msg);

/// Incremental frame parser for one byte stream (one per connection).
///
/// Feed whatever chunk the socket produced — frames split across reads,
/// multiple frames per read, and torn length prefixes all reassemble.
/// Malformed input (oversized or impossible length) poisons the decoder:
/// the error returns now and on every later Feed, and the connection
/// should be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Consumes `n` bytes, appending every completed message to `out`.
  Status Feed(const char* data, size_t n, std::vector<Message>* out);

  /// Bytes held for a frame still incomplete.
  size_t buffered() const { return pending_.size(); }
  /// Messages decoded over the decoder's lifetime.
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  size_t max_frame_bytes_;
  std::string pending_;
  uint64_t frames_decoded_ = 0;
  Status status_;  // sticky error
};

}  // namespace deluge::net

#endif  // DELUGE_NET_FRAME_H_
