#include "pubsub/delivery_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace deluge::pubsub {

// Each slot is referenced by both heaps; a slot is recycled only after
// both references are gone (refs hits 0), so a stale heap index can
// never alias a newly pushed item.

// Comparators read the slot's cached priority, never through the
// EventRef: a dead slot drops its payload reference immediately (see
// PopWorst/PopBest) but keeps participating in sift comparisons until
// both heaps discard its tombstone.

bool DeliveryHeap::BestBefore(size_t a, size_t b) const {
  if (slots_[a].priority != slots_[b].priority) {
    return slots_[a].priority > slots_[b].priority;
  }
  return slots_[a].item.seq < slots_[b].item.seq;
}

bool DeliveryHeap::WorstBefore(size_t a, size_t b) const {
  if (slots_[a].priority != slots_[b].priority) {
    return slots_[a].priority < slots_[b].priority;
  }
  return slots_[a].item.seq < slots_[b].item.seq;
}

void DeliveryHeap::SiftUp(std::vector<size_t>* heap, size_t pos, bool best) {
  while (pos > 0) {
    size_t parent = (pos - 1) / 2;
    bool before = best ? BestBefore((*heap)[pos], (*heap)[parent])
                       : WorstBefore((*heap)[pos], (*heap)[parent]);
    if (!before) break;
    std::swap((*heap)[pos], (*heap)[parent]);
    pos = parent;
  }
}

void DeliveryHeap::SiftDown(std::vector<size_t>* heap, size_t pos, bool best) {
  const size_t n = heap->size();
  for (;;) {
    size_t first = pos;
    for (size_t child = 2 * pos + 1; child <= 2 * pos + 2 && child < n;
         ++child) {
      bool before = best ? BestBefore((*heap)[child], (*heap)[first])
                         : WorstBefore((*heap)[child], (*heap)[first]);
      if (before) first = child;
    }
    if (first == pos) return;
    std::swap((*heap)[pos], (*heap)[first]);
    pos = first;
  }
}

void DeliveryHeap::Release(size_t slot) {
  Slot& s = slots_[slot];
  assert(!s.alive);
  assert(s.item.event == nullptr);  // ref was dropped at shed/pop time
  free_.push_back(slot);
}

void DeliveryHeap::Prune(std::vector<size_t>* heap, bool best) {
  // Pop dead tops.
  while (!heap->empty() && !slots_[heap->front()].alive) {
    size_t slot = heap->front();
    heap->front() = heap->back();
    heap->pop_back();
    if (!heap->empty()) SiftDown(heap, 0, best);
    if (--slots_[slot].refs == 0) Release(slot);
  }
  // Compact when tombstones dominate: filter dead indices + heapify.
  if (heap->size() > 2 * live_ + 4) {
    size_t kept = 0;
    for (size_t i = 0; i < heap->size(); ++i) {
      size_t slot = (*heap)[i];
      if (slots_[slot].alive) {
        (*heap)[kept++] = slot;
      } else if (--slots_[slot].refs == 0) {
        Release(slot);
      }
    }
    heap->resize(kept);
    for (size_t i = kept / 2; i-- > 0;) SiftDown(heap, i, best);
  }
}

void DeliveryHeap::Push(net::NodeId subscriber, EventRef event, uint64_t seq) {
  size_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.item = Item{subscriber, std::move(event), seq};
  s.priority = QosRank(s.item.event->qos);
  s.alive = true;
  s.refs = 2;
  ++live_;
  best_heap_.push_back(slot);
  SiftUp(&best_heap_, best_heap_.size() - 1, /*best=*/true);
  worst_heap_.push_back(slot);
  SiftUp(&worst_heap_, worst_heap_.size() - 1, /*best=*/false);
}

const DeliveryHeap::Item& DeliveryHeap::PeekWorst() {
  Prune(&worst_heap_, /*best=*/false);
  return slots_[worst_heap_.front()].item;
}

void DeliveryHeap::PopWorst() {
  Prune(&worst_heap_, /*best=*/false);
  size_t slot = worst_heap_.front();
  worst_heap_.front() = worst_heap_.back();
  worst_heap_.pop_back();
  if (!worst_heap_.empty()) SiftDown(&worst_heap_, 0, /*best=*/false);
  slots_[slot].alive = false;
  // Shedding releases the payload reference *now*, not when the other
  // heap eventually prunes the tombstone — a shed event's Buffer must
  // free as soon as its last live queue slot is gone (the seed instead
  // blanked the whole Event on slot reuse, pinning payloads meanwhile).
  slots_[slot].item.event.reset();
  --live_;
  if (--slots_[slot].refs == 0) Release(slot);
}

DeliveryHeap::Item DeliveryHeap::PopBest() {
  Prune(&best_heap_, /*best=*/true);
  size_t slot = best_heap_.front();
  best_heap_.front() = best_heap_.back();
  best_heap_.pop_back();
  if (!best_heap_.empty()) SiftDown(&best_heap_, 0, /*best=*/true);
  Item out = std::move(slots_[slot].item);
  slots_[slot].alive = false;
  --live_;
  if (--slots_[slot].refs == 0) Release(slot);
  return out;
}

void DeliveryHeap::TruncateNewest(size_t limit) {
  if (live_ <= limit) return;
  std::vector<Item> kept;
  kept.reserve(live_);
  for (Slot& s : slots_) {
    if (s.alive) kept.push_back(std::move(s.item));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Item& a, const Item& b) { return a.seq < b.seq; });
  kept.resize(limit);
  slots_.clear();
  free_.clear();
  best_heap_.clear();
  worst_heap_.clear();
  live_ = 0;
  for (Item& item : kept) {
    Push(item.subscriber, std::move(item.event), item.seq);
  }
}

}  // namespace deluge::pubsub
