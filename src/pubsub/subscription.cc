#include "pubsub/subscription.h"

#include <cstring>

#include "storage/format.h"

namespace deluge::pubsub {

// Event wire format (little-endian, storage/format.h conventions):
//   varint32 topic_len | topic | u8 flags (bit0 = has position)
//   | [3 x fixed64 position doubles] | fixed64 bytes | u8 qos_tag
//   | fixed64 published_at | payload tuple (stream::Tuple wire form)
//
// qos_tag is QosWireTag(qos): 0 = kBulk, so legacy frames (which wrote
// a zero priority byte here) decode as kBulk, and a default-class event
// encodes byte-identically to the pre-QoS format.

namespace {

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void PutDouble(std::string* dst, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  storage::PutFixed64(dst, bits);
}

bool GetDouble(std::string_view* in, double* d) {
  uint64_t bits = 0;
  if (!storage::GetFixed64(in, &bits)) return false;
  std::memcpy(d, &bits, 8);
  return true;
}

}  // namespace

size_t Event::EncodedSize() const {
  return VarintLen(topic.size()) + topic.size() + 1 +
         (position.has_value() ? 24 : 0) + 8 + 1 + 8 +
         payload.EncodedSize();
}

const common::Buffer& Event::EnsureEncoded() const {
  if (!encoded_.empty()) return encoded_;
  std::string wire;
  wire.reserve(EncodedSize());
  storage::PutLengthPrefixed(&wire, topic);
  wire.push_back(position.has_value() ? char(1) : char(0));
  if (position.has_value()) {
    PutDouble(&wire, position->x);
    PutDouble(&wire, position->y);
    PutDouble(&wire, position->z);
  }
  storage::PutFixed64(&wire, bytes);
  wire.push_back(char(QosWireTag(qos)));
  storage::PutFixed64(&wire, uint64_t(published_at));
  payload.EncodeTo(&wire);
  encoded_ = common::Buffer(std::move(wire));
  return encoded_;
}

bool Event::Decode(common::Slice in, Event* out) {
  std::string_view cursor = in.view();
  std::string_view topic;
  if (!storage::GetLengthPrefixed(&cursor, &topic)) return false;
  out->topic.assign(topic);
  if (cursor.empty()) return false;
  uint8_t flags = uint8_t(cursor.front());
  cursor.remove_prefix(1);
  if (flags > 1) return false;
  if (flags & 1) {
    geo::Vec3 p;
    if (!GetDouble(&cursor, &p.x) || !GetDouble(&cursor, &p.y) ||
        !GetDouble(&cursor, &p.z)) {
      return false;
    }
    out->position = p;
  } else {
    out->position.reset();
  }
  if (!storage::GetFixed64(&cursor, &out->bytes)) return false;
  if (cursor.empty()) return false;
  out->qos = QosFromWireTag(uint8_t(cursor.front()));
  cursor.remove_prefix(1);
  uint64_t published_bits = 0;
  if (!storage::GetFixed64(&cursor, &published_bits)) return false;
  out->published_at = Micros(published_bits);
  if (!stream::Tuple::DecodeFrom(&cursor, &out->payload)) return false;
  return cursor.empty();
}

bool Predicate::Matches(const stream::Tuple& t) const {
  // String equality path.
  if (const std::string* want = std::get_if<std::string>(&value)) {
    auto got = t.Get<std::string>(field);
    if (!got) return false;
    switch (op) {
      case CmpOp::kEq:
        return *got == *want;
      case CmpOp::kNe:
        return *got != *want;
      default:
        return false;  // ordered comparison of strings unsupported
    }
  }
  // Numeric path (int64, double, bool all promote).
  double want = 0.0;
  if (const double* d = std::get_if<double>(&value)) {
    want = *d;
  } else if (const int64_t* i = std::get_if<int64_t>(&value)) {
    want = double(*i);
  } else if (const bool* b = std::get_if<bool>(&value)) {
    want = *b ? 1.0 : 0.0;
  }
  auto got = t.GetNumeric(field);
  if (!got) {
    if (auto b = t.Get<bool>(field)) got = *b ? 1.0 : 0.0;
  }
  if (!got) return false;
  switch (op) {
    case CmpOp::kEq:
      return *got == want;
    case CmpOp::kNe:
      return *got != want;
    case CmpOp::kLt:
      return *got < want;
    case CmpOp::kLe:
      return *got <= want;
    case CmpOp::kGt:
      return *got > want;
    case CmpOp::kGe:
      return *got >= want;
  }
  return false;
}

bool Subscription::Matches(const Event& event) const {
  if (!topic.empty() && topic != event.topic) return false;
  if (region.has_value()) {
    if (!event.position.has_value()) return false;
    if (!region->Contains(*event.position)) return false;
  }
  for (const auto& pred : predicates) {
    if (!pred.Matches(event.payload)) return false;
  }
  return true;
}

}  // namespace deluge::pubsub
