#include "pubsub/subscription.h"

namespace deluge::pubsub {

bool Predicate::Matches(const stream::Tuple& t) const {
  // String equality path.
  if (const std::string* want = std::get_if<std::string>(&value)) {
    auto got = t.Get<std::string>(field);
    if (!got) return false;
    switch (op) {
      case CmpOp::kEq:
        return *got == *want;
      case CmpOp::kNe:
        return *got != *want;
      default:
        return false;  // ordered comparison of strings unsupported
    }
  }
  // Numeric path (int64, double, bool all promote).
  double want = 0.0;
  if (const double* d = std::get_if<double>(&value)) {
    want = *d;
  } else if (const int64_t* i = std::get_if<int64_t>(&value)) {
    want = double(*i);
  } else if (const bool* b = std::get_if<bool>(&value)) {
    want = *b ? 1.0 : 0.0;
  }
  auto got = t.GetNumeric(field);
  if (!got) {
    if (auto b = t.Get<bool>(field)) got = *b ? 1.0 : 0.0;
  }
  if (!got) return false;
  switch (op) {
    case CmpOp::kEq:
      return *got == want;
    case CmpOp::kNe:
      return *got != want;
    case CmpOp::kLt:
      return *got < want;
    case CmpOp::kLe:
      return *got <= want;
    case CmpOp::kGt:
      return *got > want;
    case CmpOp::kGe:
      return *got >= want;
  }
  return false;
}

bool Subscription::Matches(const Event& event) const {
  if (!topic.empty() && topic != event.topic) return false;
  if (region.has_value()) {
    if (!event.position.has_value()) return false;
    if (!region->Contains(*event.position)) return false;
  }
  for (const auto& pred : predicates) {
    if (!pred.Matches(event.payload)) return false;
  }
  return true;
}

}  // namespace deluge::pubsub
