#ifndef DELUGE_PUBSUB_SUBSCRIPTION_H_
#define DELUGE_PUBSUB_SUBSCRIPTION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/qos.h"
#include "geo/geometry.h"
#include "net/network.h"
#include "stream/tuple.h"

namespace deluge::pubsub {

/// Comparison operators for content predicates.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// One field constraint: `field <op> value`.  Numeric comparisons use
/// `GetNumeric`; string comparisons only support kEq / kNe.
struct Predicate {
  std::string field;
  CmpOp op = CmpOp::kEq;
  stream::Value value;

  /// True when tuple `t` satisfies this predicate.
  bool Matches(const stream::Tuple& t) const;
};

/// A published event: topic + payload tuple + optional position (for
/// location-aware subscriptions, as in geo-textual pub/sub [41][21]).
///
/// Ownership rules (DESIGN.md §10): an Event is mutable while being
/// built; once published it is treated as immutable and shared —
/// queued-mode fan-out hands one `EventRef` to every queue slot, and
/// the wire path serialises once via `EnsureEncoded()` and shares the
/// refcounted Buffer across subscribers and retries.
struct Event {
  std::string topic;
  stream::Tuple payload;
  std::optional<geo::Vec3> position;
  uint64_t bytes = 256;
  /// Service class (DESIGN.md §13): decides shed order under overload,
  /// redelivery budget, and which SLO row the delivery counts against.
  QosClass qos = QosClass::kBulk;
  /// Publish time (virtual); lets subscribers measure staleness.
  Micros published_at = 0;

  /// The event's wire form, encoded at most once and cached; later
  /// calls (other subscribers, retries) share the same Buffer.  Must
  /// not be called before the event is fully built — the cache is not
  /// invalidated by later mutation.
  const common::Buffer& EnsureEncoded() const;
  /// Exact wire size in bytes.
  size_t EncodedSize() const;
  /// Parses a wire-form event; false on malformed input.
  static bool Decode(common::Slice in, Event* out);

 private:
  mutable common::Buffer encoded_;  // lazily filled by EnsureEncoded
};

/// Shared handle to a published (hence immutable) event: the unit the
/// delivery queue and fan-out paths pass around instead of Event copies.
using EventRef = std::shared_ptr<const Event>;

/// A standing interest registration.
///
/// An event matches when (a) the topic matches (empty = wildcard),
/// (b) the event position lies inside `region` when a region is set
/// (events without positions never match regional subscriptions), and
/// (c) every content predicate holds.
struct Subscription {
  uint64_t id = 0;
  net::NodeId subscriber = 0;
  std::string topic;
  std::optional<geo::AABB> region;
  std::vector<Predicate> predicates;

  bool Matches(const Event& event) const;
};

}  // namespace deluge::pubsub

#endif  // DELUGE_PUBSUB_SUBSCRIPTION_H_
