#ifndef DELUGE_PUBSUB_DELIVERY_QUEUE_H_
#define DELUGE_PUBSUB_DELIVERY_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pubsub/subscription.h"

namespace deluge::pubsub {

/// A double-ended priority queue for the broker's bounded delivery
/// queue: `Drain` pops the *best* entry (highest priority, FIFO within
/// a priority) while overload shedding evicts the *worst* (lowest
/// priority, oldest among ties).
///
/// Two binary heaps index a shared entry slab: a best-first heap
/// ordered (priority desc, seq asc) and a worst-first heap ordered
/// (priority asc, seq asc).  Removing through one heap tombstones the
/// slab slot; the other heap skips dead tops lazily and each heap
/// compacts once tombstones outnumber live entries, so `Push`,
/// `PopBest`, and `PopWorst` are all amortized O(log n) — replacing the
/// seed's O(n) scans per pop/evict.
class DeliveryHeap {
 public:
  /// Queue slots hold a shared `EventRef`, not an Event copy: an event
  /// fanned out to N subscribers occupies N slots that all point at one
  /// immutable Event (and its one encoded payload Buffer).  Shedding or
  /// popping a slot drops only that slot's reference.
  struct Item {
    net::NodeId subscriber = 0;
    EventRef event;
    uint64_t seq = 0;  ///< FIFO order within a priority
  };

  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  void Push(net::NodeId subscriber, EventRef event, uint64_t seq);

  /// Lowest priority, oldest among ties.  Precondition: !empty().
  const Item& PeekWorst();
  void PopWorst();

  /// Highest priority, oldest among ties.  Precondition: !empty().
  Item PopBest();

  /// Drops the newest entries (largest seq) until `limit` remain —
  /// mirrors the insertion-order truncation semantics of the seed's
  /// `SetQueueLimit` shrink path.
  void TruncateNewest(size_t limit);

 private:
  struct Slot {
    Item item;
    /// `QosRank(event->qos)`, cached at Push so heap comparisons never
    /// read through `item.event` — dead slots release their EventRef
    /// immediately but stay in the heaps as tombstones.
    uint8_t priority = 0;
    bool alive = false;
    uint8_t refs = 0;  ///< heaps still holding this slot's index
  };

  bool BestBefore(size_t a, size_t b) const;
  bool WorstBefore(size_t a, size_t b) const;
  void SiftUp(std::vector<size_t>* heap, size_t pos, bool best);
  void SiftDown(std::vector<size_t>* heap, size_t pos, bool best);
  /// Pops dead slot indices off `heap`'s top; compacts when stale.
  void Prune(std::vector<size_t>* heap, bool best);
  void Release(size_t slot);
  void Rebuild();

  std::vector<Slot> slots_;
  std::vector<size_t> free_;       // dead slot indices for reuse
  std::vector<size_t> best_heap_;  // slot indices, best-first order
  std::vector<size_t> worst_heap_;
  size_t live_ = 0;
};

}  // namespace deluge::pubsub

#endif  // DELUGE_PUBSUB_DELIVERY_QUEUE_H_
