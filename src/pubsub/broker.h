#ifndef DELUGE_PUBSUB_BROKER_H_
#define DELUGE_PUBSUB_BROKER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "pubsub/delivery_queue.h"
#include "pubsub/subscription.h"

namespace deluge::pubsub {

/// Matching/dissemination counters.
struct BrokerStats {
  uint64_t events_published = 0;
  uint64_t deliveries = 0;
  uint64_t candidates_checked = 0;  ///< subscriptions evaluated exactly
  // Bounded-queue mode only:
  uint64_t deliveries_queued = 0;
  uint64_t deliveries_shed = 0;  ///< dropped by QoS-class shedding
  uint64_t queue_high_water = 0;
};

/// A content + spatial pub/sub matcher.
///
/// Two-level subscription index:
///  - topic hash map narrows to the topic's subscriber set;
///  - regional subscriptions are additionally coarse-indexed by the grid
///    cells their region covers, so positional events only test
///    subscriptions whose region touches the event's cell.
/// This is the structure the paper points at for cross-space
/// dissemination at scale (Section IV-E, [41]).  Delivery is via a
/// pluggable callback so the broker runs equally in-process (tests) or
/// bound to `net::Network` sends (experiments).
class Broker {
 public:
  using Deliver =
      std::function<void(net::NodeId subscriber, const Event& event)>;

  /// `world`/`cell` configure the regional coarse index.  `extra_labels`
  /// tag this broker's registry metrics (e.g. {shard=3} in an overlay or
  /// sharded engine).
  Broker(const geo::AABB& world, double cell_size, Deliver deliver,
         obs::Labels extra_labels = {});

  /// Registers a subscription; returns its id.
  uint64_t Subscribe(Subscription sub);

  /// Removes a subscription; false when unknown.
  bool Unsubscribe(uint64_t sub_id);

  /// Matches and delivers `event` to every matching subscription.
  /// Returns the number of deliveries (matches, in queued mode).
  size_t Publish(const Event& event);

  /// Switches to bounded-queue delivery (graceful degradation): Publish
  /// enqueues matched deliveries instead of invoking the callback
  /// inline, and `Drain` pumps them.  When the queue is full, the
  /// lowest-class entry (oldest among ties) is shed and counted —
  /// overload degrades kBulk traffic first instead of growing without
  /// bound or dropping silently.  `limit` 0 restores inline delivery.
  void SetQueueLimit(size_t limit);

  /// Delivers up to `max` queued entries in (class rank, FIFO) order.
  /// Returns the number delivered.  No-op in inline mode.
  size_t Drain(size_t max = size_t(-1));

  /// Enables per-class delivery-latency accounting: each delivery of an
  /// event with `published_at > 0` records (now - published_at) into
  /// `broker.delivery_us{qos=...}`.  Null disables (the default), so
  /// standalone brokers pay only a branch per delivery.
  void SetClock(const Clock* clock) { clock_ = clock; }

  size_t queue_depth() const { return queue_.size(); }

  size_t subscription_count() const { return subs_.size(); }
  /// Registry-backed snapshot, refreshed on every call.
  const BrokerStats& stats() const;
  void ResetStats();

 private:
  using CellKey = uint64_t;

  void Enqueue(net::NodeId subscriber, const EventRef& event);
  void DeliverOne(net::NodeId subscriber, const Event& event);

  std::vector<CellKey> CellsCovering(const geo::AABB& box) const;
  CellKey CellFor(const geo::Vec3& p) const;

  geo::AABB world_;
  double cell_size_;
  Deliver deliver_;
  size_t queue_limit_ = 0;  // 0 = inline delivery
  DeliveryHeap queue_;
  uint64_t next_queue_seq_ = 0;
  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, Subscription> subs_;
  // Topic -> non-regional subscription ids ("" holds wildcard subs).
  std::unordered_map<std::string, std::unordered_set<uint64_t>> by_topic_;
  // Grid cell -> regional subscription ids touching that cell.
  std::unordered_map<CellKey, std::unordered_set<uint64_t>> by_cell_;
  const Clock* clock_ = nullptr;  // per-class latency source (optional)
  obs::StatsScope obs_;
  obs::Counter* events_published_;
  obs::Counter* deliveries_;
  obs::Counter* candidates_checked_;
  obs::Counter* deliveries_queued_;
  obs::Counter* deliveries_shed_;
  obs::Gauge* queue_high_water_;
  // Per-QoS-class hop accounting, indexed by uint8_t(QosClass).
  obs::ConcurrentHistogram* delivery_us_[kQosClassCount];
  obs::Counter* class_delivered_[kQosClassCount];
  obs::Counter* class_shed_[kQosClassCount];
  mutable BrokerStats snapshot_;
};

/// A topic-sharded broker overlay (Section IV-E: "publish/subscribe
/// system over peer-to-peer networks").
///
/// Each broker owns the topics that hash to it; `HomeOf` routes both
/// subscriptions and publications, so any node can publish anywhere and
/// matching happens exactly once.
class BrokerOverlay {
 public:
  /// Creates `n` brokers sharing world/cell configuration.
  BrokerOverlay(size_t n, const geo::AABB& world, double cell_size,
                Broker::Deliver deliver);

  /// The broker index responsible for `topic`.
  size_t HomeOf(const std::string& topic) const;

  uint64_t Subscribe(Subscription sub);
  size_t Publish(const Event& event);

  Broker& broker(size_t i) { return *brokers_[i]; }
  size_t size() const { return brokers_.size(); }

 private:
  std::vector<std::unique_ptr<Broker>> brokers_;
};

}  // namespace deluge::pubsub

#endif  // DELUGE_PUBSUB_BROKER_H_
