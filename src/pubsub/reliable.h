#ifndef DELUGE_PUBSUB_RELIABLE_H_
#define DELUGE_PUBSUB_RELIABLE_H_

#include <unordered_map>

#include "common/retry.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "pubsub/subscription.h"

namespace deluge::pubsub {

/// Counters for `ReliableDeliverer`.
struct ReliableStats {
  uint64_t attempts = 0;       ///< first-time Deliver calls
  uint64_t sends = 0;          ///< network sends (incl. retries)
  uint64_t accepted = 0;       ///< sends the network accepted
  uint64_t retries = 0;
  uint64_t gave_up = 0;        ///< retry budget exhausted
  uint64_t fast_failed = 0;    ///< rejected by an open breaker
};

/// Retrying bridge from a `Broker` to `net::Network` sends.
///
/// The plain bench wiring drops an event forever when the subscriber's
/// link is partitioned or flapping.  This deliverer retries *detectable*
/// failures (Send returning Unavailable: partition, link-down, crashed
/// node) with the shared backoff policy, and keeps one circuit breaker
/// per subscriber so a long-dead subscriber degrades to cheap fast-fails
/// instead of a retry storm.  Silent in-flight losses (i.i.d. or burst
/// drops) are not detectable without an ack protocol and stay lossy, as
/// in the real datagram fabric.
class ReliableDeliverer {
 public:
  /// `net` must outlive the deliverer.  `msg_type` tags the wire
  /// messages; the payload carries the event's wire encoding
  /// (`Event::EnsureEncoded`), serialised once and shared by refcount
  /// across subscribers and retries.  `qos_policy` (default:
  /// `QosPolicy::Default()`) caps the retry budget per class — the
  /// effective attempts for an event are
  /// min(policy.max_attempts, target(qos).max_retry_attempts), so
  /// kRealtime fails fast while kBulk retries patiently.
  explicit ReliableDeliverer(net::Transport* net, RetryPolicy policy = {},
                             uint64_t seed = 0xE11A,
                             const QosPolicy* qos_policy = nullptr);

  /// Sends `event` from `from` to `to`, retrying on synchronous
  /// unavailability until the event's class budget runs out.
  void Deliver(net::NodeId from, net::NodeId to, const Event& event);

  CircuitBreakerOptions& breaker_options() { return breaker_options_; }
  /// Registry-backed snapshot, refreshed on every call.
  const ReliableStats& stats() const;
  uint32_t msg_type = 0x9B;

 private:
  void Attempt(net::NodeId from, net::NodeId to, common::Buffer payload,
               uint64_t size_bytes, QosClass qos, RetryState state);
  CircuitBreaker& breaker_for(net::NodeId to);

  net::Transport* net_;
  RetryPolicy policy_;
  const QosPolicy* qos_policy_;
  CircuitBreakerOptions breaker_options_;
  std::unordered_map<net::NodeId, CircuitBreaker> breakers_;
  Rng rng_;
  obs::StatsScope obs_{"reliable"};
  obs::Counter* attempts_ = obs_.counter("attempts");
  obs::Counter* sends_ = obs_.counter("sends");
  obs::Counter* accepted_ = obs_.counter("accepted");
  obs::Counter* retries_ = obs_.counter("retries");
  obs::Counter* gave_up_ = obs_.counter("gave_up");
  obs::Counter* fast_failed_ = obs_.counter("fast_failed");
  // Per-class giveups: the SLO gate reads these as delivery failures.
  obs::Counter* class_gave_up_[kQosClassCount] = {};
  mutable ReliableStats snapshot_;
};

}  // namespace deluge::pubsub

#endif  // DELUGE_PUBSUB_RELIABLE_H_
