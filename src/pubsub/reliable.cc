#include "pubsub/reliable.h"

namespace deluge::pubsub {

ReliableDeliverer::ReliableDeliverer(net::Network* net, net::Simulator* sim,
                                     RetryPolicy policy, uint64_t seed)
    : net_(net), sim_(sim), policy_(policy), rng_(seed) {}

CircuitBreaker& ReliableDeliverer::breaker_for(net::NodeId to) {
  auto it = breakers_.find(to);
  if (it == breakers_.end()) {
    it = breakers_.emplace(to, CircuitBreaker(breaker_options_)).first;
  }
  return it->second;
}

void ReliableDeliverer::Deliver(net::NodeId from, net::NodeId to,
                                const Event& event) {
  ++stats_.attempts;
  Attempt(from, to, event, RetryState(policy_, sim_->Now()));
}

void ReliableDeliverer::Attempt(net::NodeId from, net::NodeId to,
                                const Event& event, RetryState state) {
  CircuitBreaker& breaker = breaker_for(to);
  if (!breaker.Allow(sim_->Now())) {
    ++stats_.fast_failed;
    return;
  }
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = msg_type;
  msg.payload = event.topic;
  msg.size_bytes = event.bytes;
  ++stats_.sends;
  Status s = net_->Send(std::move(msg));
  if (s.ok()) {
    ++stats_.accepted;
    breaker.RecordSuccess();
    return;
  }
  breaker.RecordFailure(sim_->Now());
  Micros delay = state.NextBackoff(sim_->Now(), &rng_);
  if (delay < 0) {
    ++stats_.gave_up;
    return;
  }
  ++stats_.retries;
  sim_->After(delay, [this, from, to, event, state]() {
    Attempt(from, to, event, state);
  });
}

}  // namespace deluge::pubsub
