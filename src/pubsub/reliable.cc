#include "pubsub/reliable.h"

#include <algorithm>
#include <tuple>
#include <utility>

namespace deluge::pubsub {

ReliableDeliverer::ReliableDeliverer(net::Transport* net, RetryPolicy policy,
                                     uint64_t seed,
                                     const QosPolicy* qos_policy)
    : net_(net),
      policy_(policy),
      qos_policy_(qos_policy != nullptr ? qos_policy : &QosPolicy::Default()),
      rng_(seed) {
  for (QosClass c : kAllQosClasses) {
    class_gave_up_[uint8_t(c)] =
        obs_.counter("class_gave_up", {{"qos", QosClassName(c)}});
  }
}

const ReliableStats& ReliableDeliverer::stats() const {
  snapshot_.attempts = attempts_->Value();
  snapshot_.sends = sends_->Value();
  snapshot_.accepted = accepted_->Value();
  snapshot_.retries = retries_->Value();
  snapshot_.gave_up = gave_up_->Value();
  snapshot_.fast_failed = fast_failed_->Value();
  return snapshot_;
}

CircuitBreaker& ReliableDeliverer::breaker_for(net::NodeId to) {
  auto it = breakers_.find(to);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(std::piecewise_construct, std::forward_as_tuple(to),
                      std::forward_as_tuple(breaker_options_))
             .first;
  }
  return it->second;
}

void ReliableDeliverer::Deliver(net::NodeId from, net::NodeId to,
                                const Event& event) {
  attempts_->Add(1);
  // Serialise at most once per event: EnsureEncoded caches the wire
  // form on the Event, so fanning one event out to N subscribers (and
  // every retry) shares a single refcounted Buffer.  The retry budget
  // is the class's: a kRealtime miss is superseded by the next mirror
  // update, while kBulk keeps trying within the backoff deadline.
  RetryPolicy effective = policy_;
  effective.max_attempts =
      std::min(effective.max_attempts,
               qos_policy_->target(event.qos).max_retry_attempts);
  Attempt(from, to, event.EnsureEncoded(), event.bytes, event.qos,
          RetryState(effective, net_->Now()));
}

void ReliableDeliverer::Attempt(net::NodeId from, net::NodeId to,
                                common::Buffer payload, uint64_t size_bytes,
                                QosClass qos, RetryState state) {
  CircuitBreaker& breaker = breaker_for(to);
  if (!breaker.Allow(net_->Now())) {
    fast_failed_->Add(1);
    return;
  }
  net::Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = msg_type;
  msg.payload = payload;  // refcount bump, not a byte copy
  msg.size_bytes = size_bytes;
  msg.qos = qos;
  sends_->Add(1);
  Status s = net_->Send(std::move(msg));
  if (s.ok()) {
    accepted_->Add(1);
    breaker.RecordSuccess();
    return;
  }
  breaker.RecordFailure(net_->Now());
  Micros delay = state.NextBackoff(net_->Now(), &rng_);
  if (delay < 0) {
    gave_up_->Add(1);
    class_gave_up_[uint8_t(qos)]->Add(1);
    return;
  }
  retries_->Add(1);
  net_->After(delay, [this, from, to, payload = std::move(payload), size_bytes,
                      qos, state]() {
    Attempt(from, to, payload, size_bytes, qos, state);
  });
}

}  // namespace deluge::pubsub
