#include "pubsub/broker.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "obs/trace.h"

namespace deluge::pubsub {

Broker::Broker(const geo::AABB& world, double cell_size, Deliver deliver,
               obs::Labels extra_labels)
    : world_(world),
      cell_size_(cell_size > 0 ? cell_size : 1.0),
      deliver_(std::move(deliver)),
      obs_("broker", std::move(extra_labels)),
      events_published_(obs_.counter("events_published")),
      deliveries_(obs_.counter("deliveries")),
      candidates_checked_(obs_.counter("candidates_checked")),
      deliveries_queued_(obs_.counter("deliveries_queued")),
      deliveries_shed_(obs_.counter("deliveries_shed")),
      queue_high_water_(obs_.gauge("queue_high_water", obs::Gauge::Agg::kMax)) {
  for (QosClass c : kAllQosClasses) {
    obs::Labels qos{{"qos", QosClassName(c)}};
    delivery_us_[uint8_t(c)] = obs_.histogram("delivery_us", qos);
    class_delivered_[uint8_t(c)] = obs_.counter("class_delivered", qos);
    class_shed_[uint8_t(c)] = obs_.counter("class_shed", qos);
  }
}

const BrokerStats& Broker::stats() const {
  snapshot_.events_published = events_published_->Value();
  snapshot_.deliveries = deliveries_->Value();
  snapshot_.candidates_checked = candidates_checked_->Value();
  snapshot_.deliveries_queued = deliveries_queued_->Value();
  snapshot_.deliveries_shed = deliveries_shed_->Value();
  snapshot_.queue_high_water = uint64_t(queue_high_water_->Value());
  return snapshot_;
}

void Broker::ResetStats() {
  events_published_->Reset();
  deliveries_->Reset();
  candidates_checked_->Reset();
  deliveries_queued_->Reset();
  deliveries_shed_->Reset();
  queue_high_water_->Reset();
}

Broker::CellKey Broker::CellFor(const geo::Vec3& p) const {
  auto coord = [this](double v, double lo) {
    return uint64_t(std::clamp<int64_t>(
        int64_t(std::floor((v - lo) / cell_size_)) + (1 << 20), 0,
        (1 << 21) - 1));
  };
  return (coord(p.x, world_.min.x) << 42) | (coord(p.y, world_.min.y) << 21) |
         coord(p.z, world_.min.z);
}

std::vector<Broker::CellKey> Broker::CellsCovering(
    const geo::AABB& box) const {
  std::vector<CellKey> cells;
  auto idx = [this](double v, double lo) {
    return int64_t(std::floor((v - lo) / cell_size_));
  };
  int64_t lox = idx(box.min.x, world_.min.x), hix = idx(box.max.x, world_.min.x);
  int64_t loy = idx(box.min.y, world_.min.y), hiy = idx(box.max.y, world_.min.y);
  int64_t loz = idx(box.min.z, world_.min.z), hiz = idx(box.max.z, world_.min.z);
  for (int64_t x = lox; x <= hix; ++x) {
    for (int64_t y = loy; y <= hiy; ++y) {
      for (int64_t z = loz; z <= hiz; ++z) {
        auto clamp21 = [](int64_t v) {
          return uint64_t(
              std::clamp<int64_t>(v + (1 << 20), 0, (1 << 21) - 1));
        };
        cells.push_back((clamp21(x) << 42) | (clamp21(y) << 21) | clamp21(z));
      }
    }
  }
  return cells;
}

uint64_t Broker::Subscribe(Subscription sub) {
  sub.id = next_id_++;
  if (sub.region.has_value()) {
    for (CellKey cell : CellsCovering(*sub.region)) {
      by_cell_[cell].insert(sub.id);
    }
  } else {
    by_topic_[sub.topic].insert(sub.id);
  }
  uint64_t id = sub.id;
  subs_.emplace(id, std::move(sub));
  return id;
}

bool Broker::Unsubscribe(uint64_t sub_id) {
  auto it = subs_.find(sub_id);
  if (it == subs_.end()) return false;
  const Subscription& sub = it->second;
  if (sub.region.has_value()) {
    for (CellKey cell : CellsCovering(*sub.region)) {
      auto cit = by_cell_.find(cell);
      if (cit != by_cell_.end()) {
        cit->second.erase(sub_id);
        if (cit->second.empty()) by_cell_.erase(cit);
      }
    }
  } else {
    auto tit = by_topic_.find(sub.topic);
    if (tit != by_topic_.end()) {
      tit->second.erase(sub_id);
      if (tit->second.empty()) by_topic_.erase(tit);
    }
  }
  subs_.erase(it);
  return true;
}

void Broker::SetQueueLimit(size_t limit) {
  queue_limit_ = limit;
  if (limit > 0 && queue_.size() > limit) queue_.TruncateNewest(limit);
}

void Broker::Enqueue(net::NodeId subscriber, const EventRef& event) {
  if (queue_.size() >= queue_limit_) {
    // Shed the lowest-class entry (oldest among ties); if the new
    // event itself ranks lowest, shed it instead.  O(log n) via the
    // worst-first heap (the seed scanned the whole queue per eviction).
    deliveries_shed_->Add(1);
    if (queue_.empty() ||
        QosRank(queue_.PeekWorst().event->qos) >= QosRank(event->qos)) {
      class_shed_[uint8_t(event->qos)]->Add(1);
      return;  // the incoming event is the least important
    }
    class_shed_[uint8_t(queue_.PeekWorst().event->qos)]->Add(1);
    queue_.PopWorst();
  }
  queue_.Push(subscriber, event, next_queue_seq_++);
  deliveries_queued_->Add(1);
  queue_high_water_->UpdateMax(double(queue_.size()));
}

void Broker::DeliverOne(net::NodeId subscriber, const Event& event) {
  if (clock_ != nullptr) {
    class_delivered_[uint8_t(event.qos)]->Add(1);
    if (event.published_at > 0) {
      delivery_us_[uint8_t(event.qos)]->Record(clock_->NowMicros() -
                                               event.published_at);
    }
  }
  if (deliver_) deliver_(subscriber, event);
}

size_t Broker::Drain(size_t max) {
  size_t delivered = 0;
  while (delivered < max && !queue_.empty()) {
    // Highest class rank first, FIFO within a class — O(log n) pops
    // from the best-first heap.
    DeliveryHeap::Item d = queue_.PopBest();
    DeliverOne(d.subscriber, *d.event);
    ++delivered;
  }
  return delivered;
}

size_t Broker::Publish(const Event& event) {
  obs::Span span("broker.publish");
  events_published_->Add(1);
  size_t delivered = 0;
  // Queued mode: the event is copied into shared ownership at most once
  // per publish; every matching queue slot then holds a reference, so
  // fan-out cost per subscriber is one refcount bump (zero payload
  // copies regardless of subscriber count).
  EventRef shared;
  auto try_deliver = [&](uint64_t sub_id) {
    auto it = subs_.find(sub_id);
    if (it == subs_.end()) return;
    candidates_checked_->Add(1);
    if (!it->second.Matches(event)) return;
    deliveries_->Add(1);
    ++delivered;
    if (queue_limit_ > 0) {
      if (shared == nullptr) shared = std::make_shared<const Event>(event);
      Enqueue(it->second.subscriber, shared);
    } else {
      DeliverOne(it->second.subscriber, event);
    }
  };

  // Topic-indexed (non-regional) subscriptions: exact topic + wildcard.
  auto tit = by_topic_.find(event.topic);
  if (tit != by_topic_.end()) {
    for (uint64_t id : tit->second) try_deliver(id);
  }
  if (!event.topic.empty()) {
    auto wit = by_topic_.find("");
    if (wit != by_topic_.end()) {
      for (uint64_t id : wit->second) try_deliver(id);
    }
  }
  // Regional subscriptions via the event's cell.
  if (event.position.has_value()) {
    auto cit = by_cell_.find(CellFor(*event.position));
    if (cit != by_cell_.end()) {
      // Copy: delivery callbacks may mutate subscriptions.
      std::vector<uint64_t> ids(cit->second.begin(), cit->second.end());
      for (uint64_t id : ids) try_deliver(id);
    }
  }
  return delivered;
}

// ---------------------------------------------------------- BrokerOverlay

BrokerOverlay::BrokerOverlay(size_t n, const geo::AABB& world,
                             double cell_size, Broker::Deliver deliver) {
  if (n == 0) n = 1;
  brokers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    brokers_.push_back(std::make_unique<Broker>(
        world, cell_size, deliver,
        obs::Labels{{"shard", std::to_string(i)}}));
  }
}

size_t BrokerOverlay::HomeOf(const std::string& topic) const {
  return size_t(Hash64(topic) % brokers_.size());
}

uint64_t BrokerOverlay::Subscribe(Subscription sub) {
  return brokers_[HomeOf(sub.topic)]->Subscribe(std::move(sub));
}

size_t BrokerOverlay::Publish(const Event& event) {
  return brokers_[HomeOf(event.topic)]->Publish(event);
}

}  // namespace deluge::pubsub
