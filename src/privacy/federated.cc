#include "privacy/federated.h"

#include <cmath>

namespace deluge::privacy {

double LinearModel::Predict(const std::vector<double>& x) const {
  double y = 0.0;
  size_t n = std::min(weights.size(), x.size());
  for (size_t i = 0; i < n; ++i) y += weights[i] * x[i];
  return y;
}

Federation Federation::Synthesize(const FederationConfig& config) {
  Federation fed;
  Rng rng(config.seed);
  fed.true_weights.resize(config.dim);
  for (auto& w : fed.true_weights) w = rng.UniformDouble(-1.0, 1.0);

  fed.clients.resize(config.num_clients);
  for (size_t c = 0; c < config.num_clients; ++c) {
    ClientData& data = fed.clients[c];
    // Non-IID: each client's features centre on a client-specific mean
    // and its labels carry client-specific noise.
    std::vector<double> feature_mean(config.dim);
    for (auto& m : feature_mean) {
      m = rng.Gaussian(0.0, config.noniid_skew);
    }
    double noise = config.label_noise * (1.0 + config.noniid_skew *
                                                   rng.NextDouble());
    for (size_t r = 0; r < config.rows_per_client; ++r) {
      std::vector<double> x(config.dim);
      for (size_t d = 0; d < config.dim; ++d) {
        x[d] = feature_mean[d] + rng.Gaussian(0.0, 1.0);
      }
      double y = 0.0;
      for (size_t d = 0; d < config.dim; ++d) y += fed.true_weights[d] * x[d];
      y += rng.Gaussian(0.0, noise);
      data.xs.push_back(std::move(x));
      data.ys.push_back(y);
    }
  }
  return fed;
}

FederatedAveraging::FederatedAveraging(const Federation* federation,
                                       Options options)
    : federation_(federation),
      options_(options),
      global_(federation->true_weights.size()),
      rng_(options.seed) {}

LinearModel FederatedAveraging::TrainLocal(const LinearModel& start,
                                           const ClientData& data,
                                           size_t epochs, double lr) const {
  LinearModel model = start;
  for (size_t e = 0; e < epochs; ++e) {
    for (size_t r = 0; r < data.size(); ++r) {
      double err = model.Predict(data.xs[r]) - data.ys[r];
      for (size_t d = 0; d < model.weights.size(); ++d) {
        model.weights[d] -= lr * err * data.xs[r][d];
      }
    }
  }
  return model;
}

double FederatedAveraging::Round(const std::vector<double>& client_weights) {
  const auto& clients = federation_->clients;
  std::vector<double> agg(global_.weights.size(), 0.0);
  double total_weight = 0.0;
  for (size_t c = 0; c < clients.size(); ++c) {
    LinearModel local = TrainLocal(global_, clients[c],
                                   options_.local_epochs,
                                   options_.learning_rate);
    double w = client_weights.empty()
                   ? double(clients[c].size())
                   : (c < client_weights.size() ? client_weights[c] : 0.0);
    if (w <= 0.0) continue;
    for (size_t d = 0; d < agg.size(); ++d) {
      double update = local.weights[d];
      if (options_.update_noise_stddev > 0.0) {
        update += rng_.Gaussian(0.0, options_.update_noise_stddev);
      }
      agg[d] += w * update;
    }
    total_weight += w;
  }
  if (total_weight > 0.0) {
    for (size_t d = 0; d < agg.size(); ++d) {
      global_.weights[d] = agg[d] / total_weight;
    }
  }
  ++rounds_;
  return GlobalLoss();
}

double FederatedAveraging::LossOn(const ClientData& data) const {
  if (data.size() == 0) return 0.0;
  double sum = 0.0;
  for (size_t r = 0; r < data.size(); ++r) {
    double err = global_.Predict(data.xs[r]) - data.ys[r];
    sum += err * err;
  }
  return sum / double(data.size());
}

double FederatedAveraging::GlobalLoss() const {
  double sum = 0.0;
  for (const auto& client : federation_->clients) sum += LossOn(client);
  return federation_->clients.empty()
             ? 0.0
             : sum / double(federation_->clients.size());
}

double FederatedAveraging::DistanceToTruth() const {
  double sum = 0.0;
  for (size_t d = 0; d < global_.weights.size(); ++d) {
    double diff = global_.weights[d] - federation_->true_weights[d];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

}  // namespace deluge::privacy
