#include "privacy/dp.h"

#include <cmath>

namespace deluge::privacy {

PrivacyBudget::PrivacyBudget(double total_epsilon)
    : total_(total_epsilon > 0 ? total_epsilon : 0.0) {}

Status PrivacyBudget::Charge(double epsilon) {
  if (epsilon <= 0) return Status::InvalidArgument("epsilon must be > 0");
  if (spent_ + epsilon > total_ + 1e-12) {
    return Status::ResourceExhausted("privacy budget exhausted");
  }
  spent_ += epsilon;
  return Status::OK();
}

LaplaceMechanism::LaplaceMechanism(double sensitivity, uint64_t seed)
    : sensitivity_(sensitivity > 0 ? sensitivity : 1.0), rng_(seed) {}

double LaplaceMechanism::SampleNoise(double epsilon) {
  double b = sensitivity_ / epsilon;
  // Inverse-CDF sampling: u in (-0.5, 0.5).
  double u = rng_.NextDouble() - 0.5;
  double sign = u < 0 ? -1.0 : 1.0;
  return -b * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

Result<double> LaplaceMechanism::Release(double true_value, double epsilon,
                                         PrivacyBudget* budget) {
  if (budget != nullptr) {
    Status s = budget->Charge(epsilon);
    if (!s.ok()) return s;
  }
  return true_value + SampleNoise(epsilon);
}

RandomizedResponse::RandomizedResponse(double epsilon, uint64_t seed)
    : rng_(seed) {
  double e = std::exp(epsilon);
  p_ = e / (e + 1.0);
}

bool RandomizedResponse::Respond(bool truth) {
  return rng_.Bernoulli(p_) ? truth : !truth;
}

double RandomizedResponse::EstimateTrueFraction(
    double observed_yes_fraction) const {
  // observed = p*f + (1-p)*(1-f)  =>  f = (observed - (1-p)) / (2p - 1)
  double denom = 2.0 * p_ - 1.0;
  if (std::fabs(denom) < 1e-12) return 0.5;  // epsilon ~ 0: no signal
  return (observed_yes_fraction - (1.0 - p_)) / denom;
}

DpHistogram::DpHistogram(size_t buckets, uint64_t seed)
    : counts_(buckets, 0), rng_(seed) {}

void DpHistogram::Add(size_t bucket) {
  if (bucket < counts_.size()) ++counts_[bucket];
}

Result<std::vector<double>> DpHistogram::Release(double epsilon,
                                                 PrivacyBudget* budget) {
  if (budget != nullptr) {
    Status s = budget->Charge(epsilon);
    if (!s.ok()) return s;
  }
  LaplaceMechanism noise(/*sensitivity=*/1.0, rng_.Next());
  std::vector<double> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = double(counts_[i]) + noise.SampleNoise(epsilon);
  }
  return out;
}

}  // namespace deluge::privacy
