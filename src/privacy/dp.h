#ifndef DELUGE_PRIVACY_DP_H_
#define DELUGE_PRIVACY_DP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace deluge::privacy {

/// Tracks cumulative privacy loss under basic (sequential) composition.
///
/// Every mechanism invocation must pass through `Charge`; once the
/// budget is exhausted further queries are refused — the hard guarantee
/// a privacy layer owes its users (Section IV-D).
class PrivacyBudget {
 public:
  explicit PrivacyBudget(double total_epsilon);

  /// Reserves `epsilon` from the budget; ResourceExhausted when the
  /// remaining budget is insufficient.
  Status Charge(double epsilon);

  double total() const { return total_; }
  double spent() const { return spent_; }
  double remaining() const { return total_ - spent_; }

 private:
  double total_;
  double spent_ = 0.0;
};

/// Epsilon-DP Laplace mechanism for numeric queries.
///
/// Adds Laplace(sensitivity / epsilon) noise.  Deterministic given the
/// seed, as all Deluge randomness is.
class LaplaceMechanism {
 public:
  LaplaceMechanism(double sensitivity, uint64_t seed = 42);

  /// Releases `true_value` with `epsilon`-DP, charging `budget`.
  Result<double> Release(double true_value, double epsilon,
                         PrivacyBudget* budget);

  /// Raw noise sample for the given epsilon (testing / analysis).
  double SampleNoise(double epsilon);

 private:
  double sensitivity_;
  Rng rng_;
};

/// Randomized response for boolean attributes ("are you in region X?").
///
/// Answers truthfully with probability e^eps/(e^eps+1).  The estimator
/// `EstimateTrueFraction` debiases aggregate counts.
class RandomizedResponse {
 public:
  explicit RandomizedResponse(double epsilon, uint64_t seed = 42);

  /// Perturbs one true answer.
  bool Respond(bool truth);

  /// Probability of answering truthfully.
  double truth_probability() const { return p_; }

  /// Debiased estimate of the true "yes" fraction given the observed
  /// fraction of yes responses.
  double EstimateTrueFraction(double observed_yes_fraction) const;

 private:
  double p_;
  Rng rng_;
};

/// A DP histogram release: adds Laplace noise to every bucket count
/// (parallel composition: one epsilon covers the whole histogram since
/// buckets partition the population).
class DpHistogram {
 public:
  DpHistogram(size_t buckets, uint64_t seed = 42);

  /// Adds one individual to `bucket`.
  void Add(size_t bucket);

  /// Noisy counts under `epsilon`-DP, charging `budget` once.
  Result<std::vector<double>> Release(double epsilon, PrivacyBudget* budget);

  const std::vector<uint64_t>& raw_counts() const { return counts_; }

 private:
  std::vector<uint64_t> counts_;
  Rng rng_;
};

}  // namespace deluge::privacy

#endif  // DELUGE_PRIVACY_DP_H_
