#include "privacy/incentive.h"

#include <algorithm>
#include <numeric>

namespace deluge::privacy {

IncentiveScorer::IncentiveScorer(size_t num_clients, UtilityFn utility)
    : num_clients_(num_clients), utility_(std::move(utility)) {}

std::vector<double> IncentiveScorer::ShapleyApprox(size_t samples,
                                                   uint64_t seed) const {
  std::vector<double> shapley(num_clients_, 0.0);
  if (num_clients_ == 0 || samples == 0) return shapley;
  Rng rng(seed);
  std::vector<size_t> perm(num_clients_);
  std::iota(perm.begin(), perm.end(), 0);

  for (size_t s = 0; s < samples; ++s) {
    rng.Shuffle(perm);
    std::vector<size_t> coalition;
    coalition.reserve(num_clients_);
    double prev_utility = utility_({});
    for (size_t i = 0; i < num_clients_; ++i) {
      coalition.push_back(perm[i]);
      double u = utility_(coalition);
      shapley[perm[i]] += u - prev_utility;
      prev_utility = u;
    }
  }
  for (auto& v : shapley) v /= double(samples);
  return shapley;
}

std::vector<double> IncentiveScorer::LeaveOneOut() const {
  std::vector<double> scores(num_clients_, 0.0);
  std::vector<size_t> all(num_clients_);
  std::iota(all.begin(), all.end(), 0);
  double full = utility_(all);
  for (size_t i = 0; i < num_clients_; ++i) {
    std::vector<size_t> without;
    without.reserve(num_clients_ - 1);
    for (size_t j = 0; j < num_clients_; ++j) {
      if (j != i) without.push_back(j);
    }
    scores[i] = full - utility_(without);
  }
  return scores;
}

std::vector<size_t> IncentiveScorer::FlagFreeRiders(
    const std::vector<double>& scores, double fraction) {
  double positive_sum = 0.0;
  size_t positive_count = 0;
  for (double s : scores) {
    if (s > 0) {
      positive_sum += s;
      ++positive_count;
    }
  }
  std::vector<size_t> flagged;
  if (positive_count == 0) return flagged;
  double threshold = fraction * positive_sum / double(positive_count);
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] < threshold) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace deluge::privacy
