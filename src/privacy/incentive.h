#ifndef DELUGE_PRIVACY_INCENTIVE_H_
#define DELUGE_PRIVACY_INCENTIVE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace deluge::privacy {

/// Contribution-fair incentive scoring for data collaborations
/// (Section IV-B: "effective and computationally efficient incentive
/// models have to be designed ... to discourage free-riders").
///
/// `utility(S)` evaluates the value of a coalition of clients (e.g.
/// negative federated loss after training on exactly those clients).
/// `ShapleyApprox` estimates each client's Shapley value by sampling
/// random permutations and averaging marginal contributions — the
/// standard Monte-Carlo estimator, O(samples * n) utility calls.
class IncentiveScorer {
 public:
  using UtilityFn = std::function<double(const std::vector<size_t>&)>;

  /// `num_clients` participants scored against `utility`.
  IncentiveScorer(size_t num_clients, UtilityFn utility);

  /// Monte-Carlo Shapley values; more samples = tighter estimates.
  std::vector<double> ShapleyApprox(size_t samples, uint64_t seed = 42) const;

  /// Cheap alternative: each client's leave-one-out marginal utility
  /// v(N) - v(N \ {i}); n+1 utility calls total.
  std::vector<double> LeaveOneOut() const;

  /// Flags clients whose score is below `fraction` of the mean positive
  /// score — candidate free riders.
  static std::vector<size_t> FlagFreeRiders(const std::vector<double>& scores,
                                            double fraction = 0.25);

 private:
  size_t num_clients_;
  UtilityFn utility_;
};

}  // namespace deluge::privacy

#endif  // DELUGE_PRIVACY_INCENTIVE_H_
