#ifndef DELUGE_PRIVACY_FEDERATED_H_
#define DELUGE_PRIVACY_FEDERATED_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace deluge::privacy {

/// A linear model trained by least-squares SGD; the workload unit of the
/// federated-learning simulation.  (The paper's collaboration concerns —
/// Non-IID clients, heterogeneous data quantity/quality, free riders —
/// are all about the *aggregation dynamics*, which a linear model
/// exercises exactly as a deep one would, at simulation cost.)
struct LinearModel {
  std::vector<double> weights;

  explicit LinearModel(size_t dim = 0) : weights(dim, 0.0) {}

  double Predict(const std::vector<double>& x) const;
};

/// One client's local dataset: rows of (x, y).
struct ClientData {
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  size_t size() const { return ys.size(); }
};

/// Synthesizes a federation of `num_clients` datasets drawn from a
/// shared ground-truth linear model, with controllable Non-IID skew:
/// skew = 0 gives identical feature distributions; larger skew shifts
/// each client's feature means apart and scales noise differently.
struct FederationConfig {
  size_t num_clients = 10;
  size_t dim = 8;
  size_t rows_per_client = 100;
  double noniid_skew = 0.0;
  double label_noise = 0.1;
  uint64_t seed = 42;
};

struct Federation {
  std::vector<double> true_weights;
  std::vector<ClientData> clients;

  static Federation Synthesize(const FederationConfig& config);
};

/// Federated averaging (FedAvg) with optional per-client weighting and
/// optional DP noise on client updates.
class FederatedAveraging {
 public:
  struct Options {
    size_t local_epochs = 1;
    double learning_rate = 0.01;
    /// Per-update Gaussian noise stddev (client-level DP; 0 = off).
    double update_noise_stddev = 0.0;
    uint64_t seed = 7;
  };

  FederatedAveraging(const Federation* federation, Options options);

  /// Runs one round: every client trains locally from the global model,
  /// then updates aggregate weighted by `client_weights` (empty =
  /// weight by data size).  Returns the new global training loss.
  double Round(const std::vector<double>& client_weights = {});

  /// MSE of the global model against a client's data.
  double LossOn(const ClientData& data) const;

  /// Mean loss over all clients.
  double GlobalLoss() const;

  /// L2 distance between global weights and the ground truth.
  double DistanceToTruth() const;

  const LinearModel& global_model() const { return global_; }
  size_t rounds_completed() const { return rounds_; }

  /// Local training used inside rounds (exposed for incentive scoring).
  LinearModel TrainLocal(const LinearModel& start, const ClientData& data,
                         size_t epochs, double lr) const;

 private:
  const Federation* federation_;
  Options options_;
  LinearModel global_;
  mutable Rng rng_;
  size_t rounds_ = 0;
};

}  // namespace deluge::privacy

#endif  // DELUGE_PRIVACY_FEDERATED_H_
