#ifndef DELUGE_ML_ONLINE_MODEL_H_
#define DELUGE_ML_ONLINE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deluge::ml {

/// An online linear regressor trained by per-example SGD.
///
/// The building block for Deluge's in-system learned components
/// (Section IV-H): cardinality estimators, cost models, workload
/// predictors.  Linear on purpose — the paper's point under test is the
/// *lifecycle* (drift makes any trained model stale), which a linear
/// learner exhibits identically to a deep one at simulation cost.
class OnlineLinearModel {
 public:
  explicit OnlineLinearModel(size_t dim, double learning_rate = 0.01);

  double Predict(const std::vector<double>& x) const;

  /// One SGD step on (x, y); returns the pre-update absolute error.
  double Update(const std::vector<double>& x, double y);

  /// Forgets everything (used by drift-triggered resets).
  void Reset();

  const std::vector<double>& weights() const { return weights_; }
  uint64_t updates() const { return updates_; }

 private:
  std::vector<double> weights_;
  double lr_;
  uint64_t updates_ = 0;
};

/// Page–Hinkley change detector over a stream of errors.
///
/// Signals when the running mean of the monitored signal increases by
/// more than `delta` with cumulative evidence `lambda` — the standard
/// cheap concept-drift test.  After a detection the internal state
/// resets so subsequent drifts are also caught.
class PageHinkley {
 public:
  /// `delta`: magnitude tolerance; `lambda`: detection threshold;
  /// `min_samples`: warm-up before detections are allowed.
  PageHinkley(double delta = 0.05, double lambda = 50.0,
              int min_samples = 30);

  /// Feeds one value; true when drift is detected at this sample.
  bool Observe(double value);

  double running_mean() const { return mean_; }
  uint64_t detections() const { return detections_; }

 private:
  double delta_;
  double lambda_;
  int min_samples_;
  double mean_ = 0.0;
  double cumulative_ = 0.0;
  double min_cumulative_ = 0.0;
  int n_ = 0;
  uint64_t detections_ = 0;
};

/// A self-healing learned component: an online model watched by a drift
/// detector; on detection the model resets and relearns the new concept.
/// E16 measures its error against a train-once model under concept
/// drift — the paper's argument for making ML "an integral part of the
/// system, instead of putting an AI/ML layer on top".
class AdaptiveModel {
 public:
  AdaptiveModel(size_t dim, double learning_rate = 0.01,
                PageHinkley detector = PageHinkley());

  double Predict(const std::vector<double>& x) const {
    return model_.Predict(x);
  }

  /// Learns from (x, y); may trigger a drift reset.  Returns the
  /// pre-update absolute error.
  double Observe(const std::vector<double>& x, double y);

  uint64_t drift_resets() const { return resets_; }
  const OnlineLinearModel& model() const { return model_; }

 private:
  OnlineLinearModel model_;
  PageHinkley detector_;
  uint64_t resets_ = 0;
};

}  // namespace deluge::ml

#endif  // DELUGE_ML_ONLINE_MODEL_H_
