#include "ml/colearn.h"

#include <algorithm>
#include <cmath>

namespace deluge::ml {

namespace {

std::vector<double> RandomPoint(Rng* rng, size_t dim) {
  std::vector<double> x(dim);
  for (auto& v : x) v = rng->Gaussian(0, 1);
  return x;
}

int TrueLabel(const std::vector<double>& concept_w,
              const std::vector<double>& x) {
  double s = 0;
  for (size_t i = 0; i < concept_w.size(); ++i) s += concept_w[i] * x[i];
  return s >= 0 ? 1 : -1;
}

double Accuracy(const OnlineLinearModel& model,
                const std::vector<double>& concept_w, Rng* rng, size_t dim,
                int samples) {
  int correct = 0;
  for (int i = 0; i < samples; ++i) {
    auto x = RandomPoint(rng, dim);
    int truth = TrueLabel(concept_w, x);
    int pred = model.Predict(x) >= 0 ? 1 : -1;
    correct += (pred == truth);
  }
  return double(correct) / double(samples);
}

}  // namespace

CoLearningLoop::CoLearningLoop(CoLearnConfig config) : config_(config) {}

CoLearnResult CoLearningLoop::Run() {
  Rng rng(config_.seed);
  std::vector<double> concept_w(config_.dim);
  for (auto& w : concept_w) w = rng.UniformDouble(-1, 1);

  OnlineLinearModel collaborative(config_.dim, 0.05);
  OnlineLinearModel machine_only(config_.dim, 0.05);
  double skill = config_.initial_human_skill;
  CoLearnResult result;

  for (size_t round = 0; round < config_.rounds; ++round) {
    auto x = RandomPoint(&rng, config_.dim);
    int truth = TrueLabel(concept_w, x);

    // Environment label: cheap but noisy.
    int env_label = rng.Bernoulli(config_.environment_noise) ? -truth : truth;
    machine_only.Update(x, double(env_label));

    double margin = collaborative.Predict(x);
    if (std::fabs(margin) < config_.query_margin) {
      // Uncertain: ask the human (model learns from human).
      ++result.human_queries;
      int human_label = rng.Bernoulli(skill) ? truth : -truth;
      collaborative.Update(x, double(human_label));
    } else {
      // Confident: learn from the environment, and SHOW the human the
      // prediction with its margin — the explanation that teaches them
      // (human learns from model).
      collaborative.Update(x, double(env_label));
      skill += config_.skill_gain * (config_.max_human_skill - skill);
    }
  }

  result.final_human_skill = skill;
  Rng eval_rng(config_.seed ^ 0xE7A1);  // held-out evaluation stream
  result.model_accuracy =
      Accuracy(collaborative, concept_w, &eval_rng, config_.dim, 2000);
  result.baseline_accuracy =
      Accuracy(machine_only, concept_w, &eval_rng, config_.dim, 2000);
  return result;
}

}  // namespace deluge::ml
