#ifndef DELUGE_ML_COLEARN_H_
#define DELUGE_ML_COLEARN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/online_model.h"

namespace deluge::ml {

/// Configuration of the human–machine co-learning simulation (Fig. 8(c)
/// of the paper: "humans could learn from the model and the model could
/// learn from humans").
struct CoLearnConfig {
  size_t dim = 4;
  size_t rounds = 4000;
  /// Probability the human labels a queried example correctly at start.
  double initial_human_skill = 0.7;
  /// Skill ceiling the human can reach through model feedback.
  double max_human_skill = 0.98;
  /// Per-feedback skill gain toward the ceiling (exponential approach).
  double skill_gain = 0.002;
  /// The machine queries the human when |margin| is below this.
  double query_margin = 0.3;
  /// Label noise of the raw environment signal the machine would
  /// otherwise learn from.
  double environment_noise = 0.25;
  uint64_t seed = 42;
};

/// Outcome of one simulated collaboration.
struct CoLearnResult {
  double model_accuracy = 0.0;     ///< on held-out examples, final model
  double final_human_skill = 0.0;
  uint64_t human_queries = 0;      ///< interaction budget consumed
  double baseline_accuracy = 0.0;  ///< machine-only (environment labels)
};

/// The interactive learning workflow of Fig. 8(c), made measurable.
///
/// A binary concept lives in feature space.  The *machine* learns an
/// online linear classifier.  The *environment* provides noisy labels
/// (weak supervision).  The *human* can be queried on uncertain examples
/// and answers correctly with probability equal to their current skill —
/// and every time the machine shows the human a confident prediction with
/// its margin (the "explanation"), the human's skill inches toward the
/// ceiling: the human learns from the model while the model learns from
/// the human.  A machine-only baseline learns from environment labels
/// alone.  E-style claim: the bidirectional loop beats both a
/// noisy-environment-only machine and a static human.
class CoLearningLoop {
 public:
  explicit CoLearningLoop(CoLearnConfig config);

  /// Runs the full simulation and returns the outcome.
  CoLearnResult Run();

 private:
  CoLearnConfig config_;
};

}  // namespace deluge::ml

#endif  // DELUGE_ML_COLEARN_H_
