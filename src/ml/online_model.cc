#include "ml/online_model.h"

#include <algorithm>
#include <cmath>

namespace deluge::ml {

OnlineLinearModel::OnlineLinearModel(size_t dim, double learning_rate)
    : weights_(dim, 0.0), lr_(learning_rate) {}

double OnlineLinearModel::Predict(const std::vector<double>& x) const {
  double y = 0.0;
  size_t n = std::min(weights_.size(), x.size());
  for (size_t i = 0; i < n; ++i) y += weights_[i] * x[i];
  return y;
}

double OnlineLinearModel::Update(const std::vector<double>& x, double y) {
  double err = Predict(x) - y;
  size_t n = std::min(weights_.size(), x.size());
  for (size_t i = 0; i < n; ++i) {
    weights_[i] -= lr_ * err * x[i];
  }
  ++updates_;
  return std::fabs(err);
}

void OnlineLinearModel::Reset() {
  std::fill(weights_.begin(), weights_.end(), 0.0);
}

PageHinkley::PageHinkley(double delta, double lambda, int min_samples)
    : delta_(delta), lambda_(lambda), min_samples_(min_samples) {}

bool PageHinkley::Observe(double value) {
  ++n_;
  mean_ += (value - mean_) / double(n_);
  cumulative_ += value - mean_ - delta_;
  min_cumulative_ = std::min(min_cumulative_, cumulative_);
  if (n_ >= min_samples_ && cumulative_ - min_cumulative_ > lambda_) {
    ++detections_;
    mean_ = 0.0;
    cumulative_ = 0.0;
    min_cumulative_ = 0.0;
    n_ = 0;
    return true;
  }
  return false;
}

AdaptiveModel::AdaptiveModel(size_t dim, double learning_rate,
                             PageHinkley detector)
    : model_(dim, learning_rate), detector_(detector) {}

double AdaptiveModel::Observe(const std::vector<double>& x, double y) {
  double err = model_.Update(x, y);
  if (detector_.Observe(err)) {
    model_.Reset();
    ++resets_;
  }
  return err;
}

}  // namespace deluge::ml
