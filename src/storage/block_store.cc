#include "storage/block_store.h"

namespace deluge::storage {

BlockStore::BlockStore(uint32_t capacity_blocks, uint32_t block_size)
    : capacity_blocks_(capacity_blocks),
      block_size_(block_size),
      blocks_(capacity_blocks),
      allocated_(capacity_blocks, false) {
  free_list_.reserve(capacity_blocks);
  // Populate so that the lowest block ids are handed out first.
  for (uint32_t i = capacity_blocks; i > 0; --i) {
    free_list_.push_back(i - 1);
  }
}

Result<uint32_t> BlockStore::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_list_.empty()) {
    return Status::ResourceExhausted("block store full");
  }
  uint32_t block = free_list_.back();
  free_list_.pop_back();
  allocated_[block] = true;
  return block;
}

Status BlockStore::Free(uint32_t block) {
  std::lock_guard<std::mutex> lock(mu_);
  if (block >= capacity_blocks_ || !allocated_[block]) {
    return Status::InvalidArgument("block not allocated");
  }
  allocated_[block] = false;
  blocks_[block].clear();
  free_list_.push_back(block);
  return Status::OK();
}

bool BlockStore::IsAllocatedLocked(uint32_t block) const {
  return block < capacity_blocks_ && allocated_[block];
}

Status BlockStore::Write(uint32_t block, std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!IsAllocatedLocked(block)) {
    return Status::InvalidArgument("write to unallocated block");
  }
  if (data.size() > block_size_) {
    return Status::InvalidArgument("data exceeds block size");
  }
  std::string& b = blocks_[block];
  b.assign(data);
  b.resize(block_size_, '\0');
  return Status::OK();
}

Status BlockStore::Read(uint32_t block, std::string* data) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!IsAllocatedLocked(block)) {
    return Status::InvalidArgument("read from unallocated block");
  }
  const std::string& b = blocks_[block];
  if (b.empty()) {
    data->assign(block_size_, '\0');  // never-written block reads as zeros
  } else {
    *data = b;
  }
  return Status::OK();
}

uint32_t BlockStore::allocated_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_blocks_ - static_cast<uint32_t>(free_list_.size());
}

}  // namespace deluge::storage
