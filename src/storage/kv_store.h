#ifndef DELUGE_STORAGE_KV_STORE_H_
#define DELUGE_STORAGE_KV_STORE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/qos.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "storage/block_cache.h"
#include "storage/fault_injection.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace deluge::storage {

/// Construction-time configuration for a `KVStore`.
struct KVStoreOptions {
  /// Directory for WAL, SSTables, and the manifest (created if missing).
  std::string dir;
  /// Memtable flush threshold in bytes (must be positive).
  size_t memtable_max_bytes = 4u << 20;
  /// Number of L0 files that triggers a merge into L1 (must be positive).
  int l0_compaction_trigger = 4;
  /// L1 output tables roll to a new file at this data size (must be
  /// positive).  Bounds both per-table size (so compactions can pick
  /// overlapping tables instead of rewriting one giant run) and the
  /// streaming builder's memory.
  uint64_t l1_target_table_bytes = 2u << 20;
  /// Upper bound on concurrent per-key-range sub-compactions within one
  /// compaction (must be positive).  The effective count also scales
  /// with input size — small merges stay single-table, single-threaded.
  int max_subcompactions = 4;
  /// fdatasync the WAL on every commit (durability vs throughput).
  bool sync_wal = false;
  /// Bloom filter density for new SSTables (must be positive).
  int bloom_bits_per_key = 10;
  /// Block-cache budget for SSTable read chunks; 0 disables the cache.
  size_t block_cache_bytes = 8u << 20;
  /// When true (default), concurrent committers join a leader/follower
  /// commit group: one WAL write + one fdatasync covers the batch.
  /// False forces per-write commit (the ablation knob for E19).
  bool group_commit = true;
  /// Pool running background flushes and compactions.  Not owned; must
  /// outlive the store.  When null the store runs a private 2-thread
  /// pool.
  ThreadPool* background_pool = nullptr;
  /// Test hook: fault injector for SSTable builds (flush/compaction
  /// output files).  Not owned.
  IoFaultInjector* table_faults = nullptr;
};

/// Per-write options.  The QoS class maps onto the group-commit vs
/// async-ack durability split (DESIGN.md §13): classes whose policy row
/// sets `durable_commit` (kTelemetry by default) force the commit
/// group's WAL sync even when the store runs `sync_wal = false`, while
/// other classes ride the store default.  One durable writer in a
/// commit group upgrades the whole group — followers get durability for
/// free, the group still pays at most one fdatasync.
struct WriteOptions {
  QosClass qos = QosClass::kBulk;
  /// Policy table consulted for `durable_commit`; null = process default.
  const QosPolicy* policy = nullptr;

  bool WantsSync() const {
    return (policy != nullptr ? *policy : QosPolicy::Default())
        .target(qos)
        .durable_commit;
  }
};

/// Operational counters (a consistent-enough snapshot; internally the
/// store keeps these as atomics so readers never take the write lock).
struct KVStoreStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_compacted = 0;
  /// Logical bytes flushed from memtables into L0 — the write-amp
  /// denominator (storage.write_amp = bytes_compacted / bytes_flushed).
  uint64_t bytes_flushed = 0;
  /// Physical SSTable bytes written per level (storage.l0_write_bytes /
  /// storage.l1_write_bytes).  L0 is flush output, L1 is compaction
  /// output; their sum is the total table-file write traffic, and the
  /// L1 share is the rewrite cost leveled compaction pays for read
  /// locality.
  uint64_t l0_write_bytes = 0;
  uint64_t l1_write_bytes = 0;
  /// Per-key-range compaction slices executed (>= compactions; the gap
  /// is the parallelism the range partitioning bought).
  uint64_t subcompactions = 0;
  /// Commit groups whose leader had to stall for a memtable slot.
  uint64_t write_stalls = 0;
  /// Total time commit leaders spent stalled waiting for a memtable
  /// slot, in microseconds.
  uint64_t stall_time_us = 0;
  /// WAL sync calls actually issued (vs commits: the group-commit win).
  uint64_t wal_syncs = 0;
  /// Block-cache counters (zero when the cache is disabled).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Aggregate SSTable probe counters across live tables.
  uint64_t bloom_negatives = 0;
  uint64_t disk_probes = 0;
  /// Registry-backed filter effectiveness (storage.bloom_checks /
  /// storage.bloom_useful): filters consulted, and consultations that
  /// skipped a disk probe.  Unlike the per-table counters above, these
  /// survive table deletion, so they are the E19 reporting source.
  uint64_t bloom_checks = 0;
  uint64_t bloom_useful = 0;
};

/// A batch of writes applied atomically (one commit, one WAL sync, one
/// CRC-covered WAL record — recovery replays the batch all-or-nothing,
/// never a prefix).  Cheap to build; reusable after `Clear`.
class WriteBatch {
 public:
  void Put(std::string_view key, std::string_view value) {
    ops_.push_back(Op{ValueType::kValue, std::string(key),
                     std::string(value)});
    bytes_ += key.size() + value.size() + 16;
  }
  void Delete(std::string_view key) {
    ops_.push_back(Op{ValueType::kTombstone, std::string(key), ""});
    bytes_ += key.size() + 16;
  }
  size_t count() const { return ops_.size(); }
  size_t approximate_bytes() const { return bytes_; }
  void Clear() {
    ops_.clear();
    bytes_ = 0;
  }

 private:
  friend class KVStore;
  struct Op {
    ValueType type;
    std::string key;
    std::string value;
  };
  std::vector<Op> ops_;
  size_t bytes_ = 0;
};

/// A log-structured merge key-value store — Deluge's durable "KV store"
/// tier from the disaggregated cloud-storage layer (Fig. 7 of the paper).
///
/// Two levels, leveled-compaction style: L0 holds flushed memtables
/// (possibly overlapping, searched newest-first); L1 is a range
/// partition — multiple bounded SSTables, sorted by key range and
/// non-overlapping, so a point read probes at most one of them (binary
/// search on the ranges).  When L0 reaches the trigger, compaction picks
/// the whole L0 set plus only the L1 tables whose ranges overlap it,
/// streams a k-way merge (O(k) memory, never O(DB)), drops shadowed
/// versions and tombstones, and splits large merges into per-key-range
/// sub-compactions that run in parallel on the background pool.  L1
/// tables outside the overlap are untouched — write amplification
/// tracks overlap size, not database size.
/// Crash recovery replays the WAL into a fresh memtable; the MANIFEST
/// file records the live table set (with L1 key ranges) atomically
/// (write-temp + rename) and still reads the older single-run format.
/// WAL framing and the SSTable data/index regions are byte-compatible
/// with the serial engine; SSTable footers gained a version that
/// persists the key range (old tables still open).
///
/// Thread-safety: all public methods are safe to call concurrently.
/// Writers join a leader/follower commit group (one WAL append + at most
/// one fdatasync per group); full memtables are handed to a background
/// pool for flushing while writers continue into a fresh memtable
/// (bounded stall when both memtables are full); L0→L1 compaction runs
/// off the write path and installs its result under a short critical
/// section.  `Get`s probe the memtables under the mutex but read
/// SSTables outside it via positional I/O and the shared block cache.
/// See DESIGN.md §8 "Storage concurrency model".
class KVStore {
 public:
  static constexpr SequenceNumber kMaxSequence = ~SequenceNumber{0};

  /// Opens (or creates) a store in `options.dir`, recovering any previous
  /// state from the manifest and WAL(s) — including completing a flush
  /// that was interrupted by a crash.  Rejects invalid options with
  /// InvalidArgument.
  static Result<std::unique_ptr<KVStore>> Open(const KVStoreOptions& options);

  /// Drains in-flight background flush/compaction before closing.
  ~KVStore();
  KVStore(const KVStore&) = delete;
  KVStore& operator=(const KVStore&) = delete;

  Status Put(std::string_view key, std::string_view value,
             const WriteOptions& opts = {});
  Status Delete(std::string_view key, const WriteOptions& opts = {});

  /// Commits every operation in `batch` atomically: one commit-group
  /// slot, one WAL append, at most one sync.  `opts.qos` decides
  /// durability (see `WriteOptions`) and which `{qos=...}` commit
  /// histogram the latency lands in.
  Status Write(const WriteBatch& batch, const WriteOptions& opts = {});

  /// Point lookup of the newest visible version.
  Status Get(std::string_view key, std::string* value);

  /// Seals the memtable and waits for its background flush to finish
  /// (no-op when empty).
  Status Flush();

  /// Flushes, then synchronously drains L0 into the leveled L1 partition
  /// (waiting out any in-flight background compaction first).  Small
  /// stores end up as one L1 table; larger ones as several bounded,
  /// non-overlapping tables.
  Status CompactAll();

  /// A merged snapshot scan over the whole store in key order, newest
  /// version per key, tombstones elided.  The iterator materializes the
  /// merge at creation time and stays valid independent of later writes.
  class Iterator {
   public:
    bool Valid() const { return pos_ < entries_.size(); }
    void Next() { ++pos_; }
    const std::string& key() const { return entries_[pos_].user_key; }
    const std::string& value() const { return entries_[pos_].value; }
    void Seek(std::string_view key);
    void SeekToFirst() { pos_ = 0; }

   private:
    friend class KVStore;
    std::vector<InternalEntry> entries_;
    size_t pos_ = 0;
  };

  /// Creates a snapshot iterator (O(total entries) at creation).
  Iterator NewIterator();

  KVStoreStats stats() const;
  size_t l0_file_count() const;
  size_t l1_file_count() const;
  SequenceNumber last_sequence() const;
  const BlockCache* block_cache() const { return block_cache_.get(); }

 private:
  explicit KVStore(const KVStoreOptions& options);

  /// One queued committer (or a seal request when `batch` is null).
  /// The front of `writers_` is the group leader; followers sleep on
  /// their own cv until the leader commits for them.
  struct Writer {
    explicit Writer(const WriteBatch* b, QosClass q = QosClass::kBulk,
                    bool s = false)
        : batch(b), qos(q), sync(s) {}
    const WriteBatch* batch;
    QosClass qos;
    bool sync;  ///< this writer's class requires a durable commit
    Status status;
    bool done = false;
    std::condition_variable cv;
  };

  Status Recover();
  /// Joins the commit queue; leaders commit the whole group.
  Status CommitWriter(Writer* w);
  /// Leader-only, mu_ held: ensures the memtable has room, sealing a
  /// full one to imm_ (rotating the WAL) and stalling — bounded by the
  /// background flush — when both memtables are full.  With
  /// `force_seal`, seals a non-empty memtable regardless of size.
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock,
                          bool force_seal);
  /// mu_ held, imm_ empty: wal.log -> wal.imm.log, fresh wal.log,
  /// mem_ -> imm_, schedules the background flush.
  Status SealMemtableLocked();
  void ScheduleBackground(void (KVStore::*method)());
  void BackgroundFlushTask();
  void BackgroundCompactTask();
  Status DoFlush();
  Status DoCompaction();
  void MaybeScheduleCompactionLocked();
  Status WriteManifestLocked();
  /// Refreshes the per-level table-count gauges (mu_ held).
  void UpdateLevelGaugesLocked();
  /// Publishes bytes_compacted / bytes_flushed to the write_amp gauge.
  void UpdateWriteAmpGauge();
  /// Streams a memtable into a new SSTable via the incremental builder
  /// (sorted scan, no materialized entry vector).  On success the table
  /// has the registry probe counters attached and `*logical_bytes`
  /// holds the entries' logical size (the write-amp denominator).
  Result<std::shared_ptr<SSTable>> BuildTableFromMemtable(
      MemTable* mem, uint64_t file_number, IoFaultInjector* faults,
      uint64_t* logical_bytes);
  /// Deletes *.sst files in dir not referenced by the manifest (wreckage
  /// of flushes/compactions that crashed mid-build).
  void RemoveOrphanTablesLocked();
  std::string TableFileName(uint64_t number) const;
  std::string WalPath() const { return options_.dir + "/wal.log"; }
  std::string ImmWalPath() const { return options_.dir + "/wal.imm.log"; }

  /// Sorts + dedupes gathered entries, newest version per key.  When
  /// `drop_tombstones` is set, deletion markers are elided (legal only
  /// when merging the complete table set).
  static std::vector<InternalEntry> MergeEntries(
      std::vector<InternalEntry> all, bool drop_tombstones);
  /// Gathers mem_ + imm_ + all tables (mu_ held).
  std::vector<InternalEntry> GatherAllLocked() const;

  KVStoreOptions options_;

  // Lock hierarchy: mu_ protects all mutable state below; the WAL is
  // written only by the current commit-group leader (queue leadership
  // substitutes for a lock, so the append+sync runs with mu_ released);
  // background tasks reacquire mu_ only for state installs.
  mutable std::mutex mu_;
  std::deque<Writer*> writers_;        // commit queue; front = leader
  std::condition_variable bg_cv_;      // flush/compaction completion
  std::unique_ptr<MemTable> mem_;      // mutable memtable
  std::shared_ptr<MemTable> imm_;      // sealed, being flushed (or null)
  WriteAheadLog wal_;                  // covers mem_; imm_ is covered by
                                       // wal.imm.log until its flush lands
  // l0_: newest-first flushed memtables (ranges may overlap).
  // l1_: the leveled partition — ascending by min_key, ranges disjoint;
  // compactions splice sub-ranges of it, reads binary-search it.
  std::deque<std::shared_ptr<SSTable>> l0_;
  std::vector<std::shared_ptr<SSTable>> l1_;
  SequenceNumber next_seq_ = 1;
  uint64_t next_file_number_ = 1;
  // flush_scheduled_ means "exactly one flush task is queued or running
  // and owns imm_"; it is set where the task is scheduled and cleared
  // only by DoFlush, in the same critical sections that change imm_.
  bool flush_scheduled_ = false;
  bool compaction_running_ = false;
  // Background task bodies in flight (incremented at Submit under mu_,
  // decremented as the task's last act); the destructor waits on this,
  // not on the flags above, so it cannot race a task's tail.
  int bg_inflight_ = 0;
  bool shutting_down_ = false;
  Status bg_error_;  // sticky until the next successful flush

  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;  // == owned_pool_.get() or options pool

  // Registry-backed counters (metrics "storage.*").  The scope member
  // precedes nothing that uses it at destruction time; handles stay
  // valid for the store's lifetime.
  obs::StatsScope obs_{"storage"};
  obs::Counter* puts_ = obs_.counter("puts");
  obs::Counter* deletes_ = obs_.counter("deletes");
  obs::Counter* gets_ = obs_.counter("gets");
  obs::Counter* flushes_ = obs_.counter("flushes");
  obs::Counter* compactions_ = obs_.counter("compactions");
  obs::Counter* bytes_written_ = obs_.counter("bytes_written");
  obs::Counter* bytes_compacted_ = obs_.counter("bytes_compacted");
  obs::Counter* bytes_flushed_ = obs_.counter("bytes_flushed");
  // Physical per-level breakdown of the write-amp numerator: bytes of
  // SSTable file actually written into each level (flush outputs land
  // in L0, compaction outputs in L1).
  obs::Counter* l0_write_bytes_ = obs_.counter("l0_write_bytes");
  obs::Counter* l1_write_bytes_ = obs_.counter("l1_write_bytes");
  obs::Counter* subcompactions_ = obs_.counter("subcompactions");
  obs::Counter* write_stalls_ = obs_.counter("write_stalls");
  obs::Counter* stall_time_us_ = obs_.counter("stall_time_us");
  obs::Counter* wal_syncs_ = obs_.counter("wal_syncs");
  // Filter effectiveness, aggregated across tables (tables hold bare
  // pointers to these; the scope outlives every table the store opens).
  obs::Counter* bloom_checks_ = obs_.counter("bloom_checks");
  obs::Counter* bloom_useful_ = obs_.counter("bloom_useful");
  // Level shape and rewrite cost, refreshed at every install.
  obs::Gauge* l0_tables_ = obs_.gauge("l0_tables", obs::Gauge::Agg::kLast);
  obs::Gauge* l1_tables_ = obs_.gauge("l1_tables", obs::Gauge::Agg::kLast);
  obs::Gauge* write_amp_ = obs_.gauge("write_amp", obs::Gauge::Agg::kLast);
  // Stage-duration histograms (µs): commit covers the leader's
  // WAL-append + memtable-insert section; flush/compact cover the
  // background tasks end to end.
  obs::ConcurrentHistogram* commit_us_ = obs_.histogram("commit_us");
  obs::ConcurrentHistogram* flush_us_ = obs_.histogram("flush_us");
  obs::ConcurrentHistogram* compact_us_ = obs_.histogram("compact_us");
  // Per-class commit latency (enqueue -> committed, leaders and
  // followers alike) — the storage hop of the {qos=...} SLO accounting.
  obs::ConcurrentHistogram* commit_qos_us_[kQosClassCount] = {};
  // Commit-group syncs forced by a durable class on a sync_wal=false
  // store (vs `wal_syncs`, which counts every sync issued).
  obs::Counter* qos_forced_syncs_ = nullptr;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_KV_STORE_H_
