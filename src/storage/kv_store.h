#ifndef DELUGE_STORAGE_KV_STORE_H_
#define DELUGE_STORAGE_KV_STORE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace deluge::storage {

/// Construction-time configuration for a `KVStore`.
struct KVStoreOptions {
  /// Directory for WAL, SSTables, and the manifest (created if missing).
  std::string dir;
  /// Memtable flush threshold in bytes.
  size_t memtable_max_bytes = 4u << 20;
  /// Number of L0 files that triggers a full merge into L1.
  int l0_compaction_trigger = 4;
  /// fdatasync the WAL on every write (durability vs throughput).
  bool sync_wal = false;
  /// Bloom filter density for new SSTables.
  int bloom_bits_per_key = 10;
};

/// Operational counters.
struct KVStoreStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t gets = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_compacted = 0;
};

/// A log-structured merge key-value store — Deluge's durable "KV store"
/// tier from the disaggregated cloud-storage layer (Fig. 7 of the paper).
///
/// Two levels: L0 holds flushed memtables (possibly overlapping, searched
/// newest-first); when L0 reaches the trigger, everything merges into a
/// single sorted L1 run, dropping shadowed versions and tombstones.
/// Crash recovery replays the WAL into a fresh memtable; the MANIFEST
/// file records the live table set atomically (write-temp + rename).
///
/// Thread-safety: all public methods are safe to call concurrently (one
/// coarse mutex; flush/compaction run inline on the writing thread).
class KVStore {
 public:
  static constexpr SequenceNumber kMaxSequence = ~SequenceNumber{0};

  /// Opens (or creates) a store in `options.dir`, recovering any previous
  /// state from the manifest and WAL.
  static Result<std::unique_ptr<KVStore>> Open(const KVStoreOptions& options);

  ~KVStore() = default;
  KVStore(const KVStore&) = delete;
  KVStore& operator=(const KVStore&) = delete;

  Status Put(std::string_view key, std::string_view value);
  Status Delete(std::string_view key);

  /// Point lookup of the newest visible version.
  Status Get(std::string_view key, std::string* value);

  /// Forces the memtable to an L0 SSTable (no-op when empty).
  Status Flush();

  /// Merges all levels into a single L1 run.
  Status CompactAll();

  /// A merged snapshot scan over the whole store in key order, newest
  /// version per key, tombstones elided.  The iterator materializes the
  /// merge at creation time and stays valid independent of later writes.
  class Iterator {
   public:
    bool Valid() const { return pos_ < entries_.size(); }
    void Next() { ++pos_; }
    const std::string& key() const { return entries_[pos_].user_key; }
    const std::string& value() const { return entries_[pos_].value; }
    void Seek(std::string_view key);
    void SeekToFirst() { pos_ = 0; }

   private:
    friend class KVStore;
    std::vector<InternalEntry> entries_;
    size_t pos_ = 0;
  };

  /// Creates a snapshot iterator (O(total entries) at creation).
  Iterator NewIterator();

  KVStoreStats stats() const;
  size_t l0_file_count() const;
  size_t l1_file_count() const;
  SequenceNumber last_sequence() const;

 private:
  explicit KVStore(const KVStoreOptions& options);

  Status Recover();
  Status Write(ValueType type, std::string_view key, std::string_view value);
  Status FlushLocked();
  Status CompactLocked();
  Status WriteManifestLocked();
  std::string TableFileName(uint64_t number) const;

  /// Merges the given sorted sources into a deduplicated entry list.
  /// When `drop_tombstones` is set, deletion markers are elided (legal
  /// only at the bottom level).
  std::vector<InternalEntry> MergeAllLocked(bool drop_tombstones,
                                            bool keep_all_versions) const;

  KVStoreOptions options_;
  mutable std::mutex mu_;
  std::unique_ptr<MemTable> mem_;
  WriteAheadLog wal_;
  // levels_[0]: newest-first L0 tables; levels_[1]: single merged run.
  std::deque<std::shared_ptr<SSTable>> l0_;
  std::vector<std::shared_ptr<SSTable>> l1_;
  SequenceNumber next_seq_ = 1;
  uint64_t next_file_number_ = 1;
  KVStoreStats stats_;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_KV_STORE_H_
