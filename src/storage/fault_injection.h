#ifndef DELUGE_STORAGE_FAULT_INJECTION_H_
#define DELUGE_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace deluge::storage {

/// Injection points for storage I/O faults.
///
/// A `WriteAheadLog` (and `SSTable::Build`) consults its injector, when
/// one is installed, before touching the file system — the chaos analogue
/// of the network fault hooks.  The default implementation injects
/// nothing, so production paths pay one null check.
class IoFaultInjector {
 public:
  virtual ~IoFaultInjector() = default;

  /// Called before writing a `frame_bytes`-byte frame.  Returning fewer
  /// bytes makes the write torn: the prefix reaches the file, then the
  /// write fails — what a crash mid-`write(2)` leaves behind.
  virtual size_t BeforeWrite(size_t frame_bytes) { return frame_bytes; }

  /// True to fail a sync (fdatasync) without performing it.
  virtual bool FailSync() { return false; }
};

/// A scripted injector: arm a fault N operations in advance.
///
/// Counters record what actually fired so tests can assert the fault
/// took effect (an injection test that silently injects nothing is
/// worse than no test).
///
/// Thread-safe: parallel sub-compactions share one injector, so the
/// countdown and counters are guarded — exactly one writer tears even
/// when several race through `BeforeWrite` concurrently.
class ScriptedIoFaults : public IoFaultInjector {
 public:
  /// The (n+1)-th write from now is torn to `keep_bytes` bytes.
  void TearWriteAfter(int n, size_t keep_bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    tear_countdown_ = n;
    tear_keep_bytes_ = keep_bytes;
  }
  /// The (n+1)-th sync from now fails.
  void FailSyncAfter(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    sync_countdown_ = n;
  }

  size_t BeforeWrite(size_t frame_bytes) override;
  bool FailSync() override;

  uint64_t torn_writes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return torn_writes_;
  }
  uint64_t failed_syncs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return failed_syncs_;
  }

 private:
  mutable std::mutex mu_;
  int tear_countdown_ = -1;
  size_t tear_keep_bytes_ = 0;
  int sync_countdown_ = -1;
  uint64_t torn_writes_ = 0;
  uint64_t failed_syncs_ = 0;
};

// --- Crash-wreckage helpers -------------------------------------------
//
// Post-hoc file corruption for recovery tests: truncate a log mid-record,
// flip payload bytes, corrupt a length prefix.  These operate on closed
// files, simulating what is found on disk after power loss or bit rot.

/// Size of `path` in bytes.
Result<uint64_t> FileSize(const std::string& path);

/// Truncates `path` to `new_size` bytes.
Status TruncateFile(const std::string& path, uint64_t new_size);

/// XORs the byte at `offset` with `mask` (default flips every bit).
Status FlipByte(const std::string& path, uint64_t offset,
                uint8_t mask = 0xFF);

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_FAULT_INJECTION_H_
