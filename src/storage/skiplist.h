#ifndef DELUGE_STORAGE_SKIPLIST_H_
#define DELUGE_STORAGE_SKIPLIST_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace deluge::storage {

/// A sorted in-memory map implemented as a skip list — the classic
/// memtable structure (LevelDB/RocksDB lineage).
///
/// `Key` must be copyable; `Comparator` is a stateless functor returning
/// <0, 0, >0.  The list stores keys only; callers embed values inside the
/// key type (the memtable stores encoded key+seq+value records).
///
/// Thread-safety: external synchronization required (the `MemTable` that
/// owns it holds the store mutex).  Memory: nodes are heap-allocated and
/// freed on destruction; no arena is needed at simulation scale.
template <typename Key, typename Comparator>
class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  explicit SkipList(Comparator cmp = Comparator(), uint64_t seed = 0xD5)
      : cmp_(cmp), rng_(seed), head_(NewNode(Key{}, kMaxHeight)) {}

  ~SkipList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts `key`.  Duplicate keys (comparator == 0) are allowed and kept
  /// in insertion order after existing equals; the memtable avoids true
  /// duplicates by embedding a unique sequence number in each key.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    FindGreaterOrEqual(key, prev);
    int height = RandomHeight();
    if (height > height_) {
      for (int i = height_; i < height; ++i) prev[i] = head_;
      height_ = height;
    }
    Node* n = NewNode(key, height);
    for (int i = 0; i < height; ++i) {
      n->next[i] = prev[i]->next[i];
      prev[i]->next[i] = n;
    }
    ++size_;
  }

  /// True if an exactly-equal key exists.
  bool Contains(const Key& key) const {
    Node* n = FindGreaterOrEqual(key, nullptr);
    return n != nullptr && cmp_(n->key, key) == 0;
  }

  size_t size() const { return size_; }

  /// Forward iterator over keys in sorted order.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list)
        : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }
    const Key& key() const { return node_->key; }
    void Next() { node_ = node_->next[0]; }

    /// Positions at the first key >= target.
    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->next[0]; }

   private:
    const SkipList* list_;
    const typename SkipList::Node* node_;
  };

 private:
  struct Node {
    Key key;
    std::vector<Node*> next;
    Node(const Key& k, int height) : key(k), next(height, nullptr) {}
  };

  static Node* NewNode(const Key& key, int height) {
    return new Node(key, height);
  }

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && rng_.Bernoulli(0.25)) ++h;
    return h;
  }

  /// Returns first node >= key; fills prev[] (one per level) when non-null.
  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = height_ - 1;
    for (;;) {
      Node* next = x->next[level];
      if (next != nullptr && cmp_(next->key, key) < 0) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        --level;
      }
    }
  }

  Comparator cmp_;
  Rng rng_;
  Node* head_;
  int height_ = 1;
  size_t size_ = 0;

  friend class Iterator;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_SKIPLIST_H_
