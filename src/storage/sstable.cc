#include "storage/sstable.h"

#include <cerrno>
#include <cstring>

namespace deluge::storage {

namespace {

// Appends one data-region record for `e` to `out`.
void EncodeEntry(const InternalEntry& e, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(e.user_key.size()));
  out->append(e.user_key);
  PutFixed64(out, e.seq);
  out->push_back(static_cast<char>(e.type));
  PutVarint32(out, static_cast<uint32_t>(e.value.size()));
  out->append(e.value);
}

}  // namespace

SSTable::~SSTable() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::shared_ptr<SSTable>> SSTable::Build(
    const std::string& path, const std::vector<InternalEntry>& entries,
    int bloom_bits_per_key, IoFaultInjector* faults) {
  std::string data;
  std::string index;
  uint64_t index_count = 0;
  BloomFilter bloom(entries.size(), bloom_bits_per_key);

  for (size_t i = 0; i < entries.size(); ++i) {
    if (i % kIndexInterval == 0) {
      PutVarint32(&index, static_cast<uint32_t>(entries[i].user_key.size()));
      index.append(entries[i].user_key);
      PutFixed64(&index, data.size());
      ++index_count;
    }
    bloom.Add(entries[i].user_key);
    EncodeEntry(entries[i], &data);
  }

  const std::string bloom_bytes = bloom.Serialize();
  std::string footer;
  PutFixed64(&footer, data.size());                       // index_off
  PutFixed64(&footer, index_count);                       // index_count
  PutFixed64(&footer, data.size() + index.size());        // bloom_off
  PutFixed64(&footer, bloom_bytes.size());                // bloom_len
  PutFixed64(&footer, entries.size());                    // entry_count
  PutFixed64(&footer, kMagic);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create SSTable " + path + ": " +
                           std::strerror(errno));
  }
  std::string file_bytes = data + index + bloom_bytes + footer;
  size_t to_write = file_bytes.size();
  if (faults != nullptr) to_write = faults->BeforeWrite(file_bytes.size());
  bool ok =
      std::fwrite(file_bytes.data(), 1, to_write, f) == to_write &&
      to_write == file_bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return Status::IOError("SSTable write failed: " + path);
  return Open(path);
}

Result<std::shared_ptr<SSTable>> SSTable::Open(const std::string& path) {
  auto table = std::shared_ptr<SSTable>(new SSTable());
  table->path_ = path;
  table->file_ = std::fopen(path.c_str(), "rb");
  if (table->file_ == nullptr) {
    return Status::IOError("cannot open SSTable " + path);
  }
  Status s = table->LoadFooterAndIndex();
  if (!s.ok()) return s;
  return table;
}

Status SSTable::LoadFooterAndIndex() {
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed");
  }
  long file_len = std::ftell(file_);
  if (file_len < 48) return Status::Corruption("SSTable too small: " + path_);

  char footer_buf[48];
  std::fseek(file_, file_len - 48, SEEK_SET);
  if (std::fread(footer_buf, 1, 48, file_) != 48) {
    return Status::IOError("footer read failed");
  }
  std::string_view fv(footer_buf, 48);
  uint64_t index_off, index_count, bloom_off, bloom_len, magic;
  GetFixed64(&fv, &index_off);
  GetFixed64(&fv, &index_count);
  GetFixed64(&fv, &bloom_off);
  GetFixed64(&fv, &bloom_len);
  GetFixed64(&fv, &entry_count_);
  GetFixed64(&fv, &magic);
  if (magic != kMagic) return Status::Corruption("bad magic in " + path_);
  data_end_ = index_off;

  // Index block.
  const uint64_t index_len = bloom_off - index_off;
  std::string index_bytes(index_len, '\0');
  std::fseek(file_, long(index_off), SEEK_SET);
  if (std::fread(index_bytes.data(), 1, index_len, file_) != index_len) {
    return Status::IOError("index read failed");
  }
  std::string_view iv(index_bytes);
  index_.clear();
  index_.reserve(index_count);
  for (uint64_t i = 0; i < index_count; ++i) {
    uint32_t klen = 0;
    if (!GetVarint32(&iv, &klen) || iv.size() < klen + 8) {
      return Status::Corruption("bad index entry in " + path_);
    }
    IndexEntry e;
    e.key.assign(iv.substr(0, klen));
    iv.remove_prefix(klen);
    GetFixed64(&iv, &e.offset);
    index_.push_back(std::move(e));
  }
  if (!index_.empty()) min_key_ = index_.front().key;

  // Bloom block.
  std::string bloom_bytes(bloom_len, '\0');
  std::fseek(file_, long(bloom_off), SEEK_SET);
  if (std::fread(bloom_bytes.data(), 1, bloom_len, file_) != bloom_len) {
    return Status::IOError("bloom read failed");
  }
  bloom_ = BloomFilter::Deserialize(bloom_bytes);

  // Max key: read the last entry (scan from last index point).
  if (entry_count_ > 0 && !index_.empty()) {
    Iterator it(this);
    it.Seek(index_.back().key);
    std::string last;
    while (it.Valid()) {
      last = it.entry().user_key;
      it.Next();
    }
    max_key_ = last;
  }
  return Status::OK();
}

Status SSTable::Get(std::string_view key, SequenceNumber snapshot,
                    InternalEntry* entry) const {
  if (index_.empty()) return Status::NotFound();
  if (!bloom_.MayContain(key)) {
    ++bloom_negative_count;
    return Status::NotFound();
  }
  ++disk_probe_count;
  Iterator it(this);
  it.Seek(key);
  while (it.Valid() && it.entry().user_key == key) {
    if (it.entry().seq <= snapshot) {
      *entry = it.entry();
      return Status::OK();
    }
    it.Next();
  }
  return Status::NotFound();
}

// ------------------------------------------------------------- Iterator

SSTable::Iterator::Iterator(const SSTable* table) : table_(table) {}

void SSTable::Iterator::SeekToFirst() {
  next_offset_ = 0;
  valid_ = false;
  Next();
}

void SSTable::Iterator::Seek(std::string_view key) {
  // Binary search for the last index point with key strictly < target,
  // then scan forward.  Strict: an index point whose key EQUALS the
  // target may be preceded by newer versions of the same user key at the
  // tail of the previous block (entries sort by (key asc, seq desc)), so
  // the scan must start one block earlier.
  const auto& idx = table_->index_;
  if (idx.empty()) {
    valid_ = false;
    return;
  }
  size_t lo = 0, hi = idx.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (idx[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t start = lo > 0 ? lo - 1 : 0;
  next_offset_ = idx[start].offset;
  valid_ = false;
  Next();
  while (valid_ && current_.user_key < key) Next();
}

void SSTable::Iterator::Next() {
  if (next_offset_ >= table_->data_end_) {
    valid_ = false;
    return;
  }
  valid_ = ReadEntryAt(next_offset_);
}

bool SSTable::Iterator::ReadEntryAt(uint64_t offset) {
  // Read a bounded chunk covering at least one record.  Records are
  // small (keys/values bounded by chunking at higher layers); 64 KB
  // covers typical entries, and we retry with a larger read if needed.
  std::FILE* f = table_->file_;
  size_t want = 64 * 1024;
  std::string buf;
  for (int attempt = 0; attempt < 4; ++attempt) {
    size_t avail = size_t(table_->data_end_ - offset);
    want = std::min(want, avail);
    buf.resize(want);
    std::fseek(f, long(offset), SEEK_SET);
    size_t got = std::fread(buf.data(), 1, want, f);
    buf.resize(got);
    std::string_view v(buf);
    uint32_t klen = 0;
    std::string_view rest = v;
    if (GetVarint32(&rest, &klen) && rest.size() >= klen + 9) {
      std::string_view key = rest.substr(0, klen);
      rest.remove_prefix(klen);
      uint64_t seq = 0;
      GetFixed64(&rest, &seq);
      uint8_t type = static_cast<uint8_t>(rest.front());
      rest.remove_prefix(1);
      uint32_t vlen = 0;
      if (GetVarint32(&rest, &vlen) && rest.size() >= vlen) {
        current_.user_key.assign(key);
        current_.seq = seq;
        current_.type = static_cast<ValueType>(type);
        current_.value.assign(rest.substr(0, vlen));
        rest.remove_prefix(vlen);
        // Bytes consumed from the chunk = v.size() - rest.size().
        next_offset_ = offset + (v.size() - rest.size());
        return true;
      }
    }
    if (got >= avail) return false;  // truncated record at data end
    want *= 4;                       // record larger than buffer; retry
  }
  return false;
}

}  // namespace deluge::storage
