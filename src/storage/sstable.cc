#include "storage/sstable.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace deluge::storage {

namespace {

// Process-unique reader ids: the block-cache namespace.  Never reused,
// so cache entries of a deleted table can't alias a newly opened one.
std::atomic<uint64_t> g_next_table_id{1};

// Appends one data-region record for `e` to `out`.
void EncodeEntry(const InternalEntry& e, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(e.user_key.size()));
  out->append(e.user_key);
  PutFixed64(out, e.seq);
  out->push_back(static_cast<char>(e.type));
  PutVarint32(out, static_cast<uint32_t>(e.value.size()));
  out->append(e.value);
}

}  // namespace

SSTable::~SSTable() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::shared_ptr<SSTable>> SSTable::Build(
    const std::string& path, const std::vector<InternalEntry>& entries,
    int bloom_bits_per_key, IoFaultInjector* faults, BlockCache* cache) {
  SSTableBuilder builder(path, bloom_bits_per_key, faults);
  for (const auto& e : entries) {
    Status s = builder.Add(e);
    if (!s.ok()) return s;
  }
  return builder.Finish(cache);
}

Result<std::shared_ptr<SSTable>> SSTable::Open(const std::string& path,
                                               BlockCache* cache) {
  auto table = std::shared_ptr<SSTable>(new SSTable());
  table->path_ = path;
  table->table_id_ = g_next_table_id.fetch_add(1, std::memory_order_relaxed);
  table->cache_ = cache;
  table->fd_ = ::open(path.c_str(), O_RDONLY);
  if (table->fd_ < 0) {
    return Status::IOError("cannot open SSTable " + path);
  }
  Status s = table->LoadFooterAndIndex();
  if (!s.ok()) return s;
  return table;
}

Status SSTable::ReadAt(uint64_t offset, size_t n, char* dst) const {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::pread(fd_, dst + got, n - got, off_t(offset + got));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("pread failed on " + path_ + ": " +
                             std::strerror(errno));
    }
    if (r == 0) return Status::IOError("short read on " + path_);
    got += size_t(r);
  }
  return Status::OK();
}

Status SSTable::LoadFooterAndIndex() {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError("fstat failed on " + path_);
  }
  uint64_t file_len = uint64_t(st.st_size);
  if (file_len < 48) return Status::Corruption("SSTable too small: " + path_);

  // The last word is the magic in both formats; it selects the footer
  // shape before anything else is parsed.
  char magic_buf[8];
  Status s = ReadAt(file_len - 8, 8, magic_buf);
  if (!s.ok()) return s;
  uint64_t magic = 0;
  {
    std::string_view mv(magic_buf, 8);
    GetFixed64(&mv, &magic);
  }
  const bool v2 = magic == kMagicV2;
  if (!v2 && magic != kMagic) {
    return Status::Corruption("bad magic in " + path_);
  }

  uint64_t index_off = 0, index_count = 0, bloom_off = 0, bloom_len = 0;
  uint64_t range_off = 0;
  const uint64_t footer_len = v2 ? 56 : 48;
  if (file_len < footer_len) {
    return Status::Corruption("SSTable too small: " + path_);
  }
  char footer_buf[56];
  s = ReadAt(file_len - footer_len, footer_len, footer_buf);
  if (!s.ok()) return s;
  std::string_view fv(footer_buf, footer_len);
  GetFixed64(&fv, &index_off);
  GetFixed64(&fv, &index_count);
  GetFixed64(&fv, &bloom_off);
  GetFixed64(&fv, &bloom_len);
  if (v2) GetFixed64(&fv, &range_off);
  GetFixed64(&fv, &entry_count_);
  if (!v2) range_off = file_len - footer_len;  // degenerate: empty block
  if (index_off > bloom_off || bloom_off + bloom_len > range_off ||
      range_off + footer_len > file_len) {
    return Status::Corruption("bad footer offsets in " + path_);
  }
  data_end_ = index_off;

  // Index block.
  const uint64_t index_len = bloom_off - index_off;
  std::string index_bytes(index_len, '\0');
  s = ReadAt(index_off, index_len, index_bytes.data());
  if (!s.ok()) return s;
  std::string_view iv(index_bytes);
  index_.clear();
  index_.reserve(index_count);
  for (uint64_t i = 0; i < index_count; ++i) {
    uint32_t klen = 0;
    if (!GetVarint32(&iv, &klen) || iv.size() < klen + 8) {
      return Status::Corruption("bad index entry in " + path_);
    }
    IndexEntry e;
    e.key.assign(iv.substr(0, klen));
    iv.remove_prefix(klen);
    GetFixed64(&iv, &e.offset);
    index_.push_back(std::move(e));
  }
  if (!index_.empty()) min_key_ = index_.front().key;

  // Bloom block.
  std::string bloom_bytes(bloom_len, '\0');
  s = ReadAt(bloom_off, bloom_len, bloom_bytes.data());
  if (!s.ok()) return s;
  bloom_ = BloomFilter::Deserialize(bloom_bytes);

  if (v2) {
    // Range block: the key range is persisted, so v2 tables open
    // without touching the data region at all.
    const uint64_t range_len = file_len - footer_len - range_off;
    std::string range_bytes(range_len, '\0');
    s = ReadAt(range_off, range_len, range_bytes.data());
    if (!s.ok()) return s;
    std::string_view rv(range_bytes);
    uint32_t klen = 0;
    if (!GetVarint32(&rv, &klen) || rv.size() < klen) {
      return Status::Corruption("bad range block in " + path_);
    }
    min_key_.assign(rv.substr(0, klen));
    rv.remove_prefix(klen);
    if (!GetVarint32(&rv, &klen) || rv.size() < klen) {
      return Status::Corruption("bad range block in " + path_);
    }
    max_key_.assign(rv.substr(0, klen));
    return Status::OK();
  }

  // v1 (legacy) tables carry no range block: recover the max key by
  // scanning forward from the last index point.  This per-open tail
  // scan is exactly what the v2 format exists to remove.
  if (entry_count_ > 0 && !index_.empty()) {
    Iterator it(this);
    it.Seek(index_.back().key);
    std::string last;
    while (it.Valid()) {
      last = it.entry().user_key;
      it.Next();
    }
    if (!it.status().ok()) return it.status();
    max_key_ = last;
  }
  return Status::OK();
}

std::vector<std::string> SSTable::IndexSampleKeys(size_t max_samples) const {
  std::vector<std::string> out;
  if (max_samples == 0 || index_.empty()) return out;
  const size_t n = std::min(max_samples, index_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(index_[i * index_.size() / n].key);
  }
  return out;
}

BlockCache::ChunkPtr SSTable::ReadChunk(uint64_t chunk_index,
                                        Status* status) const {
  uint64_t offset = chunk_index * kReadChunkSize;
  if (offset >= data_end_) return nullptr;
  if (cache_ != nullptr) {
    auto chunk = cache_->Lookup(table_id_, chunk_index);
    if (chunk != nullptr) return chunk;
  }
  size_t n = size_t(std::min<uint64_t>(kReadChunkSize, data_end_ - offset));
  auto chunk = std::make_shared<std::string>(n, '\0');
  Status s = ReadAt(offset, n, chunk->data());
  if (!s.ok()) {
    if (status != nullptr) *status = s;
    return nullptr;
  }
  if (cache_ != nullptr) cache_->Insert(table_id_, chunk_index, chunk);
  return chunk;
}

Status SSTable::Get(std::string_view key, SequenceNumber snapshot,
                    InternalEntry* entry) const {
  if (index_.empty()) return Status::NotFound();
  if (bloom_checks_ != nullptr) bloom_checks_->Increment();
  if (!bloom_.MayContain(key)) {
    bloom_negative_count.fetch_add(1, std::memory_order_relaxed);
    if (bloom_useful_ != nullptr) bloom_useful_->Increment();
    return Status::NotFound();
  }
  disk_probe_count.fetch_add(1, std::memory_order_relaxed);
  Iterator it(this);
  it.Seek(key);
  while (it.Valid() && it.entry().user_key == key) {
    if (it.entry().seq <= snapshot) {
      *entry = it.entry();
      return Status::OK();
    }
    it.Next();
  }
  // An I/O error mid-probe must not masquerade as NotFound: the key may
  // well be in the unreadable region.
  if (!it.status().ok()) return it.status();
  return Status::NotFound();
}

// ------------------------------------------------------------- Iterator

SSTable::Iterator::Iterator(const SSTable* table) : table_(table) {}

void SSTable::Iterator::SeekToFirst() {
  next_offset_ = 0;
  valid_ = false;
  status_ = Status::OK();
  Next();
}

void SSTable::Iterator::Seek(std::string_view key) {
  // Binary search for the last index point with key strictly < target,
  // then scan forward.  Strict: an index point whose key EQUALS the
  // target may be preceded by newer versions of the same user key at the
  // tail of the previous block (entries sort by (key asc, seq desc)), so
  // the scan must start one block earlier.
  const auto& idx = table_->index_;
  status_ = Status::OK();
  if (idx.empty()) {
    valid_ = false;
    return;
  }
  size_t lo = 0, hi = idx.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (idx[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  size_t start = lo > 0 ? lo - 1 : 0;
  next_offset_ = idx[start].offset;
  valid_ = false;
  Next();
  while (valid_ && current_.user_key < key) Next();
}

void SSTable::Iterator::Next() {
  if (next_offset_ >= table_->data_end_) {
    valid_ = false;
    return;
  }
  valid_ = ReadEntryAt(next_offset_);
}

size_t SSTable::Iterator::TryDecode(std::string_view data) {
  std::string_view rest = data;
  uint32_t klen = 0;
  if (!GetVarint32(&rest, &klen) || rest.size() < uint64_t(klen) + 9) {
    return 0;
  }
  std::string_view key = rest.substr(0, klen);
  rest.remove_prefix(klen);
  uint64_t seq = 0;
  GetFixed64(&rest, &seq);
  uint8_t type = static_cast<uint8_t>(rest.front());
  rest.remove_prefix(1);
  uint32_t vlen = 0;
  if (!GetVarint32(&rest, &vlen) || rest.size() < vlen) return 0;
  current_.user_key.assign(key);
  current_.seq = seq;
  current_.type = static_cast<ValueType>(type);
  current_.value.assign(rest.substr(0, vlen));
  rest.remove_prefix(vlen);
  return data.size() - rest.size();
}

bool SSTable::Iterator::ReadEntryAt(uint64_t offset) {
  // Fast path: the record decodes entirely from the buffered chunk —
  // consecutive entries in a scan reuse one chunk read (and one cache
  // entry) instead of issuing fresh I/O per entry.
  if (chunk_ == nullptr || offset < chunk_off_ ||
      offset >= chunk_off_ + chunk_->size()) {
    chunk_ = table_->ReadChunk(offset / kReadChunkSize, &status_);
    if (chunk_ == nullptr) return false;  // status_ carries the I/O error
    chunk_off_ = (offset / kReadChunkSize) * kReadChunkSize;
  }
  size_t in_chunk = size_t(offset - chunk_off_);
  size_t consumed =
      TryDecode({chunk_->data() + in_chunk, chunk_->size() - in_chunk});
  if (consumed > 0) {
    next_offset_ = offset + consumed;
    return true;
  }

  // The record crosses the chunk boundary: assemble it from consecutive
  // aligned chunks (each individually cacheable) until it decodes or the
  // data region is exhausted (truncated record => invalid).
  spill_.assign(chunk_->data() + in_chunk, chunk_->size() - in_chunk);
  uint64_t next_chunk = chunk_off_ / kReadChunkSize + 1;
  while (next_chunk * kReadChunkSize < table_->data_end_) {
    BlockCache::ChunkPtr more = table_->ReadChunk(next_chunk, &status_);
    if (more == nullptr) return false;
    spill_.append(*more);
    ++next_chunk;
    consumed = TryDecode(spill_);
    if (consumed > 0) {
      next_offset_ = offset + consumed;
      // Keep the last chunk buffered: the next record starts inside it.
      chunk_ = std::move(more);
      chunk_off_ = (next_chunk - 1) * kReadChunkSize;
      return true;
    }
  }
  // The data region ended mid-record: damage, not a clean EOF (Next()
  // catches the clean case before ever calling here).
  status_ = Status::Corruption("truncated record in " + table_->path_);
  return false;
}

// ------------------------------------------------------------- Builder

namespace {
// Pending data-region bytes spill to disk at this size; together with
// the producing compaction's roll threshold it bounds builder memory.
constexpr size_t kBuilderBufferBytes = 256 * 1024;
}  // namespace

SSTableBuilder::SSTableBuilder(std::string path, int bloom_bits_per_key,
                               IoFaultInjector* faults)
    : path_(std::move(path)),
      bloom_bits_per_key_(bloom_bits_per_key),
      faults_(faults) {
  // O_TRUNC: a crashed build's partial file with the same number is
  // simply overwritten on retry.  Offsets are 64-bit throughout — the
  // writer never seeks, readers use positional I/O.
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    status_ = Status::IOError("cannot create SSTable " + path_ + ": " +
                              std::strerror(errno));
  }
}

SSTableBuilder::~SSTableBuilder() {
  if (!finished_) Abandon();
}

Status SSTableBuilder::Add(const InternalEntry& e) {
  if (!status_.ok()) return status_;
  if (entry_count_ % SSTable::kIndexInterval == 0) {
    PutVarint32(&index_, static_cast<uint32_t>(e.user_key.size()));
    index_.append(e.user_key);
    PutFixed64(&index_, data_bytes());
    ++index_count_;
  }
  if (entry_count_ == 0) min_key_ = e.user_key;
  max_key_ = e.user_key;  // sorted input: the latest key is the max
  // Adjacent versions of one user key need a single bloom entry.
  if (keys_.empty() || keys_.back() != e.user_key) {
    keys_.push_back(e.user_key);
  }
  EncodeEntry(e, &buffer_);
  ++entry_count_;
  if (buffer_.size() >= kBuilderBufferBytes) return FlushBuffer();
  return status_;
}

Status SSTableBuilder::WriteRaw(std::string_view bytes) {
  if (!status_.ok()) return status_;
  size_t to_write = bytes.size();
  if (faults_ != nullptr) to_write = faults_->BeforeWrite(bytes.size());
  size_t written = 0;
  while (written < to_write) {
    ssize_t n = ::write(fd_, bytes.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      status_ = Status::IOError("SSTable write failed: " + path_ + ": " +
                                std::strerror(errno));
      return status_;
    }
    if (n == 0) break;
    written += size_t(n);
  }
  if (written != bytes.size()) {
    // A torn write is the crash the injector simulates: fail the build
    // immediately; the partial file never becomes an installed table.
    status_ = Status::IOError("SSTable write torn: " + path_);
  }
  return status_;
}

Status SSTableBuilder::FlushBuffer() {
  if (buffer_.empty()) return status_;
  Status s = WriteRaw(buffer_);
  if (s.ok()) {
    data_written_ += buffer_.size();
    buffer_.clear();
  }
  return s;
}

Result<std::shared_ptr<SSTable>> SSTableBuilder::Finish(BlockCache* cache) {
  if (!status_.ok()) return status_;
  Status s = FlushBuffer();
  if (!s.ok()) return s;

  BloomFilter bloom(keys_.size(), bloom_bits_per_key_);
  for (const auto& k : keys_) bloom.Add(k);
  const std::string bloom_bytes = bloom.Serialize();

  const uint64_t index_off = data_written_;
  const uint64_t bloom_off = index_off + index_.size();
  const uint64_t range_off = bloom_off + bloom_bytes.size();
  std::string tail;
  tail.reserve(index_.size() + bloom_bytes.size() + min_key_.size() +
               max_key_.size() + 80);
  tail.append(index_);
  tail.append(bloom_bytes);
  PutVarint32(&tail, static_cast<uint32_t>(min_key_.size()));
  tail.append(min_key_);
  PutVarint32(&tail, static_cast<uint32_t>(max_key_.size()));
  tail.append(max_key_);
  PutFixed64(&tail, index_off);
  PutFixed64(&tail, index_count_);
  PutFixed64(&tail, bloom_off);
  PutFixed64(&tail, bloom_bytes.size());
  PutFixed64(&tail, range_off);
  PutFixed64(&tail, entry_count_);
  PutFixed64(&tail, SSTable::kMagicV2);

  s = WriteRaw(tail);
  if (!s.ok()) return s;
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    status_ = Status::IOError("SSTable close failed: " + path_);
    return status_;
  }
  finished_ = true;
  return SSTable::Open(path_, cache);
}

void SSTableBuilder::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!finished_) ::unlink(path_.c_str());
  finished_ = true;
}

}  // namespace deluge::storage
