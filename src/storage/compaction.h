#ifndef DELUGE_STORAGE_COMPACTION_H_
#define DELUGE_STORAGE_COMPACTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/block_cache.h"
#include "storage/fault_injection.h"
#include "storage/sstable.h"

namespace deluge::storage {

/// One compaction's shared, read-only description: the input table set
/// plus everything a sub-compaction needs to emit outputs.  One job is
/// shared by all of its sub-compactions, which may run concurrently —
/// every field must be safe for concurrent reads, and `next_output_path`
/// must be internally synchronized (it allocates file numbers).
struct CompactionJob {
  /// Input tables, newest first.  An entry's first occurrence across
  /// this order is its newest version — the k-way merge's tie-break
  /// (lowest source index wins) implements LSM shadowing directly.
  std::vector<std::shared_ptr<SSTable>> inputs;
  /// Output tables roll to a new file once their data region reaches
  /// this size — the bound on both builder memory and L1 table size.
  uint64_t target_table_bytes = 2u << 20;
  int bloom_bits_per_key = 10;
  /// Test hook forwarded to output builders.  Not owned; may be null.
  IoFaultInjector* faults = nullptr;
  /// Block cache attached to output readers.  Not owned; may be null.
  BlockCache* cache = nullptr;
  /// Allocates the path for the next output table.  Must be thread-safe:
  /// concurrent sub-compactions call it whenever they roll an output.
  std::function<std::string()> next_output_path;
};

/// The key span one sub-compaction owns: `[begin, end)` over user keys,
/// with absent bounds meaning -inf / +inf.  Spans produced by
/// `PickSubcompactionBoundaries` partition the keyspace exactly, so
/// every input entry is consumed by exactly one sub-compaction and all
/// versions of one user key land in the same span (versions share the
/// user key) — which is what makes per-span version dedup and tombstone
/// dropping correct.
struct KeySpan {
  bool has_begin = false;
  std::string begin;  // inclusive; ignored unless has_begin
  bool has_end = false;
  std::string end;  // exclusive; ignored unless has_end
};

/// What one sub-compaction produced.  `outputs` are finished, opened
/// tables in ascending key order; on failure `status` is the cause and
/// `outputs` holds whatever tables finished before it (the caller
/// unlinks them — a failed compaction installs nothing).
struct SubcompactionResult {
  Status status;
  std::vector<std::shared_ptr<SSTable>> outputs;
  /// Input entries consumed from the merge.  Summed across a job's
  /// sub-compactions this must equal the inputs' total entry count —
  /// the truncation check that keeps a short scan (silent I/O error)
  /// from installing a partial merge.
  uint64_t entries_read = 0;
  /// Logical bytes of the emitted (surviving) entries — the rewrite
  /// cost this sub-compaction paid, feeding the write-amp metric.
  uint64_t bytes_out = 0;
};

/// Runs one sub-compaction: streams a k-way merge of `job.inputs`
/// restricted to `span`, keeps the newest version per user key, drops
/// tombstones (the output level is the bottom level and the job holds
/// every overlapping table, so nothing older can resurface), and rolls
/// outputs at `job.target_table_bytes`.  Memory is O(k + one output
/// builder), independent of input size.  Thread-safe with respect to
/// sibling sub-compactions on disjoint spans.
SubcompactionResult RunSubcompaction(const CompactionJob& job,
                                     const KeySpan& span);

/// Picks up to `max_parts - 1` interior boundary keys that split the
/// inputs into roughly data-weighted spans, from the tables' in-memory
/// sparse indexes (no I/O).  Returned keys are sorted, distinct, and
/// strictly greater than the smallest input key, so no span is trivially
/// empty.  Fewer boundaries than requested (possibly none) come back
/// when the inputs are small or their keys heavily overlap.
std::vector<std::string> PickSubcompactionBoundaries(
    const std::vector<std::shared_ptr<SSTable>>& inputs, size_t max_parts);

/// Expands boundary keys into the spans they delimit: boundaries
/// {b0, b1} become [-inf, b0), [b0, b1), [b1, +inf).
std::vector<KeySpan> SpansFromBoundaries(
    const std::vector<std::string>& boundaries);

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_COMPACTION_H_
