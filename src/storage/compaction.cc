#include "storage/compaction.h"

#include <algorithm>

#include "common/merge_iter.h"
#include "storage/format.h"

namespace deluge::storage {

namespace {

// Per-table budget of split-point candidates drawn from the sparse
// index.  Enough resolution to land boundaries near even data weight;
// small enough that picking stays trivially cheap.
constexpr size_t kSamplesPerTable = 48;

struct EntryOrder {
  int operator()(const InternalEntry& a, const InternalEntry& b) const {
    return InternalEntryComparator()(a, b);
  }
};

}  // namespace

std::vector<std::string> PickSubcompactionBoundaries(
    const std::vector<std::shared_ptr<SSTable>>& inputs, size_t max_parts) {
  std::vector<std::string> boundaries;
  if (max_parts <= 1 || inputs.empty()) return boundaries;

  // Candidates are index-point keys: each stands for ~kIndexInterval
  // entries of its table, so a sorted pool of them approximates the
  // merged data distribution without reading any data blocks.
  std::vector<std::string> pool;
  for (const auto& t : inputs) {
    auto samples = t->IndexSampleKeys(kSamplesPerTable);
    pool.insert(pool.end(), std::make_move_iterator(samples.begin()),
                std::make_move_iterator(samples.end()));
  }
  if (pool.empty()) return boundaries;
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  // A boundary equal to the global minimum would make the first span
  // empty; the minimum is pool.front() (every table's min key is its
  // first index point).
  if (!pool.empty()) pool.erase(pool.begin());
  if (pool.empty()) return boundaries;

  const size_t want = std::min(max_parts - 1, pool.size());
  boundaries.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    // Evenly spaced picks over the candidate pool; index i+1 of want+1
    // segments, scaled to the pool, never selects pool.end().
    size_t pos = (i + 1) * pool.size() / (want + 1);
    if (pos >= pool.size()) pos = pool.size() - 1;
    boundaries.push_back(pool[pos]);
  }
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  return boundaries;
}

std::vector<KeySpan> SpansFromBoundaries(
    const std::vector<std::string>& boundaries) {
  std::vector<KeySpan> spans(boundaries.size() + 1);
  for (size_t i = 0; i < boundaries.size(); ++i) {
    spans[i].has_end = true;
    spans[i].end = boundaries[i];
    spans[i + 1].has_begin = true;
    spans[i + 1].begin = boundaries[i];
  }
  return spans;
}

SubcompactionResult RunSubcompaction(const CompactionJob& job,
                                     const KeySpan& span) {
  SubcompactionResult result;

  // Position one iterator per input at the span's lower bound.  Iterator
  // storage must not reallocate once the merge holds pointers into it.
  std::vector<SSTable::Iterator> iters;
  iters.reserve(job.inputs.size());
  std::vector<SSTable::Iterator*> sources;
  sources.reserve(job.inputs.size());
  for (const auto& t : job.inputs) {
    iters.emplace_back(t.get());
    if (span.has_begin) {
      iters.back().Seek(span.begin);
    } else {
      iters.back().SeekToFirst();
    }
    sources.push_back(&iters.back());
  }

  KWayMergeIterator<SSTable::Iterator, EntryOrder> merge(sources,
                                                         EntryOrder{});

  std::unique_ptr<SSTableBuilder> builder;
  std::string last_key;
  bool have_last = false;
  auto finish_output = [&]() -> Status {
    auto table = builder->Finish(job.cache);
    builder.reset();
    if (!table.ok()) return table.status();
    result.outputs.push_back(std::move(table.value()));
    return Status::OK();
  };

  while (merge.Valid()) {
    const InternalEntry& e = merge.entry();
    if (span.has_end && e.user_key >= span.end) break;
    ++result.entries_read;
    // Sources are newest-first and the merge tie-breaks toward the
    // lower source index, so the first occurrence of a user key is its
    // newest version; everything after is shadowed.
    if (have_last && e.user_key == last_key) {
      merge.Next();
      continue;
    }
    have_last = true;
    last_key = e.user_key;
    if (e.type == ValueType::kTombstone) {
      // Newest version is a delete and nothing below this level exists:
      // the key (and the marker itself) is gone.
      merge.Next();
      continue;
    }
    if (builder == nullptr) {
      builder = std::make_unique<SSTableBuilder>(
          job.next_output_path(), job.bloom_bits_per_key, job.faults);
    }
    result.bytes_out += e.ApproximateSize();
    Status s = builder->Add(e);
    if (!s.ok()) {
      result.status = s;
      return result;  // builder's destructor abandons the partial file
    }
    if (builder->data_bytes() >= job.target_table_bytes) {
      s = finish_output();
      if (!s.ok()) {
        result.status = s;
        return result;
      }
    }
    merge.Next();
  }

  // The merge silently drops a source that stops being Valid, which is
  // also what an I/O error looks like.  Distinguish clean exhaustion
  // from failure here: installing a merge missing an input's tail would
  // unlink tables that still hold acknowledged data.
  for (auto& it : iters) {
    if (!it.status().ok()) {
      result.status = it.status();
      return result;
    }
  }

  if (builder != nullptr) {
    Status s = finish_output();
    if (!s.ok()) result.status = s;
  }
  return result;
}

}  // namespace deluge::storage
