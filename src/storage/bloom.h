#ifndef DELUGE_STORAGE_BLOOM_H_
#define DELUGE_STORAGE_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace deluge::storage {

/// A classic Bloom filter over string keys, used by SSTables to skip disk
/// probes for absent keys and by the pub/sub broker for cheap subscription
/// pre-filtering.
///
/// Uses double hashing (Kirsch–Mitzenmacher) to derive k probe positions
/// from two 64-bit hashes.  `bits_per_key` = 10 gives ~1% false positives.
class BloomFilter {
 public:
  /// Builds an empty filter sized for `expected_keys`.
  BloomFilter(size_t expected_keys, int bits_per_key = 10);

  /// Reconstructs a filter from its serialized form.
  static BloomFilter Deserialize(std::string_view data);

  void Add(std::string_view key);

  /// False means "definitely absent"; true means "probably present".
  bool MayContain(std::string_view key) const;

  /// Serializes to a compact byte string (header + bit array).
  std::string Serialize() const;

  size_t bit_count() const { return bit_count_; }
  int num_probes() const { return num_probes_; }

 private:
  BloomFilter() = default;

  size_t bit_count_ = 0;
  int num_probes_ = 0;
  std::vector<uint8_t> bits_;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_BLOOM_H_
