#include "storage/wal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/hash.h"
#include "storage/format.h"

namespace deluge::storage {

WriteAheadLog::~WriteAheadLog() { Close(); }

Status WriteAheadLog::Open(const std::string& path) {
  Close();
  path_ = path;
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open WAL " + path + ": " +
                           std::strerror(errno));
  }
  off_t pos = ftello(file_);  // 64-bit-safe position
  size_bytes_ = pos > 0 ? uint64_t(pos) : 0;
  return Status::OK();
}

namespace {

void AppendFrame(std::string_view record, std::string* out) {
  PutFixed32(out, static_cast<uint32_t>(record.size()));
  PutFixed64(out, Hash64(record));
  out->append(record.data(), record.size());
}

}  // namespace

Status WriteAheadLog::Append(std::string_view record, bool sync) {
  if (file_ == nullptr) return Status::IOError("WAL not open");
  std::string frame;
  frame.reserve(12 + record.size());
  AppendFrame(record, &frame);
  size_t to_write = frame.size();
  if (fault_injector_ != nullptr) {
    to_write = fault_injector_->BeforeWrite(frame.size());
  }
  if (std::fwrite(frame.data(), 1, to_write, file_) != to_write) {
    return Status::IOError("WAL write failed");
  }
  if (to_write < frame.size()) {
    // Injected torn write: the prefix is on disk, the append failed from
    // the caller's perspective — exactly the crash-mid-write wreckage
    // Replay must stop at cleanly.
    std::fflush(file_);
    size_bytes_ += to_write;
    return Status::IOError("WAL torn write (injected)");
  }
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  if (sync) {
    if (fault_injector_ != nullptr && fault_injector_->FailSync()) {
      return Status::IOError("WAL fdatasync failed (injected)");
    }
    if (fdatasync(fileno(file_)) != 0) {
      return Status::IOError("WAL fdatasync failed");
    }
  }
  size_bytes_ += frame.size();
  return Status::OK();
}

Status WriteAheadLog::AppendBatch(const std::vector<std::string>& records,
                                  bool sync) {
  std::vector<common::Slice> slices(records.begin(), records.end());
  return AppendBatch(slices, sync);
}

Status WriteAheadLog::AppendBatch(const std::vector<common::Slice>& records,
                                  bool sync) {
  if (file_ == nullptr) return Status::IOError("WAL not open");
  if (records.empty()) return Status::OK();
  size_t total = 0;
  for (const auto& r : records) total += 12 + r.size();
  // Coalescing frames into one write is I/O batching, not payload
  // duplication — the record bytes are framed straight from the
  // caller's slices (see DESIGN.md §10 on what `bytes_copied` counts).
  std::string frames;
  frames.reserve(total);
  for (const auto& r : records) AppendFrame(r.view(), &frames);

  size_t to_write = frames.size();
  if (fault_injector_ != nullptr) {
    to_write = fault_injector_->BeforeWrite(frames.size());
  }
  if (std::fwrite(frames.data(), 1, to_write, file_) != to_write) {
    return Status::IOError("WAL write failed");
  }
  if (to_write < frames.size()) {
    // Injected torn write: a frame prefix is on disk, the batch failed
    // from the committers' perspective; Replay stops at the tear.
    std::fflush(file_);
    size_bytes_ += to_write;
    return Status::IOError("WAL torn write (injected)");
  }
  if (std::fflush(file_) != 0) return Status::IOError("WAL flush failed");
  if (sync) {
    if (fault_injector_ != nullptr && fault_injector_->FailSync()) {
      return Status::IOError("WAL fdatasync failed (injected)");
    }
    if (fdatasync(fileno(file_)) != 0) {
      return Status::IOError("WAL fdatasync failed");
    }
  }
  size_bytes_ += frames.size();
  return Status::OK();
}

Result<size_t> WriteAheadLog::Replay(
    const std::string& path,
    const std::function<void(std::string_view)>& consumer,
    uint64_t* valid_prefix_bytes) {
  if (valid_prefix_bytes != nullptr) *valid_prefix_bytes = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return size_t{0};  // no log => nothing to replay
  size_t replayed = 0;
  uint64_t intact_bytes = 0;
  std::vector<char> buf;
  for (;;) {
    char header[12];
    size_t got = std::fread(header, 1, sizeof(header), f);
    if (got < sizeof(header)) break;  // clean EOF or torn header
    uint32_t len = 0;
    uint64_t crc = 0;
    std::memcpy(&len, header, 4);
    std::memcpy(&crc, header + 4, 8);
    if (len > (64u << 20)) break;  // implausible length => corruption
    buf.resize(len);
    if (std::fread(buf.data(), 1, len, f) != len) break;  // torn payload
    if (Hash64(buf.data(), len) != crc) break;            // corrupt
    consumer(std::string_view(buf.data(), len));
    ++replayed;
    intact_bytes += sizeof(header) + len;
  }
  std::fclose(f);
  if (valid_prefix_bytes != nullptr) *valid_prefix_bytes = intact_bytes;
  return replayed;
}

Status WriteAheadLog::Reset() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path_.c_str(), "wb");  // truncate
  if (file_ == nullptr) return Status::IOError("WAL reset failed: " + path_);
  size_bytes_ = 0;
  return Status::OK();
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace deluge::storage
