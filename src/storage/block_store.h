#ifndef DELUGE_STORAGE_BLOCK_STORE_H_
#define DELUGE_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace deluge::storage {

/// A fixed-block-size volume — the "block store" member of the
/// heterogeneous cloud-storage layer of Fig. 7.  Models a cloud disk:
/// allocate/free block addresses, read/write whole blocks.  Backing is
/// in-memory; the interesting behaviour for experiments is the allocation
/// discipline and the fixed-granularity I/O, both preserved.
class BlockStore {
 public:
  /// Creates a volume of `capacity_blocks` blocks of `block_size` bytes.
  BlockStore(uint32_t capacity_blocks, uint32_t block_size = 4096);

  /// Reserves one block; returns its id or ResourceExhausted when full.
  Result<uint32_t> Allocate();

  /// Returns `block` to the free pool.
  Status Free(uint32_t block);

  /// Writes exactly one block.  `data` longer than the block size is
  /// rejected; shorter data is zero-padded.
  Status Write(uint32_t block, std::string_view data);

  /// Reads one whole block.
  Status Read(uint32_t block, std::string* data) const;

  uint32_t block_size() const { return block_size_; }
  uint32_t capacity_blocks() const { return capacity_blocks_; }
  uint32_t allocated_blocks() const;

 private:
  bool IsAllocatedLocked(uint32_t block) const;

  const uint32_t capacity_blocks_;
  const uint32_t block_size_;
  mutable std::mutex mu_;
  std::vector<std::string> blocks_;
  std::vector<bool> allocated_;
  std::vector<uint32_t> free_list_;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_BLOCK_STORE_H_
