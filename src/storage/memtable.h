#ifndef DELUGE_STORAGE_MEMTABLE_H_
#define DELUGE_STORAGE_MEMTABLE_H_

#include <string>
#include <string_view>

#include "storage/format.h"
#include "storage/skiplist.h"

namespace deluge::storage {

/// In-memory sorted write buffer: the mutable top of the LSM tree.
///
/// Holds versioned entries ordered by (key asc, seq desc).  When its
/// approximate size exceeds the store budget the owner flushes it to an
/// SSTable and starts a fresh one.  Not internally synchronized.
class MemTable {
 public:
  MemTable() = default;

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Inserts a put or tombstone.
  void Add(SequenceNumber seq, ValueType type, std::string_view key,
           std::string_view value);

  /// Looks up the newest version of `key` with seq <= `snapshot`.
  /// Returns true when a version was found; `*found_value` is filled for
  /// puts, `*is_tombstone` set for deletes.
  bool Get(std::string_view key, SequenceNumber snapshot,
           std::string* found_value, bool* is_tombstone) const;

  size_t ApproximateBytes() const { return bytes_; }
  size_t entry_count() const { return list_.size(); }

  /// Iterator over all versions in internal order (used by flush).
  class Iterator {
   public:
    explicit Iterator(const MemTable* mt) : it_(&mt->list_) {}
    bool Valid() const { return it_.Valid(); }
    void SeekToFirst() { it_.SeekToFirst(); }
    void Seek(std::string_view key, SequenceNumber seq);
    void Next() { it_.Next(); }
    const InternalEntry& entry() const { return it_.key(); }

   private:
    SkipList<InternalEntry, InternalEntryComparator>::Iterator it_;
  };

 private:
  SkipList<InternalEntry, InternalEntryComparator> list_;
  size_t bytes_ = 0;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_MEMTABLE_H_
