#ifndef DELUGE_STORAGE_FORMAT_H_
#define DELUGE_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace deluge::storage {

/// Monotonic version counter: every write to a KV store gets one.
using SequenceNumber = uint64_t;

/// Record kinds inside memtables, WAL batches, and SSTables.
enum class ValueType : uint8_t {
  kValue = 0,
  kTombstone = 1,
};

/// One logical record: a versioned (key, value) or deletion marker.
struct InternalEntry {
  std::string user_key;
  SequenceNumber seq = 0;
  ValueType type = ValueType::kValue;
  std::string value;

  /// Bytes charged against the memtable budget.
  size_t ApproximateSize() const {
    return user_key.size() + value.size() + 24;
  }
};

/// Orders by (user_key ascending, seq descending): the newest version of a
/// key is encountered first in scans — the LSM-invariant ordering.
struct InternalEntryComparator {
  int operator()(const InternalEntry& a, const InternalEntry& b) const {
    int c = a.user_key.compare(b.user_key);
    if (c != 0) return c;
    if (a.seq > b.seq) return -1;  // newer first
    if (a.seq < b.seq) return 1;
    return 0;
  }
};

// --------------------------------------------------------------------
// Varint / fixed-width coding (little-endian), LevelDB-style.

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Appends varint32 length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view s);

/// Each Get* consumes from the front of `*input`; returns false on
/// malformed/truncated input (input position then unspecified).
bool GetFixed32(std::string_view* input, uint32_t* v);
bool GetFixed64(std::string_view* input, uint64_t* v);
bool GetVarint32(std::string_view* input, uint32_t* v);
bool GetVarint64(std::string_view* input, uint64_t* v);
bool GetLengthPrefixed(std::string_view* input, std::string_view* s);

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_FORMAT_H_
