#include "storage/format.h"

#include <cstring>

namespace deluge::storage {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

bool GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return false;
  std::memcpy(v, input->data(), 4);
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* v) {
  if (input->size() < 8) return false;
  std::memcpy(v, input->data(), 8);
  input->remove_prefix(8);
  return true;
}

bool GetVarint32(std::string_view* input, uint32_t* v) {
  uint64_t wide = 0;
  if (!GetVarint64(input, &wide) || wide > UINT32_MAX) return false;
  *v = static_cast<uint32_t>(wide);
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (byte & 0x7F) << shift;
    } else {
      result |= byte << shift;
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* s) {
  uint32_t len = 0;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *s = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

}  // namespace deluge::storage
