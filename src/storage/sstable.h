#ifndef DELUGE_STORAGE_SSTABLE_H_
#define DELUGE_STORAGE_SSTABLE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/bloom.h"
#include "storage/fault_injection.h"
#include "storage/format.h"

namespace deluge::storage {

/// An immutable sorted run on disk.
///
/// File layout:
/// ```
///   data:   repeated [varint klen][key][fixed64 seq][u8 type]
///                    [varint vlen][value]
///   index:  every kIndexInterval-th entry: [varint klen][key][fixed64 off]
///   bloom:  serialized BloomFilter over user keys
///   footer: fixed64 x6: index_off, index_count, bloom_off, bloom_len,
///           entry_count, magic
/// ```
/// Readers keep the sparse index and bloom filter in memory; point lookups
/// do one bounded forward scan from the preceding index point.
class SSTable {
 public:
  static constexpr uint64_t kMagic = 0xDE11A6E0DB5557ULL;
  static constexpr size_t kIndexInterval = 16;

  ~SSTable();

  SSTable(const SSTable&) = delete;
  SSTable& operator=(const SSTable&) = delete;

  /// Writes `entries` (already sorted by InternalEntryComparator) to
  /// `path` and returns an opened reader.  `faults`, when set, can tear
  /// the file write (crash mid-build); the partial file fails Open with
  /// Corruption, never a silently short table.
  static Result<std::shared_ptr<SSTable>> Build(
      const std::string& path, const std::vector<InternalEntry>& entries,
      int bloom_bits_per_key = 10, IoFaultInjector* faults = nullptr);

  /// Opens an existing table, loading its index and bloom filter.
  static Result<std::shared_ptr<SSTable>> Open(const std::string& path);

  /// Finds the newest version of `key` with seq <= snapshot.
  /// Returns NotFound if the key is absent from this table.  On success
  /// `*entry` holds the version found (possibly a tombstone).
  Status Get(std::string_view key, SequenceNumber snapshot,
             InternalEntry* entry) const;

  /// Streaming iterator over all entries in internal order.
  class Iterator {
   public:
    explicit Iterator(const SSTable* table);
    bool Valid() const { return valid_; }
    void SeekToFirst();
    /// Positions at the first entry >= (key, seq = max).
    void Seek(std::string_view key);
    void Next();
    const InternalEntry& entry() const { return current_; }

   private:
    bool ReadEntryAt(uint64_t offset);

    const SSTable* table_;
    uint64_t next_offset_ = 0;
    InternalEntry current_;
    bool valid_ = false;
  };

  const std::string& path() const { return path_; }
  uint64_t entry_count() const { return entry_count_; }
  uint64_t file_size() const { return data_end_; }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  /// Cumulative probe counters (for experiments on bloom effectiveness).
  mutable uint64_t bloom_negative_count = 0;
  mutable uint64_t disk_probe_count = 0;

 private:
  SSTable() = default;

  struct IndexEntry {
    std::string key;
    uint64_t offset;
  };

  Status LoadFooterAndIndex();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<IndexEntry> index_;
  BloomFilter bloom_{1};
  uint64_t data_end_ = 0;  // offset where data region ends (index begins)
  uint64_t entry_count_ = 0;
  std::string min_key_;
  std::string max_key_;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_SSTABLE_H_
