#ifndef DELUGE_STORAGE_SSTABLE_H_
#define DELUGE_STORAGE_SSTABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "storage/block_cache.h"
#include "storage/bloom.h"
#include "storage/fault_injection.h"
#include "storage/format.h"

namespace deluge::storage {

/// An immutable sorted run on disk.
///
/// File layout (format v2):
/// ```
///   data:   repeated [varint klen][key][fixed64 seq][u8 type]
///                    [varint vlen][value]
///   index:  every kIndexInterval-th entry: [varint klen][key][fixed64 off]
///   bloom:  serialized BloomFilter over user keys
///   range:  [varint klen][min_key][varint klen][max_key]
///   footer: fixed64 x7: index_off, index_count, bloom_off, bloom_len,
///           range_off, entry_count, magic (kMagicV2)
/// ```
/// The v1 format lacks the range block and has a 6-word footer ending in
/// `kMagic`; `Open` still reads it, recovering `max_key_` by scanning
/// from the last index point (v2 tables skip that tail scan entirely —
/// the key range is in the footer).  Data and index regions are
/// byte-identical across versions.
///
/// Readers keep the sparse index and bloom filter in memory; point lookups
/// do one bounded forward scan from the preceding index point.
///
/// Thread-safety: fully thread-safe after Open.  All file reads are
/// positional (`pread` on a shared fd), so concurrent `Get`s and
/// iterators never contend on a seek pointer; probe counters are
/// atomics.  Reads go through fixed-size aligned chunks that an
/// optional shared `BlockCache` can serve without touching the disk.
class SSTable {
 public:
  static constexpr uint64_t kMagic = 0xDE11A6E0DB5557ULL;    // v1 (legacy)
  static constexpr uint64_t kMagicV2 = 0xDE11A6E0DB5558ULL;  // v2 (+range)
  static constexpr size_t kIndexInterval = 16;
  /// Granularity of data-region reads and of block-cache entries.
  static constexpr size_t kReadChunkSize = 64 * 1024;

  ~SSTable();

  SSTable(const SSTable&) = delete;
  SSTable& operator=(const SSTable&) = delete;

  /// Writes `entries` (already sorted by InternalEntryComparator) to
  /// `path` and returns an opened reader.  A convenience wrapper over
  /// `SSTableBuilder` for callers that already hold the full entry set
  /// (tests, small fixtures); streaming producers use the builder
  /// directly.  `faults`, when set, can tear the file write (crash
  /// mid-build); the partial file fails Open with Corruption, never a
  /// silently short table.  `cache`, when set, is attached to the
  /// returned reader (not owned).
  static Result<std::shared_ptr<SSTable>> Build(
      const std::string& path, const std::vector<InternalEntry>& entries,
      int bloom_bits_per_key = 10, IoFaultInjector* faults = nullptr,
      BlockCache* cache = nullptr);

  /// Opens an existing table (v1 or v2), loading its index, bloom
  /// filter, and key range.  Every open assigns a process-unique
  /// `table_id` (the block-cache namespace for this reader).
  static Result<std::shared_ptr<SSTable>> Open(const std::string& path,
                                               BlockCache* cache = nullptr);

  /// Finds the newest version of `key` with seq <= snapshot.
  /// Returns NotFound if the key is absent from this table.  On success
  /// `*entry` holds the version found (possibly a tombstone).
  Status Get(std::string_view key, SequenceNumber snapshot,
             InternalEntry* entry) const;

  /// Streaming iterator over all entries in internal order.
  ///
  /// Buffers one read chunk and decodes consecutive entries from it
  /// without re-reading; only a record that crosses the chunk boundary
  /// triggers further I/O.  Each iterator carries its own buffer, so
  /// concurrent iterators over one table are safe.
  class Iterator {
   public:
    explicit Iterator(const SSTable* table);
    bool Valid() const { return valid_; }
    void SeekToFirst();
    /// Positions at the first entry >= (key, seq = max).
    void Seek(std::string_view key);
    void Next();
    const InternalEntry& entry() const { return current_; }
    /// OK while the scan is healthy, including after a clean end of
    /// table.  An I/O error or truncated record invalidates the iterator
    /// and parks the cause here — callers that must distinguish "done"
    /// from "failed" (compaction input scans!) check this after the
    /// loop; treating an error as EOF would install a truncated merge.
    const Status& status() const { return status_; }

   private:
    bool ReadEntryAt(uint64_t offset);
    /// Decodes one record from `data` (record starts at data[0]) into
    /// current_; returns bytes consumed, or 0 when `data` is too short.
    size_t TryDecode(std::string_view data);

    const SSTable* table_;
    uint64_t next_offset_ = 0;
    BlockCache::ChunkPtr chunk_;  // buffered chunk backing fast decodes
    uint64_t chunk_off_ = 0;      // file offset of chunk_'s first byte
    std::string spill_;           // assembly buffer for boundary records
    InternalEntry current_;
    bool valid_ = false;
    Status status_;               // first scan error; OK on clean EOF
  };

  const std::string& path() const { return path_; }
  uint64_t table_id() const { return table_id_; }
  uint64_t entry_count() const { return entry_count_; }
  uint64_t file_size() const { return data_end_; }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }

  /// Up to `max_samples` evenly spaced keys from the in-memory sparse
  /// index, in ascending order — cheap split-point candidates for
  /// range-partitioned sub-compactions.  No I/O.
  std::vector<std::string> IndexSampleKeys(size_t max_samples) const;

  /// Hooks this table's bloom-probe outcomes into registry counters
  /// (storage.bloom_checks / storage.bloom_useful).  Called by the
  /// owning store before the table is published to readers; the
  /// counters must outlive every probe (the store's StatsScope does).
  void set_probe_counters(obs::Counter* checks, obs::Counter* useful) {
    bloom_checks_ = checks;
    bloom_useful_ = useful;
  }

  /// Cumulative probe counters (for experiments on bloom effectiveness).
  mutable std::atomic<uint64_t> bloom_negative_count{0};
  mutable std::atomic<uint64_t> disk_probe_count{0};

 private:
  friend class SSTableBuilder;
  SSTable() = default;

  struct IndexEntry {
    std::string key;
    uint64_t offset;
  };

  Status LoadFooterAndIndex();
  /// Reads exactly [offset, offset+n) from the file (positional; no
  /// shared seek state).
  Status ReadAt(uint64_t offset, size_t n, char* dst) const;
  /// Returns the aligned data-region chunk with the given index, from
  /// the cache when attached, else from disk (populating the cache).
  /// nullptr when the chunk is out of range or the read fails; a read
  /// failure additionally stores its cause in `*status` when given, so
  /// callers can tell an I/O error apart from end-of-data.
  BlockCache::ChunkPtr ReadChunk(uint64_t chunk_index,
                                 Status* status = nullptr) const;

  std::string path_;
  int fd_ = -1;
  uint64_t table_id_ = 0;
  BlockCache* cache_ = nullptr;  // not owned; may be null
  std::vector<IndexEntry> index_;
  BloomFilter bloom_{1};
  uint64_t data_end_ = 0;  // offset where data region ends (index begins)
  uint64_t entry_count_ = 0;
  std::string min_key_;
  std::string max_key_;
  // Registry promotion of the per-table atomics above (null = not wired).
  obs::Counter* bloom_checks_ = nullptr;
  obs::Counter* bloom_useful_ = nullptr;
};

/// Streaming SSTable writer: entries are appended in sorted order and
/// spill to disk in bounded buffered writes, so building a table costs
/// O(buffer + index + keys-for-bloom) memory — bounded by the roll
/// threshold of the producing compaction, never by the total database
/// size.  The sparse index and the key set (for the bloom filter, which
/// needs the final count) stay in memory until `Finish`.
///
/// Lifecycle: `Add`* then exactly one of `Finish` (writes index + bloom
/// + range + footer, returns an opened reader) or `Abandon` (closes and
/// unlinks the partial file).  The destructor abandons an unfinished
/// build.  Any I/O error is sticky: later calls return it unchanged.
class SSTableBuilder {
 public:
  SSTableBuilder(std::string path, int bloom_bits_per_key = 10,
                 IoFaultInjector* faults = nullptr);
  ~SSTableBuilder();

  SSTableBuilder(const SSTableBuilder&) = delete;
  SSTableBuilder& operator=(const SSTableBuilder&) = delete;

  /// Appends one entry; entries must arrive in InternalEntryComparator
  /// order (the caller is a sorted merge or memtable scan).
  Status Add(const InternalEntry& e);

  Result<std::shared_ptr<SSTable>> Finish(BlockCache* cache = nullptr);

  /// Closes and unlinks the partial file.  Safe to call after an error.
  void Abandon();

  /// Data-region bytes so far (written + buffered) — the roll signal.
  uint64_t data_bytes() const { return data_written_ + buffer_.size(); }
  uint64_t entry_count() const { return entry_count_; }
  const std::string& path() const { return path_; }

 private:
  /// Writes `bytes` through the fault injector; a torn or failed write
  /// is sticky.
  Status WriteRaw(std::string_view bytes);
  Status FlushBuffer();

  std::string path_;
  int fd_ = -1;
  int bloom_bits_per_key_;
  IoFaultInjector* faults_;
  std::string buffer_;          // pending data-region bytes
  uint64_t data_written_ = 0;   // data-region bytes already on disk
  std::string index_;
  uint64_t index_count_ = 0;
  uint64_t entry_count_ = 0;
  std::vector<std::string> keys_;  // bloom input (needs final count)
  std::string min_key_;
  std::string max_key_;
  Status status_;
  bool finished_ = false;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_SSTABLE_H_
