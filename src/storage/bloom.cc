#include "storage/bloom.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace deluge::storage {

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key) {
  if (expected_keys == 0) expected_keys = 1;
  if (bits_per_key < 1) bits_per_key = 1;
  bit_count_ = std::max<size_t>(64, expected_keys * size_t(bits_per_key));
  // k ≈ bits_per_key * ln2
  num_probes_ = std::clamp(int(bits_per_key * 0.69), 1, 30);
  bits_.assign((bit_count_ + 7) / 8, 0);
}

void BloomFilter::Add(std::string_view key) {
  uint64_t h1 = Hash64(key, 0x9E37);
  uint64_t h2 = Hash64(key, 0x85EB) | 1;  // odd => full-period stepping
  for (int i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + uint64_t(i) * h2) % bit_count_;
    bits_[bit / 8] |= uint8_t(1u << (bit % 8));
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (bit_count_ == 0) return true;
  uint64_t h1 = Hash64(key, 0x9E37);
  uint64_t h2 = Hash64(key, 0x85EB) | 1;
  for (int i = 0; i < num_probes_; ++i) {
    uint64_t bit = (h1 + uint64_t(i) * h2) % bit_count_;
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

std::string BloomFilter::Serialize() const {
  std::string out;
  out.reserve(16 + bits_.size());
  uint64_t bc = bit_count_;
  uint64_t np = uint64_t(num_probes_);
  out.append(reinterpret_cast<const char*>(&bc), sizeof(bc));
  out.append(reinterpret_cast<const char*>(&np), sizeof(np));
  out.append(reinterpret_cast<const char*>(bits_.data()), bits_.size());
  return out;
}

BloomFilter BloomFilter::Deserialize(std::string_view data) {
  BloomFilter f;
  if (data.size() < 16) return f;
  uint64_t bc = 0, np = 0;
  std::memcpy(&bc, data.data(), sizeof(bc));
  std::memcpy(&np, data.data() + 8, sizeof(np));
  f.bit_count_ = size_t(bc);
  f.num_probes_ = int(np);
  size_t nbytes = (f.bit_count_ + 7) / 8;
  if (data.size() - 16 < nbytes) {
    f.bit_count_ = 0;
    return f;
  }
  f.bits_.assign(data.begin() + 16, data.begin() + 16 + nbytes);
  return f;
}

}  // namespace deluge::storage
