#include "storage/kv_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "common/parallel_for.h"
#include "obs/trace.h"
#include "storage/compaction.h"

namespace deluge::storage {

namespace fs = std::filesystem;

namespace {

/// Upper bound on one commit group's payload: keeps follower latency
/// bounded when a firehose of writers piles onto the queue.
constexpr size_t kMaxGroupBytes = 1u << 20;

// WAL record payload: one record per committed WriteBatch, holding the
// batch's ops back to back.  Per-op encoding:
//   [fixed64 seq][u8 type][varint klen][key][varint vlen][value]
// A single-op batch is byte-identical to the old one-record-per-op
// format, and the record's CRC makes a batch all-or-nothing on replay:
// a torn frame drops the whole batch, never a recovered prefix of it —
// Write()'s atomicity contract holds across crashes.
void AppendWalOp(std::string* rec, SequenceNumber seq, ValueType type,
                 std::string_view key, std::string_view value) {
  PutFixed64(rec, seq);
  rec->push_back(static_cast<char>(type));
  PutLengthPrefixed(rec, key);
  PutLengthPrefixed(rec, value);
}

// Consumes one op from the front of `*rec`; false once exhausted.
bool DecodeWalOp(std::string_view* rec, SequenceNumber* seq, ValueType* type,
                 std::string_view* key, std::string_view* value) {
  uint64_t s = 0;
  if (!GetFixed64(rec, &s) || rec->empty()) return false;
  *seq = s;
  *type = static_cast<ValueType>(rec->front());
  rec->remove_prefix(1);
  return GetLengthPrefixed(rec, key) && GetLengthPrefixed(rec, value);
}

// Manifest v2 key-range fields: keys are arbitrary binary, the manifest
// is whitespace-delimited text — hex-encode, with "-" for the empty
// string (which would otherwise vanish between the delimiters).
std::string HexKey(const std::string& key) {
  if (key.empty()) return "-";
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(key.size() * 2);
  for (unsigned char c : key) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

bool UnhexKey(const std::string& hex, std::string* key) {
  key->clear();
  if (hex == "-") return true;
  if (hex.size() % 2 != 0) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  key->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    key->push_back(static_cast<char>(hi << 4 | lo));
  }
  return true;
}

// First line of the range-aware manifest format.  A file that starts
// with a number instead is the original single-run format.
constexpr char kManifestMagicV2[] = "DELUGEMANIFEST2";

}  // namespace

KVStore::KVStore(const KVStoreOptions& options)
    : options_(options), mem_(std::make_unique<MemTable>()) {
  if (options_.block_cache_bytes > 0) {
    block_cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes);
  }
  if (options_.background_pool != nullptr) {
    pool_ = options_.background_pool;
  } else {
    // Private pool: one slot for the flush, one so a compaction can
    // overlap it.
    owned_pool_ = std::make_unique<ThreadPool>(2);
    pool_ = owned_pool_.get();
  }
  for (QosClass c : kAllQosClasses) {
    commit_qos_us_[uint8_t(c)] =
        obs_.histogram("commit_us", {{"qos", QosClassName(c)}});
  }
  qos_forced_syncs_ = obs_.counter("qos_forced_syncs");
}

KVStore::~KVStore() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    // Wait on the task bodies themselves, not the scheduling flags: a
    // task clears its flag before its last touch of `this`, so on an
    // external pool the flags alone would let destruction race the tail
    // of a still-running task.
    while (bg_inflight_ > 0) bg_cv_.wait(lock);
  }
  owned_pool_.reset();  // joins the private pool before members die
}

Result<std::unique_ptr<KVStore>> KVStore::Open(const KVStoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("KVStoreOptions.dir must be set");
  }
  if (options.memtable_max_bytes == 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.memtable_max_bytes must be positive");
  }
  if (options.l0_compaction_trigger <= 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.l0_compaction_trigger must be positive");
  }
  if (options.bloom_bits_per_key <= 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.bloom_bits_per_key must be positive");
  }
  if (options.l1_target_table_bytes == 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.l1_target_table_bytes must be positive");
  }
  if (options.max_subcompactions <= 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.max_subcompactions must be positive");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) return Status::IOError("cannot create dir " + options.dir);

  auto store = std::unique_ptr<KVStore>(new KVStore(options));
  Status s = store->Recover();
  if (!s.ok()) return s;
  return store;
}

std::string KVStore::TableFileName(uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(number));
  return options_.dir + "/" + buf;
}

void KVStore::RemoveOrphanTablesLocked() {
  std::vector<std::string> live;
  for (const auto& t : l0_) live.push_back(t->path());
  for (const auto& t : l1_) live.push_back(t->path());
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() != ".sst") continue;
    std::string path = entry.path().string();
    if (std::find(live.begin(), live.end(), path) == live.end()) {
      // Wreckage of a flush/compaction that crashed mid-build; the
      // manifest never referenced it.
      std::remove(path.c_str());
    }
  }
}

Status KVStore::Recover() {
  // 1. Manifest.  v2 leads with a magic line and carries hex-encoded L1
  // key ranges; the original format leads straight with "next_file
  // next_seq" and lists a single L1 run — both recover, so a store
  // written by the pre-leveled engine upgrades in place on its first
  // manifest rewrite.
  const std::string manifest_path = options_.dir + "/MANIFEST";
  std::ifstream manifest(manifest_path);
  if (manifest.good()) {
    std::string first;
    if (manifest >> first) {
      const bool v2 = first == kManifestMagicV2;
      if (v2) {
        manifest >> next_file_number_ >> next_seq_;
      } else {
        next_file_number_ = std::strtoull(first.c_str(), nullptr, 10);
        manifest >> next_seq_;
      }
      int level;
      uint64_t number;
      while (manifest >> level >> number) {
        std::string decoded;
        if (v2 && level == 1) {
          // The manifest's range copy is advisory (the table footer is
          // authoritative) but must parse: garbage here means a damaged
          // manifest, not a missing feature.
          std::string hex_min, hex_max;
          if (!(manifest >> hex_min >> hex_max) ||
              !UnhexKey(hex_min, &decoded) || !UnhexKey(hex_max, &decoded)) {
            return Status::Corruption("manifest L1 entry has a bad range");
          }
        }
        auto table = SSTable::Open(TableFileName(number), block_cache_.get());
        if (!table.ok()) return table.status();
        table.value()->set_probe_counters(bloom_checks_, bloom_useful_);
        if (level == 0) {
          l0_.push_back(table.value());  // manifest lists newest first
        } else {
          l1_.push_back(table.value());
        }
      }
    }
  }
  // The read path binary-searches l1_ by range; order it regardless of
  // the manifest's listing order (a v0 manifest has one run at most, but
  // nothing is lost by never trusting the order on disk).
  std::sort(l1_.begin(), l1_.end(),
            [](const std::shared_ptr<SSTable>& a,
               const std::shared_ptr<SSTable>& b) {
              return a->min_key() < b->min_key();
            });

  // 2. Unreferenced .sst files are wreckage of an interrupted
  // flush/compaction build; their data is still covered by the WALs or
  // the old table set, so they are safe to drop.
  RemoveOrphanTablesLocked();

  SequenceNumber max_seq = next_seq_ > 0 ? next_seq_ - 1 : 0;

  // 3. Complete an interrupted background flush: wal.imm.log covers a
  // sealed memtable whose SSTable never reached the manifest.  Replay
  // it and finish the flush now, so acknowledged writes survive a crash
  // at any point of the flush pipeline.
  if (fs::exists(ImmWalPath())) {
    MemTable imm;
    auto replayed = WriteAheadLog::Replay(
        ImmWalPath(), [&imm, &max_seq](std::string_view rec) {
          SequenceNumber seq;
          ValueType type;
          std::string_view key, value;
          while (DecodeWalOp(&rec, &seq, &type, &key, &value)) {
            imm.Add(seq, type, key, value);
            max_seq = std::max(max_seq, seq);
          }
        });
    if (!replayed.ok()) return replayed.status();
    if (imm.entry_count() > 0) {
      uint64_t number = next_file_number_++;
      uint64_t logical = 0;
      auto table = BuildTableFromMemtable(&imm, number, /*faults=*/nullptr,
                                          &logical);
      if (!table.ok()) return table.status();
      l0_.push_front(table.value());  // newer than every manifest table
      bytes_flushed_->Add(logical);
      l0_write_bytes_->Add(table.value()->file_size());
      next_seq_ = std::max(next_seq_, max_seq + 1);
      Status s = WriteManifestLocked();  // durable before dropping the log
      if (!s.ok()) return s;
    }
    std::remove(ImmWalPath().c_str());
  }
  UpdateLevelGaugesLocked();

  // 4. Active WAL replay into the fresh memtable.
  uint64_t valid_prefix = 0;
  auto replayed = WriteAheadLog::Replay(
      WalPath(),
      [this, &max_seq](std::string_view rec) {
        SequenceNumber seq;
        ValueType type;
        std::string_view key, value;
        while (DecodeWalOp(&rec, &seq, &type, &key, &value)) {
          mem_->Add(seq, type, key, value);
          max_seq = std::max(max_seq, seq);
        }
      },
      &valid_prefix);
  if (!replayed.ok()) return replayed.status();
  next_seq_ = max_seq + 1;

  // A crash mid-append leaves a torn frame at the tail.  Cut it before
  // reuse: appending behind the garbage would make every post-recovery
  // commit unreachable on the NEXT replay (which stops at the tear) —
  // silent loss of acknowledged writes one crash later.
  auto wal_size = FileSize(WalPath());
  if (wal_size.ok() && wal_size.value() > valid_prefix) {
    Status s = TruncateFile(WalPath(), valid_prefix);
    if (!s.ok()) return s;
  }
  return wal_.Open(WalPath());
}

// ----------------------------------------------------------- Write path

Status KVStore::Put(std::string_view key, std::string_view value,
                    const WriteOptions& opts) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  WriteBatch batch;
  batch.Put(key, value);
  Writer w(&batch, opts.qos, opts.WantsSync());
  return CommitWriter(&w);
}

Status KVStore::Delete(std::string_view key, const WriteOptions& opts) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  WriteBatch batch;
  batch.Delete(key);
  Writer w(&batch, opts.qos, opts.WantsSync());
  return CommitWriter(&w);
}

Status KVStore::Write(const WriteBatch& batch, const WriteOptions& opts) {
  if (batch.ops_.empty()) return Status::OK();
  // A batch is one WAL record; replay rejects records over 64 MB as
  // corruption, so an oversized batch would be acknowledged yet
  // unrecoverable.  Refuse it up front (56 MB leaves margin for the
  // per-op framing overhead).
  if (batch.approximate_bytes() > (56u << 20)) {
    return Status::InvalidArgument("WriteBatch exceeds 56 MB");
  }
  for (const auto& op : batch.ops_) {
    if (op.key.empty()) return Status::InvalidArgument("empty key");
  }
  Writer w(&batch, opts.qos, opts.WantsSync());
  return CommitWriter(&w);
}

Status KVStore::CommitWriter(Writer* w) {
  const int64_t enqueued_us = obs::SteadyNowMicros();
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(w);
  while (!w->done && w != writers_.front()) w->cv.wait(lock);
  if (w->done) {
    // A leader committed for us; the recorded latency includes the
    // group wait, which is what a caller of Put/Write experiences.
    if (w->batch != nullptr) {
      commit_qos_us_[uint8_t(w->qos)]->Record(obs::SteadyNowMicros() -
                                              enqueued_us);
    }
    return w->status;
  }

  // This writer is the group leader.
  obs::Span span("storage.commit");
  obs::ScopedTimer timer(commit_us_);
  Status s = MakeRoomForWrite(lock, /*force_seal=*/w->batch == nullptr);

  Writer* last = w;
  std::vector<const WriteBatch*> group;
  size_t group_ops = 0;
  // One durable writer upgrades the whole group: the group shares one
  // WAL append, so its sync covers every member's record.
  bool group_sync = options_.sync_wal || w->sync;
  if (s.ok() && w->batch != nullptr) {
    group.push_back(w->batch);
    group_ops = w->batch->ops_.size();
    if (options_.group_commit) {
      size_t group_bytes = w->batch->approximate_bytes();
      for (auto it = writers_.begin() + 1;
           it != writers_.end() && group_bytes < kMaxGroupBytes; ++it) {
        Writer* follower = *it;
        if (follower->batch == nullptr) break;  // seal requests ride alone
        group.push_back(follower->batch);
        group_ops += follower->batch->ops_.size();
        group_bytes += follower->batch->approximate_bytes();
        group_sync = group_sync || follower->sync;
        last = follower;
      }
    }
  }

  if (s.ok() && group_ops > 0) {
    SequenceNumber first_seq = next_seq_;
    next_seq_ += group_ops;

    // WAL append + sync run with mu_ released: queue leadership is the
    // WAL's exclusive-writer guarantee, and readers/background tasks
    // may proceed meanwhile.
    lock.unlock();
    // One WAL record per batch (not per op): the frame CRC then covers
    // the whole batch, so replay applies it all-or-nothing.  The WAL
    // takes slices of the encoded records — no re-serialisation.
    std::vector<std::string> records;
    records.reserve(group.size());
    SequenceNumber seq = first_seq;
    for (const WriteBatch* b : group) {
      std::string rec;
      rec.reserve(b->approximate_bytes() + 16);
      for (const auto& op : b->ops_) {
        AppendWalOp(&rec, seq++, op.type, op.key, op.value);
      }
      records.push_back(std::move(rec));
    }
    std::vector<common::Slice> record_slices(records.begin(), records.end());
    s = wal_.AppendBatch(record_slices, group_sync);
    if (s.ok() && group_sync) {
      wal_syncs_->Add(1);
      if (!options_.sync_wal) qos_forced_syncs_->Add(1);
    }
    lock.lock();

    if (s.ok()) {
      seq = first_seq;
      for (const WriteBatch* b : group) {
        for (const auto& op : b->ops_) {
          mem_->Add(seq++, op.type, op.key, op.value);
          if (op.type == ValueType::kValue) {
            puts_->Add(1);
            bytes_written_->Add(op.key.size() + op.value.size());
          } else {
            deletes_->Add(1);
          }
        }
      }
    }
  }

  // Retire the group and hand leadership to the next queued writer.
  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != w) {
      ready->status = s;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last) break;
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  if (w->batch != nullptr) {
    commit_qos_us_[uint8_t(w->qos)]->Record(obs::SteadyNowMicros() -
                                            enqueued_us);
  }
  return s;
}

Status KVStore::MakeRoomForWrite(std::unique_lock<std::mutex>& lock,
                                 bool force_seal) {
  while (true) {
    if (!force_seal &&
        mem_->ApproximateBytes() < options_.memtable_max_bytes) {
      return Status::OK();
    }
    if (imm_ != nullptr) {
      // Both memtables full: stall, bounded by the background flush.
      write_stalls_->Add(1);
      if (!flush_scheduled_ && !shutting_down_) {
        // A previous flush failed and left imm_ in place; retry it.
        flush_scheduled_ = true;
        ScheduleBackground(&KVStore::BackgroundFlushTask);
      }
      const auto stall_start = std::chrono::steady_clock::now();
      bg_cv_.wait(lock);
      stall_time_us_->Add(uint64_t(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - stall_start)
              .count()));
      continue;
    }
    if (force_seal && mem_->entry_count() == 0) return Status::OK();
    return SealMemtableLocked();
  }
}

Status KVStore::SealMemtableLocked() {
  // Rotate the WAL: the sealed memtable stays covered by wal.imm.log
  // until its flush lands; writers continue into a fresh wal.log.  Only
  // the commit-group leader reaches here, so nobody is appending.
  wal_.Close();
  std::error_code ec;
  fs::rename(WalPath(), ImmWalPath(), ec);
  if (ec) return Status::IOError("WAL rotation failed in " + options_.dir);
  Status s = wal_.Open(WalPath());
  if (!s.ok()) return s;
  imm_ = std::shared_ptr<MemTable>(std::move(mem_));
  mem_ = std::make_unique<MemTable>();
  flush_scheduled_ = true;
  ScheduleBackground(&KVStore::BackgroundFlushTask);
  return Status::OK();
}

void KVStore::ScheduleBackground(void (KVStore::*method)()) {
  ++bg_inflight_;  // mu_ is held by every caller
  pool_->Submit([this, method] {
    (this->*method)();
    std::lock_guard<std::mutex> lock(mu_);
    --bg_inflight_;
    bg_cv_.notify_all();
  });
}

void KVStore::BackgroundFlushTask() {
  // flush_scheduled_ and bg_error_ are managed inside DoFlush, in the
  // same critical sections that change imm_ — clearing the flag here,
  // after the fact, would let a seal that slipped in between schedule a
  // second flush while this one still counts as "done".
  Status s = DoFlush();
  std::lock_guard<std::mutex> lock(mu_);
  if (s.ok()) {
    MaybeScheduleCompactionLocked();
  } else {
    DELUGE_LOG_WARN("background flush failed: %s", s.ToString().c_str());
  }
  bg_cv_.notify_all();
}

Status KVStore::DoFlush() {
  obs::Span span("storage.flush");
  obs::ScopedTimer timer(flush_us_);
  std::unique_lock<std::mutex> lock(mu_);
  std::shared_ptr<MemTable> imm = imm_;
  if (imm == nullptr) {
    flush_scheduled_ = false;
    return Status::OK();
  }
  uint64_t number = next_file_number_++;
  lock.unlock();

  // Build off-lock: writers keep committing into mem_ meanwhile.  The
  // memtable streams straight into the table builder — no materialized
  // entry vector between them.
  uint64_t logical_bytes = 0;
  auto table = BuildTableFromMemtable(imm.get(), number,
                                      options_.table_faults, &logical_bytes);

  lock.lock();
  if (!table.ok()) {
    // imm_ stays in place, still covered by wal.imm.log; clearing the
    // flag under the same lock lets a stalled writer schedule the retry.
    flush_scheduled_ = false;
    bg_error_ = table.status();
    return table.status();
  }
  l0_.push_front(table.value());
  Status s = WriteManifestLocked();
  if (!s.ok()) {
    // The table never became durably referenced: roll the install back
    // and keep imm_ (and wal.imm.log) for the retry.  Resetting imm_
    // here would let the next seal rename wal.log onto wal.imm.log, and
    // a crash would then orphan-delete the table while its covering WAL
    // is gone — acknowledged writes lost to a transient manifest error.
    l0_.pop_front();
    flush_scheduled_ = false;
    bg_error_ = s;
    lock.unlock();
    std::remove(TableFileName(number).c_str());
    if (block_cache_ != nullptr) {
      block_cache_->EraseTable(table.value()->table_id());
    }
    return s;
  }
  imm_.reset();
  flush_scheduled_ = false;
  bg_error_ = Status::OK();
  flushes_->Add(1);
  bytes_flushed_->Add(logical_bytes);
  l0_write_bytes_->Add(table.value()->file_size());
  UpdateLevelGaugesLocked();
  UpdateWriteAmpGauge();
  // Retire the sealed memtable's WAL inside the same critical section
  // that installs its table: the manifest above durably lists the table,
  // and WAL rotation (SealMemtableLocked) also runs under mu_ and only
  // once imm_ is null — so this remove can never hit a freshly rotated
  // wal.imm.log, which would be the only durable copy of the NEXT
  // sealed memtable.
  std::remove(ImmWalPath().c_str());
  return Status::OK();
}

void KVStore::MaybeScheduleCompactionLocked() {
  if (shutting_down_ || compaction_running_) return;
  if (l0_.size() < size_t(options_.l0_compaction_trigger)) return;
  compaction_running_ = true;
  ScheduleBackground(&KVStore::BackgroundCompactTask);
}

void KVStore::BackgroundCompactTask() {
  Status s = DoCompaction();
  std::lock_guard<std::mutex> lock(mu_);
  compaction_running_ = false;
  if (s.ok()) {
    MaybeScheduleCompactionLocked();  // more L0 may have piled up
  } else {
    // State is untouched on failure; the next flush re-triggers.
    DELUGE_LOG_WARN("background compaction failed: %s", s.ToString().c_str());
  }
  bg_cv_.notify_all();
}

Status KVStore::DoCompaction() {
  obs::Span span("storage.compact");
  obs::ScopedTimer timer(compact_us_);
  std::unique_lock<std::mutex> lock(mu_);
  const size_t n_l0 = l0_.size();
  // With no L0 there is nothing to push down: the leveled L1 is already
  // sorted and non-overlapping.
  if (n_l0 == 0) return Status::OK();

  // Input picking: every L0 table, plus only the contiguous run of L1
  // tables whose key ranges overlap the L0 set's span.  Because l1_ is
  // sorted by min_key with disjoint ranges, the overlapping tables form
  // a contiguous slice [overlap_lo, overlap_hi); everything outside it
  // is untouched — the rewrite cost tracks overlap size, not database
  // size.
  std::string l0_min, l0_max;
  bool have_span = false;
  for (const auto& t : l0_) {
    if (t->entry_count() == 0) continue;
    if (!have_span || t->min_key() < l0_min) l0_min = t->min_key();
    if (!have_span || t->max_key() > l0_max) l0_max = t->max_key();
    have_span = true;
  }
  size_t overlap_lo = 0, overlap_hi = 0;
  if (have_span) {
    while (overlap_lo < l1_.size() && l1_[overlap_lo]->max_key() < l0_min) {
      ++overlap_lo;
    }
    overlap_hi = overlap_lo;
    while (overlap_hi < l1_.size() && l1_[overlap_hi]->min_key() <= l0_max) {
      ++overlap_hi;
    }
  }

  // Newest first: all of L0 (already newest-first), then the L1 slice —
  // the merge's source-order tie-break then implements shadowing.
  std::vector<std::shared_ptr<SSTable>> inputs(l0_.begin(), l0_.end());
  inputs.insert(inputs.end(), l1_.begin() + std::ptrdiff_t(overlap_lo),
                l1_.begin() + std::ptrdiff_t(overlap_hi));

  uint64_t expected_entries = 0;
  uint64_t input_bytes = 0;
  for (const auto& t : inputs) {
    expected_entries += t->entry_count();
    input_bytes += t->file_size();
  }

  // Size-aware split: never more slices than the data would fill with
  // target-sized tables, so small merges stay one table on one thread.
  const uint64_t size_cap = std::max<uint64_t>(
      1, input_bytes / std::max<uint64_t>(1, options_.l1_target_table_bytes));
  const size_t max_parts = size_t(std::min<uint64_t>(
      uint64_t(options_.max_subcompactions), size_cap));
  lock.unlock();

  // Merge + build off-lock.  The inputs are immutable tables read via
  // positional I/O, so concurrent Gets on them are unaffected.  Newer
  // L0 tables flushed while we merge are NOT in `inputs` and survive
  // the install below untouched.  Dropping tombstones is legal because
  // L1 is the bottom level and every table overlapping the merged range
  // is an input — anything newer shadows us, anything a tombstone
  // shadowed is in the inputs.
  CompactionJob job;
  job.inputs = inputs;
  job.target_table_bytes = options_.l1_target_table_bytes;
  job.bloom_bits_per_key = options_.bloom_bits_per_key;
  job.faults = options_.table_faults;
  job.cache = block_cache_.get();
  job.next_output_path = [this] {
    std::lock_guard<std::mutex> path_lock(mu_);
    return TableFileName(next_file_number_++);
  };

  const auto spans =
      SpansFromBoundaries(PickSubcompactionBoundaries(inputs, max_parts));
  std::vector<SubcompactionResult> results(spans.size());
  // Disjoint key spans stream concurrently on the shared pool; the
  // caller participates, so this also makes progress when the pool is
  // busy (or is the 2-thread private pool already running this task).
  ParallelFor(pool_, spans.size(),
              [&](size_t i) { results[i] = RunSubcompaction(job, spans[i]); });

  Status failure;
  uint64_t consumed_entries = 0;
  uint64_t out_bytes = 0;
  std::vector<std::shared_ptr<SSTable>> outputs;
  for (auto& r : results) {
    if (!r.status.ok() && failure.ok()) failure = r.status;
    consumed_entries += r.entries_read;
    out_bytes += r.bytes_out;
    // Span order is key order, so concatenation keeps outputs sorted
    // and disjoint.
    outputs.insert(outputs.end(), r.outputs.begin(), r.outputs.end());
  }
  if (failure.ok() && consumed_entries != expected_entries) {
    // A scan that did not end cleanly must abort the whole compaction:
    // installing a partial merge would unlink input tables that still
    // hold durable, acknowledged data.  (Sub-compaction spans partition
    // the keyspace, so the consumed total must match exactly.)
    failure = Status::Corruption(
        "compaction input scan truncated: read " +
        std::to_string(consumed_entries) + " of " +
        std::to_string(expected_entries) + " entries");
  }
  if (!failure.ok()) {
    // All-or-nothing: drop every finished output of every slice.  The
    // readers close with their shared_ptrs; unlink reclaims the files
    // now instead of waiting for the next recovery's orphan sweep.
    for (auto& table : outputs) {
      std::string path = table->path();
      uint64_t id = table->table_id();
      table.reset();
      std::remove(path.c_str());
      if (block_cache_ != nullptr) block_cache_->EraseTable(id);
    }
    return failure;
  }
  for (const auto& t : outputs) {
    t->set_probe_counters(bloom_checks_, bloom_useful_);
  }

  // Short critical section: splice the outputs over the inputs (the
  // compacted L0 tables are the *oldest* suffix of l0_; the replaced L1
  // slice sits where the outputs' span belongs, so sortedness and
  // disjointness of l1_ are preserved).
  lock.lock();
  std::vector<std::string> obsolete_paths;
  std::vector<uint64_t> obsolete_ids;
  for (const auto& t : inputs) {
    obsolete_paths.push_back(t->path());
    obsolete_ids.push_back(t->table_id());
  }
  l0_.erase(l0_.end() - std::ptrdiff_t(n_l0), l0_.end());
  std::vector<std::shared_ptr<SSTable>> new_l1;
  new_l1.reserve(l1_.size() - (overlap_hi - overlap_lo) + outputs.size());
  new_l1.insert(new_l1.end(), l1_.begin(),
                l1_.begin() + std::ptrdiff_t(overlap_lo));
  new_l1.insert(new_l1.end(), outputs.begin(), outputs.end());
  new_l1.insert(new_l1.end(), l1_.begin() + std::ptrdiff_t(overlap_hi),
                l1_.end());
  l1_ = std::move(new_l1);
  compactions_->Add(1);
  subcompactions_->Add(spans.size());
  bytes_compacted_->Add(out_bytes);
  l1_write_bytes_->Add(out_bytes);
  UpdateLevelGaugesLocked();
  UpdateWriteAmpGauge();
  Status s = WriteManifestLocked();
  lock.unlock();
  if (!s.ok()) return s;

  // Readers holding table refs keep valid fds past the unlink.
  for (const auto& path : obsolete_paths) std::remove(path.c_str());
  if (block_cache_ != nullptr) {
    for (uint64_t id : obsolete_ids) block_cache_->EraseTable(id);
  }
  return Status::OK();
}

// ------------------------------------------------------------ Read path

Status KVStore::Get(std::string_view key, std::string* value) {
  obs::Span span("storage.get");
  gets_->Add(1);
  std::deque<std::shared_ptr<SSTable>> l0;
  std::vector<std::shared_ptr<SSTable>> l1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool tombstone = false;
    if (mem_->Get(key, kMaxSequence, value, &tombstone)) {
      return tombstone ? Status::NotFound() : Status::OK();
    }
    if (imm_ != nullptr &&
        imm_->Get(key, kMaxSequence, value, &tombstone)) {
      return tombstone ? Status::NotFound() : Status::OK();
    }
    l0 = l0_;
    l1 = l1_;
  }
  // Table probes run without the lock: positional reads + block cache;
  // the shared_ptr snapshots keep tables alive past concurrent
  // compactions.
  InternalEntry e;
  for (const auto& table : l0) {  // newest first
    // Cheap range gate before the bloom: L0 tables may overlap, but a
    // key outside a table's span cannot be in it.
    if (key < table->min_key() || key > table->max_key()) continue;
    Status s = table->Get(key, kMaxSequence, &e);
    if (s.ok()) {
      if (e.type == ValueType::kTombstone) return Status::NotFound();
      *value = std::move(e.value);
      return Status::OK();
    }
    if (!s.IsNotFound()) return s;
  }
  // L1 ranges are sorted and disjoint: binary search finds the single
  // table that can hold the key, so probes (and bloom checks) stay O(1)
  // no matter how many tables the level splits into.
  auto it = std::upper_bound(
      l1.begin(), l1.end(), key,
      [](std::string_view k, const std::shared_ptr<SSTable>& t) {
        return k < t->min_key();
      });
  if (it != l1.begin()) {
    const auto& table = *(it - 1);
    if (key <= table->max_key()) {
      Status s = table->Get(key, kMaxSequence, &e);
      if (s.ok()) {
        if (e.type == ValueType::kTombstone) return Status::NotFound();
        *value = std::move(e.value);
        return Status::OK();
      }
      if (!s.IsNotFound()) return s;
    }
  }
  return Status::NotFound();
}

// ------------------------------------------------- Flush / compaction API

Status KVStore::Flush() {
  Writer seal(nullptr);
  Status s = CommitWriter(&seal);
  if (!s.ok()) return s;
  std::unique_lock<std::mutex> lock(mu_);
  while ((imm_ != nullptr || flush_scheduled_) && bg_error_.ok()) {
    bg_cv_.wait(lock);
  }
  return bg_error_;
}

Status KVStore::CompactAll() {
  Status s = Flush();
  if (!s.ok()) return s;
  std::unique_lock<std::mutex> lock(mu_);
  while (compaction_running_) bg_cv_.wait(lock);
  compaction_running_ = true;  // claim the compaction slot, run inline
  lock.unlock();
  s = DoCompaction();
  lock.lock();
  compaction_running_ = false;
  bg_cv_.notify_all();
  return s;
}

// --------------------------------------------------------------- Merges

std::vector<InternalEntry> KVStore::MergeEntries(
    std::vector<InternalEntry> all, bool drop_tombstones) {
  // Sort by internal order and deduplicate keeping the newest version
  // per key.  At simulation scale a sort-based merge is simpler than a
  // k-way heap and equally correct.
  std::stable_sort(all.begin(), all.end(),
                   [](const InternalEntry& a, const InternalEntry& b) {
                     return InternalEntryComparator()(a, b) < 0;
                   });
  std::vector<InternalEntry> out;
  out.reserve(all.size());
  std::string_view last_key;
  bool have_last = false;
  for (auto& e : all) {
    if (have_last && e.user_key == last_key) {
      continue;  // older version of the same key
    }
    have_last = true;
    last_key = e.user_key;
    if (drop_tombstones && e.type == ValueType::kTombstone) {
      // Newest version is a delete: key is gone.  (last_key remains set
      // so older versions are still skipped.)
      continue;
    }
    out.push_back(std::move(e));
    last_key = out.back().user_key;  // re-point after move
  }
  return out;
}

std::vector<InternalEntry> KVStore::GatherAllLocked() const {
  std::vector<InternalEntry> all;
  MemTable::Iterator mit(mem_.get());
  for (mit.SeekToFirst(); mit.Valid(); mit.Next()) {
    all.push_back(mit.entry());
  }
  if (imm_ != nullptr) {
    MemTable::Iterator iit(imm_.get());
    for (iit.SeekToFirst(); iit.Valid(); iit.Next()) {
      all.push_back(iit.entry());
    }
  }
  auto drain = [&all](const std::shared_ptr<SSTable>& t) {
    SSTable::Iterator it(t.get());
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      all.push_back(it.entry());
    }
    if (!it.status().ok()) {
      DELUGE_LOG_WARN("snapshot scan of %s stopped early: %s",
                      t->path().c_str(), it.status().ToString().c_str());
    }
  };
  for (const auto& t : l0_) drain(t);
  for (const auto& t : l1_) drain(t);
  return all;
}

KVStore::Iterator KVStore::NewIterator() {
  std::lock_guard<std::mutex> lock(mu_);
  Iterator it;
  it.entries_ = MergeEntries(GatherAllLocked(), /*drop_tombstones=*/true);
  return it;
}

void KVStore::Iterator::Seek(std::string_view key) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const InternalEntry& e, std::string_view k) {
                               return e.user_key < k;
                             });
  pos_ = size_t(it - entries_.begin());
}

// ---------------------------------------------------------------- State

Status KVStore::WriteManifestLocked() {
  const std::string tmp = options_.dir + "/MANIFEST.tmp";
  const std::string final_path = options_.dir + "/MANIFEST";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) return Status::IOError("cannot write manifest");
    out << kManifestMagicV2 << "\n";
    out << next_file_number_ << " " << next_seq_ << "\n";
    auto number_of = [](const std::string& path) {
      // .../NNNNNN.sst -> NNNNNN
      size_t slash = path.find_last_of('/');
      return std::stoull(path.substr(slash + 1));
    };
    for (const auto& t : l0_) out << 0 << " " << number_of(t->path()) << "\n";
    // L1 in range order, each with its hex-encoded key span — the
    // partition is inspectable (and checkable) without opening tables.
    for (const auto& t : l1_) {
      out << 1 << " " << number_of(t->path()) << " " << HexKey(t->min_key())
          << " " << HexKey(t->max_key()) << "\n";
    }
    if (!out.good()) return Status::IOError("manifest write failed");
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) return Status::IOError("manifest rename failed");
  return Status::OK();
}

void KVStore::UpdateLevelGaugesLocked() {
  l0_tables_->Set(double(l0_.size()));
  l1_tables_->Set(double(l1_.size()));
}

void KVStore::UpdateWriteAmpGauge() {
  const uint64_t flushed = bytes_flushed_->Value();
  if (flushed == 0) return;
  write_amp_->Set(double(bytes_compacted_->Value()) / double(flushed));
}

Result<std::shared_ptr<SSTable>> KVStore::BuildTableFromMemtable(
    MemTable* mem, uint64_t file_number, IoFaultInjector* faults,
    uint64_t* logical_bytes) {
  SSTableBuilder builder(TableFileName(file_number),
                         options_.bloom_bits_per_key, faults);
  uint64_t logical = 0;
  MemTable::Iterator it(mem);
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    logical += it.entry().ApproximateSize();
    Status s = builder.Add(it.entry());
    if (!s.ok()) return s;
  }
  auto table = builder.Finish(block_cache_.get());
  if (!table.ok()) return table.status();
  table.value()->set_probe_counters(bloom_checks_, bloom_useful_);
  *logical_bytes = logical;
  return table;
}

KVStoreStats KVStore::stats() const {
  KVStoreStats s;
  s.puts = puts_->Value();
  s.deletes = deletes_->Value();
  s.gets = gets_->Value();
  s.flushes = flushes_->Value();
  s.compactions = compactions_->Value();
  s.bytes_written = bytes_written_->Value();
  s.bytes_compacted = bytes_compacted_->Value();
  s.bytes_flushed = bytes_flushed_->Value();
  s.l0_write_bytes = l0_write_bytes_->Value();
  s.l1_write_bytes = l1_write_bytes_->Value();
  s.subcompactions = subcompactions_->Value();
  s.write_stalls = write_stalls_->Value();
  s.stall_time_us = stall_time_us_->Value();
  s.wal_syncs = wal_syncs_->Value();
  s.bloom_checks = bloom_checks_->Value();
  s.bloom_useful = bloom_useful_->Value();
  if (block_cache_ != nullptr) {
    s.cache_hits = block_cache_->hits();
    s.cache_misses = block_cache_->misses();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto add_probes = [&s](const std::shared_ptr<SSTable>& t) {
    s.bloom_negatives += t->bloom_negative_count.load(std::memory_order_relaxed);
    s.disk_probes += t->disk_probe_count.load(std::memory_order_relaxed);
  };
  for (const auto& t : l0_) add_probes(t);
  for (const auto& t : l1_) add_probes(t);
  return s;
}

size_t KVStore::l0_file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l0_.size();
}

size_t KVStore::l1_file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l1_.size();
}

SequenceNumber KVStore::last_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

}  // namespace deluge::storage
