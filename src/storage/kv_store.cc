#include "storage/kv_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace deluge::storage {

namespace fs = std::filesystem;

namespace {

// WAL record payload: [fixed64 seq][u8 type][varint klen][key][varint vlen][value]
std::string EncodeWalRecord(SequenceNumber seq, ValueType type,
                            std::string_view key, std::string_view value) {
  std::string rec;
  rec.reserve(key.size() + value.size() + 16);
  PutFixed64(&rec, seq);
  rec.push_back(static_cast<char>(type));
  PutLengthPrefixed(&rec, key);
  PutLengthPrefixed(&rec, value);
  return rec;
}

bool DecodeWalRecord(std::string_view rec, SequenceNumber* seq,
                     ValueType* type, std::string_view* key,
                     std::string_view* value) {
  uint64_t s = 0;
  if (!GetFixed64(&rec, &s) || rec.empty()) return false;
  *seq = s;
  *type = static_cast<ValueType>(rec.front());
  rec.remove_prefix(1);
  return GetLengthPrefixed(&rec, key) && GetLengthPrefixed(&rec, value);
}

}  // namespace

KVStore::KVStore(const KVStoreOptions& options)
    : options_(options), mem_(std::make_unique<MemTable>()) {}

Result<std::unique_ptr<KVStore>> KVStore::Open(const KVStoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("KVStoreOptions.dir must be set");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) return Status::IOError("cannot create dir " + options.dir);

  auto store = std::unique_ptr<KVStore>(new KVStore(options));
  Status s = store->Recover();
  if (!s.ok()) return s;
  return store;
}

std::string KVStore::TableFileName(uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(number));
  return options_.dir + "/" + buf;
}

Status KVStore::Recover() {
  // 1. Manifest: "next_file next_seq" then one "level number" per line.
  const std::string manifest_path = options_.dir + "/MANIFEST";
  std::ifstream manifest(manifest_path);
  if (manifest.good()) {
    manifest >> next_file_number_ >> next_seq_;
    int level;
    uint64_t number;
    while (manifest >> level >> number) {
      auto table = SSTable::Open(TableFileName(number));
      if (!table.ok()) return table.status();
      if (level == 0) {
        l0_.push_back(table.value());  // manifest lists newest first
      } else {
        l1_.push_back(table.value());
      }
    }
  }

  // 2. WAL replay into the fresh memtable.
  const std::string wal_path = options_.dir + "/wal.log";
  SequenceNumber max_seq = next_seq_ > 0 ? next_seq_ - 1 : 0;
  auto replayed = WriteAheadLog::Replay(
      wal_path, [this, &max_seq](std::string_view rec) {
        SequenceNumber seq;
        ValueType type;
        std::string_view key, value;
        if (DecodeWalRecord(rec, &seq, &type, &key, &value)) {
          mem_->Add(seq, type, key, value);
          max_seq = std::max(max_seq, seq);
        }
      });
  if (!replayed.ok()) return replayed.status();
  next_seq_ = max_seq + 1;

  return wal_.Open(wal_path);
}

Status KVStore::Put(std::string_view key, std::string_view value) {
  Status s = Write(ValueType::kValue, key, value);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.puts;
    stats_.bytes_written += key.size() + value.size();
  }
  return s;
}

Status KVStore::Delete(std::string_view key) {
  Status s = Write(ValueType::kTombstone, key, "");
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deletes;
  }
  return s;
}

Status KVStore::Write(ValueType type, std::string_view key,
                      std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  std::lock_guard<std::mutex> lock(mu_);
  SequenceNumber seq = next_seq_++;
  Status s = wal_.Append(EncodeWalRecord(seq, type, key, value),
                         options_.sync_wal);
  if (!s.ok()) return s;
  mem_->Add(seq, type, key, value);
  if (mem_->ApproximateBytes() >= options_.memtable_max_bytes) {
    s = FlushLocked();
    if (!s.ok()) return s;
    if (l0_.size() >= size_t(options_.l0_compaction_trigger)) {
      return CompactLocked();
    }
  }
  return Status::OK();
}

Status KVStore::Get(std::string_view key, std::string* value) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.gets;
  bool tombstone = false;
  if (mem_->Get(key, kMaxSequence, value, &tombstone)) {
    return tombstone ? Status::NotFound() : Status::OK();
  }
  InternalEntry e;
  for (const auto& table : l0_) {  // newest first
    Status s = table->Get(key, kMaxSequence, &e);
    if (s.ok()) {
      if (e.type == ValueType::kTombstone) return Status::NotFound();
      *value = std::move(e.value);
      return Status::OK();
    }
    if (!s.IsNotFound()) return s;
  }
  for (const auto& table : l1_) {
    Status s = table->Get(key, kMaxSequence, &e);
    if (s.ok()) {
      if (e.type == ValueType::kTombstone) return Status::NotFound();
      *value = std::move(e.value);
      return Status::OK();
    }
    if (!s.IsNotFound()) return s;
  }
  return Status::NotFound();
}

Status KVStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status KVStore::FlushLocked() {
  if (mem_->entry_count() == 0) return Status::OK();
  std::vector<InternalEntry> entries;
  entries.reserve(mem_->entry_count());
  MemTable::Iterator it(mem_.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    entries.push_back(it.entry());
  }
  uint64_t number = next_file_number_++;
  auto table = SSTable::Build(TableFileName(number), entries,
                              options_.bloom_bits_per_key);
  if (!table.ok()) return table.status();
  l0_.push_front(table.value());
  mem_ = std::make_unique<MemTable>();
  ++stats_.flushes;
  Status s = wal_.Reset();
  if (!s.ok()) return s;
  return WriteManifestLocked();
}

std::vector<InternalEntry> KVStore::MergeAllLocked(
    bool drop_tombstones, bool keep_all_versions) const {
  // Gather every entry from every source, then sort by internal order and
  // deduplicate keeping the newest version per key.  At simulation scale
  // a sort-based merge is simpler than a k-way heap and equally correct.
  std::vector<InternalEntry> all;
  MemTable::Iterator mit(mem_.get());
  for (mit.SeekToFirst(); mit.Valid(); mit.Next()) {
    all.push_back(mit.entry());
  }
  auto drain = [&all](const std::shared_ptr<SSTable>& t) {
    SSTable::Iterator it(t.get());
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      all.push_back(it.entry());
    }
  };
  for (const auto& t : l0_) drain(t);
  for (const auto& t : l1_) drain(t);

  std::stable_sort(all.begin(), all.end(),
                   [](const InternalEntry& a, const InternalEntry& b) {
                     return InternalEntryComparator()(a, b) < 0;
                   });
  std::vector<InternalEntry> out;
  out.reserve(all.size());
  std::string_view last_key;
  bool have_last = false;
  for (auto& e : all) {
    if (!keep_all_versions && have_last && e.user_key == last_key) {
      continue;  // older version of the same key
    }
    have_last = true;
    last_key = e.user_key;
    if (drop_tombstones && e.type == ValueType::kTombstone) {
      // Newest version is a delete: key is gone.  (last_key remains set so
      // older versions are still skipped.)
      continue;
    }
    out.push_back(std::move(e));
    last_key = out.back().user_key;  // re-point after move
  }
  return out;
}

Status KVStore::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = FlushLocked();
  if (!s.ok()) return s;
  return CompactLocked();
}

Status KVStore::CompactLocked() {
  if (l0_.empty() && l1_.size() <= 1) return Status::OK();
  std::vector<InternalEntry> merged =
      MergeAllLocked(/*drop_tombstones=*/true, /*keep_all_versions=*/false);
  for (const auto& e : merged) stats_.bytes_compacted += e.ApproximateSize();

  std::vector<std::string> obsolete;
  for (const auto& t : l0_) obsolete.push_back(t->path());
  for (const auto& t : l1_) obsolete.push_back(t->path());

  l1_.clear();
  if (!merged.empty()) {
    uint64_t number = next_file_number_++;
    auto table = SSTable::Build(TableFileName(number), merged,
                                options_.bloom_bits_per_key);
    if (!table.ok()) return table.status();
    l1_.push_back(table.value());
  }
  l0_.clear();
  ++stats_.compactions;
  Status s = WriteManifestLocked();
  if (!s.ok()) return s;
  for (const auto& path : obsolete) std::remove(path.c_str());
  return Status::OK();
}

Status KVStore::WriteManifestLocked() {
  const std::string tmp = options_.dir + "/MANIFEST.tmp";
  const std::string final_path = options_.dir + "/MANIFEST";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) return Status::IOError("cannot write manifest");
    out << next_file_number_ << " " << next_seq_ << "\n";
    auto number_of = [](const std::string& path) {
      // .../NNNNNN.sst -> NNNNNN
      size_t slash = path.find_last_of('/');
      return std::stoull(path.substr(slash + 1));
    };
    for (const auto& t : l0_) out << 0 << " " << number_of(t->path()) << "\n";
    for (const auto& t : l1_) out << 1 << " " << number_of(t->path()) << "\n";
    if (!out.good()) return Status::IOError("manifest write failed");
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) return Status::IOError("manifest rename failed");
  return Status::OK();
}

KVStore::Iterator KVStore::NewIterator() {
  std::lock_guard<std::mutex> lock(mu_);
  Iterator it;
  it.entries_ =
      MergeAllLocked(/*drop_tombstones=*/true, /*keep_all_versions=*/false);
  return it;
}

void KVStore::Iterator::Seek(std::string_view key) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const InternalEntry& e, std::string_view k) {
                               return e.user_key < k;
                             });
  pos_ = size_t(it - entries_.begin());
}

KVStoreStats KVStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t KVStore::l0_file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l0_.size();
}

size_t KVStore::l1_file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l1_.size();
}

SequenceNumber KVStore::last_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

}  // namespace deluge::storage
