#include "storage/kv_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"
#include "obs/trace.h"

namespace deluge::storage {

namespace fs = std::filesystem;

namespace {

/// Upper bound on one commit group's payload: keeps follower latency
/// bounded when a firehose of writers piles onto the queue.
constexpr size_t kMaxGroupBytes = 1u << 20;

// WAL record payload: one record per committed WriteBatch, holding the
// batch's ops back to back.  Per-op encoding:
//   [fixed64 seq][u8 type][varint klen][key][varint vlen][value]
// A single-op batch is byte-identical to the old one-record-per-op
// format, and the record's CRC makes a batch all-or-nothing on replay:
// a torn frame drops the whole batch, never a recovered prefix of it —
// Write()'s atomicity contract holds across crashes.
void AppendWalOp(std::string* rec, SequenceNumber seq, ValueType type,
                 std::string_view key, std::string_view value) {
  PutFixed64(rec, seq);
  rec->push_back(static_cast<char>(type));
  PutLengthPrefixed(rec, key);
  PutLengthPrefixed(rec, value);
}

// Consumes one op from the front of `*rec`; false once exhausted.
bool DecodeWalOp(std::string_view* rec, SequenceNumber* seq, ValueType* type,
                 std::string_view* key, std::string_view* value) {
  uint64_t s = 0;
  if (!GetFixed64(rec, &s) || rec->empty()) return false;
  *seq = s;
  *type = static_cast<ValueType>(rec->front());
  rec->remove_prefix(1);
  return GetLengthPrefixed(rec, key) && GetLengthPrefixed(rec, value);
}

}  // namespace

KVStore::KVStore(const KVStoreOptions& options)
    : options_(options), mem_(std::make_unique<MemTable>()) {
  if (options_.block_cache_bytes > 0) {
    block_cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes);
  }
  if (options_.background_pool != nullptr) {
    pool_ = options_.background_pool;
  } else {
    // Private pool: one slot for the flush, one so a compaction can
    // overlap it.
    owned_pool_ = std::make_unique<ThreadPool>(2);
    pool_ = owned_pool_.get();
  }
}

KVStore::~KVStore() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    // Wait on the task bodies themselves, not the scheduling flags: a
    // task clears its flag before its last touch of `this`, so on an
    // external pool the flags alone would let destruction race the tail
    // of a still-running task.
    while (bg_inflight_ > 0) bg_cv_.wait(lock);
  }
  owned_pool_.reset();  // joins the private pool before members die
}

Result<std::unique_ptr<KVStore>> KVStore::Open(const KVStoreOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("KVStoreOptions.dir must be set");
  }
  if (options.memtable_max_bytes == 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.memtable_max_bytes must be positive");
  }
  if (options.l0_compaction_trigger <= 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.l0_compaction_trigger must be positive");
  }
  if (options.bloom_bits_per_key <= 0) {
    return Status::InvalidArgument(
        "KVStoreOptions.bloom_bits_per_key must be positive");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) return Status::IOError("cannot create dir " + options.dir);

  auto store = std::unique_ptr<KVStore>(new KVStore(options));
  Status s = store->Recover();
  if (!s.ok()) return s;
  return store;
}

std::string KVStore::TableFileName(uint64_t number) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu.sst",
                static_cast<unsigned long long>(number));
  return options_.dir + "/" + buf;
}

void KVStore::RemoveOrphanTablesLocked() {
  std::vector<std::string> live;
  for (const auto& t : l0_) live.push_back(t->path());
  for (const auto& t : l1_) live.push_back(t->path());
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    if (entry.path().extension() != ".sst") continue;
    std::string path = entry.path().string();
    if (std::find(live.begin(), live.end(), path) == live.end()) {
      // Wreckage of a flush/compaction that crashed mid-build; the
      // manifest never referenced it.
      std::remove(path.c_str());
    }
  }
}

Status KVStore::Recover() {
  // 1. Manifest: "next_file next_seq" then one "level number" per line.
  const std::string manifest_path = options_.dir + "/MANIFEST";
  std::ifstream manifest(manifest_path);
  if (manifest.good()) {
    manifest >> next_file_number_ >> next_seq_;
    int level;
    uint64_t number;
    while (manifest >> level >> number) {
      auto table = SSTable::Open(TableFileName(number), block_cache_.get());
      if (!table.ok()) return table.status();
      if (level == 0) {
        l0_.push_back(table.value());  // manifest lists newest first
      } else {
        l1_.push_back(table.value());
      }
    }
  }

  // 2. Unreferenced .sst files are wreckage of an interrupted
  // flush/compaction build; their data is still covered by the WALs or
  // the old table set, so they are safe to drop.
  RemoveOrphanTablesLocked();

  SequenceNumber max_seq = next_seq_ > 0 ? next_seq_ - 1 : 0;

  // 3. Complete an interrupted background flush: wal.imm.log covers a
  // sealed memtable whose SSTable never reached the manifest.  Replay
  // it and finish the flush now, so acknowledged writes survive a crash
  // at any point of the flush pipeline.
  if (fs::exists(ImmWalPath())) {
    MemTable imm;
    auto replayed = WriteAheadLog::Replay(
        ImmWalPath(), [&imm, &max_seq](std::string_view rec) {
          SequenceNumber seq;
          ValueType type;
          std::string_view key, value;
          while (DecodeWalOp(&rec, &seq, &type, &key, &value)) {
            imm.Add(seq, type, key, value);
            max_seq = std::max(max_seq, seq);
          }
        });
    if (!replayed.ok()) return replayed.status();
    if (imm.entry_count() > 0) {
      std::vector<InternalEntry> entries;
      entries.reserve(imm.entry_count());
      MemTable::Iterator it(&imm);
      for (it.SeekToFirst(); it.Valid(); it.Next()) {
        entries.push_back(it.entry());
      }
      uint64_t number = next_file_number_++;
      auto table =
          SSTable::Build(TableFileName(number), entries,
                         options_.bloom_bits_per_key,
                         /*faults=*/nullptr, block_cache_.get());
      if (!table.ok()) return table.status();
      l0_.push_front(table.value());  // newer than every manifest table
      next_seq_ = std::max(next_seq_, max_seq + 1);
      Status s = WriteManifestLocked();  // durable before dropping the log
      if (!s.ok()) return s;
    }
    std::remove(ImmWalPath().c_str());
  }

  // 4. Active WAL replay into the fresh memtable.
  uint64_t valid_prefix = 0;
  auto replayed = WriteAheadLog::Replay(
      WalPath(),
      [this, &max_seq](std::string_view rec) {
        SequenceNumber seq;
        ValueType type;
        std::string_view key, value;
        while (DecodeWalOp(&rec, &seq, &type, &key, &value)) {
          mem_->Add(seq, type, key, value);
          max_seq = std::max(max_seq, seq);
        }
      },
      &valid_prefix);
  if (!replayed.ok()) return replayed.status();
  next_seq_ = max_seq + 1;

  // A crash mid-append leaves a torn frame at the tail.  Cut it before
  // reuse: appending behind the garbage would make every post-recovery
  // commit unreachable on the NEXT replay (which stops at the tear) —
  // silent loss of acknowledged writes one crash later.
  auto wal_size = FileSize(WalPath());
  if (wal_size.ok() && wal_size.value() > valid_prefix) {
    Status s = TruncateFile(WalPath(), valid_prefix);
    if (!s.ok()) return s;
  }
  return wal_.Open(WalPath());
}

// ----------------------------------------------------------- Write path

Status KVStore::Put(std::string_view key, std::string_view value) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  WriteBatch batch;
  batch.Put(key, value);
  Writer w(&batch);
  return CommitWriter(&w);
}

Status KVStore::Delete(std::string_view key) {
  if (key.empty()) return Status::InvalidArgument("empty key");
  WriteBatch batch;
  batch.Delete(key);
  Writer w(&batch);
  return CommitWriter(&w);
}

Status KVStore::Write(const WriteBatch& batch) {
  if (batch.ops_.empty()) return Status::OK();
  // A batch is one WAL record; replay rejects records over 64 MB as
  // corruption, so an oversized batch would be acknowledged yet
  // unrecoverable.  Refuse it up front (56 MB leaves margin for the
  // per-op framing overhead).
  if (batch.approximate_bytes() > (56u << 20)) {
    return Status::InvalidArgument("WriteBatch exceeds 56 MB");
  }
  for (const auto& op : batch.ops_) {
    if (op.key.empty()) return Status::InvalidArgument("empty key");
  }
  Writer w(&batch);
  return CommitWriter(&w);
}

Status KVStore::CommitWriter(Writer* w) {
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(w);
  while (!w->done && w != writers_.front()) w->cv.wait(lock);
  if (w->done) return w->status;  // a leader committed for us

  // This writer is the group leader.
  obs::Span span("storage.commit");
  obs::ScopedTimer timer(commit_us_);
  Status s = MakeRoomForWrite(lock, /*force_seal=*/w->batch == nullptr);

  Writer* last = w;
  std::vector<const WriteBatch*> group;
  size_t group_ops = 0;
  if (s.ok() && w->batch != nullptr) {
    group.push_back(w->batch);
    group_ops = w->batch->ops_.size();
    if (options_.group_commit) {
      size_t group_bytes = w->batch->approximate_bytes();
      for (auto it = writers_.begin() + 1;
           it != writers_.end() && group_bytes < kMaxGroupBytes; ++it) {
        Writer* follower = *it;
        if (follower->batch == nullptr) break;  // seal requests ride alone
        group.push_back(follower->batch);
        group_ops += follower->batch->ops_.size();
        group_bytes += follower->batch->approximate_bytes();
        last = follower;
      }
    }
  }

  if (s.ok() && group_ops > 0) {
    SequenceNumber first_seq = next_seq_;
    next_seq_ += group_ops;

    // WAL append + sync run with mu_ released: queue leadership is the
    // WAL's exclusive-writer guarantee, and readers/background tasks
    // may proceed meanwhile.
    lock.unlock();
    // One WAL record per batch (not per op): the frame CRC then covers
    // the whole batch, so replay applies it all-or-nothing.  The WAL
    // takes slices of the encoded records — no re-serialisation.
    std::vector<std::string> records;
    records.reserve(group.size());
    SequenceNumber seq = first_seq;
    for (const WriteBatch* b : group) {
      std::string rec;
      rec.reserve(b->approximate_bytes() + 16);
      for (const auto& op : b->ops_) {
        AppendWalOp(&rec, seq++, op.type, op.key, op.value);
      }
      records.push_back(std::move(rec));
    }
    std::vector<common::Slice> record_slices(records.begin(), records.end());
    s = wal_.AppendBatch(record_slices, options_.sync_wal);
    if (s.ok() && options_.sync_wal) {
      wal_syncs_->Add(1);
    }
    lock.lock();

    if (s.ok()) {
      seq = first_seq;
      for (const WriteBatch* b : group) {
        for (const auto& op : b->ops_) {
          mem_->Add(seq++, op.type, op.key, op.value);
          if (op.type == ValueType::kValue) {
            puts_->Add(1);
            bytes_written_->Add(op.key.size() + op.value.size());
          } else {
            deletes_->Add(1);
          }
        }
      }
    }
  }

  // Retire the group and hand leadership to the next queued writer.
  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != w) {
      ready->status = s;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last) break;
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  return s;
}

Status KVStore::MakeRoomForWrite(std::unique_lock<std::mutex>& lock,
                                 bool force_seal) {
  while (true) {
    if (!force_seal &&
        mem_->ApproximateBytes() < options_.memtable_max_bytes) {
      return Status::OK();
    }
    if (imm_ != nullptr) {
      // Both memtables full: stall, bounded by the background flush.
      write_stalls_->Add(1);
      if (!flush_scheduled_ && !shutting_down_) {
        // A previous flush failed and left imm_ in place; retry it.
        flush_scheduled_ = true;
        ScheduleBackground(&KVStore::BackgroundFlushTask);
      }
      bg_cv_.wait(lock);
      continue;
    }
    if (force_seal && mem_->entry_count() == 0) return Status::OK();
    return SealMemtableLocked();
  }
}

Status KVStore::SealMemtableLocked() {
  // Rotate the WAL: the sealed memtable stays covered by wal.imm.log
  // until its flush lands; writers continue into a fresh wal.log.  Only
  // the commit-group leader reaches here, so nobody is appending.
  wal_.Close();
  std::error_code ec;
  fs::rename(WalPath(), ImmWalPath(), ec);
  if (ec) return Status::IOError("WAL rotation failed in " + options_.dir);
  Status s = wal_.Open(WalPath());
  if (!s.ok()) return s;
  imm_ = std::shared_ptr<MemTable>(std::move(mem_));
  mem_ = std::make_unique<MemTable>();
  flush_scheduled_ = true;
  ScheduleBackground(&KVStore::BackgroundFlushTask);
  return Status::OK();
}

void KVStore::ScheduleBackground(void (KVStore::*method)()) {
  ++bg_inflight_;  // mu_ is held by every caller
  pool_->Submit([this, method] {
    (this->*method)();
    std::lock_guard<std::mutex> lock(mu_);
    --bg_inflight_;
    bg_cv_.notify_all();
  });
}

void KVStore::BackgroundFlushTask() {
  // flush_scheduled_ and bg_error_ are managed inside DoFlush, in the
  // same critical sections that change imm_ — clearing the flag here,
  // after the fact, would let a seal that slipped in between schedule a
  // second flush while this one still counts as "done".
  Status s = DoFlush();
  std::lock_guard<std::mutex> lock(mu_);
  if (s.ok()) {
    MaybeScheduleCompactionLocked();
  } else {
    DELUGE_LOG_WARN("background flush failed: %s", s.ToString().c_str());
  }
  bg_cv_.notify_all();
}

Status KVStore::DoFlush() {
  obs::Span span("storage.flush");
  obs::ScopedTimer timer(flush_us_);
  std::unique_lock<std::mutex> lock(mu_);
  std::shared_ptr<MemTable> imm = imm_;
  if (imm == nullptr) {
    flush_scheduled_ = false;
    return Status::OK();
  }
  uint64_t number = next_file_number_++;
  lock.unlock();

  // Build off-lock: writers keep committing into mem_ meanwhile.
  std::vector<InternalEntry> entries;
  entries.reserve(imm->entry_count());
  MemTable::Iterator it(imm.get());
  for (it.SeekToFirst(); it.Valid(); it.Next()) {
    entries.push_back(it.entry());
  }
  auto table =
      SSTable::Build(TableFileName(number), entries,
                     options_.bloom_bits_per_key, options_.table_faults,
                     block_cache_.get());

  lock.lock();
  if (!table.ok()) {
    // imm_ stays in place, still covered by wal.imm.log; clearing the
    // flag under the same lock lets a stalled writer schedule the retry.
    flush_scheduled_ = false;
    bg_error_ = table.status();
    return table.status();
  }
  l0_.push_front(table.value());
  Status s = WriteManifestLocked();
  if (!s.ok()) {
    // The table never became durably referenced: roll the install back
    // and keep imm_ (and wal.imm.log) for the retry.  Resetting imm_
    // here would let the next seal rename wal.log onto wal.imm.log, and
    // a crash would then orphan-delete the table while its covering WAL
    // is gone — acknowledged writes lost to a transient manifest error.
    l0_.pop_front();
    flush_scheduled_ = false;
    bg_error_ = s;
    lock.unlock();
    std::remove(TableFileName(number).c_str());
    if (block_cache_ != nullptr) {
      block_cache_->EraseTable(table.value()->table_id());
    }
    return s;
  }
  imm_.reset();
  flush_scheduled_ = false;
  bg_error_ = Status::OK();
  flushes_->Add(1);
  // Retire the sealed memtable's WAL inside the same critical section
  // that installs its table: the manifest above durably lists the table,
  // and WAL rotation (SealMemtableLocked) also runs under mu_ and only
  // once imm_ is null — so this remove can never hit a freshly rotated
  // wal.imm.log, which would be the only durable copy of the NEXT
  // sealed memtable.
  std::remove(ImmWalPath().c_str());
  return Status::OK();
}

void KVStore::MaybeScheduleCompactionLocked() {
  if (shutting_down_ || compaction_running_) return;
  if (l0_.size() < size_t(options_.l0_compaction_trigger)) return;
  compaction_running_ = true;
  ScheduleBackground(&KVStore::BackgroundCompactTask);
}

void KVStore::BackgroundCompactTask() {
  Status s = DoCompaction();
  std::lock_guard<std::mutex> lock(mu_);
  compaction_running_ = false;
  if (s.ok()) {
    MaybeScheduleCompactionLocked();  // more L0 may have piled up
  } else {
    // State is untouched on failure; the next flush re-triggers.
    DELUGE_LOG_WARN("background compaction failed: %s", s.ToString().c_str());
  }
  bg_cv_.notify_all();
}

Status KVStore::DoCompaction() {
  obs::Span span("storage.compact");
  obs::ScopedTimer timer(compact_us_);
  std::unique_lock<std::mutex> lock(mu_);
  size_t n_l0 = l0_.size();
  std::vector<std::shared_ptr<SSTable>> inputs(l0_.begin(), l0_.end());
  inputs.insert(inputs.end(), l1_.begin(), l1_.end());
  if (n_l0 == 0 && l1_.size() <= 1) return Status::OK();
  uint64_t number = next_file_number_++;
  lock.unlock();

  // Merge + build off-lock.  The inputs are immutable tables read via
  // positional I/O, so concurrent Gets on them are unaffected.  Newer
  // L0 tables flushed while we merge are NOT in `inputs` and survive
  // the install below untouched.  Dropping tombstones is legal because
  // the inputs are the complete table set as of the snapshot — anything
  // newer shadows us, anything a tombstone shadowed is in the inputs.
  uint64_t expected = 0;
  for (const auto& t : inputs) expected += t->entry_count();
  std::vector<InternalEntry> all;
  all.reserve(expected);
  for (const auto& t : inputs) {
    SSTable::Iterator it(t.get());
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      all.push_back(it.entry());
    }
    // A scan that did not end cleanly (I/O error, truncated record) must
    // abort the whole compaction: installing a partial merge would
    // unlink input tables that still hold durable, acknowledged data.
    if (!it.status().ok()) return it.status();
  }
  if (all.size() != expected) {
    return Status::Corruption("compaction input scan truncated: read " +
                              std::to_string(all.size()) + " of " +
                              std::to_string(expected) + " entries");
  }
  std::vector<InternalEntry> merged =
      MergeEntries(std::move(all), /*drop_tombstones=*/true);
  uint64_t out_bytes = 0;
  for (const auto& e : merged) out_bytes += e.ApproximateSize();

  std::shared_ptr<SSTable> output;
  if (!merged.empty()) {
    auto table =
        SSTable::Build(TableFileName(number), merged,
                       options_.bloom_bits_per_key, options_.table_faults,
                       block_cache_.get());
    if (!table.ok()) return table.status();
    output = table.value();
  }

  // Short critical section: swap the snapshot inputs for the merged run
  // (the compacted L0 tables are the *oldest* suffix of l0_).
  lock.lock();
  std::vector<std::string> obsolete_paths;
  std::vector<uint64_t> obsolete_ids;
  for (const auto& t : inputs) {
    obsolete_paths.push_back(t->path());
    obsolete_ids.push_back(t->table_id());
  }
  l0_.erase(l0_.end() - std::ptrdiff_t(n_l0), l0_.end());
  l1_.clear();
  if (output != nullptr) l1_.push_back(std::move(output));
  compactions_->Add(1);
  bytes_compacted_->Add(out_bytes);
  Status s = WriteManifestLocked();
  lock.unlock();
  if (!s.ok()) return s;

  // Readers holding table refs keep valid fds past the unlink.
  for (const auto& path : obsolete_paths) std::remove(path.c_str());
  if (block_cache_ != nullptr) {
    for (uint64_t id : obsolete_ids) block_cache_->EraseTable(id);
  }
  return Status::OK();
}

// ------------------------------------------------------------ Read path

Status KVStore::Get(std::string_view key, std::string* value) {
  obs::Span span("storage.get");
  gets_->Add(1);
  std::deque<std::shared_ptr<SSTable>> l0;
  std::vector<std::shared_ptr<SSTable>> l1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool tombstone = false;
    if (mem_->Get(key, kMaxSequence, value, &tombstone)) {
      return tombstone ? Status::NotFound() : Status::OK();
    }
    if (imm_ != nullptr &&
        imm_->Get(key, kMaxSequence, value, &tombstone)) {
      return tombstone ? Status::NotFound() : Status::OK();
    }
    l0 = l0_;
    l1 = l1_;
  }
  // Table probes run without the lock: positional reads + block cache;
  // the shared_ptr snapshots keep tables alive past concurrent
  // compactions.
  InternalEntry e;
  for (const auto& table : l0) {  // newest first
    Status s = table->Get(key, kMaxSequence, &e);
    if (s.ok()) {
      if (e.type == ValueType::kTombstone) return Status::NotFound();
      *value = std::move(e.value);
      return Status::OK();
    }
    if (!s.IsNotFound()) return s;
  }
  for (const auto& table : l1) {
    Status s = table->Get(key, kMaxSequence, &e);
    if (s.ok()) {
      if (e.type == ValueType::kTombstone) return Status::NotFound();
      *value = std::move(e.value);
      return Status::OK();
    }
    if (!s.IsNotFound()) return s;
  }
  return Status::NotFound();
}

// ------------------------------------------------- Flush / compaction API

Status KVStore::Flush() {
  Writer seal(nullptr);
  Status s = CommitWriter(&seal);
  if (!s.ok()) return s;
  std::unique_lock<std::mutex> lock(mu_);
  while ((imm_ != nullptr || flush_scheduled_) && bg_error_.ok()) {
    bg_cv_.wait(lock);
  }
  return bg_error_;
}

Status KVStore::CompactAll() {
  Status s = Flush();
  if (!s.ok()) return s;
  std::unique_lock<std::mutex> lock(mu_);
  while (compaction_running_) bg_cv_.wait(lock);
  compaction_running_ = true;  // claim the compaction slot, run inline
  lock.unlock();
  s = DoCompaction();
  lock.lock();
  compaction_running_ = false;
  bg_cv_.notify_all();
  return s;
}

// --------------------------------------------------------------- Merges

std::vector<InternalEntry> KVStore::MergeEntries(
    std::vector<InternalEntry> all, bool drop_tombstones) {
  // Sort by internal order and deduplicate keeping the newest version
  // per key.  At simulation scale a sort-based merge is simpler than a
  // k-way heap and equally correct.
  std::stable_sort(all.begin(), all.end(),
                   [](const InternalEntry& a, const InternalEntry& b) {
                     return InternalEntryComparator()(a, b) < 0;
                   });
  std::vector<InternalEntry> out;
  out.reserve(all.size());
  std::string_view last_key;
  bool have_last = false;
  for (auto& e : all) {
    if (have_last && e.user_key == last_key) {
      continue;  // older version of the same key
    }
    have_last = true;
    last_key = e.user_key;
    if (drop_tombstones && e.type == ValueType::kTombstone) {
      // Newest version is a delete: key is gone.  (last_key remains set
      // so older versions are still skipped.)
      continue;
    }
    out.push_back(std::move(e));
    last_key = out.back().user_key;  // re-point after move
  }
  return out;
}

std::vector<InternalEntry> KVStore::GatherAllLocked() const {
  std::vector<InternalEntry> all;
  MemTable::Iterator mit(mem_.get());
  for (mit.SeekToFirst(); mit.Valid(); mit.Next()) {
    all.push_back(mit.entry());
  }
  if (imm_ != nullptr) {
    MemTable::Iterator iit(imm_.get());
    for (iit.SeekToFirst(); iit.Valid(); iit.Next()) {
      all.push_back(iit.entry());
    }
  }
  auto drain = [&all](const std::shared_ptr<SSTable>& t) {
    SSTable::Iterator it(t.get());
    for (it.SeekToFirst(); it.Valid(); it.Next()) {
      all.push_back(it.entry());
    }
    if (!it.status().ok()) {
      DELUGE_LOG_WARN("snapshot scan of %s stopped early: %s",
                      t->path().c_str(), it.status().ToString().c_str());
    }
  };
  for (const auto& t : l0_) drain(t);
  for (const auto& t : l1_) drain(t);
  return all;
}

KVStore::Iterator KVStore::NewIterator() {
  std::lock_guard<std::mutex> lock(mu_);
  Iterator it;
  it.entries_ = MergeEntries(GatherAllLocked(), /*drop_tombstones=*/true);
  return it;
}

void KVStore::Iterator::Seek(std::string_view key) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const InternalEntry& e, std::string_view k) {
                               return e.user_key < k;
                             });
  pos_ = size_t(it - entries_.begin());
}

// ---------------------------------------------------------------- State

Status KVStore::WriteManifestLocked() {
  const std::string tmp = options_.dir + "/MANIFEST.tmp";
  const std::string final_path = options_.dir + "/MANIFEST";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) return Status::IOError("cannot write manifest");
    out << next_file_number_ << " " << next_seq_ << "\n";
    auto number_of = [](const std::string& path) {
      // .../NNNNNN.sst -> NNNNNN
      size_t slash = path.find_last_of('/');
      return std::stoull(path.substr(slash + 1));
    };
    for (const auto& t : l0_) out << 0 << " " << number_of(t->path()) << "\n";
    for (const auto& t : l1_) out << 1 << " " << number_of(t->path()) << "\n";
    if (!out.good()) return Status::IOError("manifest write failed");
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) return Status::IOError("manifest rename failed");
  return Status::OK();
}

KVStoreStats KVStore::stats() const {
  KVStoreStats s;
  s.puts = puts_->Value();
  s.deletes = deletes_->Value();
  s.gets = gets_->Value();
  s.flushes = flushes_->Value();
  s.compactions = compactions_->Value();
  s.bytes_written = bytes_written_->Value();
  s.bytes_compacted = bytes_compacted_->Value();
  s.write_stalls = write_stalls_->Value();
  s.wal_syncs = wal_syncs_->Value();
  if (block_cache_ != nullptr) {
    s.cache_hits = block_cache_->hits();
    s.cache_misses = block_cache_->misses();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto add_probes = [&s](const std::shared_ptr<SSTable>& t) {
    s.bloom_negatives += t->bloom_negative_count.load(std::memory_order_relaxed);
    s.disk_probes += t->disk_probe_count.load(std::memory_order_relaxed);
  };
  for (const auto& t : l0_) add_probes(t);
  for (const auto& t : l1_) add_probes(t);
  return s;
}

size_t KVStore::l0_file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l0_.size();
}

size_t KVStore::l1_file_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return l1_.size();
}

SequenceNumber KVStore::last_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

}  // namespace deluge::storage
