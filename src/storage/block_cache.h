#ifndef DELUGE_STORAGE_BLOCK_CACHE_H_
#define DELUGE_STORAGE_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace deluge::storage {

/// A sharded LRU cache over SSTable read chunks — the memory tier in
/// front of the disaggregated storage layer (Fig. 7 of the paper).
///
/// Keys are `(table_id, chunk_index)`: table ids are unique per opened
/// SSTable for the process lifetime, so entries for deleted tables can
/// never alias a new file.  Values are immutable byte chunks shared with
/// readers via `shared_ptr`, so an entry may be evicted while a reader
/// still decodes from it.
///
/// Thread-safety: fully thread-safe.  The key hash picks one of
/// `num_shards` independent LRU shards, each with its own mutex, so
/// concurrent `Get`s on different tables (or different regions of one
/// table) do not serialize on a single cache lock.
class BlockCache {
 public:
  using ChunkPtr = std::shared_ptr<const std::string>;

  /// `capacity_bytes` is the total budget across all shards; each shard
  /// gets an equal slice (at least one chunk's worth, so a tiny cache
  /// still admits entries rather than thrashing on insert).
  explicit BlockCache(size_t capacity_bytes, size_t num_shards = 16);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the cached chunk or nullptr; counts a hit or a miss.
  ChunkPtr Lookup(uint64_t table_id, uint64_t chunk_index);

  /// Inserts (or replaces) a chunk, evicting LRU entries from the
  /// target shard until it fits.  Chunks larger than a whole shard are
  /// passed through uncached.
  void Insert(uint64_t table_id, uint64_t chunk_index, ChunkPtr chunk);

  /// Drops every chunk belonging to `table_id` (called when a
  /// compaction deletes the table's file, so dead bytes don't squat in
  /// the LRU until natural eviction).
  void EraseTable(uint64_t table_id);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Current cached bytes (sums shard counters; approximate under
  /// concurrent churn).
  size_t size_bytes() const;
  size_t capacity_bytes() const { return capacity_bytes_; }
  size_t num_shards() const { return shards_.size(); }

 private:
  struct Key {
    uint64_t table_id;
    uint64_t chunk_index;
    bool operator==(const Key& o) const {
      return table_id == o.table_id && chunk_index == o.chunk_index;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Cheap mix; table ids and chunk indexes are both small integers.
      uint64_t h = k.table_id * 0x9E3779B97F4A7C15ULL;
      h ^= k.chunk_index + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      return size_t(h);
    }
  };
  struct Entry {
    Key key;
    ChunkPtr chunk;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
    size_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash()(key) % shards_.size()];
  }

  size_t capacity_bytes_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_BLOCK_CACHE_H_
