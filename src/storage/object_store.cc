#include "storage/object_store.h"

namespace deluge::storage {

ObjectStore::ObjectStore(Clock* clock)
    : clock_(clock != nullptr ? clock : SystemClock::Default()) {}

Status ObjectStore::Put(const std::string& name, std::string data,
                        const std::string& content_type) {
  if (name.empty()) return Status::InvalidArgument("empty object name");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(name);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.data.size();
    it->second.info.version++;
    it->second.info.size = data.size();
    it->second.info.content_type = content_type;
    total_bytes_ += data.size();
    it->second.data = std::move(data);
    return Status::OK();
  }
  Stored s;
  s.info.name = name;
  s.info.content_type = content_type;
  s.info.size = data.size();
  s.info.created_at = clock_->NowMicros();
  s.info.version = 1;
  total_bytes_ += data.size();
  s.data = std::move(data);
  objects_.emplace(name, std::move(s));
  return Status::OK();
}

Status ObjectStore::Get(const std::string& name, std::string* data) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) return Status::NotFound(name);
  *data = it->second.data;
  return Status::OK();
}

Status ObjectStore::GetRange(const std::string& name, uint64_t offset,
                             uint64_t len, std::string* data) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) return Status::NotFound(name);
  const std::string& blob = it->second.data;
  if (offset > blob.size()) return Status::OutOfRange("offset past end");
  *data = blob.substr(offset, len);
  return Status::OK();
}

Status ObjectStore::Delete(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) return Status::NotFound(name);
  total_bytes_ -= it->second.data.size();
  objects_.erase(it);
  return Status::OK();
}

Status ObjectStore::Head(const std::string& name, ObjectInfo* info) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(name);
  if (it == objects_.end()) return Status::NotFound(name);
  *info = it->second.info;
  return Status::OK();
}

std::vector<ObjectInfo> ObjectStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectInfo> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->second.info);
  }
  return out;
}

uint64_t ObjectStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

size_t ObjectStore::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

}  // namespace deluge::storage
