#include "storage/memtable.h"

namespace deluge::storage {

void MemTable::Add(SequenceNumber seq, ValueType type, std::string_view key,
                   std::string_view value) {
  InternalEntry e;
  e.user_key.assign(key);
  e.seq = seq;
  e.type = type;
  e.value.assign(value);
  bytes_ += e.ApproximateSize();
  list_.Insert(e);
}

bool MemTable::Get(std::string_view key, SequenceNumber snapshot,
                   std::string* found_value, bool* is_tombstone) const {
  // Seek to the newest version visible at `snapshot`: entries sort by
  // (key asc, seq desc), so the first entry with this key and seq <=
  // snapshot is the answer.
  InternalEntry probe;
  probe.user_key.assign(key);
  probe.seq = snapshot;
  SkipList<InternalEntry, InternalEntryComparator>::Iterator it(&list_);
  it.Seek(probe);
  if (!it.Valid()) return false;
  const InternalEntry& e = it.key();
  if (e.user_key != key) return false;
  *is_tombstone = (e.type == ValueType::kTombstone);
  if (!*is_tombstone) *found_value = e.value;
  return true;
}

void MemTable::Iterator::Seek(std::string_view key, SequenceNumber seq) {
  InternalEntry probe;
  probe.user_key.assign(key);
  probe.seq = seq;
  it_.Seek(probe);
}

}  // namespace deluge::storage
