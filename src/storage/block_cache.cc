#include "storage/block_cache.h"

#include <algorithm>

namespace deluge::storage {

BlockCache::BlockCache(size_t capacity_bytes, size_t num_shards)
    : capacity_bytes_(capacity_bytes) {
  num_shards = std::max<size_t>(1, num_shards);
  // A shard must admit at least one typical 64 KB chunk or inserts
  // would evict themselves immediately.
  shard_capacity_ = std::max<size_t>(64 * 1024, capacity_bytes / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BlockCache::ChunkPtr BlockCache::Lookup(uint64_t table_id,
                                        uint64_t chunk_index) {
  Key key{table_id, chunk_index};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->chunk;
}

void BlockCache::Insert(uint64_t table_id, uint64_t chunk_index,
                        ChunkPtr chunk) {
  if (chunk == nullptr || chunk->size() > shard_capacity_) return;
  Key key{table_id, chunk_index};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.bytes -= it->second->chunk->size();
    it->second->chunk = std::move(chunk);
    shard.bytes += it->second->chunk->size();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(chunk)});
    shard.bytes += shard.lru.front().chunk->size();
    shard.map[key] = shard.lru.begin();
  }
  while (shard.bytes > shard_capacity_ && shard.lru.size() > 1) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.chunk->size();
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void BlockCache::EraseTable(uint64_t table_id) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.table_id == table_id) {
        shard.bytes -= it->chunk->size();
        shard.map.erase(it->key);
        it = shard.lru.erase(it);
      } else {
        ++it;
      }
    }
  }
}

size_t BlockCache::size_bytes() const {
  size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> lock(shard_ptr->mu);
    total += shard_ptr->bytes;
  }
  return total;
}

}  // namespace deluge::storage
