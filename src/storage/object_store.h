#ifndef DELUGE_STORAGE_OBJECT_STORE_H_
#define DELUGE_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace deluge::storage {

/// Metadata of a stored object.
struct ObjectInfo {
  std::string name;
  std::string content_type;
  uint64_t size = 0;
  Micros created_at = 0;
  uint64_t version = 0;
};

/// An in-process object (blob) store — the "object store" member of the
/// heterogeneous cloud-storage layer of Fig. 7.  It holds large immutable
/// media payloads (point clouds, video segments, scene assets) addressed
/// by name, with range reads so the dissemination layer can stream chunks.
///
/// Thread-safe.  Substitutes for a cloud blob service (see DESIGN.md):
/// the API shape (put/get/range-get/list-by-prefix/versioning) matches,
/// which is what the experiments exercise.
class ObjectStore {
 public:
  explicit ObjectStore(Clock* clock = nullptr);

  /// Stores (or replaces) `name`; bumps the object version on replace.
  Status Put(const std::string& name, std::string data,
             const std::string& content_type = "application/octet-stream");

  /// Reads the whole object.
  Status Get(const std::string& name, std::string* data) const;

  /// Reads `len` bytes starting at `offset` (clamped to object size;
  /// offset past the end yields OutOfRange).
  Status GetRange(const std::string& name, uint64_t offset, uint64_t len,
                  std::string* data) const;

  Status Delete(const std::string& name);

  /// Metadata without the payload.
  Status Head(const std::string& name, ObjectInfo* info) const;

  /// All objects whose name starts with `prefix`, in name order.
  std::vector<ObjectInfo> List(const std::string& prefix = "") const;

  uint64_t total_bytes() const;
  size_t object_count() const;

 private:
  struct Stored {
    std::string data;
    ObjectInfo info;
  };

  Clock* clock_;
  mutable std::mutex mu_;
  std::map<std::string, Stored> objects_;
  uint64_t total_bytes_ = 0;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_OBJECT_STORE_H_
