#include "storage/fault_injection.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace deluge::storage {

size_t ScriptedIoFaults::BeforeWrite(size_t frame_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tear_countdown_ < 0) return frame_bytes;
  if (tear_countdown_-- > 0) return frame_bytes;
  ++torn_writes_;
  return tear_keep_bytes_ < frame_bytes ? tear_keep_bytes_ : frame_bytes;
}

bool ScriptedIoFaults::FailSync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sync_countdown_ < 0) return false;
  if (sync_countdown_-- > 0) return false;
  ++failed_syncs_;
  return true;
}

Result<uint64_t> FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::fseek(f, 0, SEEK_END);
  long len = std::ftell(f);
  std::fclose(f);
  if (len < 0) return Status::IOError("ftell failed on " + path);
  return uint64_t(len);
}

Status TruncateFile(const std::string& path, uint64_t new_size) {
  if (::truncate(path.c_str(), off_t(new_size)) != 0) {
    return Status::IOError("truncate failed on " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status FlipByte(const std::string& path, uint64_t offset, uint8_t mask) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  unsigned char byte = 0;
  bool ok = std::fseek(f, long(offset), SEEK_SET) == 0 &&
            std::fread(&byte, 1, 1, f) == 1;
  if (ok) {
    byte = static_cast<unsigned char>(byte ^ mask);
    ok = std::fseek(f, long(offset), SEEK_SET) == 0 &&
         std::fwrite(&byte, 1, 1, f) == 1;
  }
  std::fclose(f);
  if (!ok) return Status::IOError("flip failed at offset in " + path);
  return Status::OK();
}

}  // namespace deluge::storage
