#ifndef DELUGE_STORAGE_WAL_H_
#define DELUGE_STORAGE_WAL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "storage/fault_injection.h"

namespace deluge::storage {

/// Append-only write-ahead log.
///
/// Record framing: `[fixed32 length][fixed64 checksum][payload]`.  The
/// checksum is `Hash64(payload)`; a truncated or corrupt tail record stops
/// replay cleanly (records after a torn write are ignored, the standard
/// crash-recovery contract).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if absent) the log at `path` for appending.
  Status Open(const std::string& path);

  /// Appends one record; flushes library buffers.  When `sync` is true
  /// also issues fdatasync-equivalent (durability vs throughput knob).
  Status Append(std::string_view record, bool sync = false);

  /// Group commit: appends every record (framed identically to repeated
  /// `Append` calls — the on-disk bytes are byte-for-byte the same) with
  /// ONE write, one flush, and at most one fdatasync for the whole
  /// batch.  This is what lets N concurrent committers share a single
  /// sync instead of paying one each.
  ///
  /// Records are unowned views: the WAL frames them directly into the
  /// coalesced write without re-serialising, so callers hand over
  /// slices of buffers they already own (e.g. encoded WriteBatches).
  Status AppendBatch(const std::vector<common::Slice>& records,
                     bool sync = false);
  /// Convenience overload for owned records.
  Status AppendBatch(const std::vector<std::string>& records,
                     bool sync = false);

  /// Replays every intact record in file order through `consumer`.
  /// Returns the number of records replayed.  Stops at the first corrupt
  /// or truncated record without error.  When `valid_prefix_bytes` is
  /// non-null it receives the byte length of the intact record prefix —
  /// callers that reuse the log should truncate it to that length first,
  /// or appends after a torn tail are unreachable on the next replay.
  static Result<size_t> Replay(
      const std::string& path,
      const std::function<void(std::string_view)>& consumer,
      uint64_t* valid_prefix_bytes = nullptr);

  /// Closes and truncates the log to empty (called after a memtable
  /// flush makes its contents redundant).
  Status Reset();

  /// Bytes appended since open/reset.
  uint64_t size_bytes() const { return size_bytes_; }

  bool is_open() const { return file_ != nullptr; }

  void Close();

  /// Installs an I/O fault injector (nullptr to clear); not owned.
  /// Appends consult it to simulate torn writes and failed syncs.
  void set_fault_injector(IoFaultInjector* injector) {
    fault_injector_ = injector;
  }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t size_bytes_ = 0;
  IoFaultInjector* fault_injector_ = nullptr;
};

}  // namespace deluge::storage

#endif  // DELUGE_STORAGE_WAL_H_
