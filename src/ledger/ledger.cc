#include "ledger/ledger.h"

namespace deluge::ledger {

TransparencyLedger::TransparencyLedger(Clock* clock)
    : clock_(clock != nullptr ? clock : SystemClock::Default()) {}

size_t TransparencyLedger::Append(std::string data) {
  size_t index = tree_.Append(data);
  records_.push_back(std::move(data));
  return index;
}

TreeHead TransparencyLedger::PublishHead() {
  TreeHead head;
  head.tree_size = tree_.size();
  head.root = tree_.Root();
  head.published_at = clock_->NowMicros();
  latest_head_ = head;
  heads_.push_back(head);
  return head;
}

Status TransparencyLedger::GetEntry(size_t index, std::string* data) const {
  if (index >= records_.size()) return Status::OutOfRange("no such entry");
  *data = records_[index];
  return Status::OK();
}

std::vector<Digest> TransparencyLedger::ProveInclusion(
    size_t index, size_t tree_size) const {
  return tree_.InclusionProof(index, tree_size);
}

std::vector<Digest> TransparencyLedger::ProveConsistency(
    size_t old_size, size_t new_size) const {
  return tree_.ConsistencyProof(old_size, new_size);
}

// ----------------------------------------------------------------- Auditor

Status Auditor::ObserveHead(const TreeHead& head,
                            const std::vector<Digest>& proof) {
  if (head.tree_size < accepted_.tree_size) {
    ++violations_;
    return Status::Corruption("ledger shrank: history rewrite");
  }
  if (accepted_.tree_size == 0) {
    // First head: trust-on-first-use baseline.
    accepted_ = head;
    ++heads_accepted_;
    return Status::OK();
  }
  if (!MerkleTree::VerifyConsistency(accepted_.tree_size, head.tree_size,
                                     accepted_.root, head.root, proof)) {
    ++violations_;
    return Status::Corruption("inconsistent tree heads: fork detected");
  }
  accepted_ = head;
  ++heads_accepted_;
  return Status::OK();
}

Status Auditor::VerifyRecord(const std::string& data, size_t index,
                             const std::vector<Digest>& proof) const {
  if (accepted_.tree_size == 0) {
    return Status::Unavailable("no accepted head yet");
  }
  if (!MerkleTree::VerifyInclusion(MerkleTree::HashLeaf(data), index,
                                   accepted_.tree_size, proof,
                                   accepted_.root)) {
    return Status::Corruption("inclusion proof invalid");
  }
  return Status::OK();
}

}  // namespace deluge::ledger
