#ifndef DELUGE_LEDGER_MERKLE_H_
#define DELUGE_LEDGER_MERKLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ledger/sha256.h"

namespace deluge::ledger {

/// An append-only Merkle tree with RFC 6962 (Certificate Transparency)
/// hashing: leaf hash = H(0x00 || data), node hash = H(0x01 || l || r).
/// Provides logarithmic inclusion proofs ("entry i is in the tree of size
/// n") and consistency proofs ("the tree of size m is a prefix of the
/// tree of size n") — the primitives a verifiable metaverse ledger needs
/// for third-party audits (Section IV-D, [87][90]).
class MerkleTree {
 public:
  /// Appends a record; returns its index.
  size_t Append(std::string_view data);

  /// Root of the current tree; all-zero digest for the empty tree.
  Digest Root() const;

  /// Root of the prefix tree over the first `n` leaves.
  Digest RootAt(size_t n) const;

  /// Audit path proving leaf `index` is in the tree of size `tree_size`.
  /// Empty result when out of range (index >= tree_size or size too big).
  std::vector<Digest> InclusionProof(size_t index, size_t tree_size) const;

  /// Proof that the tree of size `old_size` is a prefix of the tree of
  /// size `new_size` (RFC 6962 section 2.1.2).
  std::vector<Digest> ConsistencyProof(size_t old_size,
                                       size_t new_size) const;

  size_t size() const { return leaves_.size(); }

  /// Leaf hash of raw record data (exposed for verifiers).
  static Digest HashLeaf(std::string_view data);
  static Digest HashNode(const Digest& left, const Digest& right);

  /// Verifies an inclusion proof against a known root.
  static bool VerifyInclusion(const Digest& leaf_hash, size_t index,
                              size_t tree_size,
                              const std::vector<Digest>& proof,
                              const Digest& root);

  /// Verifies a consistency proof between two known roots.
  static bool VerifyConsistency(size_t old_size, size_t new_size,
                                const Digest& old_root,
                                const Digest& new_root,
                                const std::vector<Digest>& proof);

 private:
  /// Root over leaves_[lo, lo+n).
  Digest SubtreeRoot(size_t lo, size_t n) const;
  void SubtreeInclusion(size_t index, size_t lo, size_t n,
                        std::vector<Digest>* proof) const;
  void SubtreeConsistency(size_t m, size_t lo, size_t n, bool whole,
                          std::vector<Digest>* proof) const;

  std::vector<Digest> leaves_;  // leaf hashes
  // Complete-subtree hash cache: cache_[h][i] is the hash of the aligned
  // complete subtree covering leaves [i * 2^(h+1), (i+1) * 2^(h+1)).
  // Maintained incrementally on Append, so proof and root generation are
  // O(log^2 n) hashes instead of O(n).
  std::vector<std::vector<Digest>> cache_;
};

}  // namespace deluge::ledger

#endif  // DELUGE_LEDGER_MERKLE_H_
