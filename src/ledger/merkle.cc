#include "ledger/merkle.h"

namespace deluge::ledger {

namespace {

/// Largest power of two strictly smaller than n (n >= 2).
size_t SplitPoint(size_t n) {
  size_t k = 1;
  while (k * 2 < n) k *= 2;
  return k;
}

}  // namespace

Digest MerkleTree::HashLeaf(std::string_view data) {
  Sha256 h;
  uint8_t prefix = 0x00;
  h.Update(&prefix, 1);
  h.Update(data);
  return h.Finish();
}

Digest MerkleTree::HashNode(const Digest& left, const Digest& right) {
  Sha256 h;
  uint8_t prefix = 0x01;
  h.Update(&prefix, 1);
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finish();
}

size_t MerkleTree::Append(std::string_view data) {
  leaves_.push_back(HashLeaf(data));
  // Incrementally fold completed aligned pairs up the cache levels:
  // whenever the new leaf completes a subtree of size 2^(h+1), its hash
  // is computed from the two (already cached) children.
  size_t index = leaves_.size() - 1;
  const Digest* right = &leaves_[index];
  for (size_t h = 0; (index & 1) == 1; ++h, index >>= 1) {
    if (cache_.size() <= h) cache_.emplace_back();
    const Digest& left =
        h == 0 ? leaves_[index - 1] : cache_[h - 1][index - 1];
    cache_[h].push_back(HashNode(left, *right));
    right = &cache_[h].back();
  }
  return leaves_.size() - 1;
}

Digest MerkleTree::SubtreeRoot(size_t lo, size_t n) const {
  if (n == 0) return Digest{};
  if (n == 1) return leaves_[lo];
  // Cache hit: an aligned complete subtree.
  if ((n & (n - 1)) == 0 && lo % n == 0) {
    size_t h = 0;
    while ((size_t{2} << h) < n) ++h;  // n == 2^(h+1)
    if (h < cache_.size() && lo / n < cache_[h].size()) {
      return cache_[h][lo / n];
    }
  }
  size_t k = SplitPoint(n);
  return HashNode(SubtreeRoot(lo, k), SubtreeRoot(lo + k, n - k));
}

Digest MerkleTree::Root() const { return SubtreeRoot(0, leaves_.size()); }

Digest MerkleTree::RootAt(size_t n) const {
  if (n > leaves_.size()) return Digest{};
  return SubtreeRoot(0, n);
}

void MerkleTree::SubtreeInclusion(size_t index, size_t lo, size_t n,
                                  std::vector<Digest>* proof) const {
  if (n <= 1) return;
  size_t k = SplitPoint(n);
  if (index < k) {
    SubtreeInclusion(index, lo, k, proof);
    proof->push_back(SubtreeRoot(lo + k, n - k));
  } else {
    SubtreeInclusion(index - k, lo + k, n - k, proof);
    proof->push_back(SubtreeRoot(lo, k));
  }
}

std::vector<Digest> MerkleTree::InclusionProof(size_t index,
                                               size_t tree_size) const {
  std::vector<Digest> proof;
  if (index >= tree_size || tree_size > leaves_.size()) return proof;
  SubtreeInclusion(index, 0, tree_size, &proof);
  return proof;
}

void MerkleTree::SubtreeConsistency(size_t m, size_t lo, size_t n, bool whole,
                                    std::vector<Digest>* proof) const {
  if (m == n) {
    if (!whole) proof->push_back(SubtreeRoot(lo, n));
    return;
  }
  size_t k = SplitPoint(n);
  if (m <= k) {
    SubtreeConsistency(m, lo, k, whole, proof);
    proof->push_back(SubtreeRoot(lo + k, n - k));
  } else {
    SubtreeConsistency(m - k, lo + k, n - k, false, proof);
    proof->push_back(SubtreeRoot(lo, k));
  }
}

std::vector<Digest> MerkleTree::ConsistencyProof(size_t old_size,
                                                 size_t new_size) const {
  std::vector<Digest> proof;
  if (old_size == 0 || old_size >= new_size ||
      new_size > leaves_.size()) {
    return proof;
  }
  SubtreeConsistency(old_size, 0, new_size, true, &proof);
  return proof;
}

bool MerkleTree::VerifyInclusion(const Digest& leaf_hash, size_t index,
                                 size_t tree_size,
                                 const std::vector<Digest>& proof,
                                 const Digest& root) {
  if (index >= tree_size) return false;
  Digest hash = leaf_hash;
  size_t node = index;
  size_t last_node = tree_size - 1;
  size_t p = 0;
  while (last_node > 0) {
    if (node % 2 == 1) {
      if (p >= proof.size()) return false;
      hash = HashNode(proof[p++], hash);
    } else if (node < last_node) {
      if (p >= proof.size()) return false;
      hash = HashNode(hash, proof[p++]);
    }
    node /= 2;
    last_node /= 2;
  }
  return p == proof.size() && hash == root;
}

bool MerkleTree::VerifyConsistency(size_t old_size, size_t new_size,
                                   const Digest& old_root,
                                   const Digest& new_root,
                                   const std::vector<Digest>& proof) {
  if (old_size > new_size) return false;
  if (old_size == new_size) return proof.empty() && old_root == new_root;
  if (old_size == 0) return proof.empty();

  size_t node = old_size - 1;
  size_t last_node = new_size - 1;
  while (node % 2 == 1) {
    node /= 2;
    last_node /= 2;
  }

  size_t p = 0;
  Digest node_hash, last_hash;
  if (node > 0) {
    if (p >= proof.size()) return false;
    node_hash = last_hash = proof[p++];
  } else {
    node_hash = last_hash = old_root;
  }

  while (node > 0) {
    if (node % 2 == 1) {
      if (p >= proof.size()) return false;
      node_hash = HashNode(proof[p], node_hash);
      last_hash = HashNode(proof[p], last_hash);
      ++p;
    } else if (node < last_node) {
      if (p >= proof.size()) return false;
      last_hash = HashNode(last_hash, proof[p++]);
    }
    node /= 2;
    last_node /= 2;
  }
  if (node_hash != old_root) return false;

  while (last_node > 0) {
    if (p >= proof.size()) return false;
    last_hash = HashNode(last_hash, proof[p++]);
    last_node /= 2;
  }
  return p == proof.size() && last_hash == new_root;
}

}  // namespace deluge::ledger
