#ifndef DELUGE_LEDGER_SHA256_H_
#define DELUGE_LEDGER_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace deluge::ledger {

/// A 256-bit digest.
using Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4).  Used for Merkle tree hashing in the
/// verifiable ledger — the one place Deluge needs a cryptographic hash.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest.  The object must not be reused
  /// after Finish without Reset.
  Digest Finish();

  void Reset();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// Lowercase hex rendering of a digest.
std::string DigestToHex(const Digest& d);

}  // namespace deluge::ledger

#endif  // DELUGE_LEDGER_SHA256_H_
