#ifndef DELUGE_LEDGER_LEDGER_H_
#define DELUGE_LEDGER_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "ledger/merkle.h"

namespace deluge::ledger {

/// A published tree head — what the ledger operator periodically signs
/// and gossips.  (Deluge models the signature as the root itself; the
/// auditor checks structural consistency, which is where the hard
/// guarantees live.)
struct TreeHead {
  size_t tree_size = 0;
  Digest root{};
  Micros published_at = 0;
};

/// An appended record with its assigned index.
struct LedgerEntry {
  size_t index = 0;
  std::string data;
};

/// An append-only, Merkle-tree-backed transaction log — the verifiable
/// ledger database of Section IV-D ([87], [90]): marketplace trades,
/// NFT transfers, and actuation commands append here so that any party
/// can later prove inclusion and the operator can never rewrite history
/// without detection.
class TransparencyLedger {
 public:
  explicit TransparencyLedger(Clock* clock = nullptr);

  /// Appends a record; returns its index.
  size_t Append(std::string data);

  /// Publishes the current tree head (a checkpoint auditors track).
  TreeHead PublishHead();

  /// Record by index.
  Status GetEntry(size_t index, std::string* data) const;

  /// Inclusion proof for `index` against the head of size `tree_size`.
  std::vector<Digest> ProveInclusion(size_t index, size_t tree_size) const;

  /// Consistency proof between two published sizes.
  std::vector<Digest> ProveConsistency(size_t old_size,
                                       size_t new_size) const;

  size_t size() const { return tree_.size(); }
  const TreeHead& latest_head() const { return latest_head_; }
  const std::vector<TreeHead>& head_history() const { return heads_; }

 private:
  Clock* clock_;
  MerkleTree tree_;
  std::vector<std::string> records_;
  TreeHead latest_head_;
  std::vector<TreeHead> heads_;
};

/// A third-party auditor (the "trusted third party serving as the
/// auditor" of Section IV-D).  Tracks the last tree head it accepted and
/// refuses any new head that is not a consistent extension — detecting
/// history rewrites — and verifies inclusion of records it cares about.
class Auditor {
 public:
  /// Offers a new head with its consistency proof from the auditor's
  /// last accepted head.  OK => the head is accepted and becomes the
  /// new baseline; Corruption => the ledger forked/rewrote history.
  Status ObserveHead(const TreeHead& head, const std::vector<Digest>& proof);

  /// Verifies that `data` is entry `index` of the accepted head.
  Status VerifyRecord(const std::string& data, size_t index,
                      const std::vector<Digest>& proof) const;

  const TreeHead& accepted_head() const { return accepted_; }
  uint64_t heads_accepted() const { return heads_accepted_; }
  uint64_t violations_detected() const { return violations_; }

 private:
  TreeHead accepted_;  // size 0 initially: trusts the first head
  uint64_t heads_accepted_ = 0;
  uint64_t violations_ = 0;
};

}  // namespace deluge::ledger

#endif  // DELUGE_LEDGER_LEDGER_H_
