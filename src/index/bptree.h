#ifndef DELUGE_INDEX_BPTREE_H_
#define DELUGE_INDEX_BPTREE_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

namespace deluge::index {

/// An in-memory B+-tree with ordered keys and leaf-linked scans.
///
/// This is the base structure for the ST2B-style moving-object index
/// ([22] in the paper): update-intensive workloads favour B+-trees over
/// R-trees because updates are local key deletions/insertions instead of
/// bounding-box maintenance.  `Key` must be totally ordered via `<`;
/// `Value` must be copyable.  Duplicate keys are not allowed (Insert
/// overwrites).
///
/// Not internally synchronized.
template <typename Key, typename Value, int kFanout = 32>
class BPTree {
  static_assert(kFanout >= 4, "fanout too small");

 public:
  BPTree() : root_(new Leaf()) {}

  BPTree(const BPTree&) = delete;
  BPTree& operator=(const BPTree&) = delete;

  ~BPTree() { DeleteNode(root_); }

  /// Inserts or overwrites `key`.  Returns true when a new key was added.
  bool Insert(const Key& key, const Value& value) {
    SplitResult split = InsertRec(root_, key, value);
    if (split.happened) {
      auto* new_root = new Internal();
      new_root->keys.push_back(split.separator);
      new_root->children.push_back(root_);
      new_root->children.push_back(split.right);
      root_ = new_root;
      ++height_;
    }
    return split.inserted_new;
  }

  /// Removes `key`; returns false when absent.  Underflowed leaves are
  /// tolerated (lazy deletion): they merge away on the next rebuild or
  /// stay small — acceptable for index workloads where deletes are paired
  /// with reinserts (move = delete+insert).
  bool Erase(const Key& key) {
    Leaf* leaf = FindLeaf(key);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key) return false;
    size_t idx = size_t(it - leaf->keys.begin());
    leaf->keys.erase(it);
    leaf->values.erase(leaf->values.begin() + long(idx));
    --size_;
    return true;
  }

  /// Point lookup; returns nullptr when absent.  The pointer is
  /// invalidated by the next mutation.
  const Value* Find(const Key& key) const {
    const Leaf* leaf = FindLeaf(key);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key) return nullptr;
    return &leaf->values[size_t(it - leaf->keys.begin())];
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Visits all (key, value) pairs with lo <= key <= hi in order;
  /// `visit` returns false to stop early.
  template <typename Visitor>
  void Scan(const Key& lo, const Key& hi, Visitor&& visit) const {
    const Leaf* leaf = FindLeaf(lo);
    while (leaf != nullptr) {
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo);
      for (size_t i = size_t(it - leaf->keys.begin()); i < leaf->keys.size();
           ++i) {
        if (hi < leaf->keys[i]) return;
        if (!visit(leaf->keys[i], leaf->values[i])) return;
      }
      leaf = leaf->next;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }

 private:
  struct Node {
    bool is_leaf;
    explicit Node(bool leaf) : is_leaf(leaf) {}
  };

  struct Leaf : Node {
    std::vector<Key> keys;
    std::vector<Value> values;
    Leaf* next = nullptr;
    Leaf() : Node(true) {}
  };

  struct Internal : Node {
    // children.size() == keys.size() + 1; child[i] holds keys < keys[i],
    // child[i+1] holds keys >= keys[i].
    std::vector<Key> keys;
    std::vector<Node*> children;
    Internal() : Node(false) {}
  };

  struct SplitResult {
    bool happened = false;
    bool inserted_new = false;
    Key separator{};
    Node* right = nullptr;
  };

  static void DeleteNode(Node* n) {
    if (!n->is_leaf) {
      auto* in = static_cast<Internal*>(n);
      for (Node* c : in->children) DeleteNode(c);
      delete in;
    } else {
      delete static_cast<Leaf*>(n);
    }
  }

  Leaf* FindLeaf(const Key& key) const {
    Node* n = root_;
    while (!n->is_leaf) {
      auto* in = static_cast<Internal*>(n);
      auto it = std::upper_bound(in->keys.begin(), in->keys.end(), key);
      n = in->children[size_t(it - in->keys.begin())];
    }
    return static_cast<Leaf*>(n);
  }

  SplitResult InsertRec(Node* n, const Key& key, const Value& value) {
    SplitResult out;
    if (n->is_leaf) {
      auto* leaf = static_cast<Leaf*>(n);
      auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
      size_t idx = size_t(it - leaf->keys.begin());
      if (it != leaf->keys.end() && *it == key) {
        leaf->values[idx] = value;  // overwrite
        return out;
      }
      leaf->keys.insert(it, key);
      leaf->values.insert(leaf->values.begin() + long(idx), value);
      ++size_;
      out.inserted_new = true;
      if (leaf->keys.size() >= kFanout) {
        auto* right = new Leaf();
        size_t mid = leaf->keys.size() / 2;
        right->keys.assign(leaf->keys.begin() + long(mid), leaf->keys.end());
        right->values.assign(leaf->values.begin() + long(mid),
                             leaf->values.end());
        leaf->keys.resize(mid);
        leaf->values.resize(mid);
        right->next = leaf->next;
        leaf->next = right;
        out.happened = true;
        out.separator = right->keys.front();
        out.right = right;
      }
      return out;
    }

    auto* in = static_cast<Internal*>(n);
    auto it = std::upper_bound(in->keys.begin(), in->keys.end(), key);
    size_t child_idx = size_t(it - in->keys.begin());
    SplitResult child_split = InsertRec(in->children[child_idx], key, value);
    out.inserted_new = child_split.inserted_new;
    if (child_split.happened) {
      in->keys.insert(in->keys.begin() + long(child_idx),
                      child_split.separator);
      in->children.insert(in->children.begin() + long(child_idx) + 1,
                          child_split.right);
      if (in->children.size() > kFanout) {
        auto* right = new Internal();
        size_t mid = in->keys.size() / 2;  // separator promoted, not copied
        out.separator = in->keys[mid];
        right->keys.assign(in->keys.begin() + long(mid) + 1, in->keys.end());
        right->children.assign(in->children.begin() + long(mid) + 1,
                               in->children.end());
        in->keys.resize(mid);
        in->children.resize(mid + 1);
        out.happened = true;
        out.right = right;
      }
    }
    return out;
  }

  Node* root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace deluge::index

#endif  // DELUGE_INDEX_BPTREE_H_
