#include "index/moving_index.h"

#include <algorithm>
#include <limits>

namespace deluge::index {

MovingObjectIndex::MovingObjectIndex(const geo::AABB& world,
                                     double cell_size, double max_speed)
    : max_speed_(max_speed > 0 ? max_speed : 1.0), grid_(world, cell_size) {}

void MovingObjectIndex::Upsert(EntityId id, const geo::MotionState& state) {
  geo::MotionState s = state;
  // Clamp the velocity to the declared speed bound so query expansion
  // stays sound.
  double speed = s.velocity.Length();
  if (speed > max_speed_) {
    s.velocity = s.velocity * (max_speed_ / speed);
  }
  auto it = states_.find(id);
  bool was_oldest =
      it != states_.end() && it->second.t == oldest_update_;
  states_[id] = s;
  grid_.Update(id, s.position);
  if (states_.size() == 1) {
    oldest_update_ = s.t;
  } else if (s.t < oldest_update_) {
    oldest_update_ = s.t;
  } else if (was_oldest) {
    RefreshOldest();
  }
}

void MovingObjectIndex::Remove(EntityId id) {
  auto it = states_.find(id);
  if (it == states_.end()) return;
  bool was_oldest = it->second.t == oldest_update_;
  states_.erase(it);
  grid_.Remove(id);
  if (was_oldest) RefreshOldest();
}

void MovingObjectIndex::RefreshOldest() {
  oldest_update_ = std::numeric_limits<Micros>::max();
  for (const auto& [id, s] : states_) {
    oldest_update_ = std::min(oldest_update_, s.t);
  }
  if (states_.empty()) oldest_update_ = 0;
}

std::vector<MovingHit> MovingObjectIndex::RangeAt(const geo::AABB& box,
                                                  Micros t) const {
  std::vector<MovingHit> out;
  if (box.IsEmpty() || states_.empty()) return out;
  // Worst-case drift of any object since its indexed position.
  double dt_s = t > oldest_update_
                    ? double(t - oldest_update_) / double(kMicrosPerSecond)
                    : 0.0;
  double expand = dt_s * max_speed_;
  geo::AABB probe(box.min - geo::Vec3{expand, expand, expand},
                  box.max + geo::Vec3{expand, expand, expand});
  auto candidates = grid_.Range(probe);
  last_candidates_ = candidates.size();
  out.reserve(candidates.size());
  for (const auto& hit : candidates) {
    const geo::MotionState& s = states_.at(hit.id);
    geo::Vec3 predicted = s.PositionAt(t);
    if (box.Contains(predicted)) out.push_back({hit.id, predicted});
  }
  return out;
}

std::vector<MovingHit> MovingObjectIndex::NearestAt(const geo::Vec3& q,
                                                    size_t k,
                                                    Micros t) const {
  std::vector<MovingHit> out;
  if (k == 0 || states_.empty()) return out;
  // Brute ranking over predicted positions of candidates from an
  // expanding box (double until k confirmed within radius).
  double r = 8.0;
  for (;;) {
    auto hits = RangeAt(geo::AABB::Cube(q, r), t);
    if (hits.size() >= k || hits.size() == states_.size()) {
      std::sort(hits.begin(), hits.end(),
                [&q](const MovingHit& a, const MovingHit& b) {
                  return geo::DistanceSquared(q, a.predicted_position) <
                         geo::DistanceSquared(q, b.predicted_position);
                });
      if (hits.size() >= k &&
          geo::Distance(q, hits[k - 1].predicted_position) <= r) {
        hits.resize(k);
        return hits;
      }
      if (hits.size() == states_.size()) {
        if (hits.size() > k) hits.resize(k);
        return hits;
      }
    }
    r *= 2;
  }
}

const geo::MotionState* MovingObjectIndex::GetState(EntityId id) const {
  auto it = states_.find(id);
  return it == states_.end() ? nullptr : &it->second;
}

}  // namespace deluge::index
