#include "index/hdov_tree.h"

#include <algorithm>
#include <cmath>

namespace deluge::index {

namespace {
constexpr double kMinDistance = 0.5;  // clamp: objects at the eye saturate
}  // namespace

HdovTree::HdovTree(const geo::AABB& world, size_t leaf_capacity,
                   int max_depth)
    : leaf_capacity_(std::max<size_t>(1, leaf_capacity)),
      max_depth_(std::max(1, max_depth)),
      root_(std::make_unique<Node>()) {
  root_->box = world;
}

HdovTree::~HdovTree() = default;

int HdovTree::ChildIndexFor(const Node* node, const geo::Vec3& pos) const {
  geo::Vec3 c = node->box.Center();
  return (pos.x >= c.x ? 1 : 0) | (pos.y >= c.y ? 2 : 0) |
         (pos.z >= c.z ? 4 : 0);
}

geo::AABB HdovTree::ChildBox(const Node* node, int idx) const {
  geo::Vec3 c = node->box.Center();
  const geo::AABB& b = node->box;
  geo::Vec3 lo{(idx & 1) ? c.x : b.min.x, (idx & 2) ? c.y : b.min.y,
               (idx & 4) ? c.z : b.min.z};
  geo::Vec3 hi{(idx & 1) ? b.max.x : c.x, (idx & 2) ? b.max.y : c.y,
               (idx & 4) ? b.max.z : c.z};
  return geo::AABB(lo, hi);
}

void HdovTree::Subdivide(Node* node) {
  node->is_leaf = false;
  for (int i = 0; i < 8; ++i) {
    node->children[i] = std::make_unique<Node>();
    node->children[i]->box = ChildBox(node, i);
    node->children[i]->depth = node->depth + 1;
  }
  std::vector<EntityId> items = std::move(node->items);
  node->items.clear();
  for (EntityId id : items) {
    const SceneObject& obj = objects_.at(id);
    InsertInto(node->children[ChildIndexFor(node, obj.position)].get(), id);
  }
}

void HdovTree::InsertInto(Node* node, EntityId id) {
  const SceneObject& obj = objects_.at(id);
  node->max_radius = std::max(node->max_radius, obj.radius);
  if (node->is_leaf) {
    node->items.push_back(id);
    if (node->items.size() > leaf_capacity_ && node->depth < max_depth_) {
      Subdivide(node);
    }
    return;
  }
  InsertInto(node->children[ChildIndexFor(node, obj.position)].get(), id);
}

void HdovTree::Insert(const SceneObject& obj) {
  auto it = objects_.find(obj.id);
  if (it != objects_.end()) {
    Remove(obj.id);
  }
  objects_[obj.id] = obj;
  InsertInto(root_.get(), obj.id);
}

bool HdovTree::RemoveFrom(Node* node, EntityId id, const geo::Vec3& pos) {
  if (node->is_leaf) {
    auto it = std::find(node->items.begin(), node->items.end(), id);
    if (it == node->items.end()) return false;
    node->items.erase(it);
    return true;
  }
  // max_radius stays as a (loosened) conservative bound; Rebuild tightens.
  return RemoveFrom(node->children[ChildIndexFor(node, pos)].get(), id, pos);
}

void HdovTree::Remove(EntityId id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  RemoveFrom(root_.get(), id, it->second.position);
  objects_.erase(it);
}

void HdovTree::Move(EntityId id, const geo::Vec3& pos) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return;
  SceneObject obj = it->second;
  Remove(id);
  obj.position = pos;
  Insert(obj);
}

void HdovTree::Query(const Node* node, const geo::ViewRegion& view,
                     double min_dov,
                     std::vector<VisibleObject>* out) const {
  ++last_nodes_visited_;
  // Prune 1: node outside the view's bounding sphere.
  double node_dist2 = node->box.DistanceSquaredTo(view.eye);
  if (node_dist2 > view.radius * view.radius) return;
  // Prune 2: best possible DoV in this subtree below threshold.
  double min_dist = std::max(std::sqrt(node_dist2), kMinDistance);
  if (node->max_radius / min_dist < min_dov) return;

  if (node->is_leaf) {
    for (EntityId id : node->items) {
      const SceneObject& obj = objects_.at(id);
      if (!view.Contains(obj.position)) continue;
      double dist = std::max(geo::Distance(view.eye, obj.position),
                             kMinDistance);
      double dov = obj.radius / dist;
      if (dov >= min_dov) out->push_back({obj, dov});
    }
    return;
  }
  for (const auto& child : node->children) {
    Query(child.get(), view, min_dov, out);
  }
}

std::vector<VisibleObject> HdovTree::QueryVisible(
    const geo::ViewRegion& view, double min_dov) const {
  last_nodes_visited_ = 0;
  std::vector<VisibleObject> out;
  Query(root_.get(), view, min_dov, &out);
  std::sort(out.begin(), out.end(),
            [](const VisibleObject& a, const VisibleObject& b) {
              return a.dov > b.dov;
            });
  return out;
}

void HdovTree::Rebuild() {
  std::vector<SceneObject> all;
  all.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) all.push_back(obj);
  geo::AABB world = root_->box;
  root_ = std::make_unique<Node>();
  root_->box = world;
  objects_.clear();
  for (const auto& obj : all) Insert(obj);
}

}  // namespace deluge::index
