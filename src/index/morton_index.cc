#include "index/morton_index.h"

#include <algorithm>
#include <cmath>

namespace deluge::index {

namespace {
constexpr int kBitsPerAxis = 21;
}  // namespace

MortonIndex::MortonIndex(const geo::AABB& world, size_t max_ranges)
    : codec_(world), max_ranges_(std::max<size_t>(8, max_ranges)) {}

void MortonIndex::Insert(EntityId id, const geo::Vec3& pos) {
  auto it = codes_.find(id);
  if (it != codes_.end()) {
    Update(id, pos);
    return;
  }
  uint64_t code = codec_.Encode(pos);
  tree_.Insert({code, id}, pos);
  codes_[id] = code;
  positions_[id] = pos;
}

void MortonIndex::Update(EntityId id, const geo::Vec3& pos) {
  auto it = codes_.find(id);
  uint64_t code = codec_.Encode(pos);
  if (it != codes_.end()) {
    if (it->second == code) {
      // Same cell: refresh the stored exact position only.
      tree_.Insert({code, id}, pos);
      positions_[id] = pos;
      return;
    }
    tree_.Erase({it->second, id});
    it->second = code;
  } else {
    codes_[id] = code;
  }
  tree_.Insert({code, id}, pos);
  positions_[id] = pos;
}

void MortonIndex::Remove(EntityId id) {
  auto it = codes_.find(id);
  if (it == codes_.end()) return;
  tree_.Erase({it->second, id});
  codes_.erase(it);
  positions_.erase(id);
}

void MortonIndex::DecomposeCell(int level, uint32_t cx, uint32_t cy,
                                uint32_t cz, uint32_t qlo[3], uint32_t qhi[3],
                                int max_depth,
                                std::vector<RangeSpan>* out) const {
  const int shift = kBitsPerAxis - level;  // cell side = 2^shift quanta
  const uint32_t side = shift >= 32 ? 0 : (1u << shift);
  const uint32_t lox = cx << shift, loy = cy << shift, loz = cz << shift;
  const uint32_t hix = lox + side - 1, hiy = loy + side - 1,
                 hiz = loz + side - 1;

  // Disjoint?
  if (hix < qlo[0] || lox > qhi[0] || hiy < qlo[1] || loy > qhi[1] ||
      hiz < qlo[2] || loz > qhi[2]) {
    return;
  }
  const bool fully_inside = lox >= qlo[0] && hix <= qhi[0] && loy >= qlo[1] &&
                            hiy <= qhi[1] && loz >= qlo[2] && hiz <= qhi[2];
  if (fully_inside || level >= max_depth) {
    // Morton range of this cell: contiguous because the cell is an
    // aligned octree block.
    uint64_t base = geo::MortonCodec::Interleave(lox, loy, loz);
    uint64_t span = (shift == 0) ? 0 : ((uint64_t{1} << (3 * shift)) - 1);
    out->push_back({base, base + span});
    return;
  }
  for (uint32_t dx = 0; dx < 2; ++dx) {
    for (uint32_t dy = 0; dy < 2; ++dy) {
      for (uint32_t dz = 0; dz < 2; ++dz) {
        DecomposeCell(level + 1, (cx << 1) | dx, (cy << 1) | dy,
                      (cz << 1) | dz, qlo, qhi, max_depth, out);
      }
    }
  }
}

void MortonIndex::DecomposeRanges(const geo::AABB& query,
                                  std::vector<RangeSpan>* out) const {
  uint32_t lo[3], hi[3];
  geo::MortonCodec::Deinterleave(codec_.Encode(query.min), &lo[0], &lo[1],
                                 &lo[2]);
  geo::MortonCodec::Deinterleave(codec_.Encode(query.max), &hi[0], &hi[1],
                                 &hi[2]);
  // Depth limit: each level multiplies ranges by <= 8; max_ranges_ caps
  // the tree descents per query.
  int max_depth = 1;
  size_t cells = 8;
  while (cells * 8 <= max_ranges_ && max_depth < kBitsPerAxis) {
    cells *= 8;
    ++max_depth;
  }
  DecomposeCell(0, 0, 0, 0, lo, hi, max_depth, out);
  // Coalesce adjacent ranges (they come out in Morton order).
  std::sort(out->begin(), out->end(),
            [](const RangeSpan& a, const RangeSpan& b) { return a.lo < b.lo; });
  size_t w = 0;
  for (size_t i = 0; i < out->size(); ++i) {
    if (w > 0 && (*out)[i].lo <= (*out)[w - 1].hi + 1) {
      (*out)[w - 1].hi = std::max((*out)[w - 1].hi, (*out)[i].hi);
    } else {
      (*out)[w++] = (*out)[i];
    }
  }
  out->resize(w);
}

std::vector<SpatialHit> MortonIndex::Range(const geo::AABB& range) const {
  std::vector<SpatialHit> out;
  if (range.IsEmpty()) return out;
  last_false_positives_ = 0;
  std::vector<RangeSpan> spans;
  DecomposeRanges(range, &spans);
  for (const auto& span : spans) {
    tree_.Scan(Key{span.lo, 0}, Key{span.hi, ~EntityId{0}},
               [&](const Key& key, const geo::Vec3& pos) {
                 if (range.Contains(pos)) {
                   out.push_back({key.second, pos});
                 } else {
                   ++last_false_positives_;
                 }
                 return true;
               });
  }
  return out;
}

std::vector<SpatialHit> MortonIndex::Nearest(const geo::Vec3& q,
                                             size_t k) const {
  std::vector<SpatialHit> out;
  if (k == 0 || positions_.empty()) return out;
  // Expanding-cube search: query growing boxes around q until the k-th
  // nearest candidate is provably inside the searched cube.
  geo::Vec3 extent = codec_.world().Extent();
  double max_r = std::max({extent.x, extent.y, extent.z, 1.0});
  double r = std::max(max_r / 1024.0, 1e-6);
  std::vector<SpatialHit> candidates;
  while (true) {
    candidates = Range(geo::AABB::Cube(q, r));
    if (candidates.size() >= k || r >= max_r * 2) {
      // Candidates within distance r of q on every axis; true k-th
      // nearest is guaranteed found once k-th best distance <= r.
      std::sort(candidates.begin(), candidates.end(),
                [&q](const SpatialHit& a, const SpatialHit& b) {
                  return geo::DistanceSquared(q, a.position) <
                         geo::DistanceSquared(q, b.position);
                });
      if (candidates.size() >= k &&
          geo::Distance(q, candidates[k - 1].position) <= r) {
        candidates.resize(k);
        return candidates;
      }
      if (r >= max_r * 2) {
        if (candidates.size() > k) candidates.resize(k);
        return candidates;
      }
    }
    r *= 2;
  }
}

}  // namespace deluge::index
