#ifndef DELUGE_INDEX_MORTON_INDEX_H_
#define DELUGE_INDEX_MORTON_INDEX_H_

#include <unordered_map>
#include <utility>

#include "geo/morton.h"
#include "index/bptree.h"
#include "index/spatial_index.h"

namespace deluge::index {

/// ST2B-style moving-object index: a B+-tree over Morton-linearized
/// positions ([22] in the paper).
///
/// Updates are two key operations (erase old code, insert new code) — no
/// bounding-box maintenance — which is why B+-tree indexes dominate
/// update-intensive moving-object workloads.  Range queries decompose the
/// query box into Morton key ranges via octree recursion (fully-covered
/// cells emit one range; partial cells recurse), bounding false-positive
/// scanning.
class MortonIndex : public SpatialIndex {
 public:
  /// `world` fixes the linearization domain; points outside clamp.
  /// `max_ranges` caps query decomposition granularity: more ranges =
  /// tighter scans but more tree descents (self-tuning knob).
  explicit MortonIndex(const geo::AABB& world, size_t max_ranges = 64);

  void Insert(EntityId id, const geo::Vec3& pos) override;
  void Update(EntityId id, const geo::Vec3& pos) override;
  void Remove(EntityId id) override;
  std::vector<SpatialHit> Range(const geo::AABB& range) const override;
  std::vector<SpatialHit> Nearest(const geo::Vec3& q,
                                  size_t k) const override;
  size_t size() const override { return positions_.size(); }
  std::string name() const override { return "morton-b+"; }

  /// Entities scanned but rejected by exact filtering in the last Range
  /// call (Morton false positives) — an observable for the E9 ablation.
  uint64_t last_false_positives() const { return last_false_positives_; }

 private:
  // Composite key: (morton code, entity id) so co-located entities are
  // distinct keys.
  using Key = std::pair<uint64_t, EntityId>;

  struct RangeSpan {
    uint64_t lo;
    uint64_t hi;
  };

  void DecomposeRanges(const geo::AABB& query, std::vector<RangeSpan>* out)
      const;
  void DecomposeCell(int level, uint32_t cx, uint32_t cy, uint32_t cz,
                     uint32_t qlo[3], uint32_t qhi[3], int max_depth,
                     std::vector<RangeSpan>* out) const;

  geo::MortonCodec codec_;
  size_t max_ranges_;
  BPTree<Key, geo::Vec3, 64> tree_;
  std::unordered_map<EntityId, uint64_t> codes_;
  std::unordered_map<EntityId, geo::Vec3> positions_;
  mutable uint64_t last_false_positives_ = 0;
};

}  // namespace deluge::index

#endif  // DELUGE_INDEX_MORTON_INDEX_H_
