#ifndef DELUGE_INDEX_GRID_INDEX_H_
#define DELUGE_INDEX_GRID_INDEX_H_

#include <unordered_map>
#include <vector>

#include "index/spatial_index.h"

namespace deluge::index {

/// A dynamic uniform grid over a fixed world box.
///
/// The workhorse for update-intensive moving-entity workloads: an update
/// is O(1) (hash two cell ids), a range query visits only overlapping
/// cells.  Weakness: skewed data piles into few cells (measured in E9).
class GridIndex : public SpatialIndex {
 public:
  /// `cell_size` is the edge length of a cubic cell in metres.
  GridIndex(const geo::AABB& world, double cell_size);

  void Insert(EntityId id, const geo::Vec3& pos) override;
  void Update(EntityId id, const geo::Vec3& pos) override;
  void Remove(EntityId id) override;
  std::vector<SpatialHit> Range(const geo::AABB& range) const override;
  std::vector<SpatialHit> Nearest(const geo::Vec3& q,
                                  size_t k) const override;
  size_t size() const override { return positions_.size(); }
  std::string name() const override { return "grid"; }

  /// Number of non-empty cells (occupancy diagnostics).
  size_t occupied_cells() const { return cells_.size(); }

 private:
  using CellKey = uint64_t;

  CellKey KeyFor(const geo::Vec3& pos) const;
  void CellCoords(const geo::Vec3& pos, int64_t* cx, int64_t* cy,
                  int64_t* cz) const;
  static CellKey PackCoords(int64_t cx, int64_t cy, int64_t cz);

  geo::AABB world_;
  double cell_size_;
  std::unordered_map<CellKey, std::vector<EntityId>> cells_;
  std::unordered_map<EntityId, geo::Vec3> positions_;
};

}  // namespace deluge::index

#endif  // DELUGE_INDEX_GRID_INDEX_H_
