#include "index/grid_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace deluge::index {

GridIndex::GridIndex(const geo::AABB& world, double cell_size)
    : world_(world), cell_size_(cell_size > 0 ? cell_size : 1.0) {}

void GridIndex::CellCoords(const geo::Vec3& pos, int64_t* cx, int64_t* cy,
                           int64_t* cz) const {
  *cx = int64_t(std::floor((pos.x - world_.min.x) / cell_size_));
  *cy = int64_t(std::floor((pos.y - world_.min.y) / cell_size_));
  *cz = int64_t(std::floor((pos.z - world_.min.z) / cell_size_));
}

GridIndex::CellKey GridIndex::PackCoords(int64_t cx, int64_t cy, int64_t cz) {
  // 21 bits per axis, biased to keep negatives packable (entities slightly
  // outside the nominal world still index correctly).
  constexpr int64_t kBias = 1 << 20;
  auto clamp21 = [](int64_t v) {
    return uint64_t(std::clamp<int64_t>(v + kBias, 0, (1 << 21) - 1));
  };
  return (clamp21(cx) << 42) | (clamp21(cy) << 21) | clamp21(cz);
}

GridIndex::CellKey GridIndex::KeyFor(const geo::Vec3& pos) const {
  int64_t cx, cy, cz;
  CellCoords(pos, &cx, &cy, &cz);
  return PackCoords(cx, cy, cz);
}

void GridIndex::Insert(EntityId id, const geo::Vec3& pos) {
  auto it = positions_.find(id);
  if (it != positions_.end()) {
    Update(id, pos);
    return;
  }
  positions_[id] = pos;
  cells_[KeyFor(pos)].push_back(id);
}

void GridIndex::Update(EntityId id, const geo::Vec3& pos) {
  auto it = positions_.find(id);
  if (it == positions_.end()) {
    positions_[id] = pos;
    cells_[KeyFor(pos)].push_back(id);
    return;
  }
  CellKey old_key = KeyFor(it->second);
  CellKey new_key = KeyFor(pos);
  it->second = pos;
  if (old_key == new_key) return;  // same cell: position map update only
  auto& old_cell = cells_[old_key];
  old_cell.erase(std::remove(old_cell.begin(), old_cell.end(), id),
                 old_cell.end());
  if (old_cell.empty()) cells_.erase(old_key);
  cells_[new_key].push_back(id);
}

void GridIndex::Remove(EntityId id) {
  auto it = positions_.find(id);
  if (it == positions_.end()) return;
  CellKey key = KeyFor(it->second);
  auto& cell = cells_[key];
  cell.erase(std::remove(cell.begin(), cell.end(), id), cell.end());
  if (cell.empty()) cells_.erase(key);
  positions_.erase(it);
}

std::vector<SpatialHit> GridIndex::Range(const geo::AABB& range) const {
  std::vector<SpatialHit> out;
  if (range.IsEmpty()) return out;
  int64_t lox, loy, loz, hix, hiy, hiz;
  CellCoords(range.min, &lox, &loy, &loz);
  CellCoords(range.max, &hix, &hiy, &hiz);
  for (int64_t cx = lox; cx <= hix; ++cx) {
    for (int64_t cy = loy; cy <= hiy; ++cy) {
      for (int64_t cz = loz; cz <= hiz; ++cz) {
        auto it = cells_.find(PackCoords(cx, cy, cz));
        if (it == cells_.end()) continue;
        for (EntityId id : it->second) {
          const geo::Vec3& pos = positions_.at(id);
          if (range.Contains(pos)) out.push_back({id, pos});
        }
      }
    }
  }
  return out;
}

std::vector<SpatialHit> GridIndex::Nearest(const geo::Vec3& q,
                                           size_t k) const {
  // Expanding-ring search: examine cells in growing shells around q and
  // stop once the k-th best distance is closer than the nearest unexplored
  // shell boundary.
  std::vector<SpatialHit> out;
  if (k == 0 || positions_.empty()) return out;
  using Scored = std::pair<double, SpatialHit>;  // (dist2, hit)
  auto cmp = [](const Scored& a, const Scored& b) { return a.first < b.first; };
  std::priority_queue<Scored, std::vector<Scored>, decltype(cmp)> best(cmp);

  int64_t qx, qy, qz;
  CellCoords(q, &qx, &qy, &qz);
  const int64_t kMaxRing = 1 + int64_t(std::ceil(
      std::max({world_.Extent().x, world_.Extent().y, world_.Extent().z}) /
      cell_size_));
  for (int64_t ring = 0; ring <= kMaxRing; ++ring) {
    // Prune: if we already hold k hits and even the closest point of this
    // ring is farther than our current worst, stop.
    if (best.size() == k && ring > 0) {
      double ring_dist = double(ring - 1) * cell_size_;
      if (ring_dist * ring_dist > best.top().first) break;
    }
    for (int64_t cx = qx - ring; cx <= qx + ring; ++cx) {
      for (int64_t cy = qy - ring; cy <= qy + ring; ++cy) {
        for (int64_t cz = qz - ring; cz <= qz + ring; ++cz) {
          // Shell only: skip interior cells already visited.
          if (std::max({std::llabs(cx - qx), std::llabs(cy - qy),
                        std::llabs(cz - qz)}) != ring) {
            continue;
          }
          auto it = cells_.find(PackCoords(cx, cy, cz));
          if (it == cells_.end()) continue;
          for (EntityId id : it->second) {
            const geo::Vec3& pos = positions_.at(id);
            double d2 = geo::DistanceSquared(q, pos);
            if (best.size() < k) {
              best.push({d2, {id, pos}});
            } else if (d2 < best.top().first) {
              best.pop();
              best.push({d2, {id, pos}});
            }
          }
        }
      }
    }
  }
  out.reserve(best.size());
  while (!best.empty()) {
    out.push_back(best.top().second);
    best.pop();
  }
  std::reverse(out.begin(), out.end());  // nearest first
  return out;
}

}  // namespace deluge::index
