#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace deluge::index {

RTree::RTree(int max_entries)
    : max_entries_(std::max(4, max_entries)),
      min_entries_(std::max(2, max_entries / 3)),
      root_(new Node()) {}

RTree::~RTree() { FreeTree(root_); }

void RTree::FreeTree(Node* n) {
  if (!n->is_leaf) {
    for (auto& e : n->entries) FreeTree(e.child);
  }
  delete n;
}

geo::AABB RTree::NodeBox(const Node* n) const {
  geo::AABB box;
  for (const auto& e : n->entries) box = box.Union(e.box);
  return box;
}

RTree::Node* RTree::ChooseLeaf(Node* n, const geo::AABB& box) const {
  while (!n->is_leaf) {
    Node* best = nullptr;
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (const auto& e : n->entries) {
      double vol = e.box.Volume();
      double enlarged = e.box.Union(box).Volume() - vol;
      if (enlarged < best_enlarge ||
          (enlarged == best_enlarge && vol < best_volume)) {
        best_enlarge = enlarged;
        best_volume = vol;
        best = e.child;
      }
    }
    n = best;
  }
  return n;
}

void RTree::SplitNode(Node* n, Node** out_left, Node** out_right) {
  // Quadratic split (Guttman): pick the pair of entries that would waste
  // the most volume together as seeds, then greedily assign the rest.
  std::vector<Entry> entries = std::move(n->entries);
  n->entries.clear();

  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = entries[i].box.Union(entries[j].box).Volume() -
                     entries[i].box.Volume() - entries[j].box.Volume();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Node* left = n;  // reuse
  Node* right = new Node();
  right->is_leaf = n->is_leaf;
  left->entries.push_back(entries[seed_a]);
  right->entries.push_back(entries[seed_b]);
  if (!left->is_leaf) {
    entries[seed_a].child->parent = left;
    entries[seed_b].child->parent = right;
  }

  geo::AABB lbox = entries[seed_a].box;
  geo::AABB rbox = entries[seed_b].box;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    const Entry& e = entries[i];
    size_t remaining = entries.size() - i;
    // Force-assign to satisfy the minimum fill.
    Node* target;
    if (left->entries.size() + remaining <= size_t(min_entries_)) {
      target = left;
    } else if (right->entries.size() + remaining <= size_t(min_entries_)) {
      target = right;
    } else {
      double dl = lbox.Union(e.box).Volume() - lbox.Volume();
      double dr = rbox.Union(e.box).Volume() - rbox.Volume();
      target = dl <= dr ? left : right;
    }
    target->entries.push_back(e);
    if (!target->is_leaf) e.child->parent = target;
    (target == left ? lbox : rbox) =
        (target == left ? lbox : rbox).Union(e.box);
  }
  *out_left = left;
  *out_right = right;
}

void RTree::AdjustTree(Node* n, Node* split_sibling) {
  while (n != root_) {
    Node* parent = n->parent;
    // Refresh n's box in its parent entry.
    for (auto& e : parent->entries) {
      if (e.child == n) {
        e.box = NodeBox(n);
        break;
      }
    }
    if (split_sibling != nullptr) {
      Entry e;
      e.child = split_sibling;
      e.box = NodeBox(split_sibling);
      split_sibling->parent = parent;
      parent->entries.push_back(e);
      if (parent->entries.size() > size_t(max_entries_)) {
        Node *l, *r;
        SplitNode(parent, &l, &r);
        split_sibling = r;
      } else {
        split_sibling = nullptr;
      }
    }
    n = parent;
  }
  if (split_sibling != nullptr) {
    // Root split: grow the tree.
    Node* new_root = new Node();
    new_root->is_leaf = false;
    Entry a, b;
    a.child = root_;
    a.box = NodeBox(root_);
    b.child = split_sibling;
    b.box = NodeBox(split_sibling);
    root_->parent = new_root;
    split_sibling->parent = new_root;
    new_root->entries = {a, b};
    root_ = new_root;
  }
}

void RTree::Insert(EntityId id, const geo::Vec3& pos) {
  auto it = positions_.find(id);
  if (it != positions_.end()) {
    Update(id, pos);
    return;
  }
  positions_[id] = pos;
  Entry e;
  e.box = geo::AABB(pos, pos);
  e.id = id;
  Node* leaf = ChooseLeaf(root_, e.box);
  leaf->entries.push_back(e);
  Node* sibling = nullptr;
  if (leaf->entries.size() > size_t(max_entries_)) {
    Node *l, *r;
    SplitNode(leaf, &l, &r);
    sibling = r;
  }
  AdjustTree(leaf, sibling);
}

void RTree::Update(EntityId id, const geo::Vec3& pos) {
  Remove(id);
  Insert(id, pos);
}

RTree::Node* RTree::FindLeafFor(Node* n, EntityId id,
                                const geo::Vec3& pos) const {
  if (n->is_leaf) {
    for (const auto& e : n->entries) {
      if (e.id == id) return n;
    }
    return nullptr;
  }
  for (const auto& e : n->entries) {
    if (e.box.Contains(pos)) {
      Node* found = FindLeafFor(e.child, id, pos);
      if (found != nullptr) return found;
    }
  }
  return nullptr;
}

int RTree::NodeLevel(const Node* n) const {
  // Level counted from leaves: leaf = 0.
  int level = 0;
  const Node* cur = n;
  while (!cur->is_leaf) {
    cur = cur->entries.front().child;
    ++level;
  }
  return level;
}

void RTree::InsertEntry(const Entry& e, int target_level) {
  // Descend to a node at `target_level` choosing least enlargement.
  Node* n = root_;
  while (NodeLevel(n) > target_level) {
    Node* best = nullptr;
    double best_enlarge = std::numeric_limits<double>::infinity();
    for (const auto& c : n->entries) {
      double enlarged = c.box.Union(e.box).Volume() - c.box.Volume();
      if (enlarged < best_enlarge) {
        best_enlarge = enlarged;
        best = c.child;
      }
    }
    n = best;
  }
  n->entries.push_back(e);
  if (e.child != nullptr) e.child->parent = n;
  Node* sibling = nullptr;
  if (n->entries.size() > size_t(max_entries_)) {
    Node *l, *r;
    SplitNode(n, &l, &r);
    sibling = r;
  }
  AdjustTree(n, sibling);
}

void RTree::CondenseTree(Node* leaf) {
  // Walk up removing underfull nodes; collect orphaned entries with the
  // level they lived at, then reinsert.
  std::vector<std::pair<Entry, int>> orphans;
  Node* n = leaf;
  while (n != root_) {
    Node* parent = n->parent;
    if (n->entries.size() < size_t(min_entries_)) {
      // Detach n from parent; orphan its entries.
      int level = NodeLevel(n);
      for (auto& e : n->entries) {
        orphans.emplace_back(e, n->is_leaf ? 0 : level - 1);
      }
      auto& pe = parent->entries;
      pe.erase(std::remove_if(pe.begin(), pe.end(),
                              [n](const Entry& e) { return e.child == n; }),
               pe.end());
      delete n;
    } else {
      for (auto& e : parent->entries) {
        if (e.child == n) {
          e.box = NodeBox(n);
          break;
        }
      }
    }
    n = parent;
  }
  // Shrink the root if it has a single child.
  while (!root_->is_leaf && root_->entries.size() == 1) {
    Node* child = root_->entries.front().child;
    delete root_;
    root_ = child;
    root_->parent = nullptr;
  }
  if (!root_->is_leaf && root_->entries.empty()) {
    root_->is_leaf = true;
  }
  for (auto& [entry, level] : orphans) {
    if (entry.child != nullptr) {
      InsertEntry(entry, level + 1);  // reattach subtree at its old height
    } else {
      InsertEntry(entry, 0);
    }
  }
}

void RTree::Remove(EntityId id) {
  auto it = positions_.find(id);
  if (it == positions_.end()) return;
  Node* leaf = FindLeafFor(root_, id, it->second);
  positions_.erase(it);
  if (leaf == nullptr) return;  // should not happen; defensive
  auto& es = leaf->entries;
  es.erase(std::remove_if(es.begin(), es.end(),
                          [id](const Entry& e) { return e.id == id; }),
           es.end());
  CondenseTree(leaf);
}

std::vector<SpatialHit> RTree::Range(const geo::AABB& range) const {
  std::vector<SpatialHit> out;
  if (range.IsEmpty()) return out;
  std::vector<const Node*> stack{root_};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const auto& e : n->entries) {
      if (!range.Intersects(e.box)) continue;
      if (n->is_leaf) {
        out.push_back({e.id, e.box.min});
      } else {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

std::vector<SpatialHit> RTree::Nearest(const geo::Vec3& q, size_t k) const {
  // Best-first search over nodes ordered by min distance to q.
  std::vector<SpatialHit> out;
  if (k == 0 || positions_.empty()) return out;
  struct QueueItem {
    double dist2;
    const Node* node;   // nullptr => entity item
    SpatialHit hit;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.dist2 > b.dist2;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> pq(
      cmp);
  pq.push({0.0, root_, {}});
  while (!pq.empty() && out.size() < k) {
    QueueItem top = pq.top();
    pq.pop();
    if (top.node == nullptr) {
      out.push_back(top.hit);
      continue;
    }
    for (const auto& e : top.node->entries) {
      double d2 = e.box.DistanceSquaredTo(q);
      if (top.node->is_leaf) {
        pq.push({d2, nullptr, {e.id, e.box.min}});
      } else {
        pq.push({d2, e.child, {}});
      }
    }
  }
  return out;
}

int RTree::height() const {
  int h = 1;
  const Node* n = root_;
  while (!n->is_leaf) {
    n = n->entries.front().child;
    ++h;
  }
  return h;
}

bool RTree::CheckNode(const Node* n, int depth, int leaf_depth) const {
  if (n->is_leaf) return depth == leaf_depth;
  for (const auto& e : n->entries) {
    if (e.child->parent != n) return false;
    geo::AABB child_box = NodeBox(e.child);
    // Parent entry box must cover the child's actual box.
    if (!e.box.Contains(child_box) && !child_box.IsEmpty()) return false;
    if (!CheckNode(e.child, depth + 1, leaf_depth)) return false;
  }
  return true;
}

bool RTree::CheckInvariants() const {
  return CheckNode(root_, 1, height());
}

}  // namespace deluge::index
