#ifndef DELUGE_INDEX_MOVING_INDEX_H_
#define DELUGE_INDEX_MOVING_INDEX_H_

#include <unordered_map>
#include <vector>

#include "geo/trajectory.h"
#include "index/grid_index.h"
#include "index/spatial_index.h"

namespace deluge::index {

/// A predicted hit from a time-parameterized query.
struct MovingHit {
  EntityId id = 0;
  geo::Vec3 predicted_position;
};

/// A TPR-style index over moving objects.
///
/// Objects register a `MotionState` (position + velocity at an update
/// time) instead of re-indexing on every tick.  The structure buckets
/// objects by their position at update time; a query at time `t` expands
/// its region by the worst-case drift `(t - oldest_update) * max_speed`,
/// then filters candidates by their *predicted* position.  This trades a
/// bounded amount of over-scanning for dramatically fewer index updates —
/// the core idea behind time-parameterized indexing, measured in E10.
class MovingObjectIndex {
 public:
  /// `max_speed` is the enforced speed bound (m/s) used for query
  /// expansion; states faster than this are clamped for safety.
  MovingObjectIndex(const geo::AABB& world, double cell_size,
                    double max_speed);

  /// Registers or refreshes an object's motion state.
  void Upsert(EntityId id, const geo::MotionState& state);

  void Remove(EntityId id);

  /// All objects whose predicted position at `t` lies inside `box`.
  std::vector<MovingHit> RangeAt(const geo::AABB& box, Micros t) const;

  /// The k objects nearest to `q` by predicted position at `t`.
  std::vector<MovingHit> NearestAt(const geo::Vec3& q, size_t k,
                                   Micros t) const;

  /// Returns the stored motion state; nullptr when absent.
  const geo::MotionState* GetState(EntityId id) const;

  size_t size() const { return states_.size(); }
  double max_speed() const { return max_speed_; }

  /// Candidates examined (incl. rejects) in the last RangeAt.
  uint64_t last_candidates() const { return last_candidates_; }

 private:
  double max_speed_;
  GridIndex grid_;  // buckets by position at update time
  std::unordered_map<EntityId, geo::MotionState> states_;
  Micros oldest_update_ = 0;
  mutable uint64_t last_candidates_ = 0;

  void RefreshOldest();
};

}  // namespace deluge::index

#endif  // DELUGE_INDEX_MOVING_INDEX_H_
