#ifndef DELUGE_INDEX_SPATIAL_INDEX_H_
#define DELUGE_INDEX_SPATIAL_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.h"

namespace deluge::index {

/// Identifier of an indexed entity (avatar, sensor, asset).
using EntityId = uint64_t;

/// A query answer: entity and its indexed position.
struct SpatialHit {
  EntityId id = 0;
  geo::Vec3 position;
};

/// Common interface over Deluge's point-entity spatial indexes so that
/// experiments (E9) can sweep update:query mixes across structures with
/// identical drivers.  All implementations store one position per entity.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Adds `id` at `pos`; if already present, behaves like Update.
  virtual void Insert(EntityId id, const geo::Vec3& pos) = 0;

  /// Moves `id` to `pos` (inserts when absent).
  virtual void Update(EntityId id, const geo::Vec3& pos) = 0;

  /// Removes `id`; no-op when absent.
  virtual void Remove(EntityId id) = 0;

  /// All entities inside `range` (inclusive bounds).
  virtual std::vector<SpatialHit> Range(const geo::AABB& range) const = 0;

  /// The `k` entities nearest to `q` (ties broken arbitrarily).
  virtual std::vector<SpatialHit> Nearest(const geo::Vec3& q,
                                          size_t k) const = 0;

  virtual size_t size() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace deluge::index

#endif  // DELUGE_INDEX_SPATIAL_INDEX_H_
