#ifndef DELUGE_INDEX_RTREE_H_
#define DELUGE_INDEX_RTREE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/spatial_index.h"

namespace deluge::index {

/// A Guttman R-tree (quadratic split) over point entities.
///
/// Strong at static/range-heavy workloads; updates pay bounding-box
/// maintenance and occasional reinsert cascades — exactly the tradeoff
/// the E9 ablation measures against the grid and Morton-B+ indexes.
class RTree : public SpatialIndex {
 public:
  /// `max_entries` is node capacity; min fill is max/3 (classic ~40%).
  explicit RTree(int max_entries = 16);
  ~RTree() override;

  void Insert(EntityId id, const geo::Vec3& pos) override;
  void Update(EntityId id, const geo::Vec3& pos) override;
  void Remove(EntityId id) override;
  std::vector<SpatialHit> Range(const geo::AABB& range) const override;
  std::vector<SpatialHit> Nearest(const geo::Vec3& q,
                                  size_t k) const override;
  size_t size() const override { return positions_.size(); }
  std::string name() const override { return "rtree"; }

  int height() const;

  /// Verifies structural invariants (bounding boxes cover children, leaf
  /// depth uniform); used by property tests.  Returns false on violation.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    geo::AABB box;
    Node* child = nullptr;  // internal entries
    EntityId id = 0;        // leaf entries
  };
  struct Node {
    bool is_leaf = true;
    std::vector<Entry> entries;
    Node* parent = nullptr;
  };

  void FreeTree(Node* n);
  Node* ChooseLeaf(Node* n, const geo::AABB& box) const;
  void SplitNode(Node* n, Node** out_left, Node** out_right);
  void AdjustTree(Node* n, Node* split_sibling);
  geo::AABB NodeBox(const Node* n) const;
  Node* FindLeafFor(Node* n, EntityId id, const geo::Vec3& pos) const;
  void CondenseTree(Node* leaf);
  void InsertEntry(const Entry& e, int target_level);
  int NodeLevel(const Node* n) const;
  bool CheckNode(const Node* n, int depth, int leaf_depth) const;

  int max_entries_;
  int min_entries_;
  Node* root_;
  std::unordered_map<EntityId, geo::Vec3> positions_;
};

}  // namespace deluge::index

#endif  // DELUGE_INDEX_RTREE_H_
