#ifndef DELUGE_INDEX_HDOV_TREE_H_
#define DELUGE_INDEX_HDOV_TREE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "index/spatial_index.h"

namespace deluge::index {

/// A renderable scene object for virtual walkthroughs.
struct SceneObject {
  EntityId id = 0;
  geo::Vec3 position;
  /// Bounding-sphere radius in metres — determines projected size.
  double radius = 1.0;
  /// Payload sizes for full- and low-resolution representations
  /// (drives LOD selection in the consistency layer).
  uint64_t full_bytes = 0;
  uint64_t low_bytes = 0;
};

/// An object returned by a visibility query, with its degree of
/// visibility (projected angular size, radius/distance).
struct VisibleObject {
  SceneObject object;
  double dov = 0.0;
};

/// A dynamic hierarchical degree-of-visibility tree.
///
/// Modernizes the HDoV tree of [71]: an octree over scene objects where
/// each node carries the maximum object radius beneath it, letting
/// walkthrough queries prune entire subtrees whose best possible degree
/// of visibility (max_radius / min_distance) falls below the threshold.
/// Unlike the original static structure, this one supports incremental
/// insert/remove/move — the "more robust and dynamic structure" the
/// paper calls for in Section IV-F.
class HdovTree {
 public:
  /// `world` bounds the octree; `leaf_capacity` and `max_depth` control
  /// subdivision.
  explicit HdovTree(const geo::AABB& world, size_t leaf_capacity = 16,
                    int max_depth = 10);
  ~HdovTree();

  HdovTree(const HdovTree&) = delete;
  HdovTree& operator=(const HdovTree&) = delete;

  /// Adds or replaces an object.
  void Insert(const SceneObject& obj);

  /// Removes `id`; no-op when absent.
  void Remove(EntityId id);

  /// Moves `id` to `pos` (keeps other attributes).
  void Move(EntityId id, const geo::Vec3& pos);

  /// Objects within `view` whose degree of visibility >= `min_dov`,
  /// sorted by descending DoV (most visually significant first).
  std::vector<VisibleObject> QueryVisible(const geo::ViewRegion& view,
                                          double min_dov) const;

  size_t size() const { return objects_.size(); }

  /// Octree nodes touched by the last QueryVisible (pruning diagnostics
  /// for E13).
  uint64_t last_nodes_visited() const { return last_nodes_visited_; }

  /// Recomputes tight per-node radius bounds (they only loosen on
  /// removal); call periodically under churn.
  void Rebuild();

 private:
  struct Node {
    geo::AABB box;
    double max_radius = 0.0;  // conservative bound over the subtree
    std::vector<EntityId> items;
    std::unique_ptr<Node> children[8];
    bool is_leaf = true;
    int depth = 0;
  };

  void InsertInto(Node* node, EntityId id);
  void Subdivide(Node* node);
  int ChildIndexFor(const Node* node, const geo::Vec3& pos) const;
  geo::AABB ChildBox(const Node* node, int idx) const;
  bool RemoveFrom(Node* node, EntityId id, const geo::Vec3& pos);
  void Query(const Node* node, const geo::ViewRegion& view, double min_dov,
             std::vector<VisibleObject>* out) const;

  size_t leaf_capacity_;
  int max_depth_;
  std::unique_ptr<Node> root_;
  std::unordered_map<EntityId, SceneObject> objects_;
  mutable uint64_t last_nodes_visited_ = 0;
};

}  // namespace deluge::index

#endif  // DELUGE_INDEX_HDOV_TREE_H_
