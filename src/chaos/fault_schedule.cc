#include "chaos/fault_schedule.h"

#include <algorithm>

#include "common/hash.h"

namespace deluge::chaos {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "crash";
    case FaultKind::kNodeRestart: return "restart";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kLatencySpikeStart: return "spike_start";
    case FaultKind::kLatencySpikeEnd: return "spike_end";
    case FaultKind::kBurstLossStart: return "burst_start";
    case FaultKind::kBurstLossEnd: return "burst_end";
  }
  return "unknown";
}

FaultSchedule::FaultSchedule(net::Transport* net) : net_(net) {
  for (size_t k = 0; k < 10; ++k) {
    injected_[k] = obs_.counter(
        "injected",
        {{"kind", std::string(FaultKindName(FaultKind(k)))}});
  }
  total_ = obs_.counter("total");
}

const ChaosStats& FaultSchedule::stats() const {
  for (size_t k = 0; k < 10; ++k) {
    snapshot_.injected[k] = injected_[k]->Value();
  }
  snapshot_.total = total_->Value();
  return snapshot_;
}

FaultSchedule& FaultSchedule::Add(const FaultEvent& event) {
  events_.push_back(event);
  return *this;
}

FaultSchedule& FaultSchedule::CrashNode(Micros at, net::NodeId n,
                                        Micros down_for) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kNodeCrash;
  ev.a = n;
  Add(ev);
  if (down_for > 0) {
    ev.at = at + down_for;
    ev.kind = FaultKind::kNodeRestart;
    Add(ev);
  }
  return *this;
}

FaultSchedule& FaultSchedule::FlapLink(Micros at, net::NodeId a,
                                       net::NodeId b, Micros down_for) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kLinkDown;
  ev.a = a;
  ev.b = b;
  Add(ev);
  ev.at = at + down_for;
  ev.kind = FaultKind::kLinkUp;
  return Add(ev);
}

FaultSchedule& FaultSchedule::PartitionWindow(Micros at, net::NodeId a,
                                              net::NodeId b,
                                              Micros heal_after) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kPartition;
  ev.a = a;
  ev.b = b;
  Add(ev);
  ev.at = at + heal_after;
  ev.kind = FaultKind::kHeal;
  return Add(ev);
}

FaultSchedule& FaultSchedule::PartitionAt(Micros at, net::NodeId a,
                                          net::NodeId b) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kPartition;
  ev.a = a;
  ev.b = b;
  return Add(ev);
}

FaultSchedule& FaultSchedule::HealAt(Micros at, net::NodeId a,
                                     net::NodeId b) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kHeal;
  ev.a = a;
  ev.b = b;
  return Add(ev);
}

FaultSchedule& FaultSchedule::LatencySpike(Micros at, net::NodeId a,
                                           net::NodeId b, Micros extra,
                                           Micros duration) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kLatencySpikeStart;
  ev.a = a;
  ev.b = b;
  ev.extra_latency = extra;
  Add(ev);
  ev.at = at + duration;
  ev.kind = FaultKind::kLatencySpikeEnd;
  ev.extra_latency = 0;
  return Add(ev);
}

FaultSchedule& FaultSchedule::BurstLossWindow(Micros at, net::NodeId a,
                                              net::NodeId b,
                                              const net::BurstLossModel& model,
                                              Micros duration) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kBurstLossStart;
  ev.a = a;
  ev.b = b;
  ev.burst = model;
  Add(ev);
  ev.at = at + duration;
  ev.kind = FaultKind::kBurstLossEnd;
  return Add(ev);
}

void FaultSchedule::GenerateRandom(uint64_t seed,
                                   const std::vector<net::NodeId>& nodes,
                                   const RandomScheduleOptions& options) {
  Rng rng(seed);
  const double horizon_sec =
      double(options.horizon) / double(kMicrosPerSecond);

  // Poisson arrivals per node / per pair via exponential inter-arrival
  // times; each window's duration is exponential around its mean.
  auto windows = [&](double rate_per_sec, auto&& emit) {
    if (rate_per_sec <= 0) return;
    double t_sec = rng.Exponential(rate_per_sec);
    while (t_sec < horizon_sec) {
      emit(Micros(t_sec * double(kMicrosPerSecond)));
      t_sec += rng.Exponential(rate_per_sec);
    }
  };
  auto duration = [&](Micros mean) {
    return std::max<Micros>(
        kMicrosPerMilli,
        Micros(rng.Exponential(1.0 / std::max<double>(1.0, double(mean)))));
  };
  auto pick_pair = [&](net::NodeId* a, net::NodeId* b) {
    uint64_t i = rng.Uniform(nodes.size());
    uint64_t j = rng.Uniform(nodes.size() - 1);
    if (j >= i) ++j;
    *a = nodes[i];
    *b = nodes[j];
  };

  for (net::NodeId n : nodes) {
    windows(options.crash_rate_per_node_sec, [&](Micros at) {
      CrashNode(at, n, duration(options.mean_outage));
    });
  }
  const size_t pair_count = nodes.size() * (nodes.size() - 1) / 2;
  if (pair_count == 0) return;
  net::NodeId a = 0, b = 0;
  windows(options.flap_rate_per_pair_sec * double(pair_count),
          [&](Micros at) {
            pick_pair(&a, &b);
            FlapLink(at, a, b, duration(options.mean_flap));
          });
  windows(options.partition_rate_per_pair_sec * double(pair_count),
          [&](Micros at) {
            pick_pair(&a, &b);
            PartitionWindow(at, a, b, duration(options.mean_partition));
          });
  windows(options.spike_rate_per_pair_sec * double(pair_count),
          [&](Micros at) {
            pick_pair(&a, &b);
            LatencySpike(at, a, b, options.spike_extra_latency,
                         duration(options.mean_spike));
          });
  windows(options.burst_rate_per_pair_sec * double(pair_count),
          [&](Micros at) {
            pick_pair(&a, &b);
            BurstLossWindow(at, a, b, options.burst,
                            duration(options.mean_burst_window));
          });
}

void FaultSchedule::Arm() {
  if (armed_) return;
  armed_ = true;
  // Stable sort keeps insertion order for simultaneous events, so the
  // trace (and therefore the whole simulation) is deterministic.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at < y.at;
                   });
  // Event times are relative to the clock at arming (zero on a fresh
  // simulator, so existing schedules are unchanged; on wall-clock
  // transports "t=0" naturally means "now").
  for (const FaultEvent& ev : events_) {
    net_->After(ev.at, [this, ev]() { Apply(ev); });
  }
}

void FaultSchedule::Apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
      net_->SetNodeUp(ev.a, false);
      break;
    case FaultKind::kNodeRestart:
      net_->SetNodeUp(ev.a, true);
      break;
    case FaultKind::kLinkDown:
      net_->SetLinkDown(ev.a, ev.b, true);
      break;
    case FaultKind::kLinkUp:
      net_->SetLinkDown(ev.a, ev.b, false);
      break;
    case FaultKind::kPartition:
      net_->Partition(ev.a, ev.b);
      break;
    case FaultKind::kHeal:
      net_->Heal(ev.a, ev.b);
      break;
    case FaultKind::kLatencySpikeStart:
      net_->SetExtraLatency(ev.a, ev.b, ev.extra_latency);
      break;
    case FaultKind::kLatencySpikeEnd:
      net_->SetExtraLatency(ev.a, ev.b, 0);
      break;
    case FaultKind::kBurstLossStart:
      net_->SetBurstLoss(ev.a, ev.b, ev.burst);
      break;
    case FaultKind::kBurstLossEnd:
      net_->ClearBurstLoss(ev.a, ev.b);
      break;
  }
  injected_[size_t(ev.kind)]->Add(1);
  total_->Add(1);
  std::string line = "t=" + std::to_string(ev.at) + " " +
                     std::string(FaultKindName(ev.kind)) +
                     " a=" + std::to_string(ev.a);
  switch (ev.kind) {
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeRestart:
      break;
    default:
      line += " b=" + std::to_string(ev.b);
      break;
  }
  if (ev.kind == FaultKind::kLatencySpikeStart) {
    line += " extra=" + std::to_string(ev.extra_latency);
  }
  trace_.push_back(std::move(line));
  if (observer_) observer_(ev);
}

uint64_t FaultSchedule::TraceHash() const {
  uint64_t h = 0xC4405E17;  // arbitrary nonzero seed for the chain
  for (const std::string& line : trace_) {
    h = Hash64(line) ^ (h * 0x9E3779B97F4A7C15ULL);
  }
  return h;
}

}  // namespace deluge::chaos
