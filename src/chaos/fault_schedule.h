#ifndef DELUGE_CHAOS_FAULT_SCHEDULE_H_
#define DELUGE_CHAOS_FAULT_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace deluge::chaos {

/// Kinds of injectable faults.  Start/end pairs are separate events so a
/// schedule is a flat, sorted, replayable list.
enum class FaultKind : uint8_t {
  kNodeCrash,         ///< fail-stop: node drops all traffic
  kNodeRestart,
  kLinkDown,          ///< link flap start (both directions)
  kLinkUp,
  kPartition,         ///< protocol-visible pairwise partition
  kHeal,
  kLatencySpikeStart, ///< adds `extra_latency` one-way on the pair
  kLatencySpikeEnd,
  kBurstLossStart,    ///< Gilbert–Elliott correlated loss window
  kBurstLossEnd,
};

std::string_view FaultKindName(FaultKind kind);

/// One scheduled fault.  Node faults use `a`; pair faults use `a` and
/// `b`.
struct FaultEvent {
  Micros at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  net::NodeId a = 0;
  net::NodeId b = 0;
  Micros extra_latency = 0;      ///< latency spikes
  net::BurstLossModel burst{};   ///< burst-loss windows
};

/// Counters per fault kind (indexable by FaultKind).
struct ChaosStats {
  uint64_t injected[10] = {};
  uint64_t total = 0;
};

/// Tuning for seeded-random schedule generation.  Rates are per node (or
/// per pair drawn uniformly from `pairs`) per simulated second; durations
/// are exponential with the given mean.  Everything is derived from one
/// seed, so a schedule is fully reproducible.
struct RandomScheduleOptions {
  Micros horizon = 10 * kMicrosPerSecond;
  double crash_rate_per_node_sec = 0.05;
  Micros mean_outage = 500 * kMicrosPerMilli;
  double flap_rate_per_pair_sec = 0.05;
  Micros mean_flap = 200 * kMicrosPerMilli;
  double partition_rate_per_pair_sec = 0.02;
  Micros mean_partition = kMicrosPerSecond;
  double spike_rate_per_pair_sec = 0.05;
  Micros mean_spike = 500 * kMicrosPerMilli;
  Micros spike_extra_latency = 100 * kMicrosPerMilli;
  double burst_rate_per_pair_sec = 0.05;
  Micros mean_burst_window = kMicrosPerSecond;
  net::BurstLossModel burst{};
};

/// A deterministic fault-injection schedule over a simulated network.
///
/// Faults are scripted with the builder methods (and/or generated from a
/// seed), then `Arm()` places them on the simulator.  Every applied
/// fault is appended to a human-readable trace whose hash fingerprints
/// the run — two runs with the same seed produce bit-identical traces,
/// which is the property chaos tests pin down.
class FaultSchedule {
 public:
  /// `net` must outlive the schedule (and the run).
  explicit FaultSchedule(net::Transport* net);

  // Scripted builders; all return *this for chaining.  `duration` > 0
  // schedules the matching end event automatically.
  FaultSchedule& CrashNode(Micros at, net::NodeId n, Micros down_for = 0);
  FaultSchedule& FlapLink(Micros at, net::NodeId a, net::NodeId b,
                          Micros down_for);
  FaultSchedule& PartitionWindow(Micros at, net::NodeId a, net::NodeId b,
                                 Micros heal_after);
  /// Opens a partition between `a` and `b` at `at` with no scheduled
  /// heal (use `HealAt` to close it); expresses "partition until
  /// something else happens" scenarios.
  FaultSchedule& PartitionAt(Micros at, net::NodeId a, net::NodeId b);
  /// Schedules a standalone heal of the a<->b partition at `at`.
  /// Together with `PartitionAt` this lets partition-then-heal
  /// scenarios (the E22 anti-entropy runs) place the heal
  /// independently of the partition that opened it.
  FaultSchedule& HealAt(Micros at, net::NodeId a, net::NodeId b);
  FaultSchedule& LatencySpike(Micros at, net::NodeId a, net::NodeId b,
                              Micros extra, Micros duration);
  FaultSchedule& BurstLossWindow(Micros at, net::NodeId a, net::NodeId b,
                                 const net::BurstLossModel& model,
                                 Micros duration);
  /// Appends a raw event (advanced callers / generated schedules).
  FaultSchedule& Add(const FaultEvent& event);

  /// Generates a random schedule over `nodes` from `seed` and appends it
  /// (node events over all nodes, pair events over distinct sampled
  /// pairs).  Deterministic: same seed + nodes + options => same events.
  void GenerateRandom(uint64_t seed, const std::vector<net::NodeId>& nodes,
                      const RandomScheduleOptions& options);

  /// Sorts events by (time, insertion order) and schedules them on the
  /// transport's timer strand, with event times interpreted relative to
  /// the transport clock's value at the moment of arming (the sim clock
  /// starts at zero, so sim schedules are unchanged).  Call once,
  /// before running.
  void Arm();

  /// Observer invoked after every fault is applied (the event carries
  /// its kind, time, and endpoints).  Lets experiments react to fault
  /// edges — e.g. E22 kicks an anti-entropy round when a partition
  /// heals or a crashed node restarts — without polling network state.
  using FaultObserver = std::function<void(const FaultEvent&)>;
  void SetFaultObserver(FaultObserver observer) {
    observer_ = std::move(observer);
  }

  const std::vector<FaultEvent>& events() const { return events_; }
  const std::vector<std::string>& trace() const { return trace_; }
  /// Order-sensitive 64-bit fingerprint of the applied-fault trace.
  uint64_t TraceHash() const;
  /// Registry-backed snapshot, refreshed on every call.
  const ChaosStats& stats() const;

 private:
  void Apply(const FaultEvent& event);

  net::Transport* net_;
  std::vector<FaultEvent> events_;
  std::vector<std::string> trace_;
  FaultObserver observer_;
  obs::StatsScope obs_{"chaos"};
  obs::Counter* injected_[10];  // indexed by FaultKind, {kind=…} labels
  obs::Counter* total_;
  mutable ChaosStats snapshot_;
  bool armed_ = false;
};

}  // namespace deluge::chaos

#endif  // DELUGE_CHAOS_FAULT_SCHEDULE_H_
