#ifndef DELUGE_P2P_CHORD_H_
#define DELUGE_P2P_CHORD_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "net/transport.h"

namespace deluge::p2p {

/// Position on the Chord identifier circle (full 64-bit ring).
using RingId = uint64_t;

/// A lookup answer.
struct LookupResult {
  bool found = false;
  RingId owner = 0;          ///< ring id of the responsible peer
  std::string value;          ///< stored value, when any
  uint32_t hops = 0;          ///< overlay hops taken
  Micros latency = 0;         ///< virtual time from issue to answer
};

/// One peer of the overlay: owns the key range (predecessor, self], keeps
/// a log-sized finger table plus a short successor list, and routes
/// lookups greedily around crashed peers.
class ChordNode {
 public:
  /// Successor-list length: lookups survive up to this many consecutive
  /// crashed successors (Chord's r-successor fault tolerance).
  static constexpr int kSuccessorListLen = 4;

  ChordNode(RingId id, net::Transport* net);

  RingId ring_id() const { return id_; }
  net::NodeId node_id() const { return node_id_; }

  /// Local storage (keys this peer is responsible for).
  std::map<RingId, std::string>& store() { return store_; }

 private:
  friend class ChordRing;

  struct FingerEntry {
    RingId ring_id = 0;
    net::NodeId node_id = 0;
  };

  void OnMessage(const net::Message& msg);
  void RouteOrAnswer(RingId target, uint64_t request_id, uint32_t hops,
                     net::NodeId reply_to, uint8_t op, bool force_answer,
                     const std::string& key, const std::string& value);
  /// Picks the next live hop for `target`: the farthest live finger
  /// still preceding it, else the first live entry of the successor
  /// list.  `*force_answer` is set when the chosen hop sits at or past
  /// `target` on the ring (the responsible peer is down, so the hop
  /// must answer as fallback owner instead of routing on).  Returns
  /// false when every candidate is down (the lookup is dropped).
  /// Liveness comes from `net::Transport::IsNodeUp` — the simulation
  /// stand-in for the timeout-based probing a deployed Chord runs.
  bool PickNextHop(RingId target, FingerEntry* next,
                   bool* force_answer) const;

  RingId id_;
  net::Transport* net_;
  net::NodeId node_id_ = 0;
  std::vector<FingerEntry> fingers_;  // fingers_[i] ~ successor(id + 2^i)
  FingerEntry successor_;
  std::vector<FingerEntry> successors_;  // r immediate successors
  RingId predecessor_ = 0;
  std::map<RingId, std::string> store_;
  Micros processing_cost_ = 50;
};

/// The overlay manager: builds and maintains the ring, issues lookups and
/// stores, and rebuilds finger tables on churn.
///
/// Realizes the paper's "publish/subscribe system over peer-to-peer
/// networks where each peer may be a highly parallel cluster"
/// substrate (Section IV-E): routing state is O(log n) per peer and
/// lookups take O(log n) overlay hops (validated in E15), so the
/// decentralized metaverse database needs no global directory.
///
/// Membership changes use global knowledge to rebuild finger tables
/// (simulation shortcut for Chord's stabilization protocol — the routing
/// behaviour under test is identical once tables converge).
class ChordRing {
 public:
  using LookupCallback = std::function<void(const LookupResult&)>;

  explicit ChordRing(net::Transport* net);

  /// Adds a peer with ring position derived from `name`; keys it now
  /// owns migrate from its successor.  Returns its ring id.
  RingId AddPeer(const std::string& name);

  /// Removes a peer; its keys migrate to its successor.
  Status RemovePeer(RingId id);

  /// Stores (key, value) at the responsible peer, routed through the
  /// overlay from `origin` (any peer).
  void Put(RingId origin, const std::string& key, std::string value,
           LookupCallback done);

  /// Looks `key` up from `origin`; the callback reports the owner, the
  /// value (if stored), hop count, and virtual latency.
  void Get(RingId origin, const std::string& key, LookupCallback done);

  /// Ring id a key hashes to.
  static RingId KeyId(const std::string& key);

  size_t size() const { return peers_.size(); }
  const Histogram& hop_histogram() const { return hops_; }

  /// The peer responsible for `target` per the current membership
  /// (ground truth for tests).
  RingId OwnerOf(RingId target) const;

  /// The first `n` distinct peers at or after `target` in ring order —
  /// the owner followed by its successors.  This is the replica
  /// placement ("preference") list: `deluge::replica` stores each
  /// object on the N successor nodes of its key id.  Returns fewer
  /// than `n` entries when the ring is smaller than `n`.
  std::vector<RingId> SuccessorsOf(RingId target, int n) const;

  /// Net node id of the peer with ring id `id` (0 when unknown).
  net::NodeId NodeIdOf(RingId id) const;

 private:
  friend class ChordNode;

  void RebuildRoutingTables();
  ChordNode* PeerFor(RingId id);
  void OnAnswer(uint64_t request_id, const LookupResult& result);

  net::Transport* net_;
  net::NodeId client_node_ = 0;  ///< receives lookup answers
  std::map<RingId, std::unique_ptr<ChordNode>> peers_;  // sorted by ring id
  uint64_t next_request_ = 1;
  struct Pending {
    LookupCallback cb;
    Micros issued_at;
  };
  std::unordered_map<uint64_t, Pending> pending_;
  Histogram hops_;
};

}  // namespace deluge::p2p

#endif  // DELUGE_P2P_CHORD_H_
