#include "p2p/chord.h"

#include <algorithm>

#include "common/hash.h"
#include "storage/format.h"

namespace deluge::p2p {

namespace {

using storage::GetFixed32;
using storage::GetFixed64;
using storage::GetLengthPrefixed;
using storage::PutFixed32;
using storage::PutFixed64;
using storage::PutLengthPrefixed;

constexpr uint32_t kMsgRoute = 1;
constexpr uint32_t kMsgAnswer = 2;

constexpr uint8_t kOpGet = 0;
constexpr uint8_t kOpPut = 1;

/// x in (a, b] on the 64-bit ring.
bool InOpenClosed(RingId a, RingId x, RingId b) {
  if (a == b) return true;  // single-node ring owns everything
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // interval wraps zero
}

/// x in (a, b) on the ring.
bool InOpenOpen(RingId a, RingId x, RingId b) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

std::string EncodeRoute(uint64_t request_id, RingId target, uint32_t hops,
                        net::NodeId reply_to, uint8_t op, bool force_answer,
                        const std::string& key, const std::string& value) {
  std::string out;
  PutFixed64(&out, request_id);
  PutFixed64(&out, target);
  PutFixed32(&out, hops);
  PutFixed32(&out, reply_to);
  out.push_back(char(op));
  out.push_back(force_answer ? 1 : 0);
  PutLengthPrefixed(&out, key);
  PutLengthPrefixed(&out, value);
  return out;
}

struct RouteMsg {
  uint64_t request_id;
  RingId target;
  uint32_t hops;
  net::NodeId reply_to;
  uint8_t op;
  bool force_answer;
  std::string key;
  std::string value;
};

bool DecodeRoute(std::string_view payload, RouteMsg* out) {
  uint32_t reply_to = 0;
  std::string_view key, value;
  if (!GetFixed64(&payload, &out->request_id) ||
      !GetFixed64(&payload, &out->target) ||
      !GetFixed32(&payload, &out->hops) || !GetFixed32(&payload, &reply_to) ||
      payload.size() < 2) {
    return false;
  }
  out->op = uint8_t(payload.front());
  payload.remove_prefix(1);
  out->force_answer = payload.front() != 0;
  payload.remove_prefix(1);
  if (!GetLengthPrefixed(&payload, &key) ||
      !GetLengthPrefixed(&payload, &value)) {
    return false;
  }
  out->reply_to = reply_to;
  out->key.assign(key);
  out->value.assign(value);
  return true;
}

std::string EncodeAnswer(uint64_t request_id, RingId owner, bool found,
                         uint32_t hops, const std::string& value) {
  std::string out;
  PutFixed64(&out, request_id);
  PutFixed64(&out, owner);
  PutFixed32(&out, hops);
  out.push_back(found ? 1 : 0);
  PutLengthPrefixed(&out, value);
  return out;
}

}  // namespace

// -------------------------------------------------------------- ChordNode

ChordNode::ChordNode(RingId id, net::Transport* net) : id_(id), net_(net) {
  node_id_ = net->AddNode([this](const net::Message& m) { OnMessage(m); });
}

bool ChordNode::PickNextHop(RingId target, FingerEntry* next,
                            bool* force_answer) const {
  *force_answer = false;
  // Classic Chord: the farthest finger that still precedes the target —
  // skipping crashed peers so lookups route *around* a dead finger
  // instead of into it (messages to a down node are silently lost).
  for (auto it = fingers_.rbegin(); it != fingers_.rend(); ++it) {
    if (it->node_id != node_id_ && net_->IsNodeUp(it->node_id) &&
        InOpenOpen(id_, it->ring_id, target)) {
      *next = *it;
      return true;
    }
  }
  // No live finger precedes the target: the successor list takes over.
  // The first live successor either owns the target, or sits past it
  // because the true owner is down — then it must answer as fallback
  // owner (its own range check uses a stale predecessor pointer and
  // would route the lookup in circles).
  for (const FingerEntry& s : successors_) {
    if (s.node_id == node_id_ || !net_->IsNodeUp(s.node_id)) continue;
    *next = s;
    *force_answer = InOpenClosed(id_, target, s.ring_id);
    return true;
  }
  return false;  // every candidate is down; the lookup is dropped
}

void ChordNode::OnMessage(const net::Message& msg) {
  if (msg.type != kMsgRoute) return;
  RouteMsg route;
  if (!DecodeRoute(msg.payload, &route)) return;
  RouteOrAnswer(route.target, route.request_id, route.hops, route.reply_to,
                route.op, route.force_answer, route.key, route.value);
}

void ChordNode::RouteOrAnswer(RingId target, uint64_t request_id,
                              uint32_t hops, net::NodeId reply_to,
                              uint8_t op, bool force_answer,
                              const std::string& key,
                              const std::string& value) {
  if (force_answer || InOpenClosed(predecessor_, target, id_)) {
    // This peer owns the key.
    bool found = false;
    std::string answer_value;
    if (op == kOpPut) {
      store_[target] = value;
      found = true;
    } else {
      auto it = store_.find(target);
      if (it != store_.end()) {
        found = true;
        answer_value = it->second;
      }
    }
    net::Message reply;
    reply.from = node_id_;
    reply.to = reply_to;
    reply.type = kMsgAnswer;
    reply.payload = EncodeAnswer(request_id, id_, found, hops, answer_value);
    net::Transport* net = net_;
    net_->After(processing_cost_,
                [net, reply = std::move(reply)]() { net->Send(reply); });
    return;
  }
  FingerEntry next;
  bool force = false;
  if (!PickNextHop(target, &next, &force)) return;  // all candidates down
  net::Message fwd;
  fwd.from = node_id_;
  fwd.to = next.node_id;
  fwd.type = kMsgRoute;
  fwd.payload = EncodeRoute(request_id, target, hops + 1, reply_to, op,
                            force, key, value);
  net::Transport* net = net_;
  net_->After(processing_cost_,
              [net, fwd = std::move(fwd)]() { net->Send(fwd); });
}

// -------------------------------------------------------------- ChordRing

ChordRing::ChordRing(net::Transport* net) : net_(net) {
  // The ring manager owns a network endpoint that receives answers on
  // behalf of issuing clients.
  net::NodeId self = net->AddNode([this](const net::Message& m) {
    if (m.type != kMsgAnswer) return;
    std::string_view payload(m.payload);
    uint64_t request_id = 0, owner = 0;
    uint32_t hops = 0;
    std::string_view value;
    if (!GetFixed64(&payload, &request_id) || !GetFixed64(&payload, &owner) ||
        !GetFixed32(&payload, &hops) || payload.empty()) {
      return;
    }
    bool found = payload.front() != 0;
    payload.remove_prefix(1);
    GetLengthPrefixed(&payload, &value);
    LookupResult result;
    result.found = found;
    result.owner = owner;
    result.value.assign(value);
    result.hops = hops;
    OnAnswer(request_id, result);
  });
  client_node_ = self;
}

RingId ChordRing::KeyId(const std::string& key) { return Hash64(key); }

RingId ChordRing::AddPeer(const std::string& name) {
  RingId id = Hash64(name, /*seed=*/0xC0DE);
  while (peers_.count(id) > 0) id = Mix64(id);  // collision: re-derive
  auto node = std::make_unique<ChordNode>(id, net_);

  // Key migration: the new peer takes (predecessor, id] from its
  // successor.
  if (!peers_.empty()) {
    auto succ_it = peers_.lower_bound(id);
    if (succ_it == peers_.end()) succ_it = peers_.begin();
    ChordNode* succ = succ_it->second.get();
    auto& succ_store = succ->store_;
    for (auto it = succ_store.begin(); it != succ_store.end();) {
      // After insertion, keys <= id (in ring order from old predecessor)
      // belong to the new node.
      RingId old_pred = succ->predecessor_;
      if (InOpenClosed(old_pred, it->first, id)) {
        node->store_[it->first] = std::move(it->second);
        it = succ_store.erase(it);
      } else {
        ++it;
      }
    }
  }
  peers_.emplace(id, std::move(node));
  RebuildRoutingTables();
  return id;
}

Status ChordRing::RemovePeer(RingId id) {
  auto it = peers_.find(id);
  if (it == peers_.end()) return Status::NotFound("no such peer");
  if (peers_.size() == 1) {
    return Status::InvalidArgument("cannot remove the last peer");
  }
  // Keys migrate to the successor.
  auto succ_it = peers_.upper_bound(id);
  if (succ_it == peers_.end()) succ_it = peers_.begin();
  for (auto& [k, v] : it->second->store_) {
    succ_it->second->store_[k] = std::move(v);
  }
  peers_.erase(it);
  RebuildRoutingTables();
  return Status::OK();
}

void ChordRing::RebuildRoutingTables() {
  if (peers_.empty()) return;
  auto successor_of = [this](RingId x) -> ChordNode* {
    auto it = peers_.lower_bound(x);
    if (it == peers_.end()) it = peers_.begin();
    return it->second.get();
  };
  for (auto& [id, node] : peers_) {
    // Predecessor.
    auto it = peers_.find(id);
    if (it == peers_.begin()) {
      node->predecessor_ = peers_.rbegin()->first;
    } else {
      node->predecessor_ = std::prev(it)->first;
    }
    // Successor, plus the r-entry successor list (lookup fallback when
    // consecutive successors crash).
    auto next = std::next(it);
    if (next == peers_.end()) next = peers_.begin();
    node->successor_ = {next->first, next->second->node_id()};
    node->successors_.clear();
    auto walk = next;
    for (int k = 0;
         k < ChordNode::kSuccessorListLen && walk->first != id; ++k) {
      node->successors_.push_back({walk->first, walk->second->node_id()});
      walk = std::next(walk);
      if (walk == peers_.end()) walk = peers_.begin();
    }
    // Fingers: successor(id + 2^k) for k = 0..63.
    node->fingers_.clear();
    for (int k = 0; k < 64; ++k) {
      RingId start = id + (RingId{1} << k);  // wraps naturally
      ChordNode* f = successor_of(start);
      node->fingers_.push_back({f->ring_id(), f->node_id()});
    }
  }
}

ChordNode* ChordRing::PeerFor(RingId id) {
  auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : it->second.get();
}

void ChordRing::Put(RingId origin, const std::string& key, std::string value,
                    LookupCallback done) {
  ChordNode* start = PeerFor(origin);
  if (start == nullptr) {
    if (done) done(LookupResult{});
    return;
  }
  uint64_t request_id = next_request_++;
  pending_[request_id] = Pending{std::move(done), net_->Now()};
  start->RouteOrAnswer(KeyId(key), request_id, 0, client_node_, kOpPut,
                       /*force_answer=*/false, key, value);
}

void ChordRing::Get(RingId origin, const std::string& key,
                    LookupCallback done) {
  ChordNode* start = PeerFor(origin);
  if (start == nullptr) {
    if (done) done(LookupResult{});
    return;
  }
  uint64_t request_id = next_request_++;
  pending_[request_id] = Pending{std::move(done), net_->Now()};
  start->RouteOrAnswer(KeyId(key), request_id, 0, client_node_, kOpGet,
                       /*force_answer=*/false, key, "");
}

void ChordRing::OnAnswer(uint64_t request_id, const LookupResult& result) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  LookupResult full = result;
  full.latency = net_->Now() - it->second.issued_at;
  hops_.Record(full.hops);
  LookupCallback cb = std::move(it->second.cb);
  pending_.erase(it);
  if (cb) cb(full);
}

RingId ChordRing::OwnerOf(RingId target) const {
  auto it = peers_.lower_bound(target);
  if (it == peers_.end()) it = peers_.begin();
  return it->first;
}

std::vector<RingId> ChordRing::SuccessorsOf(RingId target, int n) const {
  std::vector<RingId> out;
  if (peers_.empty() || n <= 0) return out;
  auto it = peers_.lower_bound(target);
  if (it == peers_.end()) it = peers_.begin();
  const int count = std::min<int>(n, int(peers_.size()));
  for (int i = 0; i < count; ++i) {
    out.push_back(it->first);
    ++it;
    if (it == peers_.end()) it = peers_.begin();
  }
  return out;
}

net::NodeId ChordRing::NodeIdOf(RingId id) const {
  auto it = peers_.find(id);
  return it == peers_.end() ? 0 : it->second->node_id();
}

}  // namespace deluge::p2p
