#include "geo/trajectory.h"

#include <algorithm>

namespace deluge::geo {

void Trajectory::Append(const Vec3& p, Micros t) {
  if (!samples_.empty() && t < samples_.back().t) return;
  samples_.push_back({p, t});
}

Vec3 Trajectory::At(Micros t) const {
  if (samples_.empty()) return {};
  if (t <= samples_.front().t) return samples_.front().position;
  if (t >= samples_.back().t) return samples_.back().position;
  // Binary search for the segment containing t.
  auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, Micros time) { return s.t < time; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  if (hi.t == lo.t) return lo.position;
  double f = double(t - lo.t) / double(hi.t - lo.t);
  return lo.position + (hi.position - lo.position) * f;
}

double Trajectory::AverageSpeed() const {
  if (samples_.size() < 2) return 0.0;
  Micros dt = samples_.back().t - samples_.front().t;
  if (dt <= 0) return 0.0;
  return Length() / (double(dt) / double(kMicrosPerSecond));
}

double Trajectory::Length() const {
  double total = 0.0;
  for (size_t i = 1; i < samples_.size(); ++i) {
    total += Distance(samples_[i - 1].position, samples_[i].position);
  }
  return total;
}

AABB Trajectory::Bounds() const {
  AABB box;
  for (const auto& s : samples_) box.Expand(s.position);
  return box;
}

}  // namespace deluge::geo
