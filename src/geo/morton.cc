#include "geo/morton.h"

#include <algorithm>

namespace deluge::geo {

namespace {

// Spreads the low 21 bits of x so there are two zero bits between each.
uint64_t SpreadBits(uint64_t x) {
  x &= 0x1FFFFF;  // 21 bits
  x = (x | x << 32) & 0x1F00000000FFFFULL;
  x = (x | x << 16) & 0x1F0000FF0000FFULL;
  x = (x | x << 8) & 0x100F00F00F00F00FULL;
  x = (x | x << 4) & 0x10C30C30C30C30C3ULL;
  x = (x | x << 2) & 0x1249249249249249ULL;
  return x;
}

// Inverse of SpreadBits.
uint32_t CompactBits(uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x ^ (x >> 2)) & 0x10C30C30C30C30C3ULL;
  x = (x ^ (x >> 4)) & 0x100F00F00F00F00FULL;
  x = (x ^ (x >> 8)) & 0x1F0000FF0000FFULL;
  x = (x ^ (x >> 16)) & 0x1F00000000FFFFULL;
  x = (x ^ (x >> 32)) & 0x1FFFFF;
  return static_cast<uint32_t>(x);
}

// Spreads the low 32 bits of x with one zero bit between each.
uint64_t SpreadBits2D(uint64_t x) {
  x &= 0xFFFFFFFFULL;
  x = (x | x << 16) & 0x0000FFFF0000FFFFULL;
  x = (x | x << 8) & 0x00FF00FF00FF00FFULL;
  x = (x | x << 4) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | x << 2) & 0x3333333333333333ULL;
  x = (x | x << 1) & 0x5555555555555555ULL;
  return x;
}

}  // namespace

MortonCodec::MortonCodec(const AABB& world) : world_(world) {
  Vec3 e = world.Extent();
  auto axis_scale = [](double extent) {
    return extent > 0.0 ? double(kCellsPerAxis) / extent : 0.0;
  };
  scale_ = {axis_scale(e.x), axis_scale(e.y), axis_scale(e.z)};
  auto inv = [](double s) { return s > 0.0 ? 1.0 / s : 0.0; };
  inv_scale_ = {inv(scale_.x), inv(scale_.y), inv(scale_.z)};
}

uint32_t MortonCodec::Quantize(double v, double lo, double hi) const {
  if (hi <= lo) return 0;
  double t = (std::clamp(v, lo, hi) - lo) / (hi - lo);
  auto cell = static_cast<uint64_t>(t * kCellsPerAxis);
  return static_cast<uint32_t>(std::min<uint64_t>(cell, kCellsPerAxis - 1));
}

uint64_t MortonCodec::Encode(const Vec3& p) const {
  uint32_t qx = Quantize(p.x, world_.min.x, world_.max.x);
  uint32_t qy = Quantize(p.y, world_.min.y, world_.max.y);
  uint32_t qz = Quantize(p.z, world_.min.z, world_.max.z);
  return Interleave(qx, qy, qz);
}

Vec3 MortonCodec::Decode(uint64_t code) const {
  uint32_t qx, qy, qz;
  Deinterleave(code, &qx, &qy, &qz);
  auto centre = [](uint32_t q, double lo, double hi) {
    if (hi <= lo) return lo;
    double cell = (hi - lo) / double(kCellsPerAxis);
    return lo + (double(q) + 0.5) * cell;
  };
  return {centre(qx, world_.min.x, world_.max.x),
          centre(qy, world_.min.y, world_.max.y),
          centre(qz, world_.min.z, world_.max.z)};
}

uint64_t MortonCodec::Interleave(uint32_t x, uint32_t y, uint32_t z) {
  return SpreadBits(x) | (SpreadBits(y) << 1) | (SpreadBits(z) << 2);
}

uint64_t MortonCodec::Interleave2D(uint32_t x, uint32_t y) {
  return SpreadBits2D(x) | (SpreadBits2D(y) << 1);
}

void MortonCodec::Deinterleave(uint64_t code, uint32_t* x, uint32_t* y,
                               uint32_t* z) {
  *x = CompactBits(code);
  *y = CompactBits(code >> 1);
  *z = CompactBits(code >> 2);
}

}  // namespace deluge::geo
