#ifndef DELUGE_GEO_GEOMETRY_H_
#define DELUGE_GEO_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace deluge::geo {

/// A point or displacement in 3-D metaverse space.  Units are metres; the
/// physical and virtual spaces share one coordinate convention so entities
/// can be mirrored across spaces without conversion.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3() = default;
  Vec3(double x_in, double y_in, double z_in) : x(x_in), y(y_in), z(z_in) {}

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double LengthSquared() const { return Dot(*this); }
  double Length() const { return std::sqrt(LengthSquared()); }

  /// Returns a unit-length copy (zero vector maps to zero).
  Vec3 Normalized() const {
    double len = Length();
    return len > 0.0 ? Vec3{x / len, y / len, z / len} : Vec3{};
  }

  friend bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  std::string ToString() const;
};

/// Euclidean distance between two points.
inline double Distance(const Vec3& a, const Vec3& b) {
  return (a - b).Length();
}

/// Squared distance (avoids the sqrt for comparisons).
inline double DistanceSquared(const Vec3& a, const Vec3& b) {
  return (a - b).LengthSquared();
}

/// Axis-aligned bounding box; the universal region primitive for range
/// queries, index nodes, and interest areas.  An AABB with min > max on any
/// axis is "empty".
struct AABB {
  Vec3 min;
  Vec3 max;

  AABB() : min{1, 1, 1}, max{0, 0, 0} {}  // empty by default
  AABB(const Vec3& min_in, const Vec3& max_in) : min(min_in), max(max_in) {}

  /// Box centred at `c` with half-extent `r` in each axis.
  static AABB Cube(const Vec3& c, double r) {
    return AABB({c.x - r, c.y - r, c.z - r}, {c.x + r, c.y + r, c.z + r});
  }

  bool IsEmpty() const {
    return min.x > max.x || min.y > max.y || min.z > max.z;
  }

  bool Contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }

  bool Contains(const AABB& o) const {
    return !o.IsEmpty() && Contains(o.min) && Contains(o.max);
  }

  bool Intersects(const AABB& o) const {
    if (IsEmpty() || o.IsEmpty()) return false;
    return min.x <= o.max.x && max.x >= o.min.x && min.y <= o.max.y &&
           max.y >= o.min.y && min.z <= o.max.z && max.z >= o.min.z;
  }

  /// Smallest box covering both this and `o`.
  AABB Union(const AABB& o) const {
    if (IsEmpty()) return o;
    if (o.IsEmpty()) return *this;
    return AABB({std::min(min.x, o.min.x), std::min(min.y, o.min.y),
                 std::min(min.z, o.min.z)},
                {std::max(max.x, o.max.x), std::max(max.y, o.max.y),
                 std::max(max.z, o.max.z)});
  }

  /// Grows the box to cover `p`.
  void Expand(const Vec3& p) {
    if (IsEmpty()) {
      min = max = p;
      return;
    }
    min = {std::min(min.x, p.x), std::min(min.y, p.y), std::min(min.z, p.z)};
    max = {std::max(max.x, p.x), std::max(max.y, p.y), std::max(max.z, p.z)};
  }

  Vec3 Center() const {
    return {(min.x + max.x) / 2, (min.y + max.y) / 2, (min.z + max.z) / 2};
  }

  Vec3 Extent() const {
    return IsEmpty() ? Vec3{} : Vec3{max.x - min.x, max.y - min.y,
                                     max.z - min.z};
  }

  double Volume() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = Extent();
    return e.x * e.y * e.z;
  }

  /// Surface-area-style measure used by R-tree split heuristics (half of
  /// the actual surface area; relative ordering is all that matters).
  double Margin() const {
    if (IsEmpty()) return 0.0;
    Vec3 e = Extent();
    return e.x * e.y + e.y * e.z + e.z * e.x;
  }

  /// Minimum squared distance from `p` to the box (0 when inside).
  double DistanceSquaredTo(const Vec3& p) const {
    double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    double dz = std::max({min.z - p.z, 0.0, p.z - max.z});
    return dx * dx + dy * dy + dz * dz;
  }

  std::string ToString() const;
};

/// A viewing sphere used for walkthrough visibility queries: everything a
/// user can see from `eye` within `radius`, optionally narrowed to a cone
/// around `direction` with half-angle `half_angle_rad` (<= 0 disables the
/// cone and yields an omnidirectional view).
struct ViewRegion {
  Vec3 eye;
  double radius = 0.0;
  Vec3 direction{1, 0, 0};
  double half_angle_rad = -1.0;

  /// True if point `p` is inside the view region.
  bool Contains(const Vec3& p) const {
    Vec3 d = p - eye;
    double dist2 = d.LengthSquared();
    if (dist2 > radius * radius) return false;
    if (half_angle_rad <= 0.0) return true;
    if (dist2 == 0.0) return true;
    double cos_angle = d.Normalized().Dot(direction.Normalized());
    return cos_angle >= std::cos(half_angle_rad);
  }

  /// Conservative bounding box of the region (sphere bound).
  AABB Bounds() const { return AABB::Cube(eye, radius); }
};

}  // namespace deluge::geo

#endif  // DELUGE_GEO_GEOMETRY_H_
