#ifndef DELUGE_GEO_MORTON_H_
#define DELUGE_GEO_MORTON_H_

#include <cstdint>

#include "geo/geometry.h"

namespace deluge::geo {

/// Z-order (Morton) space-filling-curve codec.
///
/// Maps 3-D points inside a fixed world box to 63-bit keys (21 bits per
/// axis) whose integer order approximately preserves spatial locality.
/// This is the linearization used by the ST2B-style B+-tree moving-object
/// index (`deluge::index::MortonBTreeIndex`): spatial range queries become
/// small sets of key-range scans.
class MortonCodec {
 public:
  /// World bounds to normalize into.  Points outside are clamped.
  explicit MortonCodec(const AABB& world);

  /// Encodes a point to its Morton key.
  uint64_t Encode(const Vec3& p) const;

  /// Decodes a key back to the centre of its cell.
  Vec3 Decode(uint64_t code) const;

  /// Interleaves three 21-bit coordinates.
  static uint64_t Interleave(uint32_t x, uint32_t y, uint32_t z);

  /// Interleaves two 32-bit coordinates (2-D Z-order).  Used where the
  /// third axis is degenerate — e.g. the spatial sharder's flat tile
  /// grid — where the 3-D interleave would pin every third bit to zero
  /// and skew modulo-based shard assignment.
  static uint64_t Interleave2D(uint32_t x, uint32_t y);

  /// Extracts the three 21-bit coordinates of a key.
  static void Deinterleave(uint64_t code, uint32_t* x, uint32_t* y,
                           uint32_t* z);

  const AABB& world() const { return world_; }

  /// Cells per axis (2^21).
  static constexpr uint32_t kCellsPerAxis = 1u << 21;

 private:
  uint32_t Quantize(double v, double lo, double hi) const;

  AABB world_;
  Vec3 scale_;     // cells per metre, per axis
  Vec3 inv_scale_; // metres per cell, per axis
};

}  // namespace deluge::geo

#endif  // DELUGE_GEO_MORTON_H_
