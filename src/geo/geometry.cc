#include "geo/geometry.h"

#include <cstdio>

namespace deluge::geo {

std::string Vec3::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f, %.3f)", x, y, z);
  return buf;
}

std::string AABB::ToString() const {
  if (IsEmpty()) return "[empty]";
  return "[" + min.ToString() + " .. " + max.ToString() + "]";
}

}  // namespace deluge::geo
