#ifndef DELUGE_GEO_TRAJECTORY_H_
#define DELUGE_GEO_TRAJECTORY_H_

#include <vector>

#include "common/clock.h"
#include "geo/geometry.h"

namespace deluge::geo {

/// A linear motion state: position + velocity sampled at `t`.  This is the
/// unit the moving-object indexes (TPR-style) and dead-reckoning filters
/// operate on: position at a later time is extrapolated linearly.
struct MotionState {
  Vec3 position;
  Vec3 velocity;  // metres per second
  Micros t = 0;

  /// Predicted position at time `when` assuming constant velocity.
  Vec3 PositionAt(Micros when) const {
    double dt = double(when - t) / double(kMicrosPerSecond);
    return position + velocity * dt;
  }

  /// Conservative bound on how far the object can be from its predicted
  /// position at `when` if its speed never exceeds `max_speed`.
  double UncertaintyAt(Micros when, double max_speed) const {
    double dt = double(when - t) / double(kMicrosPerSecond);
    return dt < 0 ? 0.0 : dt * max_speed;
  }
};

/// A time-stamped polyline trajectory: the raw product of GPS/RFID
/// tracking, and the input to trajectory storage and interpolation.
class Trajectory {
 public:
  struct Sample {
    Vec3 position;
    Micros t = 0;
  };

  /// Appends a sample; timestamps must be non-decreasing (violations are
  /// dropped, mirroring how real trackers discard out-of-order fixes).
  void Append(const Vec3& p, Micros t);

  /// Linear interpolation at time `t`.  Clamps to the endpoints outside
  /// the sampled range.  Returns the origin for an empty trajectory.
  Vec3 At(Micros t) const;

  /// Average speed over the whole trajectory (m/s); 0 if < 2 samples.
  double AverageSpeed() const;

  /// Total path length in metres.
  double Length() const;

  const std::vector<Sample>& samples() const { return samples_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Bounding box of all samples.
  AABB Bounds() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace deluge::geo

#endif  // DELUGE_GEO_TRAJECTORY_H_
