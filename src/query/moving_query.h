#ifndef DELUGE_QUERY_MOVING_QUERY_H_
#define DELUGE_QUERY_MOVING_QUERY_H_

#include <cstdint>
#include <vector>

#include "index/moving_index.h"

namespace deluge::query {

/// Evaluation strategies for continuous queries whose *issuer* also
/// moves (Section IV-G: "we are also dealing with moving queries ...
/// over moving objects").
enum class MovingQueryStrategy {
  kReevaluate,   ///< hit the index on every tick
  kIncremental,  ///< maintain a safe superset; re-query only on expiry
};

/// A continuous range query attached to a moving focal point: "all
/// objects within `radius` of me, continuously".  The incremental
/// strategy fetches a superset with margin `slack` and serves ticks from
/// it until the combined drift of the focal point and the objects could
/// invalidate it — trading a larger fetch for far fewer index visits.
class ContinuousRangeQuery {
 public:
  /// `index` must outlive the query.  `slack` is the safe-region margin
  /// in metres used by the incremental strategy.
  ContinuousRangeQuery(const index::MovingObjectIndex* index, double radius,
                       MovingQueryStrategy strategy, double slack = 50.0);

  /// Updates the focal point's motion state (the querier moved).
  void UpdateFocus(const geo::MotionState& focus);

  /// Current result set at time `t`: ids within `radius` of the focal
  /// point's predicted position.
  std::vector<index::MovingHit> Evaluate(Micros t);

  uint64_t index_queries() const { return index_queries_; }
  uint64_t evaluations() const { return evaluations_; }

 private:
  bool CacheValid(const geo::Vec3& focus_pos, Micros t) const;
  void Refresh(const geo::Vec3& focus_pos, Micros t);

  const index::MovingObjectIndex* index_;
  double radius_;
  MovingQueryStrategy strategy_;
  double slack_;

  geo::MotionState focus_;
  bool have_focus_ = false;

  // Incremental cache.
  std::vector<index::EntityId> cached_ids_;
  geo::Vec3 cache_center_;
  Micros cache_time_ = 0;
  bool cache_valid_ = false;

  uint64_t index_queries_ = 0;
  uint64_t evaluations_ = 0;
};

/// A continuous k-nearest query on a moving focal point; always served
/// through the index (provided for the moving-social-network example:
/// "detect a friend at the same location").
class ContinuousKnnQuery {
 public:
  ContinuousKnnQuery(const index::MovingObjectIndex* index, size_t k);

  void UpdateFocus(const geo::MotionState& focus);
  std::vector<index::MovingHit> Evaluate(Micros t);

 private:
  const index::MovingObjectIndex* index_;
  size_t k_;
  geo::MotionState focus_;
};

}  // namespace deluge::query

#endif  // DELUGE_QUERY_MOVING_QUERY_H_
