#ifndef DELUGE_QUERY_OPTIMIZER_H_
#define DELUGE_QUERY_OPTIMIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace deluge::query {

/// Where a pipeline stage executes in the device–cloud split of Fig. 7.
enum class Placement : uint8_t { kDevice = 0, kCloud = 1 };

/// A stage of a linear query pipeline, annotated with the quantities the
/// device-aware optimizer needs.
struct PlanStage {
  std::string name;
  /// CPU work in abstract units (converted by per-tier speeds below).
  double work = 1.0;
  /// Bytes flowing out of this stage into the next.
  uint64_t output_bytes = 1024;
  /// Some stages cannot leave the cloud (need the buffer pool / base
  /// data) or the device (need the sensor).
  bool device_only = false;
  bool cloud_only = false;
};

/// Cost model parameters of a device/cloud pair.
struct DeviceCloudModel {
  double device_speed = 1.0;      ///< work units per millisecond
  double cloud_speed = 20.0;      ///< cloud executors are faster
  double uplink_bytes_per_ms = 6250.0;   ///< 50 Mbps
  /// Total device work budget (battery/thermal); plans exceeding it are
  /// infeasible on-device.
  double device_work_budget = 1e18;
  /// Input bytes entering stage 0 (already on the device — sensor data).
  uint64_t source_bytes = 4096;
};

/// A placed plan with its predicted latency.
struct PlacedPlan {
  std::vector<Placement> placements;
  double latency_ms = 0.0;
  double device_work = 0.0;
  uint64_t bytes_uplinked = 0;
  bool feasible = true;
};

/// Device-aware plan placement (Section IV-G: "the optimizer may have to
/// be device-aware so that a feasible (and optimal for the device) plan
/// can be generated").
///
/// For a linear pipeline starting at the device (data is born there),
/// chooses the split point: stages before it run on the device, the rest
/// in the cloud; data crosses the uplink exactly once at the split.
/// Exhaustive over the n+1 split points, respecting device_only /
/// cloud_only pins and the device work budget.
class DevicePlanOptimizer {
 public:
  explicit DevicePlanOptimizer(DeviceCloudModel model);

  /// The latency-optimal feasible plan.  `feasible == false` when the
  /// pins contradict (a cloud_only stage before a device_only stage).
  PlacedPlan Optimize(const std::vector<PlanStage>& stages) const;

  /// Cost of a specific split point (stages [0, split) on device).
  PlacedPlan EvaluateSplit(const std::vector<PlanStage>& stages,
                           size_t split) const;

 private:
  DeviceCloudModel model_;
};

/// Space-aware execution class for a consumer (Section IV-G: "it is
/// reasonable to prioritize ... a shopper in a physical mall than for an
/// online shopper").  Maps a consumer's space and deadline to the
/// operator variants the planner should pick.
struct ExecutionClass {
  bool physical_consumer = true;
  Micros deadline = 100 * kMicrosPerMilli;
};

/// Decision of the accuracy/latency tradeoff.
struct VariantChoice {
  bool use_approximate = false;
  double priority_boost = 0.0;
};

/// Picks exact vs approximate operator variants: physical consumers get
/// exact data and a priority boost; virtual consumers with tight
/// deadlines degrade to approximate variants (the paper's low-resolution
/// stream example).
VariantChoice ChooseVariant(const ExecutionClass& consumer,
                            Micros estimated_exact_latency);

}  // namespace deluge::query

#endif  // DELUGE_QUERY_OPTIMIZER_H_
