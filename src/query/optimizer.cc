#include "query/optimizer.h"

#include <algorithm>
#include <limits>

namespace deluge::query {

DevicePlanOptimizer::DevicePlanOptimizer(DeviceCloudModel model)
    : model_(model) {}

PlacedPlan DevicePlanOptimizer::EvaluateSplit(
    const std::vector<PlanStage>& stages, size_t split) const {
  PlacedPlan plan;
  plan.placements.resize(stages.size());
  double device_ms = 0.0, cloud_ms = 0.0;
  for (size_t i = 0; i < stages.size(); ++i) {
    bool on_device = i < split;
    plan.placements[i] = on_device ? Placement::kDevice : Placement::kCloud;
    if (on_device) {
      if (stages[i].cloud_only) plan.feasible = false;
      plan.device_work += stages[i].work;
      device_ms += stages[i].work / model_.device_speed;
    } else {
      if (stages[i].device_only) plan.feasible = false;
      cloud_ms += stages[i].work / model_.cloud_speed;
    }
  }
  if (plan.device_work > model_.device_work_budget) plan.feasible = false;

  // Bytes crossing the uplink: output of the last device stage, or the
  // raw source when nothing runs on-device.
  plan.bytes_uplinked =
      split == 0 ? model_.source_bytes : stages[split - 1].output_bytes;
  // When everything runs on-device only the (small) final result goes up;
  // model that as the last stage's output as well.
  if (split == stages.size() && !stages.empty()) {
    plan.bytes_uplinked = stages.back().output_bytes;
  }
  double uplink_ms = double(plan.bytes_uplinked) / model_.uplink_bytes_per_ms;
  plan.latency_ms = device_ms + uplink_ms + cloud_ms;
  return plan;
}

PlacedPlan DevicePlanOptimizer::Optimize(
    const std::vector<PlanStage>& stages) const {
  PlacedPlan best;
  best.feasible = false;
  best.latency_ms = std::numeric_limits<double>::infinity();
  for (size_t split = 0; split <= stages.size(); ++split) {
    PlacedPlan candidate = EvaluateSplit(stages, split);
    if (!candidate.feasible) continue;
    if (candidate.latency_ms < best.latency_ms) best = candidate;
  }
  return best;
}

VariantChoice ChooseVariant(const ExecutionClass& consumer,
                            Micros estimated_exact_latency) {
  VariantChoice choice;
  if (consumer.physical_consumer) {
    // Physical-space consumers: exact results, boosted priority.
    choice.use_approximate = false;
    choice.priority_boost = 1.0;
    return choice;
  }
  // Virtual consumers degrade to the approximate variant when the exact
  // one cannot meet the deadline.
  choice.use_approximate = estimated_exact_latency > consumer.deadline;
  choice.priority_boost = 0.0;
  return choice;
}

}  // namespace deluge::query
