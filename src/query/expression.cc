#include "query/expression.h"

#include <algorithm>

namespace deluge::query {

PredicateExpr::PredicateExpr(std::string name, Fn fn, double cost,
                             double selectivity)
    : name_(std::move(name)),
      fn_(std::move(fn)),
      cost_(cost > 0 ? cost : 1e-9),
      selectivity_(std::clamp(selectivity, 0.0, 1.0)) {}

Conjunction::Conjunction(std::vector<PredicateExpr> predicates)
    : preds_(std::move(predicates)) {}

void Conjunction::OptimizeOrder() {
  std::stable_sort(preds_.begin(), preds_.end(),
                   [](const PredicateExpr& a, const PredicateExpr& b) {
                     return a.Rank() < b.Rank();
                   });
}

bool Conjunction::Evaluate(const stream::Tuple& t) {
  for (const auto& p : preds_) {
    cost_spent_ += p.cost();
    if (!p.Evaluate(t)) return false;
  }
  return true;
}

double Conjunction::ExpectedCost() const {
  double expected = 0.0;
  double reach = 1.0;  // probability of reaching this predicate
  for (const auto& p : preds_) {
    expected += reach * p.cost();
    reach *= p.selectivity();
  }
  return expected;
}

}  // namespace deluge::query
