#include "query/moving_query.h"

#include <algorithm>

namespace deluge::query {

ContinuousRangeQuery::ContinuousRangeQuery(
    const index::MovingObjectIndex* index, double radius,
    MovingQueryStrategy strategy, double slack)
    : index_(index),
      radius_(radius),
      strategy_(strategy),
      slack_(std::max(slack, 0.0)) {}

void ContinuousRangeQuery::UpdateFocus(const geo::MotionState& focus) {
  focus_ = focus;
  have_focus_ = true;
}

bool ContinuousRangeQuery::CacheValid(const geo::Vec3& focus_pos,
                                      Micros t) const {
  if (!cache_valid_) return false;
  // The cached superset covered radius_ + slack_ around cache_center_ at
  // cache_time_.  It remains a superset of the true result while the
  // focal drift plus the worst-case object drift stay within the slack.
  double focus_drift = geo::Distance(focus_pos, cache_center_);
  double dt_s = t > cache_time_
                    ? double(t - cache_time_) / double(kMicrosPerSecond)
                    : 0.0;
  double object_drift = dt_s * index_->max_speed();
  return focus_drift + object_drift <= slack_;
}

void ContinuousRangeQuery::Refresh(const geo::Vec3& focus_pos, Micros t) {
  ++index_queries_;
  auto hits =
      index_->RangeAt(geo::AABB::Cube(focus_pos, radius_ + slack_), t);
  cached_ids_.clear();
  cached_ids_.reserve(hits.size());
  for (const auto& h : hits) cached_ids_.push_back(h.id);
  cache_center_ = focus_pos;
  cache_time_ = t;
  cache_valid_ = true;
}

std::vector<index::MovingHit> ContinuousRangeQuery::Evaluate(Micros t) {
  ++evaluations_;
  geo::Vec3 focus_pos = have_focus_ ? focus_.PositionAt(t) : geo::Vec3{};

  if (strategy_ == MovingQueryStrategy::kReevaluate) {
    ++index_queries_;
    auto hits = index_->RangeAt(geo::AABB::Cube(focus_pos, radius_), t);
    // Cube -> sphere filter for a true radius query.
    std::vector<index::MovingHit> out;
    for (const auto& h : hits) {
      if (geo::Distance(focus_pos, h.predicted_position) <= radius_) {
        out.push_back(h);
      }
    }
    return out;
  }

  // Incremental: refresh the superset only when the safe region expired.
  if (!CacheValid(focus_pos, t)) Refresh(focus_pos, t);
  std::vector<index::MovingHit> out;
  for (index::EntityId id : cached_ids_) {
    const geo::MotionState* state = index_->GetState(id);
    if (state == nullptr) continue;  // object removed since caching
    geo::Vec3 predicted = state->PositionAt(t);
    if (geo::Distance(focus_pos, predicted) <= radius_) {
      out.push_back({id, predicted});
    }
  }
  return out;
}

ContinuousKnnQuery::ContinuousKnnQuery(const index::MovingObjectIndex* index,
                                       size_t k)
    : index_(index), k_(k) {}

void ContinuousKnnQuery::UpdateFocus(const geo::MotionState& focus) {
  focus_ = focus;
}

std::vector<index::MovingHit> ContinuousKnnQuery::Evaluate(Micros t) {
  return index_->NearestAt(focus_.PositionAt(t), k_, t);
}

}  // namespace deluge::query
