#ifndef DELUGE_QUERY_EXPRESSION_H_
#define DELUGE_QUERY_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/tuple.h"

namespace deluge::query {

/// A boolean predicate over tuples, annotated with the two quantities a
/// cost-based optimizer needs: evaluation cost (abstract units; UDFs and
/// model inferences are expensive, field comparisons cheap) and
/// selectivity (expected pass fraction).  Section IV-G points to
/// optimizing "queries with expensive predicates" [39] as the starting
/// point for metaverse operators like sensor interpolation or
/// image-model UDFs.
class PredicateExpr {
 public:
  using Fn = std::function<bool(const stream::Tuple&)>;

  PredicateExpr(std::string name, Fn fn, double cost, double selectivity);

  bool Evaluate(const stream::Tuple& t) const { return fn_(t); }

  const std::string& name() const { return name_; }
  double cost() const { return cost_; }
  double selectivity() const { return selectivity_; }

  /// Hellerstein's rank: (selectivity - 1) / cost.  Ascending rank order
  /// minimizes expected conjunction cost.
  double Rank() const { return (selectivity_ - 1.0) / cost_; }

 private:
  std::string name_;
  Fn fn_;
  double cost_;
  double selectivity_;
};

/// A conjunction of predicates evaluated with short-circuiting, tracking
/// actual evaluation cost so experiments can compare orderings.
class Conjunction {
 public:
  explicit Conjunction(std::vector<PredicateExpr> predicates);

  /// Reorders predicates to the cost-optimal sequence (ascending rank).
  void OptimizeOrder();

  /// Evaluates with short-circuiting; accumulates cost spent.
  bool Evaluate(const stream::Tuple& t);

  /// Expected per-tuple cost of the current order given the annotated
  /// costs/selectivities: c1 + s1*c2 + s1*s2*c3 + ...
  double ExpectedCost() const;

  double total_cost_spent() const { return cost_spent_; }
  const std::vector<PredicateExpr>& predicates() const { return preds_; }

 private:
  std::vector<PredicateExpr> preds_;
  double cost_spent_ = 0.0;
};

}  // namespace deluge::query

#endif  // DELUGE_QUERY_EXPRESSION_H_
