#ifndef DELUGE_REPLICA_WIRE_H_
#define DELUGE_REPLICA_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "consistency/session.h"

namespace deluge::replica {

/// Replica versions are the session layer's write stamps: a per-key
/// logical clock plus writer id, merged last-writer-wins.
using Version = consistency::WriteStamp;

/// One versioned copy of a key as stored on (and shipped between)
/// replicas.  Deletes travel as tombstone records so a removed key
/// cannot resurrect from a stale replica.
struct Record {
  Version version;
  bool tombstone = false;
  std::string value;
};

/// True when `a` supersedes `b` under last-writer-wins.
inline bool Newer(const Version& a, const Version& b) { return b < a; }

/// Record wire form: counter, writer, tombstone byte, value.
std::string EncodeRecord(const Record& record);
void AppendRecord(std::string* out, const Record& record);
bool DecodeRecord(std::string_view* input, Record* out);

/// x in (a, b] on the 64-bit ring (wraps; a == b spans the whole
/// ring).  The range test behind digest walks and replica placement.
inline bool RingInOpenClosed(uint64_t a, uint64_t x, uint64_t b) {
  if (a == b) return true;
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;
}

/// Order-independent digest contribution of one (key, version) pair;
/// a replica's range digest is the XOR over its keys in the range, so
/// two replicas holding the same versions produce the same digest
/// regardless of scan order.
uint64_t DigestEntry(std::string_view key, const Version& version);

// Message types of the replication protocol (distinct from the Chord
// routing messages; replica traffic flows coordinator <-> replica and
// replica <-> replica over the same simulated network, so every
// chaos-layer fault applies to it).
inline constexpr uint32_t kMsgWriteReq = 0x5201;   ///< coord -> replica
inline constexpr uint32_t kMsgWriteAck = 0x5202;   ///< replica -> coord
inline constexpr uint32_t kMsgReadReq = 0x5203;    ///< coord -> replica
inline constexpr uint32_t kMsgReadResp = 0x5204;   ///< replica -> coord
inline constexpr uint32_t kMsgPing = 0x5205;       ///< coord -> replica
inline constexpr uint32_t kMsgPong = 0x5206;       ///< replica -> coord
inline constexpr uint32_t kMsgHintReplay = 0x5207;  ///< coord -> holder
inline constexpr uint32_t kMsgHintDelivered = 0x5208;  ///< holder -> coord
inline constexpr uint32_t kMsgDigestReq = 0x5209;  ///< coord -> replica
inline constexpr uint32_t kMsgDigestResp = 0x520A; ///< replica -> coord
inline constexpr uint32_t kMsgListReq = 0x520B;    ///< coord -> replica
inline constexpr uint32_t kMsgListResp = 0x520C;   ///< replica -> coord
inline constexpr uint32_t kMsgSyncWrite = 0x520D;  ///< repair/handoff push
inline constexpr uint32_t kMsgSyncAck = 0x520E;    ///< push acknowledged

}  // namespace deluge::replica

#endif  // DELUGE_REPLICA_WIRE_H_
