#include "replica/node.h"

#include <cstdio>

#include "common/hash.h"
#include "storage/format.h"

namespace deluge::replica {

namespace {

using storage::GetFixed32;
using storage::GetFixed64;
using storage::GetLengthPrefixed;
using storage::PutFixed32;
using storage::PutFixed64;
using storage::PutLengthPrefixed;

}  // namespace

uint64_t ReplicaNode::RingIdFor(const std::string& name) {
  return Hash64(name, /*seed=*/0xC0DE);
}

ReplicaNode::ReplicaNode(uint64_t ring_id, net::Transport* net,
                         std::unique_ptr<Backing> backing)
    : ring_id_(ring_id), net_(net), backing_(std::move(backing)) {
  if (backing_ == nullptr) backing_ = std::make_unique<MemoryBacking>();
  node_id_ = net->AddNode([this](const net::Message& m) { OnMessage(m); });
}

std::string ReplicaNode::HintPrefix(uint64_t target_ring) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(target_ring));
  return std::string("h!") + buf + "!";
}

std::string ReplicaNode::HintKey(uint64_t target_ring,
                                 const std::string& key) {
  return HintPrefix(target_ring) + key;
}

Status ReplicaNode::LocalGet(const std::string& key, Record* out) {
  std::string raw;
  Status s = backing_->Get(DataKey(key), &raw);
  if (!s.ok()) return s;
  std::string_view view(raw);
  if (!DecodeRecord(&view, out)) return Status::Corruption("bad record");
  return Status::OK();
}

Status ReplicaNode::LocalPut(const std::string& key, const Record& record) {
  return backing_->Put(DataKey(key), EncodeRecord(record));
}

size_t ReplicaNode::PendingHints(uint64_t target_ring) {
  size_t n = 0;
  const std::string prefix =
      target_ring == 0 ? std::string("h!") : HintPrefix(target_ring);
  backing_->Scan(prefix, [&n](const std::string&, const std::string&) {
    ++n;
  });
  return n;
}

size_t ReplicaNode::KeyCount() {
  size_t n = 0;
  backing_->Scan("d!", [&n](const std::string&, const std::string&) { ++n; });
  return n;
}

Version ReplicaNode::Apply(const std::string& key, const Record& record) {
  Record existing;
  if (LocalGet(key, &existing).ok() && !Newer(record.version,
                                             existing.version)) {
    return existing.version;  // stale or duplicate: keep what we have
  }
  backing_->Put(DataKey(key), EncodeRecord(record));
  return record.version;
}

void ReplicaNode::Reply(net::NodeId to, uint32_t type, std::string payload) {
  net::Message msg;
  msg.from = node_id_;
  msg.to = to;
  msg.type = type;
  msg.payload = std::move(payload);
  net::Transport* net = net_;
  net_->After(processing_cost_,
              [net, m = std::move(msg)]() mutable { net->Send(m); });
}

void ReplicaNode::OnMessage(const net::Message& msg) {
  std::string_view payload(msg.payload);
  switch (msg.type) {
    case kMsgWriteReq: OnWrite(payload); break;
    case kMsgReadReq: OnRead(payload, msg.from); break;
    case kMsgPing: OnPing(msg.from); break;
    case kMsgHintReplay: OnHintReplay(payload); break;
    case kMsgDigestReq: OnDigest(payload, msg.from); break;
    case kMsgListReq: OnList(payload, msg.from); break;
    case kMsgSyncWrite: OnSyncWrite(payload, msg.from); break;
    case kMsgSyncAck: OnSyncAck(payload); break;
    default: break;
  }
}

void ReplicaNode::OnWrite(std::string_view payload) {
  uint64_t request_id = 0, hint_for = 0;
  uint32_t reply_to = 0;
  std::string_view key;
  Record record;
  if (!GetFixed64(&payload, &request_id) ||
      !GetFixed64(&payload, &hint_for) ||
      !GetFixed32(&payload, &reply_to) ||
      !GetLengthPrefixed(&payload, &key) ||
      !DecodeRecord(&payload, &record)) {
    return;
  }
  const std::string k(key);
  Version applied = Apply(k, record);
  if (hint_for != 0) {
    // This write really belongs to a peer that was down: queue the
    // record durably so it can be replayed when the peer recovers.
    // LWW on the hint itself keeps only the newest pending version.
    const std::string hkey = HintKey(hint_for, k);
    std::string existing;
    bool keep = true;
    if (backing_->Get(hkey, &existing).ok()) {
      Record old;
      std::string_view view(existing);
      if (DecodeRecord(&view, &old) && !Newer(record.version, old.version)) {
        keep = false;
      }
    }
    if (keep) backing_->Put(hkey, EncodeRecord(record));
  }
  std::string out;
  PutFixed64(&out, request_id);
  PutFixed64(&out, ring_id_);
  PutFixed64(&out, applied.counter);
  PutFixed64(&out, applied.writer);
  Reply(reply_to, kMsgWriteAck, std::move(out));
}

void ReplicaNode::OnRead(std::string_view payload, net::NodeId from) {
  uint64_t request_id = 0;
  std::string_view key;
  if (!GetFixed64(&payload, &request_id) ||
      !GetLengthPrefixed(&payload, &key)) {
    return;
  }
  Record record;
  const bool found = LocalGet(std::string(key), &record).ok();
  std::string out;
  PutFixed64(&out, request_id);
  PutFixed64(&out, ring_id_);
  out.push_back(found ? 1 : 0);
  if (found) AppendRecord(&out, record);
  Reply(from, kMsgReadResp, std::move(out));
}

void ReplicaNode::OnPing(net::NodeId from) {
  std::string out;
  PutFixed64(&out, ring_id_);
  Reply(from, kMsgPong, std::move(out));
}

void ReplicaNode::OnHintReplay(std::string_view payload) {
  uint64_t target_ring = 0;
  uint32_t target_node = 0, notify = 0;
  if (!GetFixed64(&payload, &target_ring) ||
      !GetFixed32(&payload, &target_node) ||
      !GetFixed32(&payload, &notify)) {
    return;
  }
  const std::string prefix = HintPrefix(target_ring);
  backing_->Scan(prefix, [&](const std::string& hkey,
                             const std::string& raw) {
    const uint64_t sync_id = next_sync_id_++;
    inflight_hints_[sync_id] = PendingHint{hkey, net::NodeId(notify)};
    std::string out;
    PutFixed64(&out, sync_id);
    PutLengthPrefixed(&out, hkey.substr(prefix.size()));  // original key
    out.append(raw);  // the encoded record, verbatim
    Reply(net::NodeId(target_node), kMsgSyncWrite, std::move(out));
  });
}

void ReplicaNode::OnDigest(std::string_view payload, net::NodeId from) {
  uint64_t request_id = 0, lo = 0, hi = 0;
  if (!GetFixed64(&payload, &request_id) || !GetFixed64(&payload, &lo) ||
      !GetFixed64(&payload, &hi)) {
    return;
  }
  uint64_t digest = 0;
  uint32_t count = 0;
  backing_->Scan("d!", [&](const std::string& dkey, const std::string& raw) {
    const std::string key = dkey.substr(2);
    if (!RingInOpenClosed(lo, Hash64(key), hi)) return;
    Record record;
    std::string_view view(raw);
    if (!DecodeRecord(&view, &record)) return;
    digest ^= DigestEntry(key, record.version);
    ++count;
  });
  std::string out;
  PutFixed64(&out, request_id);
  PutFixed64(&out, ring_id_);
  PutFixed64(&out, digest);
  PutFixed32(&out, count);
  Reply(from, kMsgDigestResp, std::move(out));
}

void ReplicaNode::OnList(std::string_view payload, net::NodeId from) {
  uint64_t request_id = 0, lo = 0, hi = 0;
  if (!GetFixed64(&payload, &request_id) || !GetFixed64(&payload, &lo) ||
      !GetFixed64(&payload, &hi)) {
    return;
  }
  std::string entries;
  uint32_t count = 0;
  backing_->Scan("d!", [&](const std::string& dkey, const std::string& raw) {
    const std::string key = dkey.substr(2);
    if (!RingInOpenClosed(lo, Hash64(key), hi)) return;
    PutLengthPrefixed(&entries, key);
    PutLengthPrefixed(&entries, raw);
    ++count;
  });
  std::string out;
  PutFixed64(&out, request_id);
  PutFixed64(&out, ring_id_);
  PutFixed32(&out, count);
  out.append(entries);
  Reply(from, kMsgListResp, std::move(out));
}

void ReplicaNode::OnSyncWrite(std::string_view payload, net::NodeId from) {
  uint64_t request_id = 0;
  std::string_view key;
  Record record;
  if (!GetFixed64(&payload, &request_id) ||
      !GetLengthPrefixed(&payload, &key) ||
      !DecodeRecord(&payload, &record)) {
    return;
  }
  Apply(std::string(key), record);
  std::string out;
  PutFixed64(&out, request_id);
  PutFixed64(&out, ring_id_);
  Reply(from, kMsgSyncAck, std::move(out));
}

void ReplicaNode::OnSyncAck(std::string_view payload) {
  uint64_t request_id = 0;
  if (!GetFixed64(&payload, &request_id)) return;
  auto it = inflight_hints_.find(request_id);
  if (it == inflight_hints_.end()) return;  // repair ack, not a hint
  backing_->Delete(it->second.hint_key);
  if (it->second.notify != 0) {
    std::string out;
    PutFixed32(&out, 1);  // hints delivered by this ack
    Reply(it->second.notify, kMsgHintDelivered, std::move(out));
  }
  inflight_hints_.erase(it);
}

}  // namespace deluge::replica
