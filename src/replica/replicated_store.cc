#include "replica/replicated_store.h"

#include <algorithm>

#include "common/hash.h"
#include "storage/format.h"

namespace deluge::replica {

namespace {

using storage::GetFixed32;
using storage::GetFixed64;
using storage::GetLengthPrefixed;
using storage::PutFixed32;
using storage::PutFixed64;
using storage::PutLengthPrefixed;

}  // namespace

void TuneTimeoutsFromRtt(ReplicaOptions* options, Micros floor, Micros cap) {
  Histogram rtt;
  for (const auto& sample : obs::MetricsRegistry::Global().Snapshot()) {
    if (sample.kind == obs::MetricKind::kHistogram &&
        sample.name == "transport.rtt_us") {
      rtt.Merge(sample.hist);
    }
  }
  if (rtt.count() == 0) return;
  const Micros timeout =
      std::clamp(Micros(4.0 * rtt.P99()), floor, std::max(floor, cap));
  options->write_timeout = timeout;
  options->read_timeout = timeout;
}

ReplicatedStore::ReplicatedStore(net::Transport* net, p2p::ChordRing* ring,
                                 ReplicaOptions options)
    : net_(net),
      ring_(ring),
      options_(options),
      rng_(options.seed) {
  FailureDetectorOptions fd;
  fd.phi_threshold = options_.phi_threshold;
  fd.bootstrap_interval = std::max<Micros>(1, options_.heartbeat_period);
  detector_ = PhiAccrualDetector(fd);
  coordinator_node_ =
      net_->AddNode([this](const net::Message& m) { OnMessage(m); });
}

ReplicatedStore::~ReplicatedStore() { Stop(); }

uint64_t ReplicatedStore::RingIdFor(const std::string& name) const {
  // Must agree with ChordRing::AddPeer and the remote hosts, which
  // derive their ring ids from the same names.
  uint64_t id = ReplicaNode::RingIdFor(name);
  while (peer_nodes_.count(id) > 0) id = Mix64(id);  // collision: re-derive
  return id;
}

void ReplicatedStore::RegisterPeer(uint64_t rid, net::NodeId node) {
  peer_nodes_[rid] = node;
  detector_.Register(rid, net_->Now());
  last_alive_[rid] = true;
}

uint64_t ReplicatedStore::AddReplica(const std::string& name,
                                     std::unique_ptr<Backing> backing) {
  const uint64_t rid =
      ring_ != nullptr ? ring_->AddPeer(name) : RingIdFor(name);
  replicas_[rid] =
      std::make_unique<ReplicaNode>(rid, net_, std::move(backing));
  RegisterPeer(rid, replicas_[rid]->node_id());
  return rid;
}

uint64_t ReplicatedStore::AddRemoteReplica(const std::string& name,
                                           net::NodeId node) {
  const uint64_t rid = RingIdFor(name);
  RegisterPeer(rid, node);
  return rid;
}

void ReplicatedStore::Start() {
  if (started_) return;
  started_ = true;
  if (options_.heartbeat_period > 0) {
    net_->After(options_.heartbeat_period, [this] { HeartbeatTick(); });
  }
  if (options_.anti_entropy_period > 0) {
    net_->After(options_.anti_entropy_period, [this] { AntiEntropyTick(); });
  }
}

void ReplicatedStore::Stop() { started_ = false; }

CircuitBreaker& ReplicatedStore::BreakerFor(uint64_t ring) {
  auto& slot = breakers_[ring];
  if (slot == nullptr) slot = std::make_unique<CircuitBreaker>(options_.breaker);
  return *slot;
}

bool ReplicatedStore::PeerUsable(uint64_t ring, Micros now) {
  // The φ detector only has data while heartbeats run; without them
  // every peer is presumed alive and strict timeouts do the policing.
  if (started_ && options_.heartbeat_period > 0 &&
      !detector_.IsAlive(ring, now)) {
    return false;
  }
  return BreakerFor(ring).Allow(now);
}

ReplicaNode* ReplicatedStore::node(uint64_t ring_id) {
  auto it = replicas_.find(ring_id);
  return it == replicas_.end() ? nullptr : it->second.get();
}

std::vector<uint64_t> ReplicatedStore::replica_rings() const {
  std::vector<uint64_t> out;
  out.reserve(replicas_.size());
  for (const auto& [rid, _] : replicas_) out.push_back(rid);
  return out;
}

Version ReplicatedStore::AckedVersion(const std::string& key) const {
  auto it = acked_.find(key);
  return it == acked_.end() ? Version{} : it->second;
}

std::vector<uint64_t> ReplicatedStore::PreferenceList(
    const std::string& key) const {
  return SuccessorsOf(p2p::ChordRing::KeyId(key), options_.n);
}

std::vector<uint64_t> ReplicatedStore::SuccessorsOf(uint64_t id,
                                                    int n) const {
  if (ring_ != nullptr) return ring_->SuccessorsOf(id, n);
  std::vector<uint64_t> out;
  if (peer_nodes_.empty() || n <= 0) return out;
  out.reserve(static_cast<size_t>(n));
  auto it = peer_nodes_.lower_bound(id);
  while (static_cast<int>(out.size()) < n &&
         out.size() < peer_nodes_.size()) {
    if (it == peer_nodes_.end()) it = peer_nodes_.begin();
    out.push_back(it->first);
    ++it;
  }
  return out;
}

void ReplicatedStore::SendTo(const Target& t, uint32_t type,
                             std::string payload) {
  net::Message msg;
  msg.from = coordinator_node_;
  msg.to = t.node;
  msg.type = type;
  msg.payload = std::move(payload);
  net_->Send(std::move(msg));  // sync Unavailable == no ack will come
}

void ReplicatedStore::PushRecord(net::NodeId to, const std::string& key,
                                 const Record& record) {
  std::string out;
  PutFixed64(&out, next_request_++);
  PutLengthPrefixed(&out, key);
  AppendRecord(&out, record);
  Target t;
  t.node = to;
  SendTo(t, kMsgSyncWrite, std::move(out));
}

std::vector<ReplicatedStore::Target> ReplicatedStore::PickTargets(
    const std::string& key, bool for_write) {
  const Micros now = net_->Now();
  const p2p::RingId kid = p2p::ChordRing::KeyId(key);
  const std::vector<uint64_t> preferred = SuccessorsOf(kid, options_.n);
  // Fallback candidates beyond the preference list, in ring order.
  const std::vector<uint64_t> extended = SuccessorsOf(kid, 2 * options_.n);
  std::unordered_set<uint64_t> used(preferred.begin(), preferred.end());

  std::vector<Target> out;
  out.reserve(preferred.size());
  size_t next_sub = 0;
  bool substituted = false;
  for (uint64_t p : preferred) {
    auto rep = peer_nodes_.find(p);
    if (rep == peer_nodes_.end()) continue;  // chord-only peer: no storage
    Target t;
    t.ring = p;
    t.node = rep->second;
    if (PeerUsable(p, now) || !options_.sloppy_quorum) {
      out.push_back(t);
      continue;
    }
    // Preferred peer suspected down: divert to the next live successor
    // outside the preference list (a sloppy-quorum substitute).
    uint64_t sub = 0;
    while (next_sub < extended.size()) {
      const uint64_t c = extended[next_sub++];
      if (used.count(c) || !peer_nodes_.count(c)) continue;
      if (!PeerUsable(c, now)) continue;
      sub = c;
      break;
    }
    if (sub == 0) {
      out.push_back(t);  // nobody live to divert to; try the peer anyway
      continue;
    }
    used.insert(sub);
    substituted = true;
    Target s;
    s.ring = sub;
    s.node = peer_nodes_[sub];
    if (for_write) {
      s.hint_for = p;  // substitute queues a durable handoff hint
      hinted_handoffs_->Increment();
    }
    out.push_back(s);
  }
  if (substituted && for_write) sloppy_writes_->Increment();
  return out;
}

// --- Writes ----------------------------------------------------------

void ReplicatedStore::Put(const std::string& key, std::string value,
                          WriteOptions options, WriteCallback done) {
  Record rec;
  rec.version = Version{++clocks_[key], options_.writer_id};
  rec.value = std::move(value);
  DoWrite(key, std::move(rec), options, std::move(done));
}

void ReplicatedStore::Delete(const std::string& key, WriteOptions options,
                             WriteCallback done) {
  Record rec;
  rec.version = Version{++clocks_[key], options_.writer_id};
  rec.tombstone = true;
  DoWrite(key, std::move(rec), options, std::move(done));
}

void ReplicatedStore::DoWrite(const std::string& key, Record record,
                              WriteOptions options, WriteCallback done) {
  quorum_writes_->Increment();
  const Version version = record.version;
  std::vector<Target> targets = PickTargets(key, /*for_write=*/true);
  if (targets.empty()) {
    write_failures_->Increment();
    if (done) done(Status::Unavailable("no replicas"), version);
    return;
  }
  const uint64_t id = next_request_++;
  PendingWrite& pw = writes_[id];
  pw.key = key;
  pw.record = std::move(record);
  pw.need = options.w > 0 ? options.w : options_.w;
  pw.need = std::min<int>(pw.need, static_cast<int>(targets.size()));
  pw.need = std::max(pw.need, 1);
  pw.targets = std::move(targets);
  pw.session = options.session;
  pw.done = std::move(done);
  pw.retry = RetryState(options_.retry, net_->Now());
  pw.started_at = net_->Now();
  SendWrites(id, pw, /*only_unacked=*/false);
  ArmWriteTimer(id, pw.attempt);
}

void ReplicatedStore::SendWrites(uint64_t id, PendingWrite& pw,
                                 bool only_unacked) {
  for (const Target& t : pw.targets) {
    if (only_unacked && pw.acked.count(t.ring)) continue;
    std::string out;
    PutFixed64(&out, id);
    PutFixed64(&out, t.hint_for);
    PutFixed32(&out, coordinator_node_);
    PutLengthPrefixed(&out, pw.key);
    AppendRecord(&out, pw.record);
    SendTo(t, kMsgWriteReq, std::move(out));
  }
}

void ReplicatedStore::ArmWriteTimer(uint64_t id, int attempt) {
  net_->After(options_.write_timeout,
              [this, id, attempt] { OnWriteTimeout(id, attempt); });
}

void ReplicatedStore::OnWriteTimeout(uint64_t id, int attempt) {
  auto it = writes_.find(id);
  if (it == writes_.end()) return;
  PendingWrite& pw = it->second;
  if (pw.attempt != attempt) return;  // superseded by a retry
  const Micros now = net_->Now();
  for (const Target& t : pw.targets) {
    if (!pw.acked.count(t.ring)) BreakerFor(t.ring).RecordFailure(now);
  }
  if (pw.completed) {  // quorum met earlier; this was just the cleanup
    writes_.erase(it);
    return;
  }
  const Micros backoff = pw.retry.NextBackoff(now, &rng_);
  if (backoff < 0) {
    write_failures_->Increment();
    const Version version = pw.record.version;
    WriteCallback done = std::move(pw.done);
    writes_.erase(it);
    if (done) done(Status::Unavailable("write quorum not reached"), version);
    return;
  }
  write_retries_->Increment();
  const int expected = ++pw.attempt;
  net_->After(backoff, [this, id, expected] {
    auto it2 = writes_.find(id);
    if (it2 == writes_.end() || it2->second.attempt != expected) return;
    SendWrites(id, it2->second, /*only_unacked=*/true);
    ArmWriteTimer(id, expected);
  });
}

void ReplicatedStore::FinishWrite(uint64_t id, PendingWrite& pw) {
  (void)pw;
  writes_.erase(id);
}

void ReplicatedStore::OnWriteAck(std::string_view payload) {
  uint64_t id = 0, ring = 0;
  Version applied;
  if (!GetFixed64(&payload, &id) || !GetFixed64(&payload, &ring) ||
      !GetFixed64(&payload, &applied.counter) ||
      !GetFixed64(&payload, &applied.writer)) {
    return;
  }
  auto it = writes_.find(id);
  if (it == writes_.end()) return;  // late ack after cleanup
  PendingWrite& pw = it->second;
  BreakerFor(ring).RecordSuccess();
  pw.acked.insert(ring);

  WriteCallback done;
  Version version = pw.record.version;
  if (!pw.completed && static_cast<int>(pw.acked.size()) >= pw.need) {
    pw.completed = true;
    Version& acked = acked_[pw.key];
    if (acked < version) acked = version;
    if (pw.session) pw.session->ObserveWrite(pw.key, version);
    write_us_->Record(net_->Now() - pw.started_at);
    done = std::move(pw.done);
  }
  if (pw.acked.size() == pw.targets.size()) FinishWrite(id, pw);
  // Callback last: it may issue new operations that mutate the maps.
  if (done) done(Status::OK(), version);
}

// --- Reads -----------------------------------------------------------

void ReplicatedStore::Get(const std::string& key, ReadOptions options,
                          ReadCallback done) {
  quorum_reads_->Increment();
  std::vector<Target> targets = PickTargets(key, /*for_write=*/false);
  if (targets.empty()) {
    read_failures_->Increment();
    if (done) done(Status::Unavailable("no replicas"), "", Version{});
    return;
  }
  const uint64_t id = next_request_++;
  PendingRead& pr = reads_[id];
  pr.key = key;
  pr.need = options.r > 0 ? options.r : options_.r;
  pr.need = std::min<int>(pr.need, static_cast<int>(targets.size()));
  pr.need = std::max(pr.need, 1);
  pr.mode = options.mode;
  pr.session = options.session;
  pr.targets = std::move(targets);
  pr.done = std::move(done);
  pr.retry = RetryState(options_.retry, net_->Now());
  pr.started_at = net_->Now();
  SendReads(id, pr, /*only_unanswered=*/false);
  ArmReadTimer(id, pr.attempt);
}

void ReplicatedStore::SendReads(uint64_t id, PendingRead& pr,
                                bool only_unanswered) {
  for (const Target& t : pr.targets) {
    if (only_unanswered && pr.responses.count(t.ring)) continue;
    std::string out;
    PutFixed64(&out, id);
    PutLengthPrefixed(&out, pr.key);
    SendTo(t, kMsgReadReq, std::move(out));
  }
}

void ReplicatedStore::ArmReadTimer(uint64_t id, int attempt) {
  net_->After(options_.read_timeout,
              [this, id, attempt] { OnReadTimeout(id, attempt); });
}

ReplicatedStore::ReadResponse ReplicatedStore::MergeResponses(
    const PendingRead& pr) const {
  ReadResponse merged;
  for (const auto& [ring, resp] : pr.responses) {
    if (!resp.found) continue;
    if (!merged.found || Newer(resp.record.version, merged.record.version)) {
      merged = resp;
    }
  }
  return merged;
}

void ReplicatedStore::MaybeCompleteRead(uint64_t id, PendingRead& pr) {
  Status status = Status::OK();
  std::string value;
  Version version;
  ReadCallback done;

  if (!pr.completed &&
      static_cast<int>(pr.responses.size()) >= pr.need) {
    const ReadResponse merged = MergeResponses(pr);
    const bool floor_ok =
        pr.mode != consistency::ReadMode::kReadYourWrites ||
        pr.session == nullptr ||
        pr.session->Satisfies(pr.key, merged.record.version);
    if (floor_ok) {
      pr.completed = true;
      version = merged.record.version;
      if (pr.session) pr.session->ObserveRead(pr.key, version);
      read_us_->Record(net_->Now() - pr.started_at);
      if (pr.mode == consistency::ReadMode::kEventual) {
        auto a = acked_.find(pr.key);
        if (a != acked_.end() && version < a->second) {
          stale_reads_->Increment();
          staleness_versions_->Record(
              static_cast<int64_t>(a->second.counter - version.counter));
        }
      }
      if (merged.found && !merged.record.tombstone) {
        value = merged.record.value;
      } else {
        status = Status::NotFound("no value");
      }
      done = std::move(pr.done);
    } else if (pr.responses.size() == pr.targets.size()) {
      // Every replica answered and none is new enough: the freshest
      // copy is unreachable, so the session guarantee cannot be met.
      pr.completed = true;
      read_failures_->Increment();
      status = Status::Unavailable("read-your-writes floor unsatisfied");
      done = std::move(pr.done);
    }
  }
  if (pr.responses.size() == pr.targets.size()) FinishRead(id, pr);
  if (done) done(status, value, version);
}

void ReplicatedStore::FinishRead(uint64_t id, PendingRead& pr) {
  if (options_.read_repair) {
    const ReadResponse merged = MergeResponses(pr);
    if (merged.found) {
      for (const auto& [ring, resp] : pr.responses) {
        if (resp.found && !Newer(merged.record.version, resp.record.version)) {
          continue;
        }
        auto rep = peer_nodes_.find(ring);
        if (rep == peer_nodes_.end()) continue;
        PushRecord(rep->second, pr.key, merged.record);
        read_repairs_->Increment();
      }
    }
  }
  reads_.erase(id);
}

void ReplicatedStore::OnReadTimeout(uint64_t id, int attempt) {
  auto it = reads_.find(id);
  if (it == reads_.end()) return;
  PendingRead& pr = it->second;
  if (pr.attempt != attempt) return;
  const Micros now = net_->Now();
  for (const Target& t : pr.targets) {
    if (!pr.responses.count(t.ring)) BreakerFor(t.ring).RecordFailure(now);
  }
  if (pr.completed) {
    FinishRead(id, pr);
    return;
  }
  const Micros backoff = pr.retry.NextBackoff(now, &rng_);
  if (backoff < 0) {
    read_failures_->Increment();
    const Status status =
        static_cast<int>(pr.responses.size()) >= pr.need
            ? Status::Unavailable("read-your-writes floor unsatisfied")
            : Status::Unavailable("read quorum not reached");
    pr.completed = true;
    ReadCallback done = std::move(pr.done);
    FinishRead(id, pr);  // repair whatever did respond, then erase
    if (done) done(status, "", Version{});
    return;
  }
  read_retries_->Increment();
  const int expected = ++pr.attempt;
  net_->After(backoff, [this, id, expected] {
    auto it2 = reads_.find(id);
    if (it2 == reads_.end() || it2->second.attempt != expected) return;
    SendReads(id, it2->second, /*only_unanswered=*/true);
    ArmReadTimer(id, expected);
  });
}

void ReplicatedStore::OnReadResp(std::string_view payload) {
  uint64_t id = 0, ring = 0;
  if (!GetFixed64(&payload, &id) || !GetFixed64(&payload, &ring)) return;
  if (payload.empty()) return;
  const bool found = payload.front() != 0;
  payload.remove_prefix(1);
  ReadResponse resp;
  resp.found = found;
  if (found && !DecodeRecord(&payload, &resp.record)) return;
  auto it = reads_.find(id);
  if (it == reads_.end()) return;
  BreakerFor(ring).RecordSuccess();
  it->second.responses[ring] = std::move(resp);
  MaybeCompleteRead(id, it->second);
}

// --- Heartbeats, failure detection, hint replay ----------------------

void ReplicatedStore::HeartbeatTick() {
  if (!started_) return;
  const Micros now = net_->Now();
  for (auto& [rid, nid] : peer_nodes_) {
    const bool alive = detector_.IsAlive(rid, now);
    bool& was = last_alive_[rid];
    if (alive && !was) TriggerHintReplay(rid);  // peer came back
    was = alive;
    net::Message ping;
    ping.from = coordinator_node_;
    ping.to = nid;
    ping.type = kMsgPing;
    net_->Send(std::move(ping));  // bypasses breakers on purpose
  }
  net_->After(options_.heartbeat_period, [this] { HeartbeatTick(); });
}

void ReplicatedStore::OnPong(std::string_view payload) {
  uint64_t ring = 0;
  if (!GetFixed64(&payload, &ring)) return;
  detector_.Heartbeat(ring, net_->Now());
}

void ReplicatedStore::TriggerHintReplay(uint64_t target_ring) {
  auto target = peer_nodes_.find(target_ring);
  if (target == peer_nodes_.end()) return;
  const net::NodeId target_node = target->second;
  for (auto& [rid, nid] : peer_nodes_) {
    if (rid == target_ring) continue;
    std::string out;
    PutFixed64(&out, target_ring);
    PutFixed32(&out, target_node);
    PutFixed32(&out, coordinator_node_);
    Target t;
    t.node = nid;
    SendTo(t, kMsgHintReplay, std::move(out));
  }
}

void ReplicatedStore::OnHintDelivered(std::string_view payload) {
  uint32_t count = 0;
  if (!GetFixed32(&payload, &count)) return;
  hints_replayed_->Add(count);
}

// --- Anti-entropy ----------------------------------------------------

void ReplicatedStore::AntiEntropyTick() {
  if (!started_) return;
  if (ae_run_ == nullptr) {
    RunAntiEntropy([](const AntiEntropyReport&) {});
  }
  net_->After(options_.anti_entropy_period, [this] { AntiEntropyTick(); });
}

void ReplicatedStore::RunAntiEntropy(AntiEntropyCallback done) {
  if (ae_run_ != nullptr) {  // one round at a time
    if (done) done(AntiEntropyReport{});
    return;
  }
  anti_entropy_rounds_->Increment();
  ae_run_ = std::make_unique<AntiEntropyRun>();
  ae_run_->done = std::move(done);

  std::vector<uint64_t> rings;
  rings.reserve(peer_nodes_.size());
  for (const auto& [rid, _] : peer_nodes_) rings.push_back(rid);
  if (rings.size() < 2) {
    FinishAntiEntropyRun();
    return;
  }
  for (size_t i = 0; i < rings.size(); ++i) {
    const uint64_t owner = rings[i];
    const uint64_t pred = rings[(i + rings.size() - 1) % rings.size()];
    const std::vector<uint64_t> owners = SuccessorsOf(owner, options_.n);
    if (owners.size() < 2) continue;  // nothing to compare against

    const uint64_t id = next_request_++;
    SegmentState& st = ae_run_->segments[id];
    st.lo = pred;
    st.hi = owner;
    for (uint64_t o : owners) {
      auto rep = peer_nodes_.find(o);
      if (rep == peer_nodes_.end()) continue;
      Target t;
      t.ring = o;
      t.node = rep->second;
      st.owners.push_back(t);
    }
    ae_run_->outstanding++;
    ae_run_->report.segments++;
    for (const Target& t : st.owners) {
      std::string out;
      PutFixed64(&out, id);
      PutFixed64(&out, st.lo);
      PutFixed64(&out, st.hi);
      SendTo(t, kMsgDigestReq, std::move(out));
    }
    net_->After(options_.read_timeout,
                [this, id] { ResolveSegmentDigests(id); });
  }
  if (ae_run_->outstanding == 0) FinishAntiEntropyRun();
}

void ReplicatedStore::OnDigestResp(std::string_view payload) {
  uint64_t id = 0, ring = 0, digest = 0;
  uint32_t count = 0;
  if (!GetFixed64(&payload, &id) || !GetFixed64(&payload, &ring) ||
      !GetFixed64(&payload, &digest) || !GetFixed32(&payload, &count)) {
    return;
  }
  if (ae_run_ == nullptr) return;
  auto it = ae_run_->segments.find(id);
  if (it == ae_run_->segments.end() || it->second.listing) return;
  it->second.digests[ring] = {digest, count};
  if (it->second.digests.size() == it->second.owners.size()) {
    ResolveSegmentDigests(id);
  }
}

void ReplicatedStore::ResolveSegmentDigests(uint64_t digest_id) {
  if (ae_run_ == nullptr) return;
  auto it = ae_run_->segments.find(digest_id);
  if (it == ae_run_->segments.end() || it->second.listing) return;
  SegmentState& st = it->second;
  st.listing = true;

  if (st.digests.size() < 2) {
    ae_run_->report.unreachable++;
    ae_run_->segments.erase(it);
    if (--ae_run_->outstanding == 0) FinishAntiEntropyRun();
    return;
  }
  bool divergent = false;
  const auto& first = st.digests.begin()->second;
  for (const auto& [ring, d] : st.digests) {
    if (d != first) divergent = true;
  }
  if (!divergent) {
    ae_run_->segments.erase(it);
    if (--ae_run_->outstanding == 0) FinishAntiEntropyRun();
    return;
  }
  ae_run_->report.divergent++;
  for (const auto& [ring, d] : st.digests) {
    auto rep = peer_nodes_.find(ring);
    if (rep == peer_nodes_.end()) continue;
    const uint64_t lid = next_request_++;
    ae_run_->list_reqs[lid] = digest_id;
    std::string out;
    PutFixed64(&out, lid);
    PutFixed64(&out, st.lo);
    PutFixed64(&out, st.hi);
    Target t;
    t.ring = ring;
    t.node = rep->second;
    SendTo(t, kMsgListReq, std::move(out));
  }
  net_->After(options_.read_timeout,
              [this, digest_id] { ReconcileSegment(digest_id); });
}

void ReplicatedStore::OnListResp(std::string_view payload) {
  uint64_t lid = 0, ring = 0;
  uint32_t count = 0;
  if (!GetFixed64(&payload, &lid) || !GetFixed64(&payload, &ring) ||
      !GetFixed32(&payload, &count)) {
    return;
  }
  if (ae_run_ == nullptr) return;
  auto req = ae_run_->list_reqs.find(lid);
  if (req == ae_run_->list_reqs.end()) return;
  const uint64_t id = req->second;
  auto it = ae_run_->segments.find(id);
  if (it == ae_run_->segments.end()) return;
  SegmentState& st = it->second;

  std::map<std::string, Record>& entries = st.listings[ring];
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view key, raw;
    if (!GetLengthPrefixed(&payload, &key) ||
        !GetLengthPrefixed(&payload, &raw)) {
      return;
    }
    Record rec;
    if (!DecodeRecord(&raw, &rec)) return;
    entries[std::string(key)] = std::move(rec);
  }
  if (st.listings.size() == st.digests.size()) ReconcileSegment(id);
}

void ReplicatedStore::ReconcileSegment(uint64_t digest_id) {
  if (ae_run_ == nullptr) return;
  auto it = ae_run_->segments.find(digest_id);
  if (it == ae_run_->segments.end()) return;
  SegmentState& st = it->second;

  std::map<std::string, Record> newest;
  for (const auto& [ring, entries] : st.listings) {
    for (const auto& [key, rec] : entries) {
      auto n = newest.find(key);
      if (n == newest.end() || Newer(rec.version, n->second.version)) {
        newest[key] = rec;
      }
    }
  }
  for (const auto& [ring, entries] : st.listings) {
    auto rep = peer_nodes_.find(ring);
    if (rep == peer_nodes_.end()) continue;
    for (const auto& [key, rec] : newest) {
      auto e = entries.find(key);
      if (e != entries.end() && !Newer(rec.version, e->second.version)) {
        continue;
      }
      PushRecord(rep->second, key, rec);
      ae_run_->report.keys_synced++;
    }
  }
  ae_run_->segments.erase(it);
  if (--ae_run_->outstanding == 0) FinishAntiEntropyRun();
}

void ReplicatedStore::FinishAntiEntropyRun() {
  std::unique_ptr<AntiEntropyRun> run = std::move(ae_run_);
  anti_entropy_keys_synced_->Add(run->report.keys_synced);
  divergent_segments_->Set(static_cast<double>(run->report.divergent));
  if (run->done) run->done(run->report);
}

// --- Dispatch & stats ------------------------------------------------

void ReplicatedStore::OnMessage(const net::Message& msg) {
  std::string_view payload(msg.payload);
  switch (msg.type) {
    case kMsgWriteAck: OnWriteAck(payload); break;
    case kMsgReadResp: OnReadResp(payload); break;
    case kMsgPong: OnPong(payload); break;
    case kMsgHintDelivered: OnHintDelivered(payload); break;
    case kMsgDigestResp: OnDigestResp(payload); break;
    case kMsgListResp: OnListResp(payload); break;
    case kMsgSyncAck: break;  // repair pushes are fire-and-forget
    default: break;
  }
}

const ReplicaStats& ReplicatedStore::stats() const {
  snapshot_.quorum_writes = quorum_writes_->Value();
  snapshot_.quorum_reads = quorum_reads_->Value();
  snapshot_.write_failures = write_failures_->Value();
  snapshot_.read_failures = read_failures_->Value();
  snapshot_.sloppy_writes = sloppy_writes_->Value();
  snapshot_.hinted_handoffs = hinted_handoffs_->Value();
  snapshot_.hints_replayed = hints_replayed_->Value();
  snapshot_.read_repairs = read_repairs_->Value();
  snapshot_.stale_reads = stale_reads_->Value();
  snapshot_.write_retries = write_retries_->Value();
  snapshot_.read_retries = read_retries_->Value();
  snapshot_.anti_entropy_rounds = anti_entropy_rounds_->Value();
  snapshot_.anti_entropy_keys_synced = anti_entropy_keys_synced_->Value();
  snapshot_.divergent_segments = divergent_segments_->Value();
  return snapshot_;
}

}  // namespace deluge::replica
