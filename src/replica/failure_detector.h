#ifndef DELUGE_REPLICA_FAILURE_DETECTOR_H_
#define DELUGE_REPLICA_FAILURE_DETECTOR_H_

#include <cstdint>
#include <unordered_map>

#include "common/clock.h"

namespace deluge::replica {

/// Tuning for the φ-accrual failure detector.
struct FailureDetectorOptions {
  /// Suspicion level above which a peer counts as down.  φ grows
  /// linearly with silence measured in mean heartbeat intervals
  /// (φ ≈ 0.434 · elapsed/mean), so a threshold of 4 suspects a peer
  /// after ~9 missed intervals — late heartbeats under a latency spike
  /// raise φ smoothly instead of tripping a binary timeout.
  double phi_threshold = 4.0;
  /// Assumed mean inter-heartbeat interval before enough samples
  /// arrive (normally the coordinator's ping period).
  Micros bootstrap_interval = 100 * kMicrosPerMilli;
  /// EWMA weight of the newest inter-arrival sample.
  double ewma_alpha = 0.2;
};

/// A φ-accrual failure detector (Hayashibara et al.) over coordinator
/// heartbeats: instead of a boolean timeout it outputs a continuous
/// suspicion level φ from the observed inter-arrival distribution, so
/// the quorum layer can pick how aggressively to reroute writes
/// (sloppy quorums + hinted handoff) versus tolerate slow peers.
///
/// Not thread-safe; driven from the single-threaded simulator loop.
class PhiAccrualDetector {
 public:
  explicit PhiAccrualDetector(FailureDetectorOptions options = {})
      : options_(options) {}

  /// Starts tracking `peer`; it is presumed alive as of `now`.
  void Register(uint64_t peer, Micros now);

  /// Records a heartbeat (pong) from `peer` at `now`.
  void Heartbeat(uint64_t peer, Micros now);

  /// Suspicion level of `peer` at `now` (0 = just heard from it;
  /// +inf-ish growth while silent).  Unknown peers read as maximally
  /// suspect.
  double Phi(uint64_t peer, Micros now) const;

  bool IsAlive(uint64_t peer, Micros now) const {
    return Phi(peer, now) < options_.phi_threshold;
  }

  Micros last_heartbeat(uint64_t peer) const;
  const FailureDetectorOptions& options() const { return options_; }

 private:
  struct PeerState {
    Micros last = 0;
    double mean_interval = 0;  // EWMA of inter-arrival times
  };

  FailureDetectorOptions options_;
  std::unordered_map<uint64_t, PeerState> peers_;
};

}  // namespace deluge::replica

#endif  // DELUGE_REPLICA_FAILURE_DETECTOR_H_
