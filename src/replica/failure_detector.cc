#include "replica/failure_detector.h"

#include <algorithm>

namespace deluge::replica {

namespace {
// log10(e): converts "elapsed in mean intervals" into the φ scale of
// the accrual-detector literature (φ = -log10 P(heartbeat still
// pending) under an exponential inter-arrival model).
constexpr double kLog10E = 0.4342944819032518;
}  // namespace

void PhiAccrualDetector::Register(uint64_t peer, Micros now) {
  PeerState& st = peers_[peer];
  st.last = now;
  st.mean_interval = double(std::max<Micros>(1, options_.bootstrap_interval));
}

void PhiAccrualDetector::Heartbeat(uint64_t peer, Micros now) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) {
    Register(peer, now);
    return;
  }
  PeerState& st = it->second;
  const double interval = double(std::max<Micros>(1, now - st.last));
  st.mean_interval = options_.ewma_alpha * interval +
                     (1.0 - options_.ewma_alpha) * st.mean_interval;
  st.last = now;
}

double PhiAccrualDetector::Phi(uint64_t peer, Micros now) const {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return 1e9;  // unknown: maximally suspect
  const PeerState& st = it->second;
  const double elapsed = double(std::max<Micros>(0, now - st.last));
  return kLog10E * elapsed / std::max(1.0, st.mean_interval);
}

Micros PhiAccrualDetector::last_heartbeat(uint64_t peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? -1 : it->second.last;
}

}  // namespace deluge::replica
