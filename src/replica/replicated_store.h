#ifndef DELUGE_REPLICA_REPLICATED_STORE_H_
#define DELUGE_REPLICA_REPLICATED_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "consistency/session.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "p2p/chord.h"
#include "replica/failure_detector.h"
#include "replica/node.h"
#include "replica/wire.h"

namespace deluge::replica {

/// Tuning of the replicated store.
struct ReplicaOptions {
  /// Replication factor: each key lives on the N successor peers of its
  /// ring position (the preference list).
  int n = 3;
  /// Default read / write quorum sizes.  R + W > N gives overlapping
  /// quorums (every read quorum intersects every write quorum); smaller
  /// values trade consistency for availability and are measured, not
  /// forbidden (E22 sweeps both regimes).
  int r = 2;
  int w = 2;
  /// Per-attempt timeouts before the retry policy kicks in.
  Micros write_timeout = 500 * kMicrosPerMilli;
  Micros read_timeout = 500 * kMicrosPerMilli;
  /// Coordinator -> replica ping period (0 disables heartbeats even
  /// after Start()).
  Micros heartbeat_period = 50 * kMicrosPerMilli;
  /// φ threshold above which a peer counts as down (see
  /// FailureDetectorOptions).
  double phi_threshold = 4.0;
  /// When the preferred replica is down, divert its write to the next
  /// live successor with a durable handoff hint (sloppy quorum).  Off =
  /// strict quorums: writes to dead peers just time out.
  bool sloppy_quorum = true;
  /// Push the merged newest record back to stale replicas after a
  /// divergent quorum read.
  bool read_repair = true;
  /// Background anti-entropy period (0 = only on explicit
  /// RunAntiEntropy calls).
  Micros anti_entropy_period = 0;
  /// Backoff between quorum attempt retries.
  RetryPolicy retry;
  /// Per-peer circuit breaker configuration.
  CircuitBreakerOptions breaker;
  /// Identity stamped into versions this coordinator issues.
  uint64_t writer_id = 1;
  uint64_t seed = 42;
};

/// Replaces the static per-attempt timeouts with ones derived from
/// measured transport round-trips: both timeouts become
/// clamp(4 × p99(transport.rtt_us), floor, cap), the TCP-RTO-style
/// envelope (cf. SRTT + 4·RTTVAR).  The RTT histograms come from the
/// socket transport's ping/pong loop (`SocketTransportOptions::
/// ping_period`), merged across every transport instance in the
/// process; with no RTT samples recorded yet `options` is left
/// untouched, so callers can apply this unconditionally at startup and
/// re-apply once pings have flowed.
void TuneTimeoutsFromRtt(ReplicaOptions* options,
                         Micros floor = 10 * kMicrosPerMilli,
                         Micros cap = 500 * kMicrosPerMilli);

/// Per-request write knobs.
struct WriteOptions {
  int w = 0;  ///< ack quorum override (0 = store default)
  consistency::Session* session = nullptr;  ///< observes the new version
};

/// Per-request read knobs.
struct ReadOptions {
  int r = 0;  ///< response quorum override (0 = store default)
  consistency::ReadMode mode = consistency::ReadMode::kEventual;
  consistency::Session* session = nullptr;  ///< floor source + observer
};

/// Registry-backed counters of the replica fabric (snapshot view; see
/// `ReplicatedStore::stats`).
struct ReplicaStats {
  uint64_t quorum_writes = 0;   ///< write operations issued
  uint64_t quorum_reads = 0;    ///< read operations issued
  uint64_t write_failures = 0;  ///< writes failed after retries
  uint64_t read_failures = 0;   ///< reads failed after retries
  uint64_t sloppy_writes = 0;   ///< writes that used any substitute
  uint64_t hinted_handoffs = 0;  ///< handoff hints created
  uint64_t hints_replayed = 0;   ///< hints delivered back to their owner
  uint64_t read_repairs = 0;     ///< stale replicas repaired after reads
  uint64_t stale_reads = 0;      ///< reads older than the last acked write
  uint64_t write_retries = 0;
  uint64_t read_retries = 0;
  uint64_t anti_entropy_rounds = 0;
  uint64_t anti_entropy_keys_synced = 0;
  double divergent_segments = 0;  ///< divergent segments, last round
};

/// Outcome of one anti-entropy round.
struct AntiEntropyReport {
  uint64_t segments = 0;     ///< ring segments compared
  uint64_t divergent = 0;    ///< segments whose replica digests differed
  uint64_t keys_synced = 0;  ///< records pushed to stale replicas
  uint64_t unreachable = 0;  ///< segments with fewer than 2 reachable copies
};

/// The replicated quorum storage fabric over the Chord overlay
/// (DESIGN.md §11, ROADMAP open item 2).
///
/// Each object is placed on the N successor peers of its key's ring
/// position (`ChordRing::SuccessorsOf`) and written / read with tunable
/// quorums.  The coordinator runs a φ-accrual failure detector off its
/// heartbeats; writes divert around suspected-down peers via sloppy
/// quorums with durable hinted handoff, divergent quorum reads trigger
/// read repair, and a background anti-entropy pass reconciles replicas
/// through key-range digests — so a single replica crash or a healed
/// partition converges back to full redundancy without operator action.
///
/// All replica traffic flows over a `net::Transport`, so every
/// chaos-layer fault (crashes, partitions, latency spikes, burst loss)
/// applies to it; E22 measures the resulting availability / staleness
/// trade-off across quorum configurations.  Under `SocketTransport` the
/// replicas may live in other OS processes: register them with
/// `AddRemoteReplica` and the coordinator quorums over the wire (E24).
///
/// Single-threaded: driven entirely from the transport's event strand.
class ReplicatedStore {
 public:
  using WriteCallback = std::function<void(const Status&, Version)>;
  using ReadCallback =
      std::function<void(const Status&, const std::string&, Version)>;
  using AntiEntropyCallback = std::function<void(const AntiEntropyReport&)>;

  /// `net` (and `ring` when given) must outlive the store.  With a
  /// ring, peers added to the store are also added to it (the ring
  /// supplies placement); `ring` may be nullptr, in which case the
  /// store keeps its own successor map over the registered replicas —
  /// the multi-process configuration, where no in-process ChordRing
  /// spans the cluster.
  ReplicatedStore(net::Transport* net, p2p::ChordRing* ring,
                  ReplicaOptions options = {});
  ~ReplicatedStore();

  /// True when R + W > N: every read quorum overlaps every write
  /// quorum, so a read is guaranteed to see the newest acked write.
  static bool QuorumSound(int n, int r, int w) { return r + w > n; }

  /// Adds a replica peer named `name`; null `backing` = in-memory.
  /// Returns its ring id.
  uint64_t AddReplica(const std::string& name,
                      std::unique_ptr<Backing> backing = nullptr);

  /// Registers a replica that lives in another process: `node` is its
  /// cluster-global transport node id, `name` must be the name its
  /// hosting process used to construct it (ring ids are derived from
  /// the name on both sides, so placement agrees).  Returns its ring id.
  uint64_t AddRemoteReplica(const std::string& name, net::NodeId node);

  /// Starts heartbeats (failure detection, hint replay on recovery) and
  /// periodic anti-entropy when configured.
  void Start();
  void Stop();

  /// Writes `value` under `key` with a fresh version; `done` fires once
  /// W replicas acked (OK) or the retry budget is exhausted
  /// (Unavailable).
  void Put(const std::string& key, std::string value, WriteOptions options,
           WriteCallback done);

  /// Writes a tombstone (replicated delete; the key cannot resurrect
  /// from a stale replica).
  void Delete(const std::string& key, WriteOptions options,
              WriteCallback done);

  /// Reads `key` from R replicas, merging last-writer-wins.  Eventual
  /// mode answers from the first quorum; read-your-writes mode keeps
  /// widening past the quorum until the session floor is met, else
  /// fails Unavailable.
  void Get(const std::string& key, ReadOptions options, ReadCallback done);

  /// One anti-entropy round: per ring segment, compare the range
  /// digests of its N owners and push newest records to divergent
  /// copies.
  void RunAntiEntropy(AntiEntropyCallback done);

  /// Asks every peer to replay the handoff hints it queued for
  /// `target_ring` (normally triggered automatically when the detector
  /// sees the peer come back).
  void TriggerHintReplay(uint64_t target_ring);

  // --- Introspection (tests, audits, benches) ------------------------
  ReplicaNode* node(uint64_t ring_id);
  std::vector<uint64_t> replica_rings() const;
  net::NodeId coordinator_node() const { return coordinator_node_; }
  const PhiAccrualDetector& detector() const { return detector_; }
  /// The newest version this coordinator has acked for `key` (zero
  /// stamp if never acked) — the ground truth for write-loss audits.
  Version AckedVersion(const std::string& key) const;
  /// The preference list (N owner ring ids) for `key`.
  std::vector<uint64_t> PreferenceList(const std::string& key) const;
  const ReplicaOptions& options() const { return options_; }
  /// Registry-backed snapshot, refreshed on every call.
  const ReplicaStats& stats() const;

 private:
  struct Target {
    uint64_t ring = 0;
    net::NodeId node = 0;
    uint64_t hint_for = 0;  ///< ring id of the down peer, 0 = primary
  };

  struct PendingWrite {
    std::string key;
    Record record;
    int need = 0;  ///< W
    std::vector<Target> targets;
    std::unordered_set<uint64_t> acked;  ///< ring ids
    consistency::Session* session = nullptr;
    WriteCallback done;
    RetryState retry;
    Micros started_at = 0;
    int attempt = 0;
    bool completed = false;
  };

  struct ReadResponse {
    bool found = false;
    Record record;
  };

  struct PendingRead {
    std::string key;
    int need = 0;  ///< R
    consistency::ReadMode mode = consistency::ReadMode::kEventual;
    consistency::Session* session = nullptr;
    std::vector<Target> targets;
    std::map<uint64_t, ReadResponse> responses;  ///< by ring id
    ReadCallback done;
    RetryState retry;
    Micros started_at = 0;
    int attempt = 0;
    bool completed = false;
  };

  /// One ring segment being reconciled by anti-entropy.
  struct SegmentState {
    uint64_t lo = 0, hi = 0;  ///< keys with Hash64(key) in (lo, hi]
    std::vector<Target> owners;
    /// Digest stage: ring -> (digest, count).
    std::map<uint64_t, std::pair<uint64_t, uint32_t>> digests;
    /// List stage: ring -> full range contents.
    std::map<uint64_t, std::map<std::string, Record>> listings;
    bool listing = false;  ///< digest stage done, lists outstanding
  };

  struct AntiEntropyRun {
    AntiEntropyReport report;
    AntiEntropyCallback done;
    std::map<uint64_t, SegmentState> segments;  ///< by digest req id
    std::map<uint64_t, uint64_t> list_reqs;  ///< list req id -> digest id
    size_t outstanding = 0;  ///< segments not yet resolved
  };

  void OnMessage(const net::Message& msg);
  void OnWriteAck(std::string_view payload);
  void OnReadResp(std::string_view payload);
  void OnPong(std::string_view payload);
  void OnHintDelivered(std::string_view payload);
  void OnDigestResp(std::string_view payload);
  void OnListResp(std::string_view payload);

  void DoWrite(const std::string& key, Record record, WriteOptions options,
               WriteCallback done);
  void SendWrites(uint64_t id, PendingWrite& pw, bool only_unacked);
  void ArmWriteTimer(uint64_t id, int attempt);
  void OnWriteTimeout(uint64_t id, int attempt);
  void FinishWrite(uint64_t id, PendingWrite& pw);

  void SendReads(uint64_t id, PendingRead& pr, bool only_unanswered);
  void ArmReadTimer(uint64_t id, int attempt);
  void OnReadTimeout(uint64_t id, int attempt);
  void MaybeCompleteRead(uint64_t id, PendingRead& pr);
  void FinishRead(uint64_t id, PendingRead& pr);
  /// LWW merge over the responses received so far.
  ReadResponse MergeResponses(const PendingRead& pr) const;

  void HeartbeatTick();
  void AntiEntropyTick();
  void ResolveSegmentDigests(uint64_t digest_id);
  void ReconcileSegment(uint64_t digest_id);
  void FinishAntiEntropyRun();

  /// Picks the N delivery targets for `key`: the preference list, with
  /// suspected-down peers replaced by their next live successor (when
  /// sloppy quorums are on).  `for_write` attaches handoff hints to
  /// substitutes.
  std::vector<Target> PickTargets(const std::string& key, bool for_write);
  bool PeerUsable(uint64_t ring, Micros now);
  CircuitBreaker& BreakerFor(uint64_t ring);
  void SendTo(const Target& t, uint32_t type, std::string payload);
  void PushRecord(net::NodeId to, const std::string& key,
                  const Record& record);
  /// Ring id for a replica name: the ChordRing's derivation when a ring
  /// is attached, the identical hash chain otherwise.
  uint64_t RingIdFor(const std::string& name) const;
  /// The first `n` distinct storage peers at or after `id` in ring
  /// order (wrapping).  Uses `ring_` when present — which may include
  /// chord-only peers the caller must skip — and `peer_nodes_`
  /// otherwise.
  std::vector<uint64_t> SuccessorsOf(uint64_t id, int n) const;
  /// Registers `rid` in the peer map, detector, and liveness cache.
  void RegisterPeer(uint64_t rid, net::NodeId node);

  net::Transport* net_;
  p2p::ChordRing* ring_;  ///< nullptr in multi-process mode
  ReplicaOptions options_;
  Rng rng_;
  net::NodeId coordinator_node_ = 0;

  std::map<uint64_t, std::unique_ptr<ReplicaNode>> replicas_;  // by ring
  /// Every storage peer — local and remote — by ring id (ring order),
  /// mapped to its transport node.  The delivery-target source of
  /// truth; `replicas_` holds only the locally-hosted subset.
  std::map<uint64_t, net::NodeId> peer_nodes_;
  std::unordered_map<uint64_t, std::unique_ptr<CircuitBreaker>> breakers_;
  PhiAccrualDetector detector_;
  std::unordered_map<uint64_t, bool> last_alive_;
  bool started_ = false;

  uint64_t next_request_ = 1;
  std::unordered_map<uint64_t, PendingWrite> writes_;
  std::unordered_map<uint64_t, PendingRead> reads_;
  std::unique_ptr<AntiEntropyRun> ae_run_;

  std::unordered_map<std::string, uint64_t> clocks_;  ///< per-key counter
  std::unordered_map<std::string, Version> acked_;    ///< write-loss audit

  obs::StatsScope obs_{"replica"};
  obs::Counter* quorum_writes_ = obs_.counter("quorum_writes");
  obs::Counter* quorum_reads_ = obs_.counter("quorum_reads");
  obs::Counter* write_failures_ = obs_.counter("write_failures");
  obs::Counter* read_failures_ = obs_.counter("read_failures");
  obs::Counter* sloppy_writes_ = obs_.counter("sloppy_writes");
  obs::Counter* hinted_handoffs_ = obs_.counter("hinted_handoffs");
  obs::Counter* hints_replayed_ = obs_.counter("hints_replayed");
  obs::Counter* read_repairs_ = obs_.counter("read_repairs");
  obs::Counter* stale_reads_ = obs_.counter("stale_reads");
  obs::Counter* write_retries_ = obs_.counter("write_retries");
  obs::Counter* read_retries_ = obs_.counter("read_retries");
  obs::Counter* anti_entropy_rounds_ = obs_.counter("anti_entropy_rounds");
  obs::Counter* anti_entropy_keys_synced_ =
      obs_.counter("anti_entropy_keys_synced");
  obs::Gauge* divergent_segments_ =
      obs_.gauge("divergent_segments", obs::Gauge::Agg::kLast);
  obs::ConcurrentHistogram* write_us_ = obs_.histogram("write_us");
  obs::ConcurrentHistogram* read_us_ = obs_.histogram("read_us");
  obs::ConcurrentHistogram* staleness_versions_ =
      obs_.histogram("staleness_versions");
  mutable ReplicaStats snapshot_;
};

}  // namespace deluge::replica

#endif  // DELUGE_REPLICA_REPLICATED_STORE_H_
