#ifndef DELUGE_REPLICA_NODE_H_
#define DELUGE_REPLICA_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/transport.h"
#include "replica/backing.h"
#include "replica/wire.h"

namespace deluge::replica {

/// One storage replica of the fabric: a network endpoint that applies
/// versioned writes last-writer-wins into its `Backing`, serves reads
/// and key-range digests, queues handoff hints durably for peers that
/// were down, and replays them peer-to-peer on request.
///
/// The node is deliberately dumb about membership: placement, quorum
/// accounting, and failure detection live in `ReplicatedStore`; the
/// node only ever reacts to messages, so a crashed node (chaos layer
/// `SetNodeUp(false)`) simply stops hearing them.
class ReplicaNode {
 public:
  /// `ring_id` is the node's position on the Chord ring; `backing`
  /// stores its records and hints (owned).
  ReplicaNode(uint64_t ring_id, net::Transport* net,
              std::unique_ptr<Backing> backing);

  uint64_t ring_id() const { return ring_id_; }
  net::NodeId node_id() const { return node_id_; }
  Backing* backing() { return backing_.get(); }

  /// Ring position derived from a replica name.  The same derivation as
  /// `ChordRing::AddPeer` and `ReplicatedStore::AddRemoteReplica`, so a
  /// replica hosted in another process (`tools/deluge_node`) and the
  /// coordinator registering it agree on placement without talking.
  static uint64_t RingIdFor(const std::string& name);

  /// Direct (non-networked) accessors for tests and audits.
  Status LocalGet(const std::string& key, Record* out);
  Status LocalPut(const std::string& key, const Record& record);
  /// Hints queued for `target_ring` (0 = all targets).
  size_t PendingHints(uint64_t target_ring = 0);
  /// Data keys currently stored.
  size_t KeyCount();

 private:
  static std::string DataKey(const std::string& key) { return "d!" + key; }
  static std::string HintPrefix(uint64_t target_ring);
  static std::string HintKey(uint64_t target_ring, const std::string& key);

  void OnMessage(const net::Message& msg);
  void OnWrite(std::string_view payload);
  void OnRead(std::string_view payload, net::NodeId from);
  void OnPing(net::NodeId from);
  void OnHintReplay(std::string_view payload);
  void OnDigest(std::string_view payload, net::NodeId from);
  void OnList(std::string_view payload, net::NodeId from);
  void OnSyncWrite(std::string_view payload, net::NodeId from);
  void OnSyncAck(std::string_view payload);

  /// Applies `record` to `key` iff it is newer than the stored copy
  /// (LWW merge — idempotent, so retries, read repair, hint replay,
  /// and anti-entropy pushes all reuse it).  Returns the version now
  /// stored.
  Version Apply(const std::string& key, const Record& record);

  /// Sends `payload` as `type` to `to` after the processing delay.
  void Reply(net::NodeId to, uint32_t type, std::string payload);

  uint64_t ring_id_;
  net::Transport* net_;
  net::NodeId node_id_ = 0;
  std::unique_ptr<Backing> backing_;
  Micros processing_cost_ = 50;

  /// Hint-replay bookkeeping: sync request id -> (hint storage key,
  /// coordinator to notify on delivery).
  struct PendingHint {
    std::string hint_key;
    net::NodeId notify = 0;
  };
  std::unordered_map<uint64_t, PendingHint> inflight_hints_;
  uint64_t next_sync_id_ = 1;
};

}  // namespace deluge::replica

#endif  // DELUGE_REPLICA_NODE_H_
