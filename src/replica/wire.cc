#include "replica/wire.h"

#include "common/hash.h"
#include "storage/format.h"

namespace deluge::replica {

void AppendRecord(std::string* out, const Record& record) {
  storage::PutFixed64(out, record.version.counter);
  storage::PutFixed64(out, record.version.writer);
  out->push_back(record.tombstone ? 1 : 0);
  storage::PutLengthPrefixed(out, record.value);
}

std::string EncodeRecord(const Record& record) {
  std::string out;
  AppendRecord(&out, record);
  return out;
}

bool DecodeRecord(std::string_view* input, Record* out) {
  std::string_view value;
  if (!storage::GetFixed64(input, &out->version.counter) ||
      !storage::GetFixed64(input, &out->version.writer) || input->empty()) {
    return false;
  }
  out->tombstone = input->front() != 0;
  input->remove_prefix(1);
  if (!storage::GetLengthPrefixed(input, &value)) return false;
  out->value.assign(value);
  return true;
}

uint64_t DigestEntry(std::string_view key, const Version& version) {
  std::string buf(key);
  storage::PutFixed64(&buf, version.counter);
  storage::PutFixed64(&buf, version.writer);
  return Hash64(buf, /*seed=*/0x5EED);
}

}  // namespace deluge::replica
