#include "replica/backing.h"

namespace deluge::replica {

// ---------------------------------------------------------- MemoryBacking

Status MemoryBacking::Put(const std::string& key, const std::string& record) {
  map_[key] = record;
  return Status::OK();
}

Status MemoryBacking::Get(const std::string& key, std::string* record) {
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("no such key");
  *record = it->second;
  return Status::OK();
}

Status MemoryBacking::Delete(const std::string& key) {
  map_.erase(key);
  return Status::OK();
}

Status MemoryBacking::Scan(const std::string& prefix, const ScanFn& fn) {
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    fn(it->first, it->second);
  }
  return Status::OK();
}

// --------------------------------------------------------- KVStoreBacking

Result<std::unique_ptr<KVStoreBacking>> KVStoreBacking::Open(
    const storage::KVStoreOptions& options) {
  auto opened = storage::KVStore::Open(options);
  if (!opened.ok()) return opened.status();
  auto backing = std::make_unique<KVStoreBacking>(nullptr);
  backing->owned_ = std::move(opened).value();
  backing->store_ = backing->owned_.get();
  return backing;
}

Status KVStoreBacking::Put(const std::string& key,
                           const std::string& record) {
  return store_->Put(key, record);
}

Status KVStoreBacking::Get(const std::string& key, std::string* record) {
  return store_->Get(key, record);
}

Status KVStoreBacking::Delete(const std::string& key) {
  return store_->Delete(key);
}

Status KVStoreBacking::Scan(const std::string& prefix, const ScanFn& fn) {
  storage::KVStore::Iterator it = store_->NewIterator();
  it.Seek(prefix);
  for (; it.Valid(); it.Next()) {
    if (it.key().compare(0, prefix.size(), prefix) != 0) break;
    fn(it.key(), it.value());
  }
  return Status::OK();
}

// ------------------------------------------------------ ObjectStoreBacking

ObjectStoreBacking::ObjectStoreBacking(storage::ObjectStore* store) {
  if (store == nullptr) {
    owned_ = std::make_unique<storage::ObjectStore>();
    store_ = owned_.get();
  } else {
    store_ = store;
  }
}

Status ObjectStoreBacking::Put(const std::string& key,
                               const std::string& record) {
  return store_->Put(key, record);
}

Status ObjectStoreBacking::Get(const std::string& key, std::string* record) {
  return store_->Get(key, record);
}

Status ObjectStoreBacking::Delete(const std::string& key) {
  Status s = store_->Delete(key);
  // Deleting an absent object is not an error for a backing.
  return s.IsNotFound() ? Status::OK() : s;
}

Status ObjectStoreBacking::Scan(const std::string& prefix, const ScanFn& fn) {
  for (const storage::ObjectInfo& info : store_->List(prefix)) {
    std::string record;
    if (store_->Get(info.name, &record).ok()) fn(info.name, record);
  }
  return Status::OK();
}

}  // namespace deluge::replica
