#ifndef DELUGE_REPLICA_BACKING_H_
#define DELUGE_REPLICA_BACKING_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/kv_store.h"
#include "storage/object_store.h"

namespace deluge::replica {

/// The durable key -> encoded-record map under one replica node.
///
/// A replica stores its versioned data records and its queued handoff
/// hints through this interface, so the fabric runs identically over
/// the real LSM `storage::KVStore` (durability across crash-recovery),
/// the blob `storage::ObjectStore`, or a plain map (fast simulation
/// runs).  Keys are already prefixed by the node ("d!" data, "h!"
/// hints), so prefix scans enumerate either class.
class Backing {
 public:
  using ScanFn =
      std::function<void(const std::string& key, const std::string& record)>;

  virtual ~Backing() = default;

  virtual Status Put(const std::string& key, const std::string& record) = 0;
  /// NotFound when absent.
  virtual Status Get(const std::string& key, std::string* record) = 0;
  virtual Status Delete(const std::string& key) = 0;
  /// Calls `fn` for every key starting with `prefix`, in key order.
  virtual Status Scan(const std::string& prefix, const ScanFn& fn) = 0;
};

/// In-memory backing: the default for simulation-scale experiments.
class MemoryBacking : public Backing {
 public:
  Status Put(const std::string& key, const std::string& record) override;
  Status Get(const std::string& key, std::string* record) override;
  Status Delete(const std::string& key) override;
  Status Scan(const std::string& prefix, const ScanFn& fn) override;

  size_t size() const { return map_.size(); }

 private:
  std::map<std::string, std::string> map_;
};

/// LSM-backed replica storage: every replicated record and queued hint
/// rides the KVStore's WAL + SSTable path, so acknowledged writes (and
/// un-replayed hints) survive a process crash — the durability half of
/// the hinted-handoff contract.
class KVStoreBacking : public Backing {
 public:
  /// Borrows `store` (must outlive the backing).
  explicit KVStoreBacking(storage::KVStore* store) : store_(store) {}
  /// Opens and owns a store in `options.dir`.
  static Result<std::unique_ptr<KVStoreBacking>> Open(
      const storage::KVStoreOptions& options);

  Status Put(const std::string& key, const std::string& record) override;
  Status Get(const std::string& key, std::string* record) override;
  Status Delete(const std::string& key) override;
  Status Scan(const std::string& prefix, const ScanFn& fn) override;

  storage::KVStore* store() { return store_; }

 private:
  std::unique_ptr<storage::KVStore> owned_;
  storage::KVStore* store_ = nullptr;
};

/// Blob-store backing: replica records as named objects — the Fig. 7
/// "object store" member of the heterogeneous storage tier serving as
/// a replica target (large immutable media payloads).
class ObjectStoreBacking : public Backing {
 public:
  /// Borrows `store` when given; otherwise owns a private one.
  explicit ObjectStoreBacking(storage::ObjectStore* store = nullptr);

  Status Put(const std::string& key, const std::string& record) override;
  Status Get(const std::string& key, std::string* record) override;
  Status Delete(const std::string& key) override;
  Status Scan(const std::string& prefix, const ScanFn& fn) override;

 private:
  std::unique_ptr<storage::ObjectStore> owned_;
  storage::ObjectStore* store_ = nullptr;
};

}  // namespace deluge::replica

#endif  // DELUGE_REPLICA_BACKING_H_
