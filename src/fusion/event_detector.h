#ifndef DELUGE_FUSION_EVENT_DETECTOR_H_
#define DELUGE_FUSION_EVENT_DETECTOR_H_

#include <deque>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "fusion/observation.h"

namespace deluge::fusion {

/// A fused, corroborated event ready to be materialized in the other
/// space (Section IV-A: "detects events that had taken place based on
/// these data sources and depicts these events accurately").
struct DetectedEvent {
  std::string rule;
  std::string entity;
  Micros t = 0;
  double confidence = 0.0;
  size_t corroborating_observations = 0;
};

/// A composite-event rule: fire when observations of at least
/// `min_source_types` distinct source types, each passing `predicate`,
/// are seen for one entity within `window`.
struct EventRule {
  std::string name;
  size_t min_source_types = 2;
  Micros window = 2 * kMicrosPerSecond;
  /// Per-observation relevance filter (default: everything matches).
  std::function<bool(const Observation&)> predicate;
  /// Cooldown: after firing for an entity, suppress refires within this.
  Micros refractory = kMicrosPerSecond;
};

/// Multi-source corroboration engine.
///
/// The library example of the paper (Fig. 6) motivates it: a book's
/// location is trusted only when the RFID reader *and* the camera agree.
/// Rules demand k distinct source types within a time window before an
/// event is declared; single-source noise never fires a rule.
class EventDetector {
 public:
  using Callback = std::function<void(const DetectedEvent&)>;

  /// Registers a rule; events fire through `cb`.
  void AddRule(EventRule rule, Callback cb);

  /// Feeds one observation; may fire any number of rules.
  void Ingest(const Observation& obs);

  uint64_t events_fired() const { return events_fired_; }

 private:
  struct RuleState {
    EventRule rule;
    Callback cb;
    // Per entity: recent matching observations.
    std::unordered_map<std::string, std::deque<Observation>> recent;
    std::unordered_map<std::string, Micros> last_fired;
  };

  std::vector<RuleState> rules_;
  uint64_t events_fired_ = 0;
};

}  // namespace deluge::fusion

#endif  // DELUGE_FUSION_EVENT_DETECTOR_H_
