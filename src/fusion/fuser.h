#ifndef DELUGE_FUSION_FUSER_H_
#define DELUGE_FUSION_FUSER_H_

#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "fusion/observation.h"

namespace deluge::fusion {

/// Learns per-source reliability from agreement with fused consensus.
///
/// Each time a source's claim is compared to the consensus estimate, its
/// reliability is updated by exponential moving average of the agreement
/// score (1 at zero error, decaying with distance).  This is the online
/// flavour of truth-discovery reweighting: unreliable sources fade out
/// of future fusions automatically.
class ReliabilityTracker {
 public:
  /// `alpha` is the EWMA step in (0, 1]; `prior` the initial reliability.
  explicit ReliabilityTracker(double alpha = 0.1, double prior = 0.5);

  /// Records that `source_id` deviated from consensus by `error` metres;
  /// `scale` converts error to agreement (agreement = exp(-error/scale)).
  void Observe(uint32_t source_id, double error, double scale = 5.0);

  /// Current reliability in [0, 1]; unseen sources return the prior.
  double reliability(uint32_t source_id) const;

  size_t tracked_sources() const { return scores_.size(); }

 private:
  double alpha_;
  double prior_;
  std::unordered_map<uint32_t, double> scores_;
};

/// Options for the streaming entity fuser.
struct FuserOptions {
  /// Observations older than this are dropped from the fusion window.
  Micros window = 10 * kMicrosPerSecond;
  /// Recency half-life: an observation's weight halves every `half_life`.
  Micros half_life = 2 * kMicrosPerSecond;
  /// Error scale (metres) for reliability agreement updates.
  double reliability_scale = 5.0;
  /// Reliability learning compares a new claim only against observations
  /// at most this much older — for moving entities, a stale consensus
  /// would make every honest source look unreliable.
  Micros reliability_window = kMicrosPerSecond;
};

/// Streaming multi-source fusion of entity positions and attributes.
///
/// Maintains a sliding window of observations per entity; the fused
/// position is the weighted mean with weight = source reliability x
/// self-confidence x recency decay.  Categorical attributes fuse by
/// weighted voting.  Section IV-A: "fusion of information on a single
/// entity requires a substantial amount of inference over … multiple
/// data sources."
class EntityFuser {
 public:
  explicit EntityFuser(FuserOptions options = {});

  /// Ingests one observation and refreshes reliability of its source
  /// against the current consensus.
  void Add(const Observation& obs);

  /// Fused position estimate at `now`; NotFound when the entity has no
  /// live positional observations in the window.
  Result<FusedEstimate> EstimatePosition(const std::string& entity,
                                         Micros now) const;

  /// Fused categorical value for (entity, attribute) by weighted vote;
  /// NotFound when no claims are in the window.  `*support` (optional)
  /// receives the winning fraction of total vote weight.
  Result<std::string> EstimateAttribute(const std::string& entity,
                                        const std::string& attribute,
                                        Micros now,
                                        double* support = nullptr) const;

  const ReliabilityTracker& reliability() const { return reliability_; }

  size_t window_size(const std::string& entity) const;

 private:
  double WeightOf(const Observation& obs, Micros now) const;
  void Expire(std::deque<Observation>* window, Micros now) const;

  FuserOptions options_;
  ReliabilityTracker reliability_;
  // Mutable windows: Estimate* lazily expires old observations.
  mutable std::unordered_map<std::string, std::deque<Observation>> windows_;
};

/// Batch truth discovery over conflicting numeric claims (CRH-style).
///
/// Given M sources each claiming values for N items, iteratively
/// (1) estimates truths as reliability-weighted means and (2) re-scores
/// source reliabilities from their deviation to the estimates, until
/// convergence.  Used by E2 to show fused accuracy beating the best
/// single source.
class TruthDiscovery {
 public:
  struct Claim {
    uint32_t source_id;
    size_t item;
    double value;
  };

  struct Solution {
    std::vector<double> truths;                    // per item
    std::unordered_map<uint32_t, double> weights;  // per source
    int iterations = 0;
  };

  /// Runs to convergence (truth change < tol) or `max_iters`.
  static Solution Solve(const std::vector<Claim>& claims, size_t num_items,
                        int max_iters = 50, double tol = 1e-6);
};

}  // namespace deluge::fusion

#endif  // DELUGE_FUSION_FUSER_H_
