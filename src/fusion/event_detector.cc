#include "fusion/event_detector.h"

#include <algorithm>

namespace deluge::fusion {

void EventDetector::AddRule(EventRule rule, Callback cb) {
  if (!rule.predicate) {
    rule.predicate = [](const Observation&) { return true; };
  }
  rules_.push_back(RuleState{std::move(rule), std::move(cb), {}, {}});
}

void EventDetector::Ingest(const Observation& obs) {
  for (auto& state : rules_) {
    if (!state.rule.predicate(obs)) continue;
    auto& window = state.recent[obs.entity];
    // Expire stale evidence.
    while (!window.empty() &&
           window.front().t + state.rule.window < obs.t) {
      window.pop_front();
    }
    window.push_back(obs);

    // Count distinct corroborating source types.
    std::set<SourceType> types;
    double confidence_sum = 0.0;
    for (const auto& o : window) {
      types.insert(o.type);
      confidence_sum += o.confidence;
    }
    if (types.size() < state.rule.min_source_types) continue;

    // Refractory suppression.
    auto it = state.last_fired.find(obs.entity);
    if (it != state.last_fired.end() &&
        obs.t - it->second < state.rule.refractory) {
      continue;
    }
    state.last_fired[obs.entity] = obs.t;

    DetectedEvent ev;
    ev.rule = state.rule.name;
    ev.entity = obs.entity;
    ev.t = obs.t;
    ev.corroborating_observations = window.size();
    ev.confidence =
        std::min(1.0, confidence_sum / double(state.rule.min_source_types));
    ++events_fired_;
    if (state.cb) state.cb(ev);
  }
}

}  // namespace deluge::fusion
