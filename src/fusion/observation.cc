#include "fusion/observation.h"

namespace deluge::fusion {

namespace {

// Interned once per process; conversion then reads/writes slots by id.
const stream::FieldId kFSource = stream::FieldTable::Intern("source");
const stream::FieldId kFType = stream::FieldTable::Intern("source_type");
const stream::FieldId kFX = stream::FieldTable::Intern("x");
const stream::FieldId kFY = stream::FieldTable::Intern("y");
const stream::FieldId kFZ = stream::FieldTable::Intern("z");
const stream::FieldId kFAttribute = stream::FieldTable::Intern("attribute");
const stream::FieldId kFValue = stream::FieldTable::Intern("value");
const stream::FieldId kFConfidence = stream::FieldTable::Intern("confidence");

}  // namespace

stream::Tuple Observation::ToTuple() const {
  stream::Tuple t;
  t.event_time = this->t;
  t.space = type == SourceType::kVirtual ? stream::Space::kVirtual
                                         : stream::Space::kPhysical;
  t.key = entity;
  t.Set(kFSource, int64_t(source_id));
  t.Set(kFType, int64_t(type));
  if (has_position) {
    t.Set(kFX, position.x);
    t.Set(kFY, position.y);
    t.Set(kFZ, position.z);
  }
  if (!attribute.empty()) {
    t.Set(kFAttribute, attribute);
    t.Set(kFValue, value);
  }
  t.Set(kFConfidence, confidence);
  return t;
}

std::optional<Observation> Observation::FromTuple(const stream::Tuple& t) {
  auto source = t.Get<int64_t>(kFSource);
  auto type = t.Get<int64_t>(kFType);
  if (!source.has_value() || !type.has_value() || t.key.empty() ||
      *type > int64_t(SourceType::kVirtual)) {
    return std::nullopt;
  }
  Observation obs;
  obs.entity = t.key;
  obs.source_id = uint32_t(*source);
  obs.type = SourceType(*type);
  obs.t = t.event_time;
  auto x = t.GetNumeric(kFX);
  auto y = t.GetNumeric(kFY);
  auto z = t.GetNumeric(kFZ);
  if (x.has_value() && y.has_value() && z.has_value()) {
    obs.position = geo::Vec3{*x, *y, *z};
    obs.has_position = true;
  }
  obs.attribute = t.Get<std::string>(kFAttribute).value_or("");
  obs.value = t.Get<std::string>(kFValue).value_or("");
  obs.confidence = t.GetNumeric(kFConfidence).value_or(1.0);
  return obs;
}

}  // namespace deluge::fusion
