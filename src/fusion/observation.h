#ifndef DELUGE_FUSION_OBSERVATION_H_
#define DELUGE_FUSION_OBSERVATION_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/clock.h"
#include "geo/geometry.h"
#include "stream/tuple.h"

namespace deluge::fusion {

/// The heterogeneous source classes of Section IV-A: a metaverse entity
/// may be observed by RFID readers, cameras, GPS devices, text streams
/// (reviews, blogs), or virtual-space systems simultaneously.
enum class SourceType : uint8_t {
  kRfid = 0,
  kCamera = 1,
  kGps = 2,
  kText = 3,
  kVirtual = 4,
};

std::string SourceTypeName(SourceType type);

/// One source's claim about one entity at one time.
///
/// Positional claims fill `position`; categorical claims (e.g.
/// "shelf=A3", "status=damaged") fill `attribute`/`value`.  `confidence`
/// is the source's self-reported certainty — Deluge's fusion layer learns
/// how much each source is actually worth (ReliabilityTracker).
struct Observation {
  std::string entity;
  uint32_t source_id = 0;
  SourceType type = SourceType::kRfid;
  Micros t = 0;
  geo::Vec3 position;
  bool has_position = false;
  std::string attribute;
  std::string value;
  double confidence = 1.0;

  /// The observation as a flat stream tuple (event-path form): field
  /// slots use process-interned ids, so converting on the ingest path
  /// does no name hashing.  Round-trips through `FromTuple`.
  stream::Tuple ToTuple() const;
  /// Rebuilds an observation from `ToTuple` output (or any tuple with
  /// the same fields); std::nullopt when required fields are missing.
  static std::optional<Observation> FromTuple(const stream::Tuple& t);
};

/// A fused belief about an entity.
struct FusedEstimate {
  std::string entity;
  geo::Vec3 position;
  double position_confidence = 0.0;  ///< total evidence weight
  Micros as_of = 0;
  size_t supporting_observations = 0;
};

}  // namespace deluge::fusion

#endif  // DELUGE_FUSION_OBSERVATION_H_
