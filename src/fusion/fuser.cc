#include "fusion/fuser.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace deluge::fusion {

std::string SourceTypeName(SourceType type) {
  switch (type) {
    case SourceType::kRfid:
      return "rfid";
    case SourceType::kCamera:
      return "camera";
    case SourceType::kGps:
      return "gps";
    case SourceType::kText:
      return "text";
    case SourceType::kVirtual:
      return "virtual";
  }
  return "unknown";
}

// ---------------------------------------------------- ReliabilityTracker

ReliabilityTracker::ReliabilityTracker(double alpha, double prior)
    : alpha_(std::clamp(alpha, 0.001, 1.0)),
      prior_(std::clamp(prior, 0.0, 1.0)) {}

void ReliabilityTracker::Observe(uint32_t source_id, double error,
                                 double scale) {
  double agreement = std::exp(-std::max(error, 0.0) / std::max(scale, 1e-9));
  auto [it, inserted] = scores_.emplace(source_id, prior_);
  it->second = (1.0 - alpha_) * it->second + alpha_ * agreement;
}

double ReliabilityTracker::reliability(uint32_t source_id) const {
  auto it = scores_.find(source_id);
  return it == scores_.end() ? prior_ : it->second;
}

// ------------------------------------------------------------ EntityFuser

EntityFuser::EntityFuser(FuserOptions options) : options_(options) {}

double EntityFuser::WeightOf(const Observation& obs, Micros now) const {
  double age = double(std::max<Micros>(now - obs.t, 0));
  double decay =
      std::pow(0.5, age / double(std::max<Micros>(options_.half_life, 1)));
  return reliability_.reliability(obs.source_id) *
         std::clamp(obs.confidence, 0.0, 1.0) * decay;
}

void EntityFuser::Expire(std::deque<Observation>* window, Micros now) const {
  while (!window->empty() && window->front().t + options_.window < now) {
    window->pop_front();
  }
}

void EntityFuser::Add(const Observation& obs) {
  // Fully qualified: the parameter `obs` shadows the namespace alias.
  ::deluge::obs::Span span("fusion.add");
  auto& window = windows_[obs.entity];
  Expire(&window, obs.t);

  // Reliability learning: compare this positional claim against a
  // ROBUST consensus (component-wise median) of co-temporal observations
  // from other sources.  Medians resist a minority of wild claims, so a
  // lying source cannot drag the consensus toward itself; and older
  // observations are excluded because the entity may have legitimately
  // moved — holding sources to a stale consensus would punish honesty.
  if (obs.has_position && !window.empty()) {
    std::vector<double> xs, ys, zs;
    for (const auto& o : window) {
      if (!o.has_position) continue;
      if (obs.t - o.t > options_.reliability_window) continue;
      xs.push_back(o.position.x);
      ys.push_back(o.position.y);
      zs.push_back(o.position.z);
    }
    if (!xs.empty()) {
      auto median = [](std::vector<double>& v) {
        size_t mid = v.size() / 2;
        std::nth_element(v.begin(), v.begin() + long(mid), v.end());
        double upper = v[mid];
        if (v.size() % 2 == 1) return upper;
        double lower = *std::max_element(v.begin(), v.begin() + long(mid));
        return (lower + upper) / 2.0;
      };
      geo::Vec3 consensus{median(xs), median(ys), median(zs)};
      double error = geo::Distance(consensus, obs.position);
      reliability_.Observe(obs.source_id, error, options_.reliability_scale);
    }
  }
  window.push_back(obs);
}

Result<FusedEstimate> EntityFuser::EstimatePosition(const std::string& entity,
                                                    Micros now) const {
  obs::Span span("fusion.estimate");
  auto it = windows_.find(entity);
  if (it == windows_.end()) return Status::NotFound("unknown entity");
  Expire(&it->second, now);

  geo::Vec3 acc;
  double wsum = 0.0;
  size_t count = 0;
  Micros latest = 0;
  for (const auto& obs : it->second) {
    if (!obs.has_position) continue;
    double w = WeightOf(obs, now);
    acc += obs.position * w;
    wsum += w;
    ++count;
    latest = std::max(latest, obs.t);
  }
  if (count == 0 || wsum <= 0.0) {
    return Status::NotFound("no positional observations in window");
  }
  FusedEstimate est;
  est.entity = entity;
  est.position = acc * (1.0 / wsum);
  est.position_confidence = wsum;
  est.as_of = latest;
  est.supporting_observations = count;
  return est;
}

Result<std::string> EntityFuser::EstimateAttribute(const std::string& entity,
                                                   const std::string& attribute,
                                                   Micros now,
                                                   double* support) const {
  auto it = windows_.find(entity);
  if (it == windows_.end()) return Status::NotFound("unknown entity");
  Expire(&it->second, now);

  std::map<std::string, double> votes;
  double total = 0.0;
  for (const auto& obs : it->second) {
    if (obs.attribute != attribute || obs.value.empty()) continue;
    double w = WeightOf(obs, now);
    votes[obs.value] += w;
    total += w;
  }
  if (votes.empty() || total <= 0.0) {
    return Status::NotFound("no claims for attribute");
  }
  auto best = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  if (support != nullptr) *support = best->second / total;
  return best->first;
}

size_t EntityFuser::window_size(const std::string& entity) const {
  auto it = windows_.find(entity);
  return it == windows_.end() ? 0 : it->second.size();
}

// --------------------------------------------------------- TruthDiscovery

TruthDiscovery::Solution TruthDiscovery::Solve(
    const std::vector<Claim>& claims, size_t num_items, int max_iters,
    double tol) {
  Solution sol;
  sol.truths.assign(num_items, 0.0);
  if (claims.empty() || num_items == 0) return sol;

  // Initialize truths with plain means.
  std::vector<double> sums(num_items, 0.0);
  std::vector<double> counts(num_items, 0.0);
  for (const auto& c : claims) {
    if (c.item >= num_items) continue;
    sums[c.item] += c.value;
    counts[c.item] += 1.0;
  }
  for (size_t i = 0; i < num_items; ++i) {
    sol.truths[i] = counts[i] > 0 ? sums[i] / counts[i] : 0.0;
  }
  for (const auto& c : claims) sol.weights.emplace(c.source_id, 1.0);

  for (int iter = 0; iter < max_iters; ++iter) {
    ++sol.iterations;
    // 1. Source weights from deviation to current truths.  Weight =
    //    1 / MSE (inverse-variance): the minimum-variance combination
    //    under per-source Gaussian noise, and much sharper at separating
    //    bad sources than the -log(error share) form when many sources
    //    are unreliable.
    std::unordered_map<uint32_t, double> errors;
    std::unordered_map<uint32_t, double> counts;
    double total_error = 0.0;
    for (const auto& c : claims) {
      if (c.item >= num_items) continue;
      double d = c.value - sol.truths[c.item];
      errors[c.source_id] += d * d;
      counts[c.source_id] += 1.0;
      total_error += d * d;
    }
    if (total_error <= 0.0) break;  // perfect consensus
    // Noise floor: 5% of the global mean error.  Prevents the degenerate
    // fixed point where truths lock onto one source (its residual -> 0,
    // its weight -> infinity).
    double floor = 0.05 * total_error / double(claims.size());
    for (auto& [sid, err] : errors) {
      double mse = err / std::max(counts[sid], 1.0);
      sol.weights[sid] = 1.0 / (mse + floor + 1e-12);
    }

    // 2. Truths from weighted means.
    std::vector<double> wsum(num_items, 0.0);
    std::vector<double> wval(num_items, 0.0);
    for (const auto& c : claims) {
      if (c.item >= num_items) continue;
      double w = sol.weights[c.source_id];
      wval[c.item] += w * c.value;
      wsum[c.item] += w;
    }
    double max_change = 0.0;
    for (size_t i = 0; i < num_items; ++i) {
      if (wsum[i] <= 0.0) continue;
      double updated = wval[i] / wsum[i];
      max_change = std::max(max_change, std::fabs(updated - sol.truths[i]));
      sol.truths[i] = updated;
    }
    if (max_change < tol) break;
  }
  return sol;
}

}  // namespace deluge::fusion
