#!/usr/bin/env bash
# Lints against payload-by-string: new `std::string payload` members
# outside src/common fail CI.  Payloads on the event path are refcounted
# `common::Buffer`s (DESIGN.md §10) — a std::string payload member
# reintroduces a per-hop deep copy that the zero-copy refactor removed.
# There is deliberately no allowlist: converted sites must stay converted.
set -u -o pipefail

cd "$(dirname "$0")/.."

# Matches declarations like `std::string payload;` / `std::string
# payload = ...` — members and locals alike (grep can't tell them
# apart, and a local of that name is one refactor away from becoming a
# copied member; name encode-side temporaries `wire` instead).
found=$(grep -rnE '(std::)?string[[:space:]]+payload[[:space:]]*(;|=)' \
            src tests bench examples 2>/dev/null \
        | grep -v '^src/common/' || true)

status=0
while IFS= read -r line; do
  [ -z "$line" ] && continue
  echo "error: std::string payload member at ${line%%:*}:$(echo "${line#*:}" | cut -d: -f1)" >&2
  echo "  Payloads are shared, not copied: declare the member as" >&2
  echo "  common::Buffer and move the encoded bytes in once" >&2
  echo "  (DESIGN.md \"Memory & message model\")." >&2
  status=1
done <<EOF
$found
EOF

if [ "$status" -eq 0 ]; then
  echo "check_payload_members: OK (no std::string payload members)"
fi
exit $status
