// deluge_node: hosts one process of a multi-process Deluge cluster.
//
//   deluge_node --config <cluster.cfg> --process <id>
//
// Loads the shared `net::ClusterConfig`, constructs this process's
// nodes in config declaration order (so local ids land on the
// cluster-global ids every other process expects), starts the
// `net::SocketTransport`, and serves until SIGTERM/SIGINT.
//
// Roles understood (NodeSpec::role):
//   replica  a `replica::ReplicaNode` on an in-memory backing, ring id
//            derived from the node's name (`ReplicaNode::RingIdFor`,
//            the same derivation the coordinator's AddRemoteReplica
//            uses) — together these form the data plane of a
//            `replica::ReplicatedStore` driven from another process;
//   sink     counts every application message it receives and answers
//            `net::kSinkCountReq` with {messages, wire bytes} — the
//            audit endpoint for fan-out workloads (bench E24);
//   anything else (e.g. "driver") becomes a black-hole endpoint so the
//            id stays reserved and config order is preserved.
//
// Used by `bench_e24_transport` as the remote half of the socket
// backend; see README "Running a multi-process cluster".

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "net/node_config.h"
#include "net/socket_transport.h"
#include "replica/node.h"
#include "storage/format.h"

#if defined(__linux__)
#include <sys/prctl.h>
#endif

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

/// A counting endpoint: absorbs application messages, answers
/// kSinkCountReq with fixed64 {messages_received, wire_bytes_received}.
/// Touched only on the transport's event strand, so no locking.
struct Sink {
  deluge::net::NodeId id = 0;
  uint64_t received = 0;
  uint64_t wire_bytes = 0;
};

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s --config <path> --process <id>\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace deluge;  // NOLINT: tool brevity

  std::string config_path;
  uint32_t process_id = 0;
  bool have_process = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      config_path = argv[++i];
    } else if (std::strcmp(argv[i], "--process") == 0 && i + 1 < argc) {
      process_id = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      have_process = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (config_path.empty() || !have_process) return Usage(argv[0]);

  net::ClusterConfig config;
  Status s = net::ClusterConfig::Load(config_path, &config);
  if (!s.ok()) {
    std::fprintf(stderr, "deluge_node: cannot load %s: %s\n",
                 config_path.c_str(), s.ToString().c_str());
    return 1;
  }
  if (config.process(process_id) == nullptr) {
    std::fprintf(stderr, "deluge_node: process %u not in config\n",
                 process_id);
    return 1;
  }

#if defined(__linux__)
  // Die with the parent (the bench driver) so an aborted run never
  // leaves orphan hosts holding sockets.
  ::prctl(PR_SET_PDEATHSIG, SIGTERM);
#endif
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Event loop + one sender per remote process occupy workers for the
  // transport's lifetime; a little slack on top for After callbacks.
  ThreadPool pool(config.processes.size() + 2);
  net::SocketTransportOptions opts;
  opts.config = config;
  opts.local_process = process_id;
  opts.pool = &pool;
  net::SocketTransport transport(std::move(opts));

  // Construct this process's nodes in config order — AddNode assigns
  // the cluster-global ids positionally.
  std::vector<std::unique_ptr<replica::ReplicaNode>> replicas;
  std::deque<Sink> sinks;  // deque: stable addresses for the handlers
  for (net::NodeId id : config.nodes_of(process_id)) {
    const net::NodeSpec* spec = config.node(id);
    if (spec->role == "replica") {
      replicas.push_back(std::make_unique<replica::ReplicaNode>(
          replica::ReplicaNode::RingIdFor(spec->name), &transport,
          /*backing=*/nullptr));
    } else if (spec->role == "sink") {
      sinks.emplace_back();
      Sink* sink = &sinks.back();
      net::SocketTransport* net = &transport;
      sink->id = transport.AddNode([sink, net](const net::Message& m) {
        if (m.type == net::kSinkCountReq) {
          std::string out;
          storage::PutFixed64(&out, sink->received);
          storage::PutFixed64(&out, sink->wire_bytes);
          net::Message reply;
          reply.from = sink->id;
          reply.to = m.from;
          reply.type = net::kSinkCountResp;
          reply.payload = std::move(out);
          net->Send(std::move(reply));
          return;
        }
        ++sink->received;
        sink->wire_bytes += m.WireSize();
      });
    } else {
      transport.AddNode([](const net::Message&) {});
    }
  }

  s = transport.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "deluge_node: start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "deluge_node: process %u up at %s (%zu nodes: "
               "%zu replicas, %zu sinks)\n",
               process_id,
               config.process(process_id)->endpoint.ToString().c_str(),
               config.nodes_of(process_id).size(), replicas.size(),
               sinks.size());

  while (g_stop == 0 && transport.running()) {
    ::usleep(50 * 1000);
  }
  transport.Stop();
  return 0;
}
