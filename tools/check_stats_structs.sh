#!/usr/bin/env bash
# Lints against ad-hoc metrics: new `struct *Stats` declarations outside
# src/obs fail CI.  Subsystem counters belong in the metrics registry
# (obs::StatsScope — see DESIGN.md §9); the structs below predate the
# registry and survive only as snapshot *views* filled from it.  Extend
# the allowlist only when adding another such view, never for a struct
# that owns counters.
set -u -o pipefail

cd "$(dirname "$0")/.."

# file:StructName pairs of the grandfathered snapshot-view structs.
ALLOWED="
src/chaos/fault_schedule.h:ChaosStats
src/consistency/coherency.h:CoherencyStats
src/consistency/priority_scheduler.h:ClassStats
src/core/engine.h:EngineStats
src/net/message.h:NetworkStats
src/pubsub/broker.h:BrokerStats
src/pubsub/reliable.h:ReliableStats
src/replica/replicated_store.h:ReplicaStats
src/runtime/buffer_pool.h:BufferPoolStats
src/runtime/elastic_executor.h:ElasticStats
src/runtime/serverless.h:FunctionStats
src/storage/kv_store.h:KVStoreStats
src/stream/scheduler.h:QueryStats
"

found=$(grep -rnE 'struct[[:space:]]+[A-Za-z_]*Stats\b' \
            src tests bench examples 2>/dev/null \
        | grep -v '^src/obs/' || true)

status=0
while IFS= read -r line; do
  [ -z "$line" ] && continue
  file=${line%%:*}
  rest=${line#*:}           # "lineno:  struct FooStats {"
  lineno=${rest%%:*}
  name=$(printf '%s' "$rest" | grep -oE 'struct[[:space:]]+[A-Za-z_]*Stats' \
         | awk '{print $2}')
  if ! printf '%s\n' "$ALLOWED" | grep -qx "$file:$name"; then
    echo "error: new stats struct '$name' at $file:$lineno" >&2
    echo "  Counters belong in the metrics registry: give the owning" >&2
    echo "  class an obs::StatsScope and register counters/gauges/" >&2
    echo "  histograms on it (DESIGN.md \"Observability model\")." >&2
    status=1
  fi
done <<EOF
$found
EOF

if [ "$status" -eq 0 ]; then
  echo "check_stats_structs: OK (no unregistered stats structs)"
fi
exit $status
