#!/usr/bin/env bash
# Lints against priority-notion drift: `deluge::QosClass` (common/qos.h,
# DESIGN.md §13) is the ONE service-class taxonomy.  PR 10 folded four
# ad-hoc priority enums/ints into it; this check keeps a fifth from
# growing back.  Any new enum whose name smells like a priority ladder
# (Priority/Urgency/Importance/ServiceClass/QosLevel/Criticality)
# declared outside src/common fails CI.  Derive ordering from QosClass
# (QosRank, QosPolicy weights) instead of restating it.
set -u -o pipefail

cd "$(dirname "$0")/.."

# file:EnumName pairs allowed to keep their enum.  (Currently empty on
# purpose — extend only for an enum that is genuinely NOT a service
# class, never for a new priority ladder.)
ALLOWED="
"

found=$(grep -rnE \
    'enum[[:space:]]+(class[[:space:]]+|struct[[:space:]]+)?[A-Za-z_]*(Priority|Urgency|Importance|ServiceClass|QosLevel|QosClass|Criticality)[A-Za-z_]*' \
            src tests bench examples 2>/dev/null \
        | grep -v '^src/common/' || true)

status=0
while IFS= read -r line; do
  [ -z "$line" ] && continue
  file=${line%%:*}
  rest=${line#*:}           # "lineno:  enum class FooPriority {"
  lineno=${rest%%:*}
  name=$(printf '%s' "$rest" \
         | grep -oE 'enum[[:space:]]+(class[[:space:]]+|struct[[:space:]]+)?[A-Za-z_]+' \
         | awk '{print $NF}')
  if ! printf '%s\n' "$ALLOWED" | grep -qx "$file:$name"; then
    echo "error: local priority enum '$name' at $file:$lineno" >&2
    echo "  There is one service-class taxonomy: deluge::QosClass" >&2
    echo "  (src/common/qos.h).  Thread a QosClass through instead and" >&2
    echo "  derive ordering from QosRank / QosPolicy (DESIGN.md \"QoS" >&2
    echo "  model\")." >&2
    status=1
  fi
done <<EOF
$found
EOF

if [ "$status" -eq 0 ]; then
  echo "check_qos_enums: OK (one QoS taxonomy)"
fi
exit $status
