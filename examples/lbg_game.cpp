// Location-Based Gaming & Social Networking (paper Section II, Fig. 4):
// a Pokémon-GO-style game where physical players, virtual players, and
// tradeable items share one world.
//
// Demonstrates:
//  - continuous moving k-NN ("detect a friend at the same location")
//    and moving range queries with safe-region caching (Section IV-G);
//  - the TPR-style motion index: players report velocity, not ticks;
//  - item trades recorded on the P2P overlay (decentralized, Web3-ish)
//    and the transparency ledger (Section IV-D).
//
// Run: ./build/examples/lbg_game

#include <cstdio>
#include <memory>

#include "index/moving_index.h"
#include "ledger/ledger.h"
#include "p2p/chord.h"
#include "query/moving_query.h"

using namespace deluge;  // NOLINT: example brevity

int main() {
  const geo::AABB city({0, 0, 0}, {5000, 5000, 50});
  Rng rng(4242);

  // ---- 1. Players register motion states, not per-tick positions. ------
  index::MovingObjectIndex players(city, 50.0, /*max_speed=*/6.0);
  for (index::EntityId id = 1; id <= 500; ++id) {
    geo::MotionState s;
    s.position = {rng.UniformDouble(0, 5000), rng.UniformDouble(0, 5000), 0};
    s.velocity = {rng.UniformDouble(-2, 2), rng.UniformDouble(-2, 2), 0};
    s.t = 0;
    players.Upsert(id, s);
  }

  // ---- 2. Player 1 walks around hunting creatures within 100 m. --------
  geo::MotionState me;
  me.position = {2500, 2500, 0};
  me.velocity = {1.5, 0.5, 0};
  me.t = 0;

  query::ContinuousRangeQuery radar(&players, 100.0,
                                    query::MovingQueryStrategy::kIncremental,
                                    /*slack=*/80.0);
  radar.UpdateFocus(me);
  query::ContinuousKnnQuery friends(&players, 3);
  friends.UpdateFocus(me);

  size_t encounters = 0;
  for (Micros t = 0; t <= 120 * kMicrosPerSecond; t += kMicrosPerSecond) {
    encounters += radar.Evaluate(t).size();
  }
  auto best_friends = friends.Evaluate(120 * kMicrosPerSecond);
  std::printf("2-minute walk: %zu player encounters on the radar "
              "(%llu index visits for %llu radar refreshes)\n",
              encounters,
              static_cast<unsigned long long>(radar.index_queries()),
              static_cast<unsigned long long>(radar.evaluations()));
  std::printf("3 nearest players at walk's end:");
  for (const auto& f : best_friends) {
    std::printf(" #%llu", static_cast<unsigned long long>(f.id));
  }
  std::printf("\n");

  // ---- 3. Item trades: stored on a P2P overlay, audited on a ledger. ---
  net::Simulator sim;
  net::Network net(&sim);
  net.default_link() = net::LinkOptions{};  // defaults: 1 ms, 1 Gbps
  net::SimTransport transport(&net, &sim);
  p2p::ChordRing overlay(&transport);
  std::vector<p2p::RingId> guild_nodes;
  for (int i = 0; i < 32; ++i) {
    guild_nodes.push_back(overlay.AddPeer("guild-node-" + std::to_string(i)));
  }

  SimClock clock;
  ledger::TransparencyLedger trades(&clock);

  // Player 1 sells a rare sword to player 7.
  p2p::LookupResult stored;
  overlay.Put(guild_nodes[0], "item:sword-of-dawn",
              "owner=player7;price=120",
              [&](const p2p::LookupResult& r) { stored = r; });
  sim.Run();
  trades.Append("trade{item:sword-of-dawn,from:1,to:7,price:120}");

  // Any guild node can resolve the item's owner.
  p2p::LookupResult resolved;
  overlay.Get(guild_nodes[17], "item:sword-of-dawn",
              [&](const p2p::LookupResult& r) { resolved = r; });
  sim.Run();
  std::printf("item record stored at peer %016llx (%u hops), resolved "
              "from another peer in %u hops: '%s'\n",
              static_cast<unsigned long long>(stored.owner), stored.hops,
              resolved.hops, resolved.value.c_str());

  // The trade is auditable forever.
  ledger::TreeHead head = trades.PublishHead();
  ledger::Auditor auditor;
  auditor.ObserveHead(head, {});
  std::string record;
  trades.GetEntry(0, &record);
  bool ok = auditor
                .VerifyRecord(record, 0, trades.ProveInclusion(0, head.tree_size))
                .ok();
  std::printf("trade ledger: inclusion proof %s\n",
              ok ? "VERIFIED" : "REJECTED");

  // ---- 4. Social proximity alert via the motion index. -----------------
  // Two comrades fighting together virtually discover they are close
  // physically (the paper's social-networking scenario).
  players.Upsert(901, {{2600, 2560, 0}, {0, 0, 0}, 120 * kMicrosPerSecond});
  auto nearby = players.NearestAt(me.PositionAt(120 * kMicrosPerSecond), 1,
                                  120 * kMicrosPerSecond);
  if (!nearby.empty()) {
    double d = geo::Distance(me.PositionAt(120 * kMicrosPerSecond),
                             nearby[0].predicted_position);
    std::printf("proximity alert: player #%llu is %.0f m away — say hi!\n",
                static_cast<unsigned long long>(nearby[0].id), d);
  }
  return 0;
}
