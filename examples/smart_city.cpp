// Smart City (paper Section II): a city's sensor deluge fused, queried,
// and acted upon.
//
// Demonstrates:
//  - heterogeneous data fusion (RFID + camera + GPS disagree about a bus;
//    the fuser learns which sources to trust — Section IV-A);
//  - continuous stream queries with windows and interpolation feeding a
//    congestion dashboard (Section IV-G);
//  - DP-protected mobility analytics released to planners (Section IV-D).
//
// Run: ./build/examples/smart_city

#include <cstdio>
#include <memory>

#include "fusion/event_detector.h"
#include "fusion/fuser.h"
#include "privacy/dp.h"
#include "stream/continuous_query.h"
#include "stream/operators.h"

using namespace deluge;          // NOLINT: example brevity
using namespace deluge::stream;  // NOLINT

int main() {
  Rng rng(2026);

  // ---- 1. Fusion: where exactly is bus 42? -----------------------------
  // Three feeds track it: depot RFID gates (sparse, exact), a street
  // camera (frequent, decent), and a failing GPS unit (frequent, wild).
  fusion::FuserOptions fuser_options;
  fuser_options.window = 30 * kMicrosPerSecond;
  fuser_options.half_life = 2 * kMicrosPerSecond;
  fuser_options.reliability_window = 1500 * kMicrosPerMilli;
  fuser_options.reliability_scale = 10.0;
  fusion::EntityFuser fuser(fuser_options);

  geo::Vec3 bus_true{100, 0, 0};
  Micros t = 0;
  for (int step = 0; step < 120; ++step) {
    t += kMicrosPerSecond;
    bus_true += {8.0, 0, 0};  // the bus drives east at 8 m/s
    fusion::Observation camera;
    camera.entity = "bus42";
    camera.source_id = 1;
    camera.type = fusion::SourceType::kCamera;
    camera.t = t;
    camera.position = bus_true + geo::Vec3{rng.Gaussian(0, 2), 0, 0};
    camera.has_position = true;
    fuser.Add(camera);

    fusion::Observation gps = camera;
    gps.source_id = 2;
    gps.type = fusion::SourceType::kGps;
    gps.position = bus_true + geo::Vec3{rng.Gaussian(40, 30), 0, 0};  // broken
    fuser.Add(gps);

    if (step % 10 == 0) {
      fusion::Observation rfid = camera;
      rfid.source_id = 3;
      rfid.type = fusion::SourceType::kRfid;
      rfid.position = bus_true;  // gate reads are exact
      fuser.Add(rfid);
    }
  }
  auto estimate = fuser.EstimatePosition("bus42", t);
  std::printf("bus42 truth x=%.1f, fused x=%.1f (error %.1f m)\n",
              bus_true.x, estimate.value().position.x,
              std::abs(estimate.value().position.x - bus_true.x));
  std::printf("learned reliabilities: camera=%.2f, broken-gps=%.2f, "
              "rfid=%.2f\n",
              fuser.reliability().reliability(1),
              fuser.reliability().reliability(2),
              fuser.reliability().reliability(3));

  // ---- 2. Streaming: congestion per road segment, 1-minute windows. ----
  ContinuousQuery congestion("congestion", QosSpec{});
  int alerts = 0;
  congestion
      .Add(std::make_unique<InterpolateOp>("speed_kmh",
                                           5 * kMicrosPerSecond,
                                           kMicrosPerSecond))
      .Add(std::make_unique<WindowAggregateOp>(60 * kMicrosPerSecond,
                                               AggFn::kAvg, "speed_kmh"))
      .Add(std::make_unique<FilterOp>([](const Tuple& w) {
        return w.GetNumeric("agg").value_or(100) < 20.0;  // jammed
      }))
      .Sink([&](const Tuple& w) {
        ++alerts;
        std::printf("  congestion alert: segment %s avg %.1f km/h\n",
                    w.key.c_str(), *w.GetNumeric("agg"));
      });

  // Two road segments: one flowing, one jammed (with sensing gaps the
  // interpolator fills).
  Micros st = 0;
  for (int minute = 0; minute < 3; ++minute) {
    for (int s = 0; s < 60; s += 10) {  // sparse 10 s readings
      st = (minute * 60 + s) * kMicrosPerSecond;
      Tuple flowing;
      flowing.event_time = st;
      flowing.key = "segment:A1";
      flowing.Set("speed_kmh", 55.0 + rng.Gaussian(0, 5));
      congestion.Push(flowing);

      Tuple jammed;
      jammed.event_time = st;
      jammed.key = "segment:B7";
      jammed.Set("speed_kmh", std::max(2.0, 12.0 + rng.Gaussian(0, 4)));
      congestion.Push(jammed);
    }
  }
  congestion.Flush();
  std::printf("congestion alerts fired: %d\n", alerts);

  // ---- 3. Corroborated incidents: camera + citizen report agree. -------
  fusion::EventDetector incidents;
  int confirmed = 0;
  fusion::EventRule rule;
  rule.name = "road-incident";
  rule.min_source_types = 2;
  rule.window = 30 * kMicrosPerSecond;
  incidents.AddRule(rule, [&](const fusion::DetectedEvent& e) {
    ++confirmed;
    std::printf("  confirmed incident at %s (confidence %.2f)\n",
                e.entity.c_str(), e.confidence);
  });
  fusion::Observation cam_report;
  cam_report.entity = "junction:5";
  cam_report.source_id = 10;
  cam_report.type = fusion::SourceType::kCamera;
  cam_report.t = t;
  incidents.Ingest(cam_report);
  fusion::Observation citizen = cam_report;
  citizen.source_id = 11;
  citizen.type = fusion::SourceType::kText;  // social-media post
  citizen.t = t + kMicrosPerSecond;
  incidents.Ingest(citizen);
  std::printf("incidents confirmed by multiple source types: %d\n",
              confirmed);

  // ---- 4. Privacy: release ward-level mobility counts under DP. --------
  privacy::DpHistogram mobility(4, 77);
  for (int person = 0; person < 10000; ++person) {
    mobility.Add(size_t(rng.Zipf(4, 0.8)));  // skewed ward popularity
  }
  privacy::PrivacyBudget budget(1.0);
  auto noisy = mobility.Release(1.0, &budget);
  std::printf("ward mobility (true vs DP-released, epsilon=1):\n");
  for (size_t w = 0; w < 4; ++w) {
    std::printf("  ward %zu: %llu vs %.0f\n", w,
                static_cast<unsigned long long>(mobility.raw_counts()[w]),
                noisy.value()[w]);
  }
  std::printf("privacy budget remaining: %.2f\n", budget.remaining());
  return 0;
}
