// Military Mission Exercise (paper Section II, Fig. 2): a 5 km x 5 km
// physical exercise embedded in a 100 km x 100 km virtual war game.
//
// Demonstrates:
//  - physical troops tracked by noisy sensors, mirrored into the virtual
//    model under per-unit coherency contracts (HQ sees vehicles tighter
//    than infantry);
//  - a constrained field link where critical casualty reports outrank
//    bulk map imagery (Section IV-C priority scheduling);
//  - a virtual air-raid resolved against the (slightly stale) virtual
//    model and relayed back to the ground — Fig. 1's loop with teeth.
//
// Run: ./build/examples/military_exercise

#include <cstdio>
#include <string>

#include "consistency/priority_scheduler.h"
#include "core/engine.h"
#include "core/sensors.h"
#include "net/simulator.h"

using namespace deluge;        // NOLINT: example brevity
using namespace deluge::core;  // NOLINT

int main() {
  // The virtual theatre is 100 km; the physical exercise occupies the
  // 5 km x 5 km south-west corner.
  const geo::AABB theatre({0, 0, 0}, {100000, 100000, 1000});
  const geo::AABB exercise_area({0, 0, 0}, {5000, 5000, 100});

  EngineOptions options;
  options.world_bounds = theatre;
  options.default_contract = {25.0, 2 * kMicrosPerSecond};  // infantry
  SimClock clock;
  CoSpaceEngine hq(options, &clock);

  // 80 infantry + 20 vehicles on the ground.
  SensorFleetOptions fleet_options;
  fleet_options.num_entities = 100;
  fleet_options.max_speed = 12.0;  // vehicles push the max
  fleet_options.gps_noise_stddev = 3.0;
  fleet_options.drop_probability = 0.02;  // field radios drop packets
  SensorFleet fleet(exercise_area, fleet_options);
  for (EntityId id = 1; id <= 100; ++id) {
    Entity unit;
    unit.id = id;
    unit.kind = id <= 80 ? EntityKind::kAvatar : EntityKind::kVehicle;
    unit.position = fleet.TruePosition(id);
    unit.attributes["status"] = std::string("active");
    hq.SpawnPhysical(unit);
    if (id > 80) {
      hq.SetContract(id, {5.0, kMicrosPerSecond});  // vehicles: tight
    }
  }

  // Simulated enemy battalions exist only in the virtual model.
  Rng rng(99);
  for (EntityId id = 1000; id < 1200; ++id) {
    Entity enemy;
    enemy.id = id;
    enemy.kind = EntityKind::kAvatar;
    enemy.position = {rng.UniformDouble(20000, 90000),
                      rng.UniformDouble(20000, 90000), 0};
    hq.SpawnVirtual(enemy);
  }

  // The field link: 1 Mbps, shared by casualty reports and map imagery.
  net::Simulator sim;
  consistency::TransmissionScheduler field_link(
      &sim, 125e3, consistency::TxPolicy::kStrictPriority);

  // Ground relays receive virtual commands.
  int perished = 0;
  hq.OnPhysicalCommand([&](EntityId target, const stream::Tuple& cmd) {
    if (cmd.Get<std::string>("type") == "air-raid") {
      hq.IngestPhysicalAttribute(target, "status",
                                 std::string("casualty"),
                                 clock.NowMicros());
      ++perished;
    }
  });

  // --- Run 60 seconds of the exercise at 10 Hz. -------------------------
  Micros now = 0;
  Micros critical_latency_sum = 0;
  int critical_count = 0;
  for (int tick = 0; tick < 600; ++tick) {
    now += 100 * kMicrosPerMilli;
    clock.AdvanceTo(now);
    sim.RunUntil(now);
    for (const auto& reading : fleet.Tick(100 * kMicrosPerMilli, now)) {
      hq.IngestPhysicalPosition(reading.entity, reading.position, reading.t);
    }
    // Every second: one casualty report (critical) amid bulk map tiles.
    if (tick % 10 == 0) {
      consistency::PendingUpdate report;
      report.qos = QosClass::kRealtime;
      report.bytes = 256;
      report.deadline = now + 300 * kMicrosPerMilli;
      Micros submitted = now;
      report.on_delivered = [&, submitted](Micros at) {
        critical_latency_sum += at - submitted;
        ++critical_count;
      };
      field_link.Submit(std::move(report));
      for (int i = 0; i < 3; ++i) {
        consistency::PendingUpdate tile;
        tile.qos = QosClass::kBulk;
        tile.bytes = 30000;  // map imagery
        field_link.Submit(std::move(tile));
      }
    }
  }
  sim.Run();

  // --- The commander orders a virtual air strike on a grid square. ------
  geo::AABB strike_zone = geo::AABB::Cube({2500, 2500, 0}, 800);
  stream::Tuple raid;
  raid.Set("type", std::string("air-raid"));
  size_t affected = hq.IssueVirtualCommand(strike_zone, raid);

  const auto& stats = hq.stats();
  std::printf("exercise: %llu sensed updates, %llu mirrored (%.1f%%)\n",
              static_cast<unsigned long long>(stats.physical_updates),
              static_cast<unsigned long long>(stats.mirrored_updates),
              100.0 * double(stats.mirrored_updates) /
                  double(stats.physical_updates));
  std::printf("field link: critical reports mean latency %.1f ms, "
              "deadline misses %llu\n",
              critical_count > 0 ? double(critical_latency_sum) /
                                       critical_count / kMicrosPerMilli
                                 : 0.0,
              static_cast<unsigned long long>(
                  field_link
                      .stats_for(QosClass::kRealtime)
                      .deadline_misses));
  std::printf("air raid on %s: %zu units in the virtual model, "
              "%d ground troops perished\n",
              strike_zone.ToString().c_str(), affected, perished);

  // Count survivors through the virtual model (what HQ sees).
  int casualties_in_model = 0;
  for (EntityId id = 1; id <= 100; ++id) {
    const Entity* e = hq.virtual_space().Get(id);
    if (e != nullptr && e->Attr<std::string>("status") == "casualty") {
      ++casualties_in_model;
    }
  }
  std::printf("virtual model now shows %d casualties\n", casualties_in_model);
  return 0;
}
