// Smart Healthcare (paper Section II, Fig. 5): a remote assisted-surgery
// session over a constrained hospital uplink.
//
// Demonstrates:
//  - deadline-priority streaming: vitals and instrument telemetry must
//    arrive in hard real time while 4K imagery degrades (Sections IV-C);
//  - LOD selection: within the link budget, the most diagnostically
//    important image tiles go at full resolution, the rest drop to low;
//  - device-aware planning: pre-processing on the headset vs the cloud;
//  - federated learning across hospitals without sharing patient data.
//
// Run: ./build/examples/healthcare

#include <cstdio>

#include "consistency/lod.h"
#include "consistency/priority_scheduler.h"
#include "net/simulator.h"
#include "privacy/federated.h"
#include "query/optimizer.h"

using namespace deluge;  // NOLINT: example brevity

int main() {
  // ---- 1. The surgery uplink: 10 Mbps shared by everything. ------------
  net::Simulator sim;
  consistency::TransmissionScheduler uplink(
      &sim, 1.25e6, consistency::TxPolicy::kEdfWithinClass);

  Micros vitals_latency_max = 0;
  int vitals_delivered = 0;
  Micros now = 0;
  for (int tick = 0; tick < 300; ++tick) {  // 30 s at 10 Hz
    now += 100 * kMicrosPerMilli;
    // Vitals packet: tiny, critical, 50 ms deadline.
    consistency::PendingUpdate vitals;
    vitals.qos = QosClass::kRealtime;
    vitals.bytes = 512;
    vitals.deadline = now + 50 * kMicrosPerMilli;
    Micros submitted = now;
    vitals.on_delivered = [&, submitted](Micros at) {
      vitals_latency_max = std::max(vitals_latency_max, at - submitted);
      ++vitals_delivered;
    };
    sim.At(now, [&uplink, vitals]() mutable {
      uplink.Submit(std::move(vitals));
    });
    // Imagery: a 60 KB camera frame every tick (bulk).
    consistency::PendingUpdate frame;
    frame.qos = QosClass::kBulk;
    frame.bytes = 60000;
    sim.At(now, [&uplink, frame]() mutable {
      uplink.Submit(std::move(frame));
    });
  }
  sim.Run();
  std::printf("vitals: %d delivered, worst latency %.1f ms, misses %llu\n",
              vitals_delivered,
              double(vitals_latency_max) / kMicrosPerMilli,
              static_cast<unsigned long long>(
                  uplink.stats_for(QosClass::kRealtime)
                      .deadline_misses));

  // ---- 2. LOD: which hologram tiles go full-res this second? -----------
  // Tiles around the incision have high diagnostic importance.
  std::vector<consistency::LodCandidate> tiles;
  Rng rng(5);
  for (uint64_t i = 0; i < 64; ++i) {
    consistency::LodCandidate tile;
    tile.id = i;
    tile.low_bytes = 8 * 1024;
    tile.full_bytes = 256 * 1024;
    // Importance peaks at the centre tiles (the surgical field).
    double dx = double(i % 8) - 3.5, dy = double(i / 8) - 3.5;
    tile.importance = 1.0 / (1.0 + dx * dx + dy * dy);
    tiles.push_back(tile);
  }
  consistency::LodSelector selector(0.3);
  auto choices = selector.Select(tiles, /*budget=*/2 * 1024 * 1024);
  int full = 0, low = 0, skip = 0;
  for (const auto& c : choices) {
    switch (c.resolution) {
      case consistency::Resolution::kFull: ++full; break;
      case consistency::Resolution::kLow: ++low; break;
      case consistency::Resolution::kSkip: ++skip; break;
    }
  }
  std::printf("hologram tiles within 2 MB budget: %d full-res, %d low-res, "
              "%d skipped (%.0f%% of max utility)\n",
              full, low, skip,
              100.0 * consistency::LodSelector::TotalUtility(choices) /
                  64.0);

  // ---- 3. Device-aware plan: headset vs cloud pre-processing. ----------
  query::DeviceCloudModel model;
  model.device_speed = 2.0;          // headset SoC
  model.cloud_speed = 40.0;
  model.uplink_bytes_per_ms = 1250;  // the same 10 Mbps
  query::DevicePlanOptimizer planner(model);
  std::vector<query::PlanStage> pipeline = {
      {"capture", 1.0, 8 << 20, /*device_only=*/true, false},
      {"denoise", 20.0, 2 << 20, false, false},
      {"segment-organs", 40.0, 64 << 10, false, false},
      {"overlay-render", 80.0, 32 << 10, false, /*cloud_only=*/true},
  };
  auto plan = planner.Optimize(pipeline);
  std::printf("optimal plan (%.1f ms): ", plan.latency_ms);
  for (size_t i = 0; i < pipeline.size(); ++i) {
    std::printf("%s@%s ", pipeline[i].name.c_str(),
                plan.placements[i] == query::Placement::kDevice ? "headset"
                                                                : "cloud");
  }
  std::printf("| uplink %.0f KB\n", double(plan.bytes_uplinked) / 1024.0);

  // ---- 4. Federated model across 5 hospitals, no data sharing. ---------
  privacy::FederationConfig fed_config;
  fed_config.num_clients = 5;
  fed_config.dim = 12;
  fed_config.rows_per_client = 200;
  fed_config.noniid_skew = 1.0;  // hospitals see different populations
  auto federation = privacy::Federation::Synthesize(fed_config);
  privacy::FederatedAveraging::Options fed_options;
  fed_options.update_noise_stddev = 0.01;  // DP-ish update noise
  privacy::FederatedAveraging fedavg(&federation, fed_options);
  double initial_loss = fedavg.GlobalLoss();
  for (int round = 0; round < 25; ++round) fedavg.Round();
  std::printf("federated risk model: loss %.3f -> %.3f over 25 rounds "
              "(5 hospitals, Non-IID, noisy updates)\n",
              initial_loss, fedavg.GlobalLoss());
  return 0;
}
