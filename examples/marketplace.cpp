// The Marketplace (paper Section II, Fig. 3): a metaverse mall where
// physical and online shoppers share one expanded shop.
//
// Demonstrates:
//  - co-space inventory under a flash sale, with physical shoppers
//    prioritized over online shoppers for the last items (Section IV-G);
//  - content+spatial pub/sub promotions ("50% off pastries, aisle 3");
//  - distributed transactions committing purchases across shards;
//  - the verifiable ledger auditing every sale (Section IV-D).
//
// Run: ./build/examples/marketplace

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "ledger/ledger.h"
#include "net/topology.h"
#include "pubsub/broker.h"
#include "txn/distributed.h"

using namespace deluge;  // NOLINT: example brevity

namespace {

struct Shopper {
  core::EntityId id;
  bool physical;  // in the mall vs online
  int bought = 0;
};

}  // namespace

int main() {
  SimClock world_clock;
  net::Simulator sim;
  auto network = std::make_unique<net::Network>(&sim);

  // ---- The mall: a 200 m x 200 m co-space world. -----------------------
  core::EngineOptions options;
  options.world_bounds = geo::AABB({0, 0, 0}, {200, 200, 20});
  core::CoSpaceEngine mall(options, &world_clock);

  // 40 shoppers: half walking the physical mall, half online avatars.
  std::vector<Shopper> shoppers;
  Rng rng(7);
  for (core::EntityId id = 1; id <= 40; ++id) {
    core::Entity e;
    e.id = id;
    e.kind = core::EntityKind::kAvatar;
    e.position = {rng.UniformDouble(0, 200), rng.UniformDouble(0, 200), 0};
    bool physical = id <= 20;
    if (physical) {
      mall.SpawnPhysical(e);
    } else {
      mall.SpawnVirtual(e);
    }
    shoppers.push_back({id, physical});
  }

  // ---- Inventory lives in a sharded transactional store. ---------------
  net::SimTransport transport(network.get(), &sim);
  std::vector<std::unique_ptr<txn::ShardNode>> shards;
  std::vector<txn::ShardNode*> shard_ptrs;
  for (int i = 0; i < 2; ++i) {
    shards.push_back(std::make_unique<txn::ShardNode>(&transport));
    shard_ptrs.push_back(shards.back().get());
  }
  txn::DistributedTxnSystem store(&transport, shard_ptrs);
  network->default_link() = net::LinkPresets::IntraDc();

  // Stock the pastry shelf: 10 croissants left.
  int croissants = 10;

  // ---- Every sale appends to the transparency ledger. ------------------
  ledger::TransparencyLedger sales_ledger(&world_clock);

  // ---- Flash sale: publish the promotion over pub/sub. -----------------
  int promo_reached = 0;
  mall.broker().Subscribe([&] {
    pubsub::Subscription sub;
    sub.subscriber = 999;  // the mall's big screen
    sub.topic = "promo";
    return sub;
  }());
  // Shoppers near aisle 3 (the pastry corner) subscribe spatially.
  for (const Shopper& s : shoppers) {
    pubsub::Subscription sub;
    sub.subscriber = net::NodeId(s.id);
    sub.topic = "promo";
    mall.broker().Subscribe(std::move(sub));
  }
  // Count deliveries through a regional watcher on the pastry corner.
  mall.WatchRegion(1000, geo::AABB({0, 0, 0}, {50, 50, 20}),
                   [&](net::NodeId, const pubsub::Event&) {});

  pubsub::Event promo;
  promo.topic = "promo";
  promo.position = geo::Vec3{25, 25, 0};
  promo.payload.Set("text", std::string("50% off croissants, aisle 3!"));
  promo_reached = int(mall.broker().Publish(promo));
  std::printf("promotion reached %d subscribers\n", promo_reached);

  // ---- The rush: everyone tries to buy; physical shoppers first. -------
  // Space-aware policy (Section IV-G): physical shoppers' orders are
  // processed before online shoppers' when stock is contended.
  std::vector<size_t> order;
  for (size_t i = 0; i < shoppers.size(); ++i) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return shoppers[a].physical > shoppers[b].physical;
  });

  int sold = 0, physical_sales = 0, online_sales = 0, declined = 0;
  for (size_t idx : order) {
    Shopper& s = shoppers[idx];
    if (croissants == 0) {
      ++declined;
      continue;
    }
    --croissants;
    ++sold;
    (s.physical ? physical_sales : online_sales)++;
    s.bought++;

    // Commit the purchase transactionally (stock + order records).
    std::string order_key = "order:" + std::to_string(s.id);
    store.Submit({{order_key, "croissant x1"},
                  {"stock:croissant", std::to_string(croissants)}},
                 txn::CommitProtocol::kTwoPhase, [](const txn::TxnResult&) {});
    sim.Run();

    // Ledger: append the sale for later audit.
    sales_ledger.Append("sale{shopper:" + std::to_string(s.id) +
                        ",item:croissant,space:" +
                        (s.physical ? "physical" : "virtual") + "}");
  }

  std::printf("sold %d croissants: %d to physical shoppers, %d online; "
              "%d shoppers missed out\n",
              sold, physical_sales, online_sales, declined);

  // ---- Audit: a third party verifies the sales log. ---------------------
  ledger::TreeHead head = sales_ledger.PublishHead();
  ledger::Auditor auditor;
  auditor.ObserveHead(head, {});
  std::string record;
  sales_ledger.GetEntry(0, &record);
  auto proof = sales_ledger.ProveInclusion(0, head.tree_size);
  bool verified = auditor.VerifyRecord(record, 0, proof).ok();
  std::printf("ledger: %zu sales recorded, first sale inclusion-%s "
              "(proof: %zu digests)\n",
              sales_ledger.size(), verified ? "VERIFIED" : "REJECTED",
              proof.size());

  // Stock sanity check through the transactional store.
  std::string stock;
  if (store.Read("stock:croissant", &stock).ok()) {
    std::printf("final stock per the store: %s\n", stock.c_str());
  }
  return 0;
}
