// Quickstart: the smallest useful Deluge program.
//
// Builds a co-space world, streams synthetic sensor readings through the
// engine, watches a region from the virtual side, and issues one
// virtual->physical command — the full Fig. 1 loop in ~80 lines.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "core/sensors.h"

using namespace deluge;        // NOLINT: example brevity
using namespace deluge::core;  // NOLINT

int main() {
  // 1. A 1 km x 1 km world with a 2 m / 500 ms default coherency contract:
  //    the virtual mirror may lag ground truth by up to 2 metres.
  EngineOptions options;
  options.world_bounds = geo::AABB({0, 0, 0}, {1000, 1000, 50});
  options.default_contract = {2.0, 500 * kMicrosPerMilli};
  SimClock clock;
  CoSpaceEngine engine(options, &clock);

  // 2. Fifty tracked entities moving in the physical space.
  SensorFleetOptions fleet_options;
  fleet_options.num_entities = 50;
  fleet_options.max_speed = 3.0;
  SensorFleet fleet(options.world_bounds, fleet_options);
  for (EntityId id = 1; id <= fleet.size(); ++id) {
    Entity e;
    e.id = id;
    e.kind = EntityKind::kAvatar;
    e.position = fleet.TruePosition(id);
    engine.SpawnPhysical(e);
  }

  // 3. A cyber user watching the north-east quadrant.
  int notifications = 0;
  engine.WatchRegion(/*subscriber=*/1,
                     geo::AABB({500, 500, 0}, {1000, 1000, 50}),
                     [&](net::NodeId, const pubsub::Event& event) {
                       ++notifications;
                       (void)event;
                     });

  // 4. Stream 30 seconds of sensor data (10 Hz) through the engine.
  Micros now = 0;
  for (int tick = 0; tick < 300; ++tick) {
    now += 100 * kMicrosPerMilli;
    clock.AdvanceTo(now);
    for (const auto& reading : fleet.Tick(100 * kMicrosPerMilli, now)) {
      engine.IngestPhysicalPosition(reading.entity, reading.position,
                                    reading.t);
    }
  }

  // 5. Query the virtual model the way a commander would.
  auto nearby = engine.virtual_space().Nearest({500, 500, 0}, 5);
  std::printf("5 avatars nearest the world centre (virtual view):\n");
  for (const Entity* e : nearby) {
    std::printf("  entity %llu at %s\n",
                static_cast<unsigned long long>(e->id),
                e->position.ToString().c_str());
  }

  // 6. Act on the virtual model: a command to everything near the centre.
  int commanded = 0;
  engine.OnPhysicalCommand(
      [&](EntityId, const stream::Tuple&) { ++commanded; });
  stream::Tuple command;
  command.Set("type", std::string("regroup"));
  engine.IssueVirtualCommand(geo::AABB::Cube({500, 500, 0}, 150), command);

  const auto& stats = engine.stats();
  std::printf(
      "\ningested %llu updates, mirrored %llu (%.1f%%), suppressed %llu\n",
      static_cast<unsigned long long>(stats.physical_updates),
      static_cast<unsigned long long>(stats.mirrored_updates),
      100.0 * double(stats.mirrored_updates) /
          double(stats.physical_updates),
      static_cast<unsigned long long>(stats.suppressed_updates));
  std::printf("cyber user received %d region notifications\n", notifications);
  std::printf("virtual command reached %d physical entities\n", commanded);
  return 0;
}
