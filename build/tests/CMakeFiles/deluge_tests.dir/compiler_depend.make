# Empty compiler generated dependencies file for deluge_tests.
# This may be replaced when dependencies are built.
