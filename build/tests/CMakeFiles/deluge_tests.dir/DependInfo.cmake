
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregation_test.cc" "tests/CMakeFiles/deluge_tests.dir/aggregation_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/aggregation_test.cc.o.d"
  "/root/repo/tests/colearn_test.cc" "tests/CMakeFiles/deluge_tests.dir/colearn_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/colearn_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/deluge_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/consistency_test.cc" "tests/CMakeFiles/deluge_tests.dir/consistency_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/consistency_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/deluge_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/fusion_test.cc" "tests/CMakeFiles/deluge_tests.dir/fusion_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/fusion_test.cc.o.d"
  "/root/repo/tests/geo_test.cc" "tests/CMakeFiles/deluge_tests.dir/geo_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/geo_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/deluge_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/deluge_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/ledger_test.cc" "tests/CMakeFiles/deluge_tests.dir/ledger_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/ledger_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/deluge_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/deluge_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/p2p_test.cc" "tests/CMakeFiles/deluge_tests.dir/p2p_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/p2p_test.cc.o.d"
  "/root/repo/tests/privacy_test.cc" "tests/CMakeFiles/deluge_tests.dir/privacy_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/privacy_test.cc.o.d"
  "/root/repo/tests/pubsub_test.cc" "tests/CMakeFiles/deluge_tests.dir/pubsub_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/pubsub_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/deluge_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/runtime_test.cc" "tests/CMakeFiles/deluge_tests.dir/runtime_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/runtime_test.cc.o.d"
  "/root/repo/tests/storage_edge_test.cc" "tests/CMakeFiles/deluge_tests.dir/storage_edge_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/storage_edge_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/deluge_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/deluge_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/txn_failure_test.cc" "tests/CMakeFiles/deluge_tests.dir/txn_failure_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/txn_failure_test.cc.o.d"
  "/root/repo/tests/txn_test.cc" "tests/CMakeFiles/deluge_tests.dir/txn_test.cc.o" "gcc" "tests/CMakeFiles/deluge_tests.dir/txn_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/deluge.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
