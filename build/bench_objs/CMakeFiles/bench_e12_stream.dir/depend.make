# Empty dependencies file for bench_e12_stream.
# This may be replaced when dependencies are built.
