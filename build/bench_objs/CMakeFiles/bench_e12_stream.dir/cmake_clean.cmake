file(REMOVE_RECURSE
  "../bench/bench_e12_stream"
  "../bench/bench_e12_stream.pdb"
  "CMakeFiles/bench_e12_stream.dir/bench_e12_stream.cc.o"
  "CMakeFiles/bench_e12_stream.dir/bench_e12_stream.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
