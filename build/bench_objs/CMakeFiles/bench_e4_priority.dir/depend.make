# Empty dependencies file for bench_e4_priority.
# This may be replaced when dependencies are built.
