file(REMOVE_RECURSE
  "../bench/bench_e4_priority"
  "../bench/bench_e4_priority.pdb"
  "CMakeFiles/bench_e4_priority.dir/bench_e4_priority.cc.o"
  "CMakeFiles/bench_e4_priority.dir/bench_e4_priority.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
