file(REMOVE_RECURSE
  "../bench/bench_e11_privacy"
  "../bench/bench_e11_privacy.pdb"
  "CMakeFiles/bench_e11_privacy.dir/bench_e11_privacy.cc.o"
  "CMakeFiles/bench_e11_privacy.dir/bench_e11_privacy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
