file(REMOVE_RECURSE
  "../bench/bench_e14_serverless"
  "../bench/bench_e14_serverless.pdb"
  "CMakeFiles/bench_e14_serverless.dir/bench_e14_serverless.cc.o"
  "CMakeFiles/bench_e14_serverless.dir/bench_e14_serverless.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
