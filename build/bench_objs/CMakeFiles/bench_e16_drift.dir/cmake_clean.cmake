file(REMOVE_RECURSE
  "../bench/bench_e16_drift"
  "../bench/bench_e16_drift.pdb"
  "CMakeFiles/bench_e16_drift.dir/bench_e16_drift.cc.o"
  "CMakeFiles/bench_e16_drift.dir/bench_e16_drift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
