# Empty dependencies file for bench_e16_drift.
# This may be replaced when dependencies are built.
