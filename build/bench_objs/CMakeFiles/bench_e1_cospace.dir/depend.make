# Empty dependencies file for bench_e1_cospace.
# This may be replaced when dependencies are built.
