file(REMOVE_RECURSE
  "../bench/bench_e1_cospace"
  "../bench/bench_e1_cospace.pdb"
  "CMakeFiles/bench_e1_cospace.dir/bench_e1_cospace.cc.o"
  "CMakeFiles/bench_e1_cospace.dir/bench_e1_cospace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_cospace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
