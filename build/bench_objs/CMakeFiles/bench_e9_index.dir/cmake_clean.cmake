file(REMOVE_RECURSE
  "../bench/bench_e9_index"
  "../bench/bench_e9_index.pdb"
  "CMakeFiles/bench_e9_index.dir/bench_e9_index.cc.o"
  "CMakeFiles/bench_e9_index.dir/bench_e9_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
