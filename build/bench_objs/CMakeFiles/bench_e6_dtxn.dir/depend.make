# Empty dependencies file for bench_e6_dtxn.
# This may be replaced when dependencies are built.
