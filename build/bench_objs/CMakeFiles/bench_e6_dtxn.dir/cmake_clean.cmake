file(REMOVE_RECURSE
  "../bench/bench_e6_dtxn"
  "../bench/bench_e6_dtxn.pdb"
  "CMakeFiles/bench_e6_dtxn.dir/bench_e6_dtxn.cc.o"
  "CMakeFiles/bench_e6_dtxn.dir/bench_e6_dtxn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_dtxn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
