file(REMOVE_RECURSE
  "../bench/bench_e15_p2p"
  "../bench/bench_e15_p2p.pdb"
  "CMakeFiles/bench_e15_p2p.dir/bench_e15_p2p.cc.o"
  "CMakeFiles/bench_e15_p2p.dir/bench_e15_p2p.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
