# Empty compiler generated dependencies file for bench_e15_p2p.
# This may be replaced when dependencies are built.
