file(REMOVE_RECURSE
  "../bench/bench_e5_pubsub"
  "../bench/bench_e5_pubsub.pdb"
  "CMakeFiles/bench_e5_pubsub.dir/bench_e5_pubsub.cc.o"
  "CMakeFiles/bench_e5_pubsub.dir/bench_e5_pubsub.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
