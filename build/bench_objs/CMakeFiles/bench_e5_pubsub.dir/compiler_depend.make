# Empty compiler generated dependencies file for bench_e5_pubsub.
# This may be replaced when dependencies are built.
