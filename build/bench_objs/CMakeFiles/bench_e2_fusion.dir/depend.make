# Empty dependencies file for bench_e2_fusion.
# This may be replaced when dependencies are built.
