file(REMOVE_RECURSE
  "../bench/bench_e2_fusion"
  "../bench/bench_e2_fusion.pdb"
  "CMakeFiles/bench_e2_fusion.dir/bench_e2_fusion.cc.o"
  "CMakeFiles/bench_e2_fusion.dir/bench_e2_fusion.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
