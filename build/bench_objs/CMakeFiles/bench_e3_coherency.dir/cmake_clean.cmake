file(REMOVE_RECURSE
  "../bench/bench_e3_coherency"
  "../bench/bench_e3_coherency.pdb"
  "CMakeFiles/bench_e3_coherency.dir/bench_e3_coherency.cc.o"
  "CMakeFiles/bench_e3_coherency.dir/bench_e3_coherency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_coherency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
