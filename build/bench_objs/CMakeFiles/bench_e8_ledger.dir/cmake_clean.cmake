file(REMOVE_RECURSE
  "../bench/bench_e8_ledger"
  "../bench/bench_e8_ledger.pdb"
  "CMakeFiles/bench_e8_ledger.dir/bench_e8_ledger.cc.o"
  "CMakeFiles/bench_e8_ledger.dir/bench_e8_ledger.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
