file(REMOVE_RECURSE
  "../bench/bench_e7_disagg"
  "../bench/bench_e7_disagg.pdb"
  "CMakeFiles/bench_e7_disagg.dir/bench_e7_disagg.cc.o"
  "CMakeFiles/bench_e7_disagg.dir/bench_e7_disagg.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_disagg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
