# Empty dependencies file for bench_e7_disagg.
# This may be replaced when dependencies are built.
