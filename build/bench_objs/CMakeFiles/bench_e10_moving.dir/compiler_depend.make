# Empty compiler generated dependencies file for bench_e10_moving.
# This may be replaced when dependencies are built.
