file(REMOVE_RECURSE
  "../bench/bench_e10_moving"
  "../bench/bench_e10_moving.pdb"
  "CMakeFiles/bench_e10_moving.dir/bench_e10_moving.cc.o"
  "CMakeFiles/bench_e10_moving.dir/bench_e10_moving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_moving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
