file(REMOVE_RECURSE
  "../bench/bench_e13_hdov"
  "../bench/bench_e13_hdov.pdb"
  "CMakeFiles/bench_e13_hdov.dir/bench_e13_hdov.cc.o"
  "CMakeFiles/bench_e13_hdov.dir/bench_e13_hdov.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_hdov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
