# Empty dependencies file for bench_e13_hdov.
# This may be replaced when dependencies are built.
