file(REMOVE_RECURSE
  "../examples/lbg_game"
  "../examples/lbg_game.pdb"
  "CMakeFiles/lbg_game.dir/lbg_game.cpp.o"
  "CMakeFiles/lbg_game.dir/lbg_game.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbg_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
