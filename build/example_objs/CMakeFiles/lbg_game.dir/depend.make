# Empty dependencies file for lbg_game.
# This may be replaced when dependencies are built.
