# Empty dependencies file for smart_city.
# This may be replaced when dependencies are built.
