file(REMOVE_RECURSE
  "../examples/smart_city"
  "../examples/smart_city.pdb"
  "CMakeFiles/smart_city.dir/smart_city.cpp.o"
  "CMakeFiles/smart_city.dir/smart_city.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
