# Empty compiler generated dependencies file for healthcare.
# This may be replaced when dependencies are built.
