file(REMOVE_RECURSE
  "../examples/healthcare"
  "../examples/healthcare.pdb"
  "CMakeFiles/healthcare.dir/healthcare.cpp.o"
  "CMakeFiles/healthcare.dir/healthcare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/healthcare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
