# Empty dependencies file for military_exercise.
# This may be replaced when dependencies are built.
