file(REMOVE_RECURSE
  "../examples/military_exercise"
  "../examples/military_exercise.pdb"
  "CMakeFiles/military_exercise.dir/military_exercise.cpp.o"
  "CMakeFiles/military_exercise.dir/military_exercise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/military_exercise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
